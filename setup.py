"""Legacy setup shim.

The project is fully described by pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks
PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of ZION: a practical confidential VM architecture "
        "on commodity RISC-V (DAC 2025), as a functional simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
