"""E2 (paper section V-B.2): short-path vs long-path CVM mode switching.

Regenerates the timer-triggered entry/exit cycle counts for ZION's
single-privilege-switch design against the secure-hypervisor (long-path)
baseline built for the comparison.
"""

from repro.bench import paper_data
from repro.bench.microbench import run_switch_path_experiment
from repro.bench.tables import format_comparison_table


def test_bench_switch_path(benchmark, print_table, full_scale):
    iterations = 200 if full_scale else 50
    result = benchmark.pedantic(
        run_switch_path_experiment, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    paper = paper_data.SWITCH_PATH
    rows = [
        (
            "CVM entry",
            {
                "long": result["entry_long_path"],
                "short": result["entry_short_path"],
                "impr": result["entry_improvement_pct"],
                "paper_long": paper["entry_long_path"],
                "paper_short": paper["entry_short_path"],
                "paper_impr": paper["entry_improvement_pct"],
            },
        ),
        (
            "CVM exit",
            {
                "long": result["exit_long_path"],
                "short": result["exit_short_path"],
                "impr": result["exit_improvement_pct"],
                "paper_long": paper["exit_long_path"],
                "paper_short": paper["exit_short_path"],
                "paper_impr": paper["exit_improvement_pct"],
            },
        ),
    ]
    print_table(
        format_comparison_table(
            "E2 switch path",
            rows,
            [
                ("long", "long (cyc)", ".0f"),
                ("short", "short (cyc)", ".0f"),
                ("impr", "impr %", ".1f"),
                ("paper_long", "paper long", ".0f"),
                ("paper_short", "paper short", ".0f"),
                ("paper_impr", "paper impr %", ".1f"),
            ],
        )
    )
    assert result["entry_short_path"] < result["entry_long_path"]
    assert result["exit_short_path"] < result["exit_long_path"]
    # The paper's headline factors: ~45% entry, ~55% exit improvement.
    assert abs(result["entry_improvement_pct"] - paper["entry_improvement_pct"]) < 7
    assert abs(result["exit_improvement_pct"] - paper["exit_improvement_pct"]) < 7
    for key in ("entry_long_path", "entry_short_path",
                "exit_long_path", "exit_short_path"):
        assert abs(result[key] - paper[key]) / paper[key] < 0.15, key
