"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper (DESIGN.md's
per-experiment index) and prints measured-vs-paper rows.  The simulation
is deterministic, so a single round per benchmark is meaningful;
pytest-benchmark's role here is orchestration + timing of the harness
itself.

Environment knobs:

- ``REPRO_FULL=1`` runs the paper-scale workloads (10x slower); the
  default uses the documented scaled-down loads whose reported
  percentages are scale-invariant.
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are deterministic; keep declaration order (micro -> macro).
    pass


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return os.environ.get("REPRO_FULL") == "1"


@pytest.fixture(scope="session")
def print_table(request):
    """Print a formatted table to the *real* stdout.

    The regenerated paper tables are the benchmark suite's primary
    output; suspending pytest's fd-level capture keeps them visible in
    plain ``pytest benchmarks/ --benchmark-only`` runs and in logs.
    """
    capture_manager = request.config.pluginmanager.getplugin("capturemanager")

    def _print(text: str) -> None:
        with capture_manager.global_and_fixture_disabled():
            print("\n" + text, flush=True)

    return _print
