"""E3 (paper section V-C): stage-2 page-fault handling performance.

Regenerates the per-path fault-handling cycle counts: the normal VM's
KVM path against the confidential VM's three hierarchical allocation
stages and their weighted average.
"""

from repro.bench import paper_data
from repro.bench.microbench import run_page_fault_experiment
from repro.bench.tables import format_comparison_table


def test_bench_page_fault(benchmark, print_table, full_scale):
    pages = 2048 if full_scale else 512
    result = benchmark.pedantic(
        run_page_fault_experiment, kwargs={"pages": pages}, rounds=1, iterations=1
    )
    paper = paper_data.PAGE_FAULT
    labels = [
        ("normal VM (KVM)", "normal_vm"),
        ("CVM stage 1", "cvm_stage1"),
        ("CVM stage 2", "cvm_stage2"),
        ("CVM stage 3", "cvm_stage3"),
        ("CVM average", "cvm_average"),
    ]
    rows = [
        (label, {"measured": result[key], "paper": paper[key],
                 "ratio": (result[key] / paper[key]) if result[key] else None})
        for label, key in labels
    ]
    print_table(
        format_comparison_table(
            "E3 stage-2 faults",
            rows,
            [
                ("measured", "measured (cyc)", ".0f"),
                ("paper", "paper (cyc)", ".0f"),
                ("ratio", "ratio", ".3f"),
            ],
        )
    )
    # Shape: CVM stages 1/2 beat KVM; stage 3 is much slower; the average
    # sits near stage 1 because the cache absorbs most faults.
    assert result["cvm_stage1"] < result["normal_vm"]
    assert result["cvm_stage2"] < result["normal_vm"]
    assert result["cvm_stage3"] > result["normal_vm"]
    assert result["cvm_stage1"] < result["cvm_stage2"] < result["cvm_stage3"]
    assert abs(result["cvm_average"] - result["cvm_stage1"]) / result["cvm_stage1"] < 0.05
    for _label, key in labels:
        assert abs(result[key] - paper[key]) / paper[key] < 0.15, key
