"""E7 (paper Fig. 4): IOZone sequential read/write throughput.

Regenerates the figure's grid: write and read throughput for file sizes
64 KB - 512 MB at record sizes 8/128/512 KB, for the normal and the
confidential VM.  The paper's shape: minimal difference (<5%) for
cache-resident files, overhead growing toward ~20% for the largest files
as device exits dominate; lower absolute throughput at small records.
"""

from repro.bench import paper_data
from repro.bench.macro import run_iozone_experiment
from repro.bench.tables import format_comparison_table, human_bytes


def test_bench_iozone_fig4(benchmark, print_table, full_scale):
    if full_scale:
        kwargs = {"size_scale": 1}
    else:
        # The documented scaled grid: joint file/cache scaling preserves
        # the streamed fraction that drives the overhead.
        kwargs = {"size_scale": 4}
    result = benchmark.pedantic(
        run_iozone_experiment, kwargs=kwargs, rounds=1, iterations=1
    )
    rows = [
        (
            f"{human_bytes(cell['file_bytes'])}/{human_bytes(cell['record_bytes'])}",
            {
                "w_normal": cell["write_normal_kb_s"],
                "w_cvm": cell["write_cvm_kb_s"],
                "w_over": cell["write_overhead_pct"],
                "r_normal": cell["read_normal_kb_s"],
                "r_cvm": cell["read_cvm_kb_s"],
                "r_over": cell["read_overhead_pct"],
            },
        )
        for cell in result["cells"]
    ]
    print_table(
        format_comparison_table(
            "E7 IOZone (Fig. 4)",
            rows,
            [
                ("w_normal", "wr normal KB/s", ".0f"),
                ("w_cvm", "wr CVM KB/s", ".0f"),
                ("w_over", "wr over %", "+.2f"),
                ("r_normal", "rd normal KB/s", ".0f"),
                ("r_cvm", "rd CVM KB/s", ".0f"),
                ("r_over", "rd over %", "+.2f"),
            ],
        )
    )
    cache = 128 << 20
    by_record: dict = {}
    for cell in result["cells"]:
        by_record.setdefault(cell["record_bytes"], []).append(cell)
        for op in ("write", "read"):
            over = cell[f"{op}_overhead_pct"]
            if cell["file_bytes"] <= cache // 2:
                # Paper: "for smaller files, the performance difference is
                # minimal (under 5%)".
                assert over < 5.0, (cell["file_bytes"], op)
            assert over < paper_data.IOZONE["large_file_overhead_pct_max"] + 2.0
    # Paper: overhead grows with file size ("as file sizes grow, the
    # confidential VM's overhead increases, reaching up to 20%").
    for record_bytes, cells in by_record.items():
        cells.sort(key=lambda c: c["file_bytes"])
        small = cells[0]["write_overhead_pct"]
        large = cells[-1]["write_overhead_pct"]
        assert large > small + 5, record_bytes
        assert large > 8.0, record_bytes
    # Paper: "throughput [is] lower when the record size is small".
    records = sorted(by_record)
    biggest_file = max(c["file_bytes"] for c in result["cells"])
    tp = {
        r: next(
            c["write_normal_kb_s"] for c in by_record[r]
            if c["file_bytes"] == biggest_file
        )
        for r in records
    }
    assert tp[records[0]] < tp[records[-1]]
