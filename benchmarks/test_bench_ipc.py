"""E8 (extension): inter-CVM transport -- SM channel vs virtio + SWIOTLB.

Not a paper figure: the paper's only cross-VM data path is host-mediated
virtio with two bounce copies per direction (guest <-> SWIOTLB <-> host).
This table shows what the SM-brokered shared-window channel buys for the
same ping-pong: no bounce copies, no MMIO exits, one notify ECALL per
message -- and the doorbell-vs-polling ablation for the notify itself.
"""

from repro.bench.ipc import DEFAULT_MESSAGE_SIZES, run_ipc_experiment
from repro.bench.tables import format_comparison_table


def test_bench_ipc_channel_vs_virtio(benchmark, print_table, full_scale):
    rounds = 64 if full_scale else 16
    result = benchmark.pedantic(
        run_ipc_experiment,
        kwargs={"message_sizes": DEFAULT_MESSAGE_SIZES, "rounds": rounds},
        rounds=1, iterations=1,
    )
    rows = [
        (
            f"{size} B",
            {
                "channel": cell["channel"]["cycles_per_round_trip"],
                "polling": cell["polling"]["cycles_per_round_trip"],
                "virtio": cell["virtio"]["cycles_per_round_trip"],
                "speedup": cell["speedup"],
                "saved_us": cell["latency_saved_us"],
                "chan_mbps": cell["channel"]["throughput_mbps"],
                "virtio_mbps": cell["virtio"]["throughput_mbps"],
            },
        )
        for size, cell in result["sizes"].items()
    ]
    print_table(
        format_comparison_table(
            "E8 inter-CVM transport (cycles / round trip)",
            rows,
            [
                ("channel", "channel", ".0f"),
                ("polling", "polling", ".0f"),
                ("virtio", "virtio", ".0f"),
                ("speedup", "speedup", ".2f"),
                ("saved_us", "saved us/rt", ".1f"),
                ("chan_mbps", "chan MB/s", ".1f"),
                ("virtio_mbps", "virtio MB/s", ".1f"),
            ],
        )
    )
    doorbells = {
        size: (cell["channel"]["doorbells"], cell["polling"]["doorbells"])
        for size, cell in result["sizes"].items()
    }
    print_table(
        "ablation: doorbell arm rings {} bells/run, polling arm rings {} "
        "(spins through the scheduler instead); polling saves the notify "
        "ECALLs while both sides stay busy, doorbells let an idle side "
        "park off the run queue.".format(
            next(iter(doorbells.values()))[0], next(iter(doorbells.values()))[1]
        )
    )
    for size, cell in result["sizes"].items():
        # The point of the subsystem: the channel must beat the
        # two-bounce-copy virtio path at every message size.
        assert cell["channel"]["cycles"] < cell["virtio"]["cycles"], size
        assert cell["speedup"] > 1.0, size
        assert cell["latency_saved_us"] > 0, size
        # Ablation sanity: the polling arm never touches the doorbell
        # path, the doorbell arm rings twice per round trip.
        assert cell["polling"]["doorbells"] == 0, size
        assert cell["channel"]["doorbells"] == 2 * rounds, size
        assert cell["polling"]["cycles"] <= cell["channel"]["cycles"], size
    # The copy savings grow with the payload: virtio's advantage-loss
    # (absolute cycles saved per round trip) must increase with size.
    saved = [
        cell["virtio"]["cycles_per_round_trip"]
        - cell["channel"]["cycles_per_round_trip"]
        for cell in result["sizes"].values()
    ]
    assert saved == sorted(saved)
