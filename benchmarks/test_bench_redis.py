"""E6 (paper Fig. 3): Redis throughput and latency per operation type.

Regenerates the figure's series: per-op throughput (requests/s) and
average latency for the normal and the confidential VM, with the paper's
headline deltas (throughput -5.3%, latency +4%).
"""

from repro.bench import paper_data
from repro.bench.macro import run_redis_experiment
from repro.bench.tables import format_comparison_table


def test_bench_redis_fig3(benchmark, print_table, full_scale):
    requests = 2_000 if full_scale else 300
    rounds = 3 if full_scale else 1
    result = benchmark.pedantic(
        run_redis_experiment,
        kwargs={"requests": requests, "rounds": rounds},
        rounds=1, iterations=1,
    )
    rows = [
        (
            op,
            {
                "normal_tp": row["normal_throughput_rps"],
                "cvm_tp": row["cvm_throughput_rps"],
                "tp_drop": row["throughput_drop_pct"],
                "normal_lat": row["normal_latency_us"],
                "cvm_lat": row["cvm_latency_us"],
                "lat_inc": row["latency_increase_pct"],
            },
        )
        for op, row in result["ops"].items()
    ]
    print_table(
        format_comparison_table(
            "E6 Redis (Fig. 3)",
            rows,
            [
                ("normal_tp", "normal rps", ".0f"),
                ("cvm_tp", "CVM rps", ".0f"),
                ("tp_drop", "drop %", "+.2f"),
                ("normal_lat", "normal us", ".0f"),
                ("cvm_lat", "CVM us", ".0f"),
                ("lat_inc", "lat %", "+.2f"),
            ],
        )
    )
    print_table(
        "avg throughput drop: {:+.2f}% (paper {:+.2f}%)   "
        "avg latency increase: {:+.2f}% (paper {:+.2f}%)".format(
            result["avg_throughput_drop_pct"],
            paper_data.REDIS["avg_throughput_drop_pct"],
            result["avg_latency_increase_pct"],
            paper_data.REDIS["avg_latency_increase_pct"],
        )
    )
    # Shape: every op loses throughput and gains latency, within a
    # "reasonable range" (the paper's words) of the averages.
    for op, row in result["ops"].items():
        assert 0 < row["throughput_drop_pct"] < 10, op
        assert 0 < row["latency_increase_pct"] < 10, op
    assert abs(
        result["avg_throughput_drop_pct"] - paper_data.REDIS["avg_throughput_drop_pct"]
    ) < 1.5
    assert abs(
        result["avg_latency_increase_pct"] - paper_data.REDIS["avg_latency_increase_pct"]
    ) < 1.5
