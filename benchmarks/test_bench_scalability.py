"""Scalability bench: concurrent CVM count vs. hardware-resource budget.

The paper's flexibility/scalability argument against CURE/VirTEE (which
top out at 13 VM enclaves on dedicated hardware resources): ZION's CVM
count is bounded by memory, not PMP entries.  This bench sweeps the
tenant count and reports PMP entries used, launch cost, and per-tenant
interleaved throughput.
"""

from repro import Machine, MachineConfig
from repro.bench.tables import format_comparison_table


def run_scalability(tenant_counts=(1, 4, 13, 32)) -> dict:
    rows = {}
    for count in tenant_counts:
        machine = Machine(MachineConfig(initial_pool_bytes=96 << 20))
        with machine.ledger.span() as launch_span:
            sessions = [
                machine.launch_confidential_vm(
                    image=b"tenant" * 64, shared_window=256 << 10
                )
                for _ in range(count)
            ]

        def make_workload(session):
            def workload(ctx):
                for _ in range(3):
                    ctx.compute(20_000)
                    yield
                return True

            return workload

        results = machine.run_concurrent(
            [(s, make_workload(s)) for s in sessions]
        )
        assert all(results[s] for s in sessions)
        rows[count] = {
            "pmp_entries": machine.pmp_controller.pmp_entries_used,
            "launch_cycles_per_cvm": launch_span.cycles / count,
            "run_cycles": results["cycles"],
            "pool_regions": len(machine.monitor.pool.regions),
        }
    return rows


def test_bench_scalability(benchmark, print_table):
    result = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    rows = [
        (
            f"{count} CVMs",
            {
                "pmp": row["pmp_entries"],
                "launch": row["launch_cycles_per_cvm"],
                "run": row["run_cycles"],
            },
        )
        for count, row in result.items()
    ]
    print_table(
        format_comparison_table(
            "scalability",
            rows,
            [
                ("pmp", "PMP entries", "d"),
                ("launch", "launch cyc/CVM", ".0f"),
                ("run", "interleaved cyc", ".0f"),
            ],
        )
    )
    counts = sorted(result)
    # PMP budget is flat in tenant count (the CURE/VirTEE contrast).
    budgets = {result[c]["pmp_entries"] for c in counts}
    assert max(budgets) <= 4
    # 32 tenants must simply work (beyond the 13-enclave ceiling)...
    assert 32 in result
    # ...with roughly constant per-CVM launch cost.
    per_cvm = [result[c]["launch_cycles_per_cvm"] for c in counts]
    assert max(per_cvm) < 3 * min(per_cvm)
