"""E1 (paper section V-B.1): shared-vCPU world-switch optimization.

Regenerates the four cycle counts and two improvement percentages the
paper reports for MMIO-triggered CVM entry/exit with and without the
shared-vCPU state-update mechanism.
"""

from repro.bench import paper_data
from repro.bench.microbench import run_vcpu_switch_experiment
from repro.bench.tables import format_comparison_table


def test_bench_vcpu_switch(benchmark, print_table, full_scale):
    iterations = 200 if full_scale else 50
    result = benchmark.pedantic(
        run_vcpu_switch_experiment, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    paper = paper_data.VCPU_SWITCH
    rows = [
        (
            "CVM entry",
            {
                "measured_without": result["entry_without_shared"],
                "measured_with": result["entry_with_shared"],
                "paper_without": paper["entry_without_shared"],
                "paper_with": paper["entry_with_shared"],
                "impr": result["entry_improvement_pct"],
                "paper_impr": paper["entry_improvement_pct"],
            },
        ),
        (
            "CVM exit",
            {
                "measured_without": result["exit_without_shared"],
                "measured_with": result["exit_with_shared"],
                "paper_without": paper["exit_without_shared"],
                "paper_with": paper["exit_with_shared"],
                "impr": result["exit_improvement_pct"],
                "paper_impr": paper["exit_improvement_pct"],
            },
        ),
    ]
    print_table(
        format_comparison_table(
            "E1 shared vCPU",
            rows,
            [
                ("measured_without", "no-shared (cyc)", ".0f"),
                ("measured_with", "shared (cyc)", ".0f"),
                ("impr", "impr %", ".1f"),
                ("paper_without", "paper no-shared", ".0f"),
                ("paper_with", "paper shared", ".0f"),
                ("paper_impr", "paper impr %", ".1f"),
            ],
        )
    )
    # Shape assertions: the optimization helps on both directions, by
    # roughly the paper's factor (within a third of the reported gain).
    assert result["entry_with_shared"] < result["entry_without_shared"]
    assert result["exit_with_shared"] < result["exit_without_shared"]
    assert abs(result["entry_improvement_pct"] - paper["entry_improvement_pct"]) < 7
    assert abs(result["exit_improvement_pct"] - paper["exit_improvement_pct"]) < 8
    # Absolute counts within 15% of the calibration targets.
    for key in ("entry_with_shared", "entry_without_shared",
                "exit_with_shared", "exit_without_shared"):
        assert abs(result[key] - paper[key]) / paper[key] < 0.15, key
