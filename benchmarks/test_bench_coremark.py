"""E5 (paper section V-D): CoreMark score, normal vs confidential VM."""

from repro.bench import paper_data
from repro.bench.macro import run_coremark_experiment
from repro.bench.tables import format_comparison_table


def test_bench_coremark(benchmark, print_table, full_scale):
    iterations = 10_000 if full_scale else 1_500
    result = benchmark.pedantic(
        run_coremark_experiment, kwargs={"iterations": iterations},
        rounds=1, iterations=1,
    )
    paper = paper_data.COREMARK
    rows = [
        ("normal VM", {"measured": result["normal_score"], "paper": paper["normal_score"]}),
        ("confidential VM", {"measured": result["cvm_score"], "paper": paper["cvm_score"]}),
        ("drop %", {"measured": result["overhead_pct"], "paper": paper["overhead_pct"]}),
    ]
    print_table(
        format_comparison_table(
            "E5 CoreMark",
            rows,
            [("measured", "measured", ".2f"), ("paper", "paper", ".2f")],
        )
    )
    # Scores within 5% of the paper's; drop within half a point of 2.77%.
    assert abs(result["normal_score"] - paper["normal_score"]) / paper["normal_score"] < 0.05
    assert abs(result["cvm_score"] - paper["cvm_score"]) / paper["cvm_score"] < 0.05
    assert abs(result["overhead_pct"] - paper["overhead_pct"]) < 0.5
