"""E9 (extension): sharded redis cluster over SM channels vs virtio.

Not a paper figure: the paper's redis numbers (Table 6) put one server
CVM behind virtio-net, paying the full TCP/IP + SWIOTLB bounce path per
request.  This table serves the same mixed GET/SET/MGET traffic from a
router + N shard CVMs connected by SM-brokered channels (docs/
DATA_PLANE.md), and sweeps the two levers the design adds: shard count
(horizontal scaling of the serving tier) and pipeline depth (batching
of the per-hop fixed costs).
"""

from repro.bench.redis_cluster import run_cluster_experiment
from repro.bench.tables import format_comparison_table


def test_bench_redis_cluster_vs_virtio(benchmark, print_table, full_scale):
    clients = 4 if full_scale else 2
    requests = 64 if full_scale else 16
    result = benchmark.pedantic(
        run_cluster_experiment,
        kwargs={"clients": clients, "requests": requests},
        rounds=1, iterations=1,
    )
    cluster = result["cluster"]
    baseline = result["virtio_baseline"]

    rows = [
        (
            f"{row['shards']} shard x P{row['pipeline']}",
            {
                "cpr": row["cycles_per_request"],
                "rps": row["throughput_rps"],
                "p99": row["p99_latency_us"],
                "balance": row["shard_balance"],
                "busy": row["max_shard_busy_per_request"],
            },
        )
        for row in result["ablation"]
    ]
    rows.append((
        "virtio 1 CVM x P1",
        {"cpr": baseline["unpipelined"]["cycles_per_request"],
         "rps": baseline["unpipelined"]["throughput_rps"]},
    ))
    rows.append((
        f"virtio 1 CVM x P{baseline['pipelined']['pipeline']}",
        {"cpr": baseline["pipelined"]["cycles_per_request"],
         "rps": baseline["pipelined"]["throughput_rps"]},
    ))
    print_table(
        format_comparison_table(
            "E9 sharded cluster",
            rows,
            [
                ("cpr", "cycles/req", ".0f"),
                ("rps", "req/s", ".0f"),
                ("p99", "p99 us", ".1f"),
                ("balance", "balance", ".3f"),
                ("busy", "shard busy/req", ".0f"),
            ],
        )
    )
    print_table(
        "headline: {:.2f}x fewer cycles/request than the unpipelined "
        "virtio baseline ({:.0f} vs {:.0f}); wake policy: front-wake "
        "p99 {:.0f} us vs tail-wake {:.0f} us".format(
            result["speedup_vs_virtio_unpipelined"],
            cluster["cycles_per_request"],
            baseline["unpipelined"]["cycles_per_request"],
            result["wake_policy"]["front_wake"]["p99_latency_us"],
            result["wake_policy"]["tail_wake"]["p99_latency_us"],
        )
    )

    # -- acceptance: the channel data plane must beat the virtio baseline
    # by >= 1.5x cycles/request at 4 shards + pipelining (it measures
    # ~3x; 1.5x is the regression floor).
    assert result["speedup_vs_virtio_unpipelined"] >= 1.5
    assert cluster["errors"] == 0
    assert cluster["requests"] == clients * requests

    # -- the device path collapses: no MMIO exits, no virtio interrupt
    # delivery anywhere in the cluster's data plane.
    assert cluster["breakdown"].get("DEVICE", 0) == 0
    assert baseline["breakdown"]["DEVICE"] > 0
    per_request = cluster["cycles"] / cluster["requests"]
    baseline_per_request = baseline["unpipelined"]["cycles_per_request"]
    cluster_trap_dev = (
        cluster["breakdown"].get("TRAP", 0)
        + cluster["breakdown"].get("DEVICE", 0)
        + cluster["breakdown"].get("GUEST_KERNEL", 0)
    ) / cluster["requests"]
    baseline_total = sum(baseline["breakdown"].values())
    baseline_trap_dev = baseline_per_request * (
        baseline["breakdown"]["TRAP"]
        + baseline["breakdown"]["DEVICE"]
        + baseline["breakdown"].get("GUEST_KERNEL", 0)
    ) / baseline_total
    assert cluster_trap_dev < baseline_trap_dev

    # -- pipelining must win at fixed shard count (the per-hop fixed
    # costs amortize across the batch)...
    by_config = {
        (row["shards"], row["pipeline"]): row for row in result["ablation"]
    }
    deepest = max(p for _s, p in by_config)
    for shards in sorted({s for s, _p in by_config}):
        assert (
            by_config[(shards, deepest)]["cycles_per_request"]
            < by_config[(shards, 1)]["cycles_per_request"]
        ), f"pipelining did not pay at {shards} shards"
    # ...and deeper pipelines trade tail latency for it.
    assert cluster["p99_latency_us"] >= cluster["p50_latency_us"]

    # -- the shard tier scales: the busiest shard's serving cycles per
    # request (the N-hart critical path) must drop superlinearly past
    # half the ideal at 4 shards, with the slot space evenly spread.
    busy_1 = by_config[(1, deepest)]["max_shard_busy_per_request"]
    busy_4 = by_config[(4, deepest)]["max_shard_busy_per_request"]
    assert busy_4 <= busy_1 / 2, (busy_1, busy_4)
    # At quick scale only ~8 requests land per shard, so the CRC16 spread
    # is necessarily lumpier than the full-scale run's ~0.95.
    min_balance = 0.8 if full_scale else 0.7
    assert by_config[(4, deepest)]["shard_balance"] >= min_balance

    # -- wake-policy ablation: front-wake is the latency policy,
    # tail-wake the throughput policy.
    front = result["wake_policy"]["front_wake"]
    tail = result["wake_policy"]["tail_wake"]
    assert front["p99_latency_us"] <= tail["p99_latency_us"]
    assert tail["cycles_per_request"] <= front["cycles_per_request"]
