"""Migration-cost bench (extension): downtime vs. guest memory footprint.

Not a paper table -- quantifies the migration extension (DESIGN.md sec. 7):
export + import cycle cost ("downtime", since this is stop-and-copy) as the
guest's resident memory grows, and the blob-size overhead of sealing.
"""

from repro import Machine, MachineConfig
from repro.bench.tables import format_comparison_table, human_bytes
from repro.mem.physmem import PAGE_SIZE
from repro.sm.migration import derive_migration_key
from repro.workloads.memstress import sequential_write_stress


def run_migration_cost(footprints=(256 << 10, 1 << 20, 4 << 20)) -> dict:
    key = derive_migration_key(b"fleet", b"bench-src", b"bench-dst")
    rows = {}
    for footprint in footprints:
        source = Machine(MachineConfig())
        session = source.launch_confidential_vm(image=b"mig" * 300)
        source.run(session, sequential_write_stress(footprint // PAGE_SIZE))
        with source.ledger.span() as export_span:
            blob = source.export_confidential_vm(session, key)
        destination = Machine(MachineConfig())
        with destination.ledger.span() as import_span:
            migrated = destination.import_confidential_vm(blob, key)
        # The migrated guest must be immediately runnable.
        destination.run(migrated, lambda ctx: ctx.compute(1000))
        rows[footprint] = {
            "blob_bytes": len(blob),
            "export_cycles": export_span.cycles,
            "import_cycles": import_span.cycles,
            "downtime_ms": (export_span.cycles + import_span.cycles) / 100_000,
        }
    return rows


def test_bench_migration_cost(benchmark, print_table):
    result = benchmark.pedantic(run_migration_cost, rounds=1, iterations=1)
    rows = [
        (
            human_bytes(footprint),
            {
                "blob": row["blob_bytes"] / 1024,
                "export": row["export_cycles"],
                "import": row["import_cycles"],
                "downtime": row["downtime_ms"],
            },
        )
        for footprint, row in result.items()
    ]
    print_table(
        format_comparison_table(
            "migration cost",
            rows,
            [
                ("blob", "blob (KB)", ".0f"),
                ("export", "export (cyc)", ".0f"),
                ("import", "import (cyc)", ".0f"),
                ("downtime", "downtime (ms)", ".2f"),
            ],
        )
    )
    footprints = sorted(result)
    # Cost scales with resident memory (stop-and-copy), roughly linearly.
    small, large = result[footprints[0]], result[footprints[-1]]
    ratio = footprints[-1] / footprints[0]
    cost_ratio = (large["export_cycles"] + large["import_cycles"]) / (
        small["export_cycles"] + small["import_cycles"]
    )
    assert 0.3 * ratio < cost_ratio < 1.7 * ratio
    # Sealing overhead is bounded: blob ~= memory + O(KB) of metadata.
    for footprint in footprints:
        assert result[footprint]["blob_bytes"] < footprint + (64 << 10) + footprint // 8
