"""E4 (paper Table I): RV8 benchmark suite, normal vs confidential VM.

Regenerates Table I's rows: baseline cycles, confidential-VM cycles, and
the per-benchmark overhead percentage, plus the suite average.
"""

from repro.bench import paper_data
from repro.bench.macro import run_rv8_experiment
from repro.bench.tables import format_comparison_table


def test_bench_rv8_table_i(benchmark, print_table, full_scale):
    scale = 0.1 if full_scale else 0.01
    result = benchmark.pedantic(
        run_rv8_experiment, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    rows = []
    for name, row in result["benchmarks"].items():
        rows.append(
            (
                name,
                {
                    "normal_1e9": row["normal_1e9_extrapolated"],
                    "cvm_1e9": row["cvm_1e9_extrapolated"],
                    "overhead": row["overhead_pct"],
                    "paper": row["paper_overhead_pct"],
                },
            )
        )
    rows.append(
        (
            "Average",
            {
                "overhead": result["average_overhead_pct"],
                "paper": paper_data.RV8_AVERAGE_OVERHEAD_PCT,
            },
        )
    )
    print_table(
        format_comparison_table(
            "E4 RV8 (Table I)",
            rows,
            [
                ("normal_1e9", "normal (1e9 cyc)", ".3f"),
                ("cvm_1e9", "CVM (1e9 cyc)", ".3f"),
                ("overhead", "overhead %", "+.2f"),
                ("paper", "paper %", "+.2f"),
            ],
        )
    )
    for name, row in result["benchmarks"].items():
        # The paper's claim: every RV8 overhead stays within 3%.
        assert 0 < row["overhead_pct"] < 3.2, name
        # And each lands near the reported per-benchmark number.
        assert abs(row["overhead_pct"] - row["paper_overhead_pct"]) < 0.8, name
    assert abs(result["average_overhead_pct"] - paper_data.RV8_AVERAGE_OVERHEAD_PCT) < 0.5
