"""Ablation benches: what each ZION design choice buys (DESIGN.md sec. 7).

Not paper tables -- these quantify the design decisions the paper argues
for qualitatively: the 256 KB block default, the per-vCPU page cache,
shared-window premapping, and the world-switch TLB-flush policy.
"""

from repro.bench.ablations import (
    run_block_size_ablation,
    run_page_cache_ablation,
    run_shared_premap_ablation,
    run_tlb_flush_ablation,
)
from repro.bench.tables import format_comparison_table, human_bytes


def test_bench_block_size(benchmark, print_table):
    result = benchmark.pedantic(run_block_size_ablation, rounds=1, iterations=1)
    rows = [
        (
            human_bytes(block_size),
            {
                "avg": row["avg_fault_cycles"],
                "stage1": row["stage1_share_pct"],
                "held": row["pool_bytes_held"] / 1024,
            },
        )
        for block_size, row in result.items()
    ]
    print_table(
        format_comparison_table(
            "block-size ablation",
            rows,
            [
                ("avg", "avg fault (cyc)", ".0f"),
                ("stage1", "stage-1 share %", ".1f"),
                ("held", "pool held (KB)", ".0f"),
            ],
        )
    )
    sizes = sorted(result)
    # Bigger blocks -> more stage-1 hits -> cheaper average fault...
    assert (
        result[sizes[0]]["stage1_share_pct"]
        < result[sizes[1]]["stage1_share_pct"]
        < result[sizes[2]]["stage1_share_pct"]
    )
    assert result[sizes[2]]["avg_fault_cycles"] < result[sizes[0]]["avg_fault_cycles"]
    # ...at the cost of more pool memory held per vCPU.
    assert result[sizes[2]]["pool_bytes_held"] >= result[sizes[0]]["pool_bytes_held"]


def test_bench_page_cache(benchmark, print_table):
    result = benchmark.pedantic(run_page_cache_ablation, rounds=1, iterations=1)
    print_table(
        "page-cache ablation: with {:.0f} cyc/fault, without {:.0f} cyc/fault "
        "({:.1f}% saved by the hierarchical design)".format(
            result["with_cache"], result["no_cache"], result["cache_benefit_pct"]
        )
    )
    # The saving is bounded by the fault path's fixed cost (the M-mode
    # handler dominates); the allocation-stage cycles themselves roughly
    # halve, which shows up as a 1-2% whole-fault improvement.
    assert result["with_cache"] < result["no_cache"]
    assert result["cache_benefit_pct"] > 1.0


def test_bench_shared_premap(benchmark, print_table):
    result = benchmark.pedantic(run_shared_premap_ablation, rounds=1, iterations=1)
    premapped = result["premapped"]
    demand = result["demand_faulted"]
    print_table(
        "shared-window ablation: premapped {} exits / {:,} cyc, "
        "demand-faulted {} exits / {:,} cyc".format(
            premapped["cvm_exits"], premapped["cycles"],
            demand["cvm_exits"], demand["cycles"],
        )
    )
    # Demand faulting costs extra shared-fault exits for the same I/O.
    assert demand["cvm_exits"] > premapped["cvm_exits"]
    assert demand["cycles"] > premapped["cycles"]


def test_bench_redis_pipelining(benchmark, print_table):
    """redis-benchmark -P sweep: exit amortisation shrinks the overhead."""
    from repro import Machine, MachineConfig
    from repro.workloads.redis import redis_benchmark

    def run_sweep(depths=(1, 4, 16)):
        rows = {}
        for depth in depths:
            samples = {}
            for kind in ("normal", "cvm"):
                machine = Machine(MachineConfig())
                if kind == "cvm":
                    session = machine.launch_confidential_vm(image=b"p" * 400)
                else:
                    session = machine.launch_normal_vm()
                machine.attach_virtio_net(session)
                samples[kind] = redis_benchmark(
                    machine, session, "GET", requests=300, pipeline=depth
                )
            rows[depth] = {
                "normal_rps": samples["normal"]["throughput_rps"],
                "cvm_rps": samples["cvm"]["throughput_rps"],
                "drop_pct": 100.0
                * (1 - samples["cvm"]["throughput_rps"] / samples["normal"]["throughput_rps"]),
            }
        return rows

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (f"-P {depth}", dict(row)) for depth, row in result.items()
    ]
    print_table(
        format_comparison_table(
            "redis pipelining",
            rows,
            [
                ("normal_rps", "normal rps", ".0f"),
                ("cvm_rps", "CVM rps", ".0f"),
                ("drop_pct", "drop %", "+.2f"),
            ],
        )
    )
    depths = sorted(result)
    # Throughput rises with depth; confidential overhead falls.
    assert result[depths[-1]]["cvm_rps"] > result[depths[0]]["cvm_rps"] * 1.5
    assert result[depths[-1]]["drop_pct"] < result[depths[0]]["drop_pct"]


def test_bench_tlb_flush_policy(benchmark, print_table):
    result = benchmark.pedantic(run_tlb_flush_ablation, rounds=1, iterations=1)
    print_table(
        "TLB-flush ablation (aes profile): default overhead {:+.2f}%, "
        "free-hfence overhead {:+.2f}%".format(
            result["default"], result["free_hfence"]
        )
    )
    # The flush instruction itself is a minor term; the induced re-walks
    # (still present with a free hfence) dominate -- both stay positive.
    assert result["free_hfence"] < result["default"]
    assert result["free_hfence"] > 0
