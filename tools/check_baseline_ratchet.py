#!/usr/bin/env python3
"""Fail CI if the committed zionlint baseline grows.

The baseline is a ratchet: accepted findings may only ever be burned
down, never quietly accumulated.  The allowed size is pinned here --
adding a baselined finding therefore requires editing this constant in
the same change, which is exactly the reviewable speed bump the ratchet
exists to create.  When the baseline shrinks, lower the pin to lock the
progress in.

Exit status: 0 when the baseline is at or below the pin, 1 when it
grew, 2 when the baseline file is unreadable.
"""

from __future__ import annotations

import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).resolve().parent.parent / (
    "src/repro/lint/baseline.json"
)

#: Maximum number of baselined findings the tree may carry.  Lower this
#: whenever the baseline shrinks; raising it is a reviewed decision.
MAX_BASELINED = 0


def main() -> int:
    try:
        data = json.loads(BASELINE.read_text(encoding="utf-8"))
        suppressions = data["suppressions"]
    except (OSError, ValueError, KeyError) as exc:
        print(f"baseline ratchet: cannot read {BASELINE}: {exc}")
        return 2
    count = len(suppressions)
    if count > MAX_BASELINED:
        print(
            f"baseline ratchet: {BASELINE.name} holds {count} accepted "
            f"finding(s), over the pinned maximum of {MAX_BASELINED}. "
            "Fix the findings (or suppress them with a reasoned pragma) "
            "instead of baselining; a deliberate grow must raise "
            "MAX_BASELINED in tools/check_baseline_ratchet.py in the "
            "same change."
        )
        return 1
    if count < MAX_BASELINED:
        print(
            f"baseline ratchet: baseline shrank to {count} (pin is "
            f"{MAX_BASELINED}) -- lower MAX_BASELINED to lock it in."
        )
    else:
        print(f"baseline ratchet: OK ({count}/{MAX_BASELINED} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
