#!/usr/bin/env python
"""Check that every relative markdown link in the docs resolves.

Scans the repository's top-level ``*.md`` files and ``docs/*.md`` for
inline links and images (``[text](target)`` / ``![alt](target)``),
resolves each relative target against the file that contains it, and
fails (exit 1) listing every target that does not exist on disk.

Skipped on purpose: absolute URLs (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``). A ``#fragment``
suffix on a file target is stripped before the existence check --
fragment validity is not verified, only the file.

Usage::

    python tools/check_links.py [root]

``root`` defaults to the repository root (the parent of this script's
directory). No dependencies beyond the stdlib; CI runs this as the
docs link-check step.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown link/image: ``[text](target)``.  Nested brackets in
#: the text and whitespace-wrapped targets are out of scope -- the docs
#: do not use them.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files(root: pathlib.Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted(root.glob("docs/*.md"))


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    """Return ``(line_number, target)`` for every broken link in ``path``."""
    broken = []
    for line_number, line in enumerate(path.read_text().splitlines(), 1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if file_part.startswith("/"):
                resolved = root / file_part.lstrip("/")
            else:
                resolved = path.parent / file_part
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else \
        pathlib.Path(__file__).resolve().parent.parent
    checked = 0
    failures = 0
    for path in iter_doc_files(root):
        checked += 1
        for line_number, target in check_file(path, root):
            failures += 1
            print(f"{path.relative_to(root)}:{line_number}: "
                  f"broken link -> {target}")
    print(f"checked {checked} files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
