PYTHON ?= python

.PHONY: install verify test bench bench-full experiments faults perf perf-compare lint lint-changed lint-strict linkcheck redis-cluster fleet virtio-batch examples clean

install:
	pip install -e .

# The exact tier-1 gate CI runs: works from a clean checkout, no install.
verify:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/properties

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro experiments

# Wall-clock perf suite with cycle-exactness golden check (INTERNALS §11).
perf:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro perf

# Re-run the perf suite and print per-scenario wall/cycle deltas against
# the committed BENCH_PERF.json (read before the report is overwritten).
perf-compare:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro perf --compare BENCH_PERF.json

# zionlint: static trust-boundary/taint/charging analysis (INTERNALS §12).
# Fails on findings that are neither pragma-suppressed nor baselined.
lint:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro lint

# Diff-aware pre-commit lint: full-package analysis, findings reported
# only for files that differ from HEAD.
lint-changed:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro lint --changed

# Strict lint: the baseline earns no credit (pragmas still count), plus
# the ratchet check that the committed baseline has not grown.
lint-strict:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro lint --strict
	$(PYTHON) tools/check_baseline_ratchet.py

# Sharded redis over SM channels, one run with stats (docs/DATA_PLANE.md).
redis-cluster:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro redis-cluster

# Fleet orchestrator: multi-host CVM lifecycle + live migration under
# adversarial load, acceptance-sized campaign (docs/FLEET.md).
fleet:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro fleet --hosts 4 --cvms 12 --seeds 3

# Batched-vs-naive virtio data-plane ablation smoke (docs/DATA_PLANE.md):
# fails if MMIO-exit or doorbell reduction drops below 2x.
virtio-batch:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro virtio-batch

# Verify every relative link in README/docs resolves to a real file.
linkcheck:
	$(PYTHON) tools/check_links.py

# Seeded adversarial fault-injection campaign (see docs/INTERNALS.md §10).
faults:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro faults --seeds 25

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
