#!/usr/bin/env python3
"""The sharded confidential Redis cluster, end to end.

A router CVM fronts N shard CVMs that each own a contiguous slice of
the 16384-slot hash space; client CVMs drive pipelined GET/SET/MGET
traffic.  Every hop is an SM-brokered channel (no virtio, no host in
the data path) and every channel is **attestation-gated**: each side
names the launch measurement it will accept from its peer, so a
mis-measured imposter cannot join the mesh even with the hypervisor's
help.  docs/DATA_PLANE.md walks the per-request cycle accounting.

This example:

1. runs the cluster (2 shards, 2 clients, pipelined) and prints its
   serving stats;
2. replays the attestation gate in isolation: a shard pins the router's
   measurement at CHANNEL_CREATE, an imposter built from a different
   image is refused at CHANNEL_CONNECT, the genuine router is admitted.
"""

from repro import Machine, MachineConfig
from repro.bench.redis_cluster import run_cluster
from repro.ipc.endpoint import ChannelEndpoint, ChannelError

WINDOW_SIZE = 64 * 1024
WINDOW_OFFSET = 0x0200_0000


def run_traffic():
    print("=== mixed traffic through the cluster ===")
    stats = run_cluster(shards=2, clients=2, requests=24, pipeline=4)
    total = stats["requests"]
    print(f"{stats['shards']} shards, {stats['clients']} clients, "
          f"{total} requests, pipeline {stats['pipeline']}")
    print(f"serving {stats['serving_cycles']:,} cycles "
          f"(+{stats['setup_cycles']:,} bring-up: launch, attest, "
          f"connect, preload)")
    print(f"{stats['cycles_per_request']:,.0f} cycles/request   "
          f"p50 {stats['p50_latency_us']:.0f} us   "
          f"p99 {stats['p99_latency_us']:.0f} us")
    print(f"ops {stats['ops']}   mget splits across shards "
          f"{stats['mget_splits']}   doorbells {stats['doorbells']}")
    print(f"per-shard requests {stats['per_shard_requests']}   "
          f"errors {stats['errors']}")
    assert stats["errors"] == 0 and total == 48


def demo_attestation_gate():
    print("\n=== the attestation gate on every cluster channel ===")
    machine = Machine(MachineConfig())
    shard = machine.launch_confidential_vm(image=b"cluster-shard" * 64)
    router = machine.launch_confidential_vm(image=b"cluster-router" * 64)
    imposter = machine.launch_confidential_vm(image=b"imposter-router" * 64)
    print(f"shard expects router measurement "
          f"{router.cvm.measurement.hex()[:16]}...")
    print(f"imposter measures              "
          f"{imposter.cvm.measurement.hex()[:16]}...")

    box = {}

    def shard_workload(ctx):
        # The shard pins, at create time, the measurement its peer must
        # have -- exactly what shard_server does for the real cluster.
        endpoint = ChannelEndpoint.create(
            ctx,
            ctx.session.layout.dram_base + WINDOW_OFFSET,
            WINDOW_SIZE,
            router.cvm.measurement,
        )
        box["channel_id"] = endpoint.channel_id

    machine.run(shard, shard_workload)

    def imposter_workload(ctx):
        try:
            ChannelEndpoint.connect(
                ctx, box["channel_id"],
                ctx.session.layout.dram_base + WINDOW_OFFSET,
                shard.cvm.measurement,
            )
        except ChannelError as refusal:
            return str(refusal)
        raise AssertionError("imposter joined the cluster?!")

    refusal = machine.run(imposter, imposter_workload)["workload_result"]
    print(f"imposter CHANNEL_CONNECT -> refused ({refusal})")

    def router_workload(ctx):
        # The genuine router also names what it expects of the creator:
        # the gate is bidirectional.
        endpoint = ChannelEndpoint.connect(
            ctx, box["channel_id"],
            ctx.session.layout.dram_base + WINDOW_OFFSET,
            shard.cvm.measurement,
        )
        return endpoint.channel_id

    channel_id = machine.run(router, router_workload)["workload_result"]
    print(f"genuine router CHANNEL_CONNECT -> admitted (channel "
          f"{channel_id})")


def main():
    run_traffic()
    demo_attestation_gate()
    print("\nredis cluster example OK")


if __name__ == "__main__":
    main()
