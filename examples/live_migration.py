#!/usr/bin/env python3
"""Live migration of a confidential VM between two hosts.

VirTEE's headline feature over CURE is native live migration; this
reproduction adds the equivalent to ZION (DESIGN.md section 7): the
source SM seals the suspended CVM -- memory, registers, measurement --
under a migration key the two SMs share, the untrusted hosts ferry the
blob, and the destination SM verifies, decrypts and resumes it.

The demo runs a stateful guest (a counter service), migrates it
mid-stream, continues on the destination, and then shows that (a) the
blob leaked nothing to the transporting hypervisors and (b) tampering in
transit is detected.
"""

from repro import Machine, MachineConfig, SecurityViolation
from repro.sm.migration import derive_migration_key


def main():
    key = derive_migration_key(
        fleet_secret=b"datacenter-fleet-psk",
        src_nonce=b"host-A-nonce-0001",
        dst_nonce=b"host-B-nonce-0001",
    )

    # --- host A: run a stateful service --------------------------------
    host_a = Machine(MachineConfig())
    session = host_a.launch_confidential_vm(image=b"counter-service-v1" * 100)
    counter_gpa = session.layout.dram_base + (8 << 20)

    def count_to(n):
        def workload(ctx):
            value = ctx.load(counter_gpa)
            while value < n:
                value += 1
                ctx.compute(10_000)
            ctx.store(counter_gpa, value)
            return value

        return workload

    first = host_a.run(session, count_to(500))["workload_result"]
    print(f"host A: counter reached {first}")
    measurement = session.cvm.measurement

    # --- migrate ----------------------------------------------------------
    blob = host_a.export_confidential_vm(session, key)
    print(f"host A: exported {len(blob):,}-byte sealed blob; "
          f"source instance scrubbed and destroyed")
    assert b"counter-service" not in blob, "plaintext leaked!"

    host_b = Machine(MachineConfig())
    migrated = host_b.import_confidential_vm(blob, key)
    print(f"host B: imported CVM {migrated.cvm.cvm_id}; measurement "
          f"{'preserved' if migrated.cvm.measurement == measurement else 'CHANGED!'}")

    # --- continue where it left off --------------------------------------
    final = host_b.run(migrated, count_to(1000))["workload_result"]
    print(f"host B: counter resumed from {first} and reached {final}")
    assert final == 1000

    report = host_b.run(
        migrated, lambda ctx: ctx.attestation_report(b"post-migration")
    )["workload_result"]
    assert report.measurement == measurement
    print("host B: attestation still reports the original launch measurement")

    # --- a man-in-the-middle cannot tamper --------------------------------
    corrupted = bytearray(blob)
    corrupted[100] ^= 0xFF
    host_c = Machine(MachineConfig())
    try:
        host_c.import_confidential_vm(bytes(corrupted), key)
        print("tampered blob accepted -- BUG")
    except SecurityViolation:
        print("tampered blob rejected by the destination SM")

    print("live migration demo OK")


if __name__ == "__main__":
    main()
