#!/usr/bin/env python3
"""Multi-tenant scalability: many concurrent CVMs on one secure pool.

CURE and VirTEE bind each enclave to dedicated hardware resources and top
out at 13 concurrent VM enclaves.  ZION's PMP-plus-paging design shares
one PMP-carved pool among *all* CVMs -- stage-2 tables provide the
pairwise isolation -- so the CVM count is bounded by memory, not by PMP
entries.  This example launches 32 CVMs, runs each, verifies pairwise
frame disjointness, and shows the PMP entry budget stayed flat.
"""

from repro import Machine, MachineConfig
from repro.mem.pagetable import Sv39x4

TENANTS = 32


def main():
    machine = Machine(MachineConfig(initial_pool_bytes=64 << 20))
    print(f"PMP entries in use at boot: {machine.pmp_controller.pmp_entries_used}/16")

    sessions = []
    for tenant in range(TENANTS):
        image = f"tenant-{tenant:02d}-workload".encode() * 64
        session = machine.launch_confidential_vm(image=image, shared_window=1 << 20)
        sessions.append(session)
    print(f"launched {len(sessions)} concurrent CVMs "
          f"(CURE/VirTEE top out at 13)")

    # Run a slice of work in each tenant; memory written by one must never
    # be resolvable by another.
    for tenant, session in enumerate(sessions):
        def workload(ctx, t=tenant, s=session):
            base = s.layout.dram_base + (8 << 20)
            ctx.write_bytes(base, f"tenant {t} secret".encode())
            ctx.compute(100_000)
            return ctx.read_bytes(base, 16)

        result = machine.run(session, workload)
        assert result["workload_result"].startswith(f"tenant {tenant}".encode())

    # Pairwise stage-2 disjointness, checked against the *real* tables.
    class Raw:
        def read_u64(self, addr):
            return machine.dram.read_u64(addr)

    frames = {}
    walker = Sv39x4()
    for session in sessions:
        cvm = session.cvm
        frames[cvm.cvm_id] = {
            pa
            for _va, pa, _flags, _level in walker.iter_leaves(Raw(), cvm.hgatp_root)
            if machine.monitor.pool.contains(pa, 1)  # private frames only
        }
    ids = sorted(frames)
    overlaps = 0
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            overlaps += len(frames[a] & frames[b])
    print(f"pairwise private-frame overlaps across {len(ids)} CVMs: {overlaps}")
    assert overlaps == 0

    print(f"PMP entries in use with {TENANTS} CVMs: "
          f"{machine.pmp_controller.pmp_entries_used}/16 "
          f"(pool regions: {len(machine.monitor.pool.regions)})")
    print(f"pool expansions performed by the host on demand: "
          f"{machine.hypervisor.pool_expansions}")

    # Tear one tenant down; its frames are scrubbed and recycled.
    victim = sessions[0].cvm
    victim_frames = sorted(frames[victim.cvm_id])
    machine.monitor.ecall_destroy(victim.cvm_id)
    scrubbed = all(
        machine.dram.read(pa, 64) == bytes(64) for pa in victim_frames[:8]
    )
    print(f"tenant 0 destroyed; sampled frames scrubbed: {scrubbed}")
    assert scrubbed

    print("multi-tenant demo OK")


if __name__ == "__main__":
    main()
