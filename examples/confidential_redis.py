#!/usr/bin/env python3
"""A confidential in-memory database: Redis inside a ZION CVM.

The paper's motivating scenario: a tenant runs a memory-resident database
holding sensitive data on an untrusted cloud host.  This example runs the
same Redis workload (real RESP protocol over virtio-net, SWIOTLB bounce
buffers) in a normal VM and in a confidential VM, prints the throughput /
latency cost of confidentiality, and then shows what the "cloud provider"
can and cannot see in each case.
"""

from repro import Machine, MachineConfig, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.workloads.redis import redis_benchmark


def run_one(kind: str, op: str, requests: int):
    machine = Machine(MachineConfig())
    if kind == "confidential":
        session = machine.launch_confidential_vm(image=b"redis-server-6.2" * 64)
    else:
        session = machine.launch_normal_vm("redis-vm")
    machine.attach_virtio_net(session)
    stats = redis_benchmark(machine, session, op, requests)
    return machine, session, stats


def main():
    requests = 400
    print(f"{'op':<8} {'normal rps':>11} {'CVM rps':>9} {'drop':>7} "
          f"{'normal lat':>11} {'CVM lat':>9}")
    for op in ("SET", "GET", "INCR", "LRANGE_100"):
        _, _, normal = run_one("normal", op, requests)
        machine, session, cvm = run_one("confidential", op, requests)
        drop = 100 * (1 - cvm["throughput_rps"] / normal["throughput_rps"])
        print(f"{op:<8} {normal['throughput_rps']:>11.0f} "
              f"{cvm['throughput_rps']:>9.0f} {drop:>6.2f}% "
              f"{normal['avg_latency_us']:>9.0f}us {cvm['avg_latency_us']:>7.0f}us")

    # --- what the provider sees -------------------------------------------
    print("\nprovider's view of the confidential database:")
    machine, session, _ = run_one("confidential", "SET", 50)
    machine.hart.mode = PrivilegeMode.HS

    # 1. The database contents live in PMP-protected pool pages.
    pool_base, pool_size = machine.monitor.pool.regions[0]
    blocked = 0
    for offset in range(0, pool_size, pool_size // 16):
        try:
            machine.bus.cpu_read(machine.hart, pool_base + offset, 64)
        except TrapRaised:
            blocked += 1
    print(f"  direct reads of secure memory: {blocked}/16 blocked by PMP")

    # 2. DMA cannot be used as a side door.
    try:
        machine.bus.dma_read(source_id=2, addr=pool_base, size=64)
        print("  DMA read of secure memory: ALLOWED (bug!)")
    except TrapRaised:
        print("  DMA read of secure memory: blocked by IOPMP")

    # 3. What legitimately crosses: the shared window (bounce buffers).
    #    It holds protocol bytes in flight -- which is why real deployments
    #    add TLS; ZION's job is memory isolation, not wire encryption.
    window = session.handle.shared_window_base
    sample = machine.bus.cpu_read(machine.hart, window, 32)
    print(f"  shared window (virtio bounce area) is visible, e.g. {sample[:16]!r}")

    print("\nconfidential database demo OK")


if __name__ == "__main__":
    main()
