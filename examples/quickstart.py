#!/usr/bin/env python3
"""Quickstart: boot a confidential VM, run code in it, attest it.

Demonstrates the core public API end to end:

1. build the simulated platform (4x RV64 harts @ 100 MHz, 1 GB, PMP/IOPMP,
   the ZION Secure Monitor in M mode, a KVM-like host);
2. launch a confidential VM from a measured guest image;
3. run a guest workload -- every memory access goes through real two-stage
   page tables, every fault through the SM's hierarchical allocator;
4. fetch and verify a signed attestation report from inside the guest;
5. show where the cycles went, and that the untrusted hypervisor cannot
   read the guest's memory.
"""

from repro import Machine, MachineConfig, TrapRaised
from repro.isa.privilege import PrivilegeMode


def main():
    machine = Machine(MachineConfig())
    print(f"platform: {machine.config.hart_count} harts @ "
          f"{machine.config.clock_hz / 1e6:.0f} MHz, "
          f"{machine.config.dram_size >> 20} MB DRAM")

    # --- launch -----------------------------------------------------------
    guest_image = b"ZION-DEMO-GUEST-KERNEL" * 200
    session = machine.launch_confidential_vm(image=guest_image)
    cvm = session.cvm
    print(f"launched CVM {cvm.cvm_id}: measurement "
          f"{cvm.measurement.hex()[:32]}...")

    # --- run guest code ------------------------------------------------------
    def workload(ctx):
        base = session.layout.dram_base + (16 << 20)
        # Touch fresh memory: stage-2 faults, resolved by the SM alone.
        ctx.write_bytes(base, b"attack at dawn")
        ctx.compute(2_000_000)  # 20 ms of guest work (two scheduler ticks)
        secret = ctx.read_bytes(base, 14)
        # Guest-side SM services.
        report = ctx.attestation_report(report_data=b"quickstart-nonce")
        entropy = ctx.get_random(16)
        return secret, report, entropy

    result = machine.run(session, workload)
    secret, report, entropy = result["workload_result"]
    print(f"guest computed over its secret: {secret.decode()!r}")
    print(f"platform entropy for the guest: {entropy.hex()}")

    # --- verify the attestation report (relying-party side) ---------------
    assert machine.monitor.attestation.verify_report(report)
    assert report.measurement == cvm.measurement
    print("attestation report verified against the platform key")

    # --- cycle accounting ----------------------------------------------------
    print(f"\nrun took {result['cycles']:,} cycles "
          f"({result['cycles'] / machine.config.clock_hz * 1e3:.2f} ms at 100 MHz)")
    for category, cycles in sorted(result["breakdown"].items(), key=lambda kv: -kv[1]):
        print(f"  {category.value:<14} {cycles:>12,}")

    # --- the hypervisor cannot read any of it ------------------------------
    machine.hart.mode = PrivilegeMode.HS  # the host is running now
    pool_base = machine.monitor.pool.regions[0][0]
    try:
        machine.bus.cpu_read(machine.hart, pool_base, 16)
        raise AssertionError("hypervisor read secure memory?!")
    except TrapRaised as trap:
        print(f"\nhypervisor read of secure memory -> {trap.cause.name} (PMP)")

    print(f"fault stages used: "
          f"{ {s.name: n for s, n in machine.monitor.fault_stage_counts.items()} }")
    print("quickstart OK")


if __name__ == "__main__":
    main()
