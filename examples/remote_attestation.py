#!/usr/bin/env python3
"""Remote attestation end to end: provisioning secrets to a measured CVM.

The full tenant workflow on an untrusted cloud:

1. the tenant knows the launch measurement of the image they built;
2. the cloud launches CVMs -- one honest, one the provider swapped;
3. the tenant's verifier challenges both and provisions a secret only to
   the one whose evidence checks out (signature, measurement policy,
   challenge freshness);
4. the secret crosses the host sealed under the attested session key, so
   even though the hypervisor carries the bytes, it learns nothing.
"""

from repro import Machine, MachineConfig
from repro.attest_protocol import (
    AttestationError,
    GuestAttestationAgent,
    Verifier,
    agree_session_key,
    open_message,
    seal_message,
)

TRUSTED_IMAGE = b"inference-server-v2.0" * 120
ROGUE_IMAGE = b"provider-backdoored-build" * 96


def attest_and_provision(machine, session, verifier, secret):
    """The tenant side: challenge, verify, seal the secret to the guest."""
    challenge = verifier.challenge()

    def guest_respond(ctx):
        agent = GuestAttestationAgent(ctx)
        return agent, agent.respond(challenge)

    agent, evidence = machine.run(session, guest_respond)["workload_result"]
    verifier_share = verifier.verify(challenge, evidence)  # may raise
    key = agree_session_key(agent, verifier_share)
    sealed = seal_message(key, secret)

    # The sealed blob travels through the untrusted host to the guest.
    def guest_receive(ctx):
        return open_message(key, sealed)

    received = machine.run(session, guest_receive)["workload_result"]
    return sealed, received


def main():
    # The tenant computes the expected measurement by launching the image
    # in their own trusted environment (or from the build system).
    reference = Machine(MachineConfig())
    expected = reference.launch_confidential_vm(image=TRUSTED_IMAGE).cvm.measurement
    print(f"tenant policy: trust measurement {expected.hex()[:24]}...")

    cloud = Machine(MachineConfig())
    honest = cloud.launch_confidential_vm(image=TRUSTED_IMAGE)
    rogue = cloud.launch_confidential_vm(image=ROGUE_IMAGE)
    verifier = Verifier(
        platform_verifier=cloud.monitor.attestation,
        trusted_measurements=[expected],
    )

    secret = b"model-weights-decryption-key-0xA1B2C3"
    sealed, received = attest_and_provision(cloud, honest, verifier, secret)
    print(f"honest CVM: attested, received secret ({received[:21].decode()}...)")
    assert received == secret
    assert secret not in sealed
    print(f"  in transit the host saw only ciphertext ({sealed[:12].hex()}...)")

    try:
        attest_and_provision(cloud, rogue, verifier, secret)
        print("rogue CVM: provisioned -- POLICY FAILURE")
    except AttestationError as rejection:
        print(f"rogue CVM: rejected ({rejection})")

    print("remote attestation demo OK")


if __name__ == "__main__":
    main()
