#!/usr/bin/env python3
"""Inter-CVM pipeline: a producer CVM streams records to a consumer CVM
over an SM-brokered channel the hypervisor can never read.

Demonstrates the channel extension end to end:

1. two CVMs launch from measured images; each knows (out of band) the
   launch measurement it expects of its peer;
2. the producer CREATEs a channel -- the SM carves a window out of the
   secure pool and maps it into the producer's private stage-2 half;
3. the consumer CONNECTs -- admitted only because its measurement matches
   what the producer declared (and vice versa);
4. records stream through a shared-memory ring: no bounce copies, no MMIO
   exits; each batch is announced by a doorbell (SM notify ECALL -> CLINT
   IPI -> scheduler wake -> VSEI in the peer);
5. the hypervisor's attempts to read the window PMP-fault, a third CVM is
   refused, and CLOSE scrubs the window before the pool reuses it.
"""

from repro import Machine, MachineConfig, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.machine import WAIT_DOORBELL
from repro.ipc.endpoint import ChannelEndpoint, ChannelError
from repro.sm.abi import EXT_ZION_GUEST, GuestFunction, SbiError

RECORDS = [f"record-{i:04d}:{'x' * 48}".encode() for i in range(32)]
WINDOW_SIZE = 64 * 1024
WINDOW_OFFSET = 0x0200_0000


def main():
    machine = Machine(MachineConfig())
    producer = machine.launch_confidential_vm(image=b"pipeline-producer" * 64)
    consumer = machine.launch_confidential_vm(image=b"pipeline-consumer" * 64)
    print(f"producer CVM {producer.cvm.cvm_id}: "
          f"{producer.cvm.measurement.hex()[:16]}...")
    print(f"consumer CVM {consumer.cvm.cvm_id}: "
          f"{consumer.cvm.measurement.hex()[:16]}...")

    # Each side pins the measurement it will accept from the other.
    box = {}

    def producer_workload(ctx):
        window = ctx.session.layout.dram_base + WINDOW_OFFSET
        endpoint = ChannelEndpoint.create(
            ctx, window, WINDOW_SIZE, consumer.cvm.measurement
        )
        box["channel_id"] = endpoint.channel_id
        yield  # let the consumer connect
        for record in RECORDS:
            while not endpoint.send(record):
                yield WAIT_DOORBELL  # out of credits: wait for the consumer
        endpoint.send(b"EOF")
        return {"sent": len(RECORDS), "doorbells": endpoint.doorbells_rung}

    def consumer_workload(ctx):
        while "channel_id" not in box:
            yield
        window = ctx.session.layout.dram_base + WINDOW_OFFSET
        endpoint = ChannelEndpoint.connect(
            ctx, box["channel_id"], window, producer.cvm.measurement
        )
        received = []
        while True:
            message = endpoint.recv()
            if message is None:
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL
                continue
            if message == b"EOF":
                break
            received.append(message)
        return {"received": len(received), "intact": received == RECORDS}

    results = machine.run_concurrent([
        (producer, producer_workload),
        (consumer, consumer_workload),
    ])
    sent = results[producer]["sent"]
    got = results[consumer]
    print(f"\npipeline moved {sent} records, intact={got['intact']}, "
          f"{results['cycles']:,} cycles "
          f"({results[producer]['doorbells']} doorbells rung)")
    assert got["intact"] and got["received"] == sent

    # --- the window is live, yet never the hypervisor's to read -----------
    channel = next(iter(machine.monitor.channels.channels.values()))
    machine.hart.mode = PrivilegeMode.HS
    try:
        machine.bus.cpu_read(machine.hart, channel.window_pa, 16)
        raise AssertionError("hypervisor read the channel window?!")
    except TrapRaised as trap:
        print(f"hypervisor read of the window -> {trap.cause.name} (PMP)")

    # --- a third CVM cannot join the live channel -------------------------
    intruder = machine.launch_confidential_vm(image=b"intruder" * 64)

    def intruder_workload(ctx):
        try:
            ChannelEndpoint.connect(
                ctx, channel.channel_id,
                ctx.session.layout.dram_base + WINDOW_OFFSET,
                producer.cvm.measurement,
            )
        except ChannelError as refusal:
            return str(refusal)
        raise AssertionError("third CVM connected to a private channel?!")

    print(f"third CVM connect -> {machine.run(intruder, intruder_workload)['workload_result']}")

    # --- teardown scrubs the plaintext ------------------------------------
    def close_workload(ctx):
        error, _ = ctx.sbi_ecall(
            EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CLOSE), channel.channel_id
        )
        assert error == SbiError.SUCCESS
        return error

    machine.run(producer, close_workload)
    window_bytes = machine.dram.read(channel.window_pa, channel.window_size)
    assert RECORDS[0] not in window_bytes and window_bytes == bytes(WINDOW_SIZE)
    print("window scrubbed on close: no plaintext survives in the pool")
    print("inter-CVM pipeline OK")


if __name__ == "__main__":
    main()
