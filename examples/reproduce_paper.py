#!/usr/bin/env python3
"""Regenerate every number of the paper's evaluation section in one run.

Runs experiments E1-E7 (DESIGN.md's per-experiment index) at their
documented scaled loads and prints measured-vs-paper for each table and
figure.  Pass ``--full`` for the paper-scale loads (slower).
"""

import sys

from repro.bench import paper_data
from repro.bench.macro import (
    run_coremark_experiment,
    run_iozone_experiment,
    run_redis_experiment,
    run_rv8_experiment,
)
from repro.bench.microbench import (
    run_page_fault_experiment,
    run_switch_path_experiment,
    run_vcpu_switch_experiment,
)
from repro.bench.tables import human_bytes


def section(title):
    print(f"\n===== {title} " + "=" * max(0, 60 - len(title)))


def main():
    full = "--full" in sys.argv

    section("E1: shared-vCPU switch optimization (section V-B.1)")
    r = run_vcpu_switch_experiment(iterations=200 if full else 50)
    p = paper_data.VCPU_SWITCH
    for direction in ("entry", "exit"):
        print(f"  CVM {direction}: {r[f'{direction}_without_shared']:.0f} -> "
              f"{r[f'{direction}_with_shared']:.0f} cycles "
              f"({r[f'{direction}_improvement_pct']:.1f}% better; paper "
              f"{p[f'{direction}_without_shared']} -> {p[f'{direction}_with_shared']}"
              f", {p[f'{direction}_improvement_pct']}%)")

    section("E2: short-path vs long-path CVM mode (section V-B.2)")
    r = run_switch_path_experiment(iterations=200 if full else 50)
    p = paper_data.SWITCH_PATH
    for direction in ("entry", "exit"):
        print(f"  CVM {direction}: long {r[f'{direction}_long_path']:.0f}, short "
              f"{r[f'{direction}_short_path']:.0f} cycles "
              f"({r[f'{direction}_improvement_pct']:.1f}% better; paper "
              f"{p[f'{direction}_long_path']} vs {p[f'{direction}_short_path']}"
              f", {p[f'{direction}_improvement_pct']}%)")

    section("E3: stage-2 page-fault handling (section V-C)")
    r = run_page_fault_experiment(pages=2048 if full else 512)
    p = paper_data.PAGE_FAULT
    for label, key in [("normal VM (KVM)", "normal_vm"), ("CVM stage 1", "cvm_stage1"),
                       ("CVM stage 2", "cvm_stage2"), ("CVM stage 3", "cvm_stage3"),
                       ("CVM average", "cvm_average")]:
        print(f"  {label:<16} {r[key]:>9,.0f} cycles (paper {p[key]:>7,})")

    section("E4: RV8 benchmarks (Table I)")
    r = run_rv8_experiment(scale=0.1 if full else 0.01)
    for name, row in r["benchmarks"].items():
        print(f"  {name:<10} {row['normal_1e9_extrapolated']:>8.3f} -> "
              f"{row['cvm_1e9_extrapolated']:>8.3f} x1e9 cycles  "
              f"({row['overhead_pct']:+.2f}%; paper {row['paper_overhead_pct']:+.2f}%)")
    print(f"  {'Average':<10} {'':>23} ({r['average_overhead_pct']:+.2f}%; "
          f"paper {paper_data.RV8_AVERAGE_OVERHEAD_PCT:+.2f}%)")

    section("E5: CoreMark (section V-D)")
    r = run_coremark_experiment(iterations=10_000 if full else 1_500)
    p = paper_data.COREMARK
    print(f"  normal {r['normal_score']:.1f} (paper {p['normal_score']}), "
          f"CVM {r['cvm_score']:.1f} (paper {p['cvm_score']}), "
          f"drop {r['overhead_pct']:.2f}% (paper {p['overhead_pct']}%)")

    section("E6: Redis benchmark (Fig. 3)")
    r = run_redis_experiment(requests=2_000 if full else 300)
    for op, row in r["ops"].items():
        print(f"  {op:<11} {row['normal_throughput_rps']:>6.0f} -> "
              f"{row['cvm_throughput_rps']:>6.0f} rps ({row['throughput_drop_pct']:+.2f}%)"
              f"   latency {row['latency_increase_pct']:+.2f}%")
    print(f"  average: throughput {r['avg_throughput_drop_pct']:+.2f}% "
          f"(paper -5.3%), latency {r['avg_latency_increase_pct']:+.2f}% (paper +4%)")

    section("E7: IOZone (Fig. 4)")
    r = run_iozone_experiment(size_scale=1 if full else 4)
    for cell in r["cells"]:
        print(f"  {human_bytes(cell['file_bytes']):>6}/{human_bytes(cell['record_bytes']):<6}"
              f" write {cell['write_normal_kb_s']:>7,.0f} KB/s "
              f"({cell['write_overhead_pct']:+6.2f}%)   "
              f"read {cell['read_normal_kb_s']:>7,.0f} KB/s "
              f"({cell['read_overhead_pct']:+6.2f}%)")

    print("\nall seven experiments regenerated")


if __name__ == "__main__":
    main()
