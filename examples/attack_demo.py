#!/usr/bin/env python3
"""Red-team demo: a fully compromised hypervisor attacks a CVM.

ZION's threat model lets the hypervisor be arbitrarily malicious.  This
example plays that adversary through the same interfaces real host
software has -- PMP-checked memory, the shared vCPU page, the shared
page-table subtree, DMA-capable devices -- and shows each attack failing
against the SM's defences, while the legitimate paths keep working.
"""

from repro import Machine, MachineConfig, SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.mem.pagetable import Sv39x4


def attack(name):
    def decorator(fn):
        fn.attack_name = name
        return fn

    return decorator


@attack("read CVM memory directly")
def attack_direct_read(machine, session):
    class Raw:
        def read_u64(self, addr):
            return machine.dram.read_u64(addr)

    pa = Sv39x4().walk(Raw(), session.cvm.hgatp_root, session.layout.dram_base).pa
    machine.bus.cpu_read(machine.hart, pa, 64)


@attack("rewrite the CVM's stage-2 root")
def attack_page_table(machine, session):
    machine.bus.cpu_write_u64(machine.hart, session.cvm.hgatp_root, 0)


@attack("DMA into the secure pool")
def attack_dma(machine, session):
    pool_base = machine.monitor.pool.regions[0][0]
    machine.bus.dma_write(source_id=9, addr=pool_base, data=b"\xff" * 64)


@attack("hijack an MMIO reply into the stack pointer (TOCTOU)")
def attack_toctou(machine, session):
    cvm, vcpu = session.cvm, session.cvm.vcpu(0)
    ws = machine.monitor.world_switch
    ws.enter_cvm(machine.hart, cvm, vcpu)
    ws.exit_to_normal(
        machine.hart, cvm, vcpu,
        {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
         "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
    )
    shared = cvm.shared_vcpus[0]
    shared.hyp_write(machine.hart, "gpr_index", 2)  # sp, not a0
    shared.hyp_write(machine.hart, "gpr_value", 0x41414141)
    shared.hyp_write(machine.hart, "sepc_advance", 4)
    ws.enter_cvm(machine.hart, cvm, vcpu)


@attack("inject a machine-level interrupt into the guest")
def attack_irq_injection(machine, session):
    cvm, vcpu = session.cvm, session.cvm.vcpu(0)
    ws = machine.monitor.world_switch
    ws.enter_cvm(machine.hart, cvm, vcpu)
    ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "wfi", "cause": 0})
    cvm.shared_vcpus[0].hyp_write(machine.hart, "pending_irq", 1 << 7)  # MTI
    ws.enter_cvm(machine.hart, cvm, vcpu)


@attack("alias a shared GPA onto another CVM's secure memory")
def attack_shared_alias(machine, session):
    handle = session.handle
    subtree = next(iter(handle.shared_subtrees.values()))
    pool_page = machine.monitor.pool.regions[0][0]
    level1 = (machine.bus.cpu_read_u64(machine.hart, subtree) >> 10) << 12
    machine.bus.cpu_write_u64(
        machine.hart, level1, (pool_page >> 12) << 10 | 0b10111 | 0x80
    )
    machine.translator.tlb.flush_all()
    machine.run(session, lambda ctx: ctx.load(session.layout.shared_base))


@attack("link a secure-pool page as a shared subtree")
def attack_subtree_link(machine, session):
    pool_page = machine.monitor.pool.regions[0][0]
    machine.monitor.ecall_link_shared_subtree(session.cvm.cvm_id, 300, pool_page)


def main():
    attacks = [
        attack_direct_read,
        attack_page_table,
        attack_dma,
        attack_toctou,
        attack_irq_injection,
        attack_shared_alias,
        attack_subtree_link,
    ]
    results = []
    for fn in attacks:
        # Fresh victim per attack so failed attempts can't interact.
        machine = Machine(MachineConfig())
        session = machine.launch_confidential_vm(image=b"victim-guest" * 300)
        machine.hart.mode = PrivilegeMode.HS  # the hypervisor is running
        try:
            fn(machine, session)
        except TrapRaised as trap:
            results.append((fn.attack_name, f"BLOCKED by hardware ({trap.cause.name})"))
        except SecurityViolation as violation:
            reason = str(violation).split(":")[0]
            results.append((fn.attack_name, f"BLOCKED by the SM ({reason})"))
        else:
            results.append((fn.attack_name, "SUCCEEDED -- security bug!"))

    width = max(len(name) for name, _ in results)
    for name, outcome in results:
        print(f"  {name:<{width}}  ->  {outcome}")
    assert all("BLOCKED" in outcome for _, outcome in results)

    # And the legitimate path still works after all that hostility:
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"victim-guest" * 300)
    machine.attach_virtio_block(session)

    def workload(ctx):
        blk = ctx.blk_driver()
        blk.write(0, b"legitimate I/O".ljust(512, b"\x00"))
        return blk.read(0, 512)[:14]

    assert machine.run(session, workload)["workload_result"] == b"legitimate I/O"
    print("\nall attacks blocked; legitimate virtio I/O unaffected")


if __name__ == "__main__":
    main()
