"""Redis benchmark over virtio-net (paper Fig. 3).

A functional mini-Redis runs *inside the guest*: real RESP protocol
parsing, a real keyspace (strings, lists, sets, hashes), with per-command
compute costs calibrated to the paper's 100 MHz platform.  The
redis-benchmark client runs host-side: it injects request frames through
the virtio-net device whenever the idle server WFIs, and timestamps each
reply at the device's TX handler -- so throughput and latency are emergent
machine-cycle measurements that include every world switch, bounce copy,
and interrupt the I/O path really takes.
"""

from __future__ import annotations

import dataclasses

from repro.cycles import Category
from repro.mem.physmem import PAGE_SIZE


# ---------------------------------------------------------------------------
# RESP protocol (real bytes on the wire)
# ---------------------------------------------------------------------------

def resp_encode_command(parts) -> bytes:
    """Encode a command as a RESP array of bulk strings."""
    out = [b"*%d\r\n" % len(parts)]
    for part in parts:
        if isinstance(part, str):
            part = part.encode()
        out.append(b"$%d\r\n%s\r\n" % (len(part), part))
    return b"".join(out)


def resp_decode_command(data: bytes):
    """Decode a RESP array of bulk strings into a list of bytes."""
    if not data.startswith(b"*"):
        raise ValueError("not a RESP array")
    lines = data.split(b"\r\n")
    count = int(lines[0][1:])
    parts = []
    index = 1
    for _ in range(count):
        if not lines[index].startswith(b"$"):
            raise ValueError("expected bulk string")
        parts.append(lines[index + 1])
        index += 2
    return parts


def resp_simple(text: str) -> bytes:
    """RESP simple-string reply (+OK style)."""
    return b"+%s\r\n" % text.encode()


def resp_error(text: str) -> bytes:
    """RESP error reply (-ERR style)."""
    return b"-ERR %s\r\n" % text.encode()


def resp_integer(value: int) -> bytes:
    """RESP integer reply."""
    return b":%d\r\n" % value


def resp_bulk(value) -> bytes:
    """RESP bulk string (None encodes the nil reply)."""
    if value is None:
        return b"$-1\r\n"
    if isinstance(value, str):
        value = value.encode()
    return b"$%d\r\n%s\r\n" % (len(value), value)


def resp_array(values) -> bytes:
    """RESP array of bulk strings."""
    return b"*%d\r\n" % len(values) + b"".join(resp_bulk(v) for v in values)


def resp_decode_reply(data: bytes, offset: int = 0):
    """Decode one RESP reply starting at ``offset``.

    Returns ``(value, next_offset)`` where ``value`` is ``str`` for a
    simple string, :class:`ValueError`-free ``bytes``/``None`` for bulk
    strings, ``int`` for integers, a ``list`` for arrays, and a
    ``ResponseError`` instance for ``-ERR`` replies (returned, not
    raised, so pipelined clients can pair errors with their requests).
    """
    end = data.index(b"\r\n", offset)
    marker, line = data[offset:offset + 1], data[offset + 1:end]
    offset = end + 2
    if marker == b"+":
        return line.decode(), offset
    if marker == b"-":
        return ResponseError(line.decode()), offset
    if marker == b":":
        return int(line), offset
    if marker == b"$":
        length = int(line)
        if length == -1:
            return None, offset
        value = data[offset:offset + length]
        if len(value) != length:
            raise ValueError("truncated bulk string")
        return value, offset + length + 2
    if marker == b"*":
        values = []
        for _ in range(int(line)):
            value, offset = resp_decode_reply(data, offset)
            values.append(value)
        return values, offset
    raise ValueError(f"unknown RESP reply marker {marker!r}")


class ResponseError:
    """A decoded ``-ERR`` reply (value object, comparable by message)."""

    def __init__(self, message: str):
        self.message = message

    def __eq__(self, other):
        return isinstance(other, ResponseError) and other.message == self.message

    def __repr__(self):
        return f"ResponseError({self.message!r})"


# ---------------------------------------------------------------------------
# The in-guest server
# ---------------------------------------------------------------------------

#: Guest-side cycle costs per command (command execution only; RESP parse,
#: reply build and the network stack are charged separately).
COMMAND_CYCLES = {
    "PING": 1_200,
    "SET": 5_200,
    "GET": 4_600,
    "INCR": 5_000,
    "LPUSH": 5_600,
    "RPUSH": 5_600,
    "LPOP": 5_400,
    "RPOP": 5_400,
    "SADD": 5_800,
    "SPOP": 5_600,
    "HSET": 6_200,
    "LRANGE": 52_000,
    "MSET": 26_000,
    "MGET": 7_800,
    "DEL": 4_800,
    "EXISTS": 4_200,
    "APPEND": 5_600,
    "GETSET": 5_400,
    "EXPIRE": 5_000,
    "TTL": 4_400,
    "LLEN": 4_200,
    "SCARD": 4_200,
    "HGET": 5_000,
    "HGETALL": 18_000,
}

#: Fixed guest costs along the request path.
PARSE_DISPATCH_CYCLES = 9_000
NET_STACK_RX_CYCLES = 100_000
NET_STACK_TX_CYCLES = 86_000
#: Marginal stack cost for additional messages in the same TCP segment
#: (pipelined batches amortise the fixed per-segment processing).
NET_STACK_EXTRA_MSG_CYCLES = 7_000

#: Server-resident pages touched per request (dict/list internals).
SERVER_WS_PAGES = 64
SERVER_TOUCH_PER_REQUEST = 10


class RedisServer:
    """A functional subset of Redis, running as a guest workload.

    ``clock`` supplies the server's notion of seconds (the machine's
    cycle ledger divided by the clock rate) so EXPIRE/TTL are driven by
    simulated time, not host wall-clock.
    """

    def __init__(self, clock=None):
        self.strings: dict[bytes, bytes] = {}
        self.lists: dict[bytes, list] = {}
        self.sets: dict[bytes, set] = {}
        self.hashes: dict[bytes, dict] = {}
        self.expiries: dict[bytes, float] = {}
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.commands_served = 0

    def _expire_if_due(self, key: bytes) -> None:
        deadline = self.expiries.get(key)
        if deadline is not None and self.clock() >= deadline:
            for store in (self.strings, self.lists, self.sets, self.hashes):
                store.pop(key, None)
            del self.expiries[key]

    # -- command execution --------------------------------------------------

    def execute(self, parts) -> bytes:
        """Run one decoded command; returns the RESP reply."""
        if not parts:
            return resp_error("empty command")
        name = parts[0].decode().upper()
        handler = getattr(self, f"_cmd_{name.lower()}", None)
        if handler is None:
            return resp_error(f"unknown command '{name}'")
        self.commands_served += 1
        return handler(parts[1:])

    def _cmd_ping(self, args):
        return resp_simple("PONG")

    def _cmd_set(self, args):
        self.strings[bytes(args[0])] = bytes(args[1])
        return resp_simple("OK")

    def _cmd_get(self, args):
        key = bytes(args[0])
        self._expire_if_due(key)
        return resp_bulk(self.strings.get(key))

    def _cmd_del(self, args):
        removed = 0
        for arg in args:
            key = bytes(arg)
            for store in (self.strings, self.lists, self.sets, self.hashes):
                if key in store:
                    del store[key]
                    removed += 1
                    break
            self.expiries.pop(key, None)
        return resp_integer(removed)

    def _cmd_exists(self, args):
        key = bytes(args[0])
        self._expire_if_due(key)
        present = any(
            key in store
            for store in (self.strings, self.lists, self.sets, self.hashes)
        )
        return resp_integer(int(present))

    def _cmd_append(self, args):
        key = bytes(args[0])
        self.strings[key] = self.strings.get(key, b"") + bytes(args[1])
        return resp_integer(len(self.strings[key]))

    def _cmd_getset(self, args):
        key = bytes(args[0])
        old_value = self.strings.get(key)
        self.strings[key] = bytes(args[1])
        return resp_bulk(old_value)

    def _cmd_expire(self, args):
        key = bytes(args[0])
        present = any(
            key in store
            for store in (self.strings, self.lists, self.sets, self.hashes)
        )
        if not present:
            return resp_integer(0)
        self.expiries[key] = self.clock() + int(args[1])
        return resp_integer(1)

    def _cmd_ttl(self, args):
        key = bytes(args[0])
        self._expire_if_due(key)
        if key not in self.expiries:
            present = any(
                key in store
                for store in (self.strings, self.lists, self.sets, self.hashes)
            )
            return resp_integer(-1 if present else -2)
        return resp_integer(int(self.expiries[key] - self.clock()))

    def _cmd_llen(self, args):
        return resp_integer(len(self.lists.get(bytes(args[0]), [])))

    def _cmd_scard(self, args):
        return resp_integer(len(self.sets.get(bytes(args[0]), set())))

    def _cmd_hget(self, args):
        return resp_bulk(self.hashes.get(bytes(args[0]), {}).get(bytes(args[1])))

    def _cmd_hgetall(self, args):
        target = self.hashes.get(bytes(args[0]), {})
        flat = []
        for field, value in target.items():
            flat.append(field)
            flat.append(value)
        return resp_array(flat)

    def _cmd_incr(self, args):
        key = bytes(args[0])
        value = int(self.strings.get(key, b"0")) + 1
        self.strings[key] = str(value).encode()
        return resp_integer(value)

    def _cmd_lpush(self, args):
        lst = self.lists.setdefault(bytes(args[0]), [])
        for item in args[1:]:
            lst.insert(0, bytes(item))
        return resp_integer(len(lst))

    def _cmd_rpush(self, args):
        lst = self.lists.setdefault(bytes(args[0]), [])
        lst.extend(bytes(i) for i in args[1:])
        return resp_integer(len(lst))

    def _cmd_lpop(self, args):
        lst = self.lists.get(bytes(args[0]), [])
        return resp_bulk(lst.pop(0) if lst else None)

    def _cmd_rpop(self, args):
        lst = self.lists.get(bytes(args[0]), [])
        return resp_bulk(lst.pop() if lst else None)

    def _cmd_sadd(self, args):
        target = self.sets.setdefault(bytes(args[0]), set())
        added = 0
        for item in args[1:]:
            if bytes(item) not in target:
                target.add(bytes(item))
                added += 1
        return resp_integer(added)

    def _cmd_spop(self, args):
        target = self.sets.get(bytes(args[0]), set())
        if not target:
            return resp_bulk(None)
        return resp_bulk(target.pop())

    def _cmd_hset(self, args):
        target = self.hashes.setdefault(bytes(args[0]), {})
        created = int(bytes(args[1]) not in target)
        target[bytes(args[1])] = bytes(args[2])
        return resp_integer(created)

    def _cmd_lrange(self, args):
        lst = self.lists.get(bytes(args[0]), [])
        start, stop = int(args[1]), int(args[2])
        stop = len(lst) - 1 if stop == -1 else stop
        return resp_array(lst[start : stop + 1])

    def _cmd_mset(self, args):
        for i in range(0, len(args), 2):
            self.strings[bytes(args[i])] = bytes(args[i + 1])
        return resp_simple("OK")

    def _cmd_mget(self, args):
        values = []
        for arg in args:
            key = bytes(arg)
            self._expire_if_due(key)
            values.append(self.strings.get(key))
        return resp_array(values)


# ---------------------------------------------------------------------------
# The host-side benchmark client
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class OpSpec:
    """One redis-benchmark operation type."""

    name: str
    command: list  # parts; "{i}" expands to the request counter
    setup: list = dataclasses.field(default_factory=list)  # untimed preload


REDIS_OPS = {
    "SET": OpSpec("SET", ["SET", "key:{i}", "xxx"]),
    "GET": OpSpec("GET", ["GET", "key:{i}"],
                  setup=[["SET", f"key:{i}", "xxx"] for i in range(0, 64)]),
    "INCR": OpSpec("INCR", ["INCR", "counter"]),
    "LPUSH": OpSpec("LPUSH", ["LPUSH", "mylist", "xxx"]),
    "RPUSH": OpSpec("RPUSH", ["RPUSH", "mylist", "xxx"]),
    "LPOP": OpSpec("LPOP", ["LPOP", "mylist"],
                   setup=[["RPUSH", "mylist"] + ["xxx"] * 64]),
    "RPOP": OpSpec("RPOP", ["RPOP", "mylist"],
                   setup=[["RPUSH", "mylist"] + ["xxx"] * 64]),
    "SADD": OpSpec("SADD", ["SADD", "myset", "el:{i}"]),
    "HSET": OpSpec("HSET", ["HSET", "myhash", "f:{i}", "xxx"]),
    "SPOP": OpSpec("SPOP", ["SPOP", "myset"],
                   setup=[["SADD", "myset"] + [f"el:{i}" for i in range(64)]]),
    "LRANGE_100": OpSpec("LRANGE_100", ["LRANGE", "mylist", "0", "99"],
                         setup=[["RPUSH", "mylist"] + ["xxx"] * 100]),
    "MSET": OpSpec("MSET", ["MSET"] + [x for i in range(10) for x in (f"k{i}:{{i}}", "xxx")]),
}


class RedisBenchmarkClient:
    """Host-side request generator + latency recorder.

    ``pipeline`` mirrors redis-benchmark's ``-P``: that many requests are
    delivered per guest wake-up, so the WFI round trip amortises across
    the batch (replies still time individually, in order).
    """

    def __init__(self, machine, spec: OpSpec, requests: int, pipeline: int = 1):
        self.machine = machine
        self.spec = spec
        self.requests = requests
        self.pipeline = max(1, pipeline)
        self.sent = 0
        self.replies = 0
        self._issue_cycles: list[int] = []
        self.latencies: list[int] = []
        self.errors: list[bytes] = []

    # The session's host_work hook: called while the guest WFIs.
    def pump(self, machine, session) -> bool:
        """host_work hook: deliver the next request batch while the guest WFIs."""
        if self.sent >= self.requests:
            return False
        batch = min(self.pipeline, self.requests - self.sent)
        for _ in range(batch):
            parts = [
                part.replace("{i}", str(self.sent)) if isinstance(part, str) else part
                for part in self.spec.command
            ]
            frame = resp_encode_command(parts)
            self._issue_cycles.append(machine.ledger.total)
            session.virtio_net.host_deliver(frame)
            self.sent += 1
        return True

    # The device's TX handler: the guest's reply arrives here.
    def on_reply(self, frame, header):
        """Device TX handler: record a reply's latency and any error."""
        if isinstance(frame, (bytes, bytearray)) and frame == b"+WARMUP\r\n":
            return []
        if isinstance(frame, (bytes, bytearray)) and frame.startswith(b"-"):
            self.errors.append(bytes(frame))
        if self._issue_cycles:
            self.latencies.append(
                self.machine.ledger.total - self._issue_cycles.pop(0)
            )
        self.replies += 1
        return []


def redis_server_workload(client: RedisBenchmarkClient, spec: OpSpec):
    """The guest side: serve RESP requests until the client is done."""

    def workload(ctx):
        clock_hz = ctx.machine.config.clock_hz
        server = RedisServer(clock=lambda: ctx.ledger.total / clock_hz)
        for setup_cmd in spec.setup:
            server.execute([
                part.encode() if isinstance(part, str) else part for part in setup_cmd
            ])
        base = ctx.session.layout.dram_base + (64 << 20)
        pages = [base + i * PAGE_SIZE for i in range(SERVER_WS_PAGES)]
        ctx.touch_seq(pages)

        driver = ctx.net_driver()
        driver.post_rx_buffers(max(8, min(32, client.pipeline)))
        # Warm the TX bounce slots so the timed phase measures steady
        # state (the paper's 10,000-request rounds dwarf server warm-up;
        # a scaled run must exclude it -- same reasoning as the RV8
        # workload's untimed start-up).
        driver.send_many([b"+WARMUP\r\n"] * 2)
        serving_start = ctx.ledger.total
        served = 0
        idle_polls = 0
        while served < client.requests:
            # Drain everything the device delivered (a pipelined client's
            # whole batch arrives as one segment): one batched pass over
            # the used ring, one bounce charge, one RX buffer re-post.
            frames = driver.recv_many()
            if not frames:
                if not ctx.wfi():
                    idle_polls += 1
                    if idle_polls > 3:
                        break  # client is done / wedged
                ctx.deliver_pending_irqs()
                continue
            idle_polls = 0
            ctx.compute(
                NET_STACK_RX_CYCLES + (len(frames) - 1) * NET_STACK_EXTRA_MSG_CYCLES
            )
            replies = []
            for frame in frames:
                parts = resp_decode_command(bytes(frame))
                name = parts[0].decode().upper()
                ctx.compute(PARSE_DISPATCH_CYCLES)
                ctx.compute(COMMAND_CYCLES.get(name, 5_000))
                offset = (served * SERVER_TOUCH_PER_REQUEST) % len(pages)
                count = len(pages)
                ctx.touch_seq(
                    pages[(offset + k) % count]
                    for k in range(SERVER_TOUCH_PER_REQUEST)
                )
                replies.append(server.execute(parts))
                served += 1
            ctx.compute(
                NET_STACK_TX_CYCLES + (len(replies) - 1) * NET_STACK_EXTRA_MSG_CYCLES
            )
            driver.send_many(replies)
        return {"served": served, "serving_cycles": ctx.ledger.total - serving_start}

    return workload


def redis_benchmark(machine, session, op_name: str, requests: int, pipeline: int = 1) -> dict:
    """Run one redis-benchmark operation; returns throughput and latency.

    The session must have a virtio-net device attached
    (:meth:`repro.Machine.attach_virtio_net`).  ``pipeline`` is
    redis-benchmark's ``-P`` (requests in flight per wake-up).
    """
    spec = REDIS_OPS[op_name]
    client = RedisBenchmarkClient(machine, spec, requests, pipeline=pipeline)
    session.virtio_net.host_handler = client.on_reply
    session.host_work = client.pump
    result = machine.run(session, redis_server_workload(client, spec))
    cycles = result["workload_result"]["serving_cycles"]
    clock = machine.config.clock_hz
    if client.errors:
        raise AssertionError(f"server returned errors: {client.errors[:3]}")
    seconds = cycles / clock
    return {
        "op": op_name,
        "pipeline": pipeline,
        "requests": client.replies,
        "cycles": cycles,
        "throughput_rps": client.replies / seconds if seconds else 0.0,
        "avg_latency_us": (
            sum(client.latencies) / len(client.latencies) / (clock / 1e6)
            if client.latencies
            else 0.0
        ),
        "breakdown": result["breakdown"],
    }
