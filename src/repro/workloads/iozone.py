"""IOZone-like sequential file I/O benchmark (paper Fig. 4).

Models the path real IOZone takes on a 256 MB guest: records are written
through the VFS into the guest page cache (syscall + copy + page
bookkeeping costs); once the cache fills, writeback streams dirty data to
virtio-blk in batches, each batch paying the full device round trip --
bounce-buffer staging, a doorbell kick (VM exit), a blocking wait for the
completion interrupt (another exit), and the device-side DMA.  Reads of a
file that fits in the cache are pure memory; larger files stream from the
device with the same per-batch costs.

This reproduces the figure's shape: throughput is lower at small record
sizes (per-record syscall overhead), and the confidential VM's overhead
is negligible for cache-resident files but grows with file size as the
exit-heavy device path dominates.
"""

from __future__ import annotations

import dataclasses

from repro.cycles import Category
from repro.mem.physmem import PAGE_SIZE

#: Guest-side cost model (calibrated; see DESIGN.md section 5).
FILE_COPY_PER_BYTE = 0.8  # user<->pagecache copy on a 100 MHz in-order core
SYSCALL_CYCLES = 6_000  # read()/write() entry + VFS dispatch
PAGE_MGMT_CYCLES = 300  # per page-cache page: radix tree + dirty tracking

#: Writeback/readahead batch handed to virtio-blk.
IO_BATCH = 32 * 1024

#: Guest page cache available to one file (256 MB VM, ~half for cache).
DEFAULT_CACHE_BYTES = 128 << 20


@dataclasses.dataclass(frozen=True)
class IozoneResult:
    """One (file size, record size) cell of the IOZone matrix."""

    file_bytes: int
    record_bytes: int
    write_cycles: int
    read_cycles: int

    def throughput_kb_s(self, op: str, clock_hz: int) -> float:
        """KB/s for 'write' or 'read' at the given clock rate."""
        cycles = self.write_cycles if op == "write" else self.read_cycles
        seconds = cycles / clock_hz
        return (self.file_bytes / 1024) / seconds if seconds else 0.0


def _charge_record(ctx, record: int) -> None:
    """Guest-side cost of moving one record through the VFS."""
    pages = -(-record // PAGE_SIZE)
    ctx.compute(SYSCALL_CYCLES + PAGE_MGMT_CYCLES * pages)
    ctx.ledger.charge(Category.COPY, int(record * FILE_COPY_PER_BYTE))


def iozone_workload(file_bytes: int, record_bytes: int, cache_bytes: int = DEFAULT_CACHE_BYTES,
                    queue_depth: int = 1):
    """Build the guest workload for one IOZone cell.

    Returns sequential-write then sequential-read cycle counts (the
    read follows the write on the same file, as IOZone's default pass
    order does).

    ``queue_depth`` > 1 turns on the batched data plane: writeback and
    readahead stage that many ``IO_BATCH`` requests and submit them
    through :meth:`VirtioBlkDriver.write_many`/``read_many`` -- one
    doorbell kick and one completion wait per batch instead of per
    request.  Depth 1 is the naive path, byte-for-byte the pre-batching
    cycle behaviour (the paper-calibration experiments rely on that).
    """

    def workload(ctx):
        blk = ctx.blk_driver()
        ledger = ctx.ledger
        staged_writes: list = []
        staged_reads: list = []

        def stage_write(sector, batch):
            if queue_depth <= 1:
                blk.write(sector, batch)
                return
            staged_writes.append((sector, batch))
            if len(staged_writes) >= queue_depth:
                blk.write_many(staged_writes)
                staged_writes.clear()

        def flush_writes():
            if staged_writes:
                blk.write_many(staged_writes)
                staged_writes.clear()

        def stage_read(sector, batch):
            if queue_depth <= 1:
                blk.read(sector, batch)
                return
            staged_reads.append((sector, batch))
            if len(staged_reads) >= queue_depth:
                blk.read_many(staged_reads)
                staged_reads.clear()

        def flush_reads():
            if staged_reads:
                blk.read_many(staged_reads)
                staged_reads.clear()
        # A small hot buffer the record copies run through; its TLB entries
        # are what world-switch flushes invalidate on the guest side.
        buf_base = ctx.session.layout.dram_base + (96 << 20)
        buf_pages = [buf_base + i * PAGE_SIZE for i in range(32)]
        for page in buf_pages:
            ctx.touch(page)

        # ---- sequential write ----
        start = ledger.total
        cached = 0  # bytes resident in the page cache
        dirty = 0
        disk_sector = 0
        offset = 0
        record_index = 0
        while offset < file_bytes:
            record = min(record_bytes, file_bytes - offset)
            _charge_record(ctx, record)
            ctx.touch(buf_pages[record_index % len(buf_pages)])
            cached += record
            dirty += record
            # Page cache full: writeback streams dirty data to the device.
            while cached > cache_bytes and dirty > 0:
                batch = min(IO_BATCH, dirty)
                stage_write(disk_sector, batch)
                disk_sector += batch // 512
                dirty -= batch
                cached -= batch
            offset += record
            record_index += 1
        flush_writes()
        write_cycles = ledger.total - start

        # Untimed sync so the read phase has the file on "disk" (IOZone
        # without -e excludes the final flush from the write timing; the
        # kernel performs it in the background before the read pass).
        sync_start = ledger.total
        while dirty > 0:
            batch = min(IO_BATCH, dirty)
            stage_write(disk_sector, batch)
            disk_sector += batch // 512
            dirty -= batch
        flush_writes()
        sync_cycles = ledger.total - sync_start

        # ---- sequential read ----
        from_device = file_bytes > cache_bytes
        start = ledger.total
        offset = 0
        pending_from_device = 0
        disk_sector = 0
        record_index = 0
        while offset < file_bytes:
            record = min(record_bytes, file_bytes - offset)
            if from_device:
                # Readahead fills the cache in device batches.
                while pending_from_device < record:
                    batch = min(IO_BATCH, file_bytes - offset - pending_from_device)
                    stage_read(disk_sector, batch)
                    disk_sector += batch // 512
                    pending_from_device += batch
                pending_from_device -= record
            _charge_record(ctx, record)
            ctx.touch(buf_pages[record_index % len(buf_pages)])
            offset += record
            record_index += 1
        flush_reads()
        read_cycles = ledger.total - start

        return {
            "write_cycles": write_cycles,
            "read_cycles": read_cycles,
            "sync_cycles": sync_cycles,
        }

    return workload


def iozone_full_workload(file_bytes: int, record_bytes: int, cache_bytes: int = DEFAULT_CACHE_BYTES):
    """The full IOZone pass set: write/rewrite/read/reread/random r+w.

    Beyond Fig. 4's sequential write/read, real IOZone also reports
    rewrite, reread and random passes; this workload models all six:

    - **rewrite** re-dirties the (now cached, for small files) file, so
      large files pay writeback again while small ones stay in memory;
    - **reread** after read is all cache hits for small files and a full
      device stream again for large ones (sequential LRU thrash);
    - **random read** loses readahead batching: every record beyond the
      cache is its own device round trip;
    - **random write** dirties scattered pages, so writeback degrades to
      record-sized device requests.

    Offsets for the random passes come from a deterministic LCG (the
    simulation must be reproducible).
    """

    def workload(ctx):
        blk = ctx.blk_driver()
        ledger = ctx.ledger
        records = max(1, file_bytes // record_bytes)
        cached_file = file_bytes <= cache_bytes
        buf_base = ctx.session.layout.dram_base + (96 << 20)
        buf_pages = [buf_base + i * PAGE_SIZE for i in range(32)]
        for page in buf_pages:
            ctx.touch(page)

        results = {}
        lcg_state = 0x5EED

        def lcg():
            nonlocal lcg_state
            lcg_state = (lcg_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            return lcg_state

        def sequential_pass(op, dirties):
            start = ledger.total
            dirty = 0
            readahead = 0
            sector = 0
            for index in range(records):
                if not dirties and not cached_file:
                    # Readahead: one batched device read serves several
                    # records (the batching random access loses).
                    while readahead < record_bytes:
                        blk.read(sector, IO_BATCH)
                        sector += IO_BATCH // 512
                        readahead += IO_BATCH
                    readahead -= record_bytes
                _charge_record(ctx, record_bytes)
                ctx.touch(buf_pages[index % len(buf_pages)])
                if dirties:
                    dirty += record_bytes
                    while dirty >= IO_BATCH and not cached_file:
                        blk.write(sector, IO_BATCH)
                        sector += IO_BATCH // 512
                        dirty -= IO_BATCH
            results[op] = ledger.total - start

        def random_pass(op, dirties):
            start = ledger.total
            for index in range(records):
                offset_record = lcg() % records
                sector = offset_record * record_bytes // 512
                _charge_record(ctx, record_bytes)
                ctx.touch(buf_pages[index % len(buf_pages)])
                if not cached_file:
                    # No readahead/batching benefit at random offsets.
                    if dirties:
                        blk.write(sector, record_bytes)
                    else:
                        blk.read(sector, record_bytes)
            results[op] = ledger.total - start

        sequential_pass("write", dirties=True)
        sequential_pass("rewrite", dirties=True)
        sequential_pass("read", dirties=False)
        sequential_pass("reread", dirties=False)
        random_pass("random_read", dirties=False)
        random_pass("random_write", dirties=True)
        return results

    return workload


def iozone_run(machine, session, file_bytes: int, record_bytes: int,
               cache_bytes: int = DEFAULT_CACHE_BYTES) -> IozoneResult:
    """Run one IOZone cell on ``session`` (needs virtio-blk attached)."""
    result = machine.run(
        session, iozone_workload(file_bytes, record_bytes, cache_bytes)
    )
    inner = result["workload_result"]
    return IozoneResult(
        file_bytes=file_bytes,
        record_bytes=record_bytes,
        write_cycles=inner["write_cycles"],
        read_cycles=inner["read_cycles"],
    )
