"""Generic CPU-bound guest workload (RV8-style programs).

The loop alternates compute blocks with strided touches of the hot
working set, plus rare console MMIO -- the event mix of a batch program.
On a normal VM the touches stay TLB-resident across timer ticks; on a
confidential VM every tick's world switch flushes guest translations
(the PMP toggle), so the same touches periodically re-walk, which is
where the emergent CPU-bound overhead comes from.
"""

from __future__ import annotations

from repro.mem.physmem import PAGE_SIZE
from repro.workloads.profiles import CpuWorkloadProfile

#: Console data register (a ConsoleDevice is expected here for MMIO).
CONSOLE_GPA = 0x1000_0000


def cpu_bound_workload(profile: CpuWorkloadProfile, total_cycles: int | None = None):
    """Build the workload callable for ``profile``.

    ``total_cycles`` overrides the profile's paper-scale runtime (bench
    harnesses scale it down; overhead percentages are scale-invariant
    because the timer tick period stays fixed).
    Returns a callable suitable for :meth:`repro.Machine.run`.
    """
    target = total_cycles if total_cycles is not None else profile.total_cycles

    def workload(ctx):
        base = ctx.session.layout.dram_base + (32 << 20)
        pages = [base + i * PAGE_SIZE for i in range(profile.ws_pages)]
        # Program start-up: fault in the working set.  Untimed below: on
        # the paper's multi-billion-cycle runs this one-time cost is
        # negligible, so a scaled-down run must exclude it or the (cheaper)
        # SM fault path would skew the steady-state comparison.
        ctx.touch_seq(pages)

        mmio_every = (
            int(1e9) // profile.mmio_per_1e9 if profile.mmio_per_1e9 else None
        )
        start_cycle = ctx.ledger.total
        done = 0
        iteration = 0
        next_mmio = mmio_every or 0
        while done < target:
            chunk = min(profile.iter_cycles, target - done)
            ctx.compute(chunk)
            done += chunk
            # Stride through the hot set.
            start = (iteration * profile.touch_per_iter) % len(pages)
            count = len(pages)
            ctx.touch_seq(
                pages[(start + k) % count] for k in range(profile.touch_per_iter)
            )
            if mmio_every and done >= next_mmio:
                ctx.mmio_write(CONSOLE_GPA, 0x2E)  # progress dot
                next_mmio += mmio_every
            iteration += 1
        return {
            "iterations": iteration,
            "compute_cycles": done,
            "cycles": ctx.ledger.total - start_cycle,
        }

    return workload
