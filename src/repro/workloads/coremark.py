"""CoreMark-like workload.

CoreMark runs a fixed iteration mix (list processing, matrix ops, state
machine, CRC) and reports iterations/second.  We model one iteration as a
fixed compute block over a small working set and compute the score from
the machine's emergent cycle total, exactly as the real harness derives
it from wall-clock time.
"""

from __future__ import annotations

from repro.mem.physmem import PAGE_SIZE
from repro.workloads.profiles import CpuWorkloadProfile

#: CoreMark's event profile: ~2 KB list + 4 KB matrix + state tables is a
#: small resident set, but the benchmark's surrounding glue (printf etc.)
#: keeps a broader set warm on Linux.
COREMARK_PROFILE = CpuWorkloadProfile(
    "coremark",
    total_cycles=0,  # driven by iteration count instead
    ws_pages=128,
    iter_cycles=0,
    touch_per_iter=12,
)

#: Cycles per CoreMark iteration on the paper's platform.  The paper's
#: normal VM scores 2047.6 iterations/s at 100 MHz -> ~48,837 cycles per
#: iteration; split between pure compute and the touches/glue below.
ITERATION_CYCLES = 48_500


def coremark_workload(iterations: int):
    """CoreMark run of ``iterations``; returns the score components."""

    def workload(ctx):
        base = ctx.session.layout.dram_base + (48 << 20)
        pages = [base + i * PAGE_SIZE for i in range(COREMARK_PROFILE.ws_pages)]
        ctx.touch_seq(pages)
        start = ctx.ledger.total
        count = len(pages)
        touches = COREMARK_PROFILE.touch_per_iter
        for i in range(iterations):
            ctx.compute(ITERATION_CYCLES)
            offset = (i * touches) % count
            ctx.touch_seq(pages[(offset + k) % count] for k in range(touches))
        elapsed = ctx.ledger.total - start
        return {"iterations": iterations, "cycles": elapsed}

    return workload


def score_from(result: dict, clock_hz: int) -> float:
    """CoreMark score: iterations per second of emergent machine time."""
    return result["iterations"] / (result["cycles"] / clock_hz)
