"""Workload profiles: the calibrated event mixes of the RV8 suite.

``total_cycles`` is the paper's measured normal-VM runtime (Table I,
baseline column, in cycles).  ``ws_pages`` is the hot working set the
program cycles through -- the pages whose translations must be re-walked
after every world-switch TLB flush, which is the dominant source of the
confidential VM's CPU-bound overhead.  Values are calibrated so the
emergent overheads land near Table I; they are plausible for the
programs (aes/sha512 stream over large buffers, primes/miniz have small
hot loops against big cold regions).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CpuWorkloadProfile:
    """Event mix of one CPU-bound guest program."""

    name: str
    #: Normal-VM runtime on the paper's platform, in cycles.
    total_cycles: int
    #: Hot working-set pages re-touched continuously.
    ws_pages: int
    #: Cycles of pure compute per loop iteration.
    iter_cycles: int = 100_000
    #: Hot pages touched per iteration (the loop strides its set).
    touch_per_iter: int = 16
    #: MMIO accesses (console writes) per 10^9 cycles.
    mmio_per_1e9: int = 40


@dataclasses.dataclass(frozen=True)
class FleetProfile:
    """One CVM's serving role in a fleet-orchestrator run.

    ``kind`` names the serving behaviour (``kv`` for a redis-like
    key-value store, ``file`` for an iozone-like file worker, ``ping``
    / ``pong`` for a co-located channel pair).  ``weight`` sets how many
    operations the CVM serves per orchestrator epoch relative to its
    peers, so a mixed fleet produces uneven host load -- the imbalance
    the rebalancer exists to chase.
    """

    kind: str
    #: Serving operations per orchestrator epoch.
    ops_per_epoch: int
    #: Relative load weight used by the rebalancer's host-load estimate.
    weight: int = 1


#: The default mixed fleet (redis/iozone/pingpong), cycled over CVM
#: slots in order: CVM ``i`` gets ``FLEET_MIX[i % len(FLEET_MIX)]``.
#: ``ping``/``pong`` entries are adjacent so the pair lands co-located.
FLEET_MIX = (
    FleetProfile("kv", ops_per_epoch=6, weight=3),
    FleetProfile("file", ops_per_epoch=4, weight=2),
    FleetProfile("ping", ops_per_epoch=3, weight=1),
    FleetProfile("pong", ops_per_epoch=3, weight=1),
)


#: The RV8 benchmark suite (paper Table I).
RV8_PROFILES = {
    "aes": CpuWorkloadProfile("aes", total_cycles=6_312_000_000, ws_pages=132),
    "bigint": CpuWorkloadProfile("bigint", total_cycles=8_965_000_000, ws_pages=120),
    "dhrystone": CpuWorkloadProfile("dhrystone", total_cycles=4_144_000_000, ws_pages=129),
    "miniz": CpuWorkloadProfile("miniz", total_cycles=25_412_000_000, ws_pages=76),
    "norx": CpuWorkloadProfile("norx", total_cycles=3_905_000_000, ws_pages=123),
    "primes": CpuWorkloadProfile("primes", total_cycles=19_002_000_000, ws_pages=70),
    "qsort": CpuWorkloadProfile("qsort", total_cycles=2_148_000_000, ws_pages=115),
    "sha512": CpuWorkloadProfile("sha512", total_cycles=3_947_000_000, ws_pages=131),
}
