"""Page-fault stress workload (paper section V-C).

"After both VMs were started, we ran a program that allocated continuous
physical memory and performed write operations" -- a sequential first-touch
sweep over fresh guest memory, so every page costs one stage-2 fault.
The per-fault handling times are measured where the paper measured them:
in KVM for the normal VM, in the SM (per allocation stage) for the
confidential VM.
"""

from __future__ import annotations

from repro.mem.physmem import PAGE_SIZE


def sequential_write_stress(pages: int, start_offset: int = 16 << 20):
    """Touch ``pages`` fresh pages with stores, one fault each."""

    def workload(ctx):
        base = ctx.session.layout.dram_base + start_offset
        # Batched stores: identical per-page architectural sequence to the
        # old explicit loop, minus the Python call overhead.
        ctx.store_seq(base, range(pages), stride=PAGE_SIZE)
        return {"pages": pages}

    return workload
