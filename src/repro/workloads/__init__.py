"""Guest workloads reproducing the paper's evaluation programs.

Each workload is a function of a :class:`~repro.machine.GuestContext`
issuing the same *architectural event mix* the real program generates on
the paper's platform: compute blocks, working-set memory touches (which
exercise faults and TLB refills), MMIO, and virtio I/O.  Guest-internal
instruction streams are not modelled -- they are identical between a
normal and a confidential VM on real hardware too, so the comparison
depends only on the event mix, which is what these synthesize.

Workload profiles (working-set size, I/O rates, per-operation costs) are
calibrated against the paper's platform; see ``DESIGN.md`` section 5.
"""

from repro.workloads.profiles import (
    FLEET_MIX,
    RV8_PROFILES,
    CpuWorkloadProfile,
    FleetProfile,
)
from repro.workloads.cpu import cpu_bound_workload
from repro.workloads.coremark import COREMARK_PROFILE, coremark_workload
from repro.workloads.redis import (
    REDIS_OPS,
    RedisBenchmarkClient,
    RedisServer,
    redis_benchmark,
)
from repro.workloads.iozone import IozoneResult, iozone_run
from repro.workloads.memstress import sequential_write_stress
from repro.workloads.pingpong import pingpong_client, pingpong_server

__all__ = [
    "CpuWorkloadProfile",
    "RV8_PROFILES",
    "FleetProfile",
    "FLEET_MIX",
    "cpu_bound_workload",
    "COREMARK_PROFILE",
    "coremark_workload",
    "RedisServer",
    "RedisBenchmarkClient",
    "REDIS_OPS",
    "redis_benchmark",
    "IozoneResult",
    "iozone_run",
    "sequential_write_stress",
    "pingpong_client",
    "pingpong_server",
]
