"""A sharded confidential Redis cluster served over SM channels.

The flagship "heavy traffic" scenario (ROADMAP item 1): N *shard* CVMs
each run the in-guest :class:`~repro.workloads.redis.RedisServer` and own
a contiguous range of the 16384-slot Redis Cluster hash-slot space; a
*router* CVM fans out over one SM-brokered channel per shard (and one per
client CVM) and forwards RESP frames between them; *client* CVMs drive
mixed GET/SET/MGET traffic with up to ``pipeline`` requests in flight per
connection.  Everything data-plane crosses the PR-2 zero-copy channels --
no virtio, no SWIOTLB bounce copies, no MMIO exits -- so the request path
is: guest encode -> SPSC ring write -> one doorbell ECALL per batch ->
scheduler wake -> peer ring read.  docs/DATA_PLANE.md narrates a
request's life hop by hop and maps each hop to the cycle categories in
``BENCH_PERF.json``.

Throughput comes from the two tricks the dragonfly mini-redis exemplar
(SNIPPETS.md #3) uses: *pipelining* (amortise the per-batch fixed costs
-- doorbell ECALL, wake, ring scan -- over K requests) and *credit-based
backpressure* (a full ring refuses the send; the producer parks on
:data:`~repro.machine.WAIT_DOORBELL` instead of polling).

Trust model: shards, router and clients are mutually attested CVMs
(channel setup is measurement-gated by the SM), but each treats its ring
peer as untrusted at the byte level -- all framing is clamped by
:class:`~repro.ipc.ring.SpscRing`, and a shard that stops draining or
corrupts its ring is fail-stopped by the router with a typed
``-ERR SHARDDOWN`` reply (:class:`~repro.errors.ShardDown`) rather than
a wedged pipeline.
"""

from __future__ import annotations

import collections

from repro.errors import ChannelCorrupt, ShardDown
from repro.ipc.endpoint import ChannelEndpoint, ChannelError
from repro.machine import WAIT_DOORBELL
from repro.workloads.redis import (
    COMMAND_CYCLES,
    PARSE_DISPATCH_CYCLES,
    RedisServer,
    ResponseError,
    resp_array,
    resp_decode_command,
    resp_decode_reply,
    resp_encode_command,
    resp_error,
)
from repro.mem.physmem import PAGE_SIZE

# ---------------------------------------------------------------------------
# Hash slots (Redis Cluster semantics: CRC16/XMODEM mod 16384, hash tags)
# ---------------------------------------------------------------------------

#: Total hash slots in the cluster keyspace (Redis Cluster's constant).
HASH_SLOTS = 16384

#: CRC16/XMODEM (poly 0x1021, init 0) -- the exact function Redis Cluster
#: specifies for key -> slot mapping.
_CRC16_TABLE = []
for _byte in range(256):
    _crc = _byte << 8
    for _ in range(8):
        _crc = ((_crc << 1) ^ 0x1021 if _crc & 0x8000 else _crc << 1) & 0xFFFF
    _CRC16_TABLE.append(_crc)
del _byte, _crc


def crc16(data: bytes) -> int:
    """CRC16/XMODEM over ``data`` (the Redis Cluster key hash)."""
    crc = 0
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[(crc >> 8) ^ byte]
    return crc


def hash_tag(key: bytes) -> bytes:
    """The slice of ``key`` that is actually hashed (Redis hash tags).

    If the key contains ``{...}`` with at least one character between
    the first ``{`` and the first ``}`` after it, only that substring is
    hashed -- the mechanism applications use to pin related keys (e.g.
    ``{user1000}.following`` and ``{user1000}.followers``) to one slot
    so multi-key operations stay single-shard.  Otherwise the whole key
    is hashed.
    """
    open_brace = key.find(b"{")
    if open_brace == -1:
        return key
    close_brace = key.find(b"}", open_brace + 1)
    if close_brace == -1 or close_brace == open_brace + 1:
        return key
    return key[open_brace + 1:close_brace]


def key_slot(key: bytes) -> int:
    """Map a key to its hash slot (tag extraction, then CRC16 mod 16384)."""
    if isinstance(key, str):
        key = key.encode()
    return crc16(hash_tag(key)) % HASH_SLOTS


class SlotMap:
    """Contiguous assignment of the 16384 slots to ``shards`` shards.

    Shard ``i`` owns ``[ranges[i][0], ranges[i][1])``; the first
    ``HASH_SLOTS % shards`` shards are one slot wider so the whole space
    is covered with no gaps -- every slot has exactly one owner.
    """

    def __init__(self, shards: int):
        if not 1 <= shards <= HASH_SLOTS:
            raise ValueError(f"shard count must be in [1, {HASH_SLOTS}]")
        self.shards = shards
        self._base = HASH_SLOTS // shards
        self._extra = HASH_SLOTS % shards
        self.ranges: list = []
        start = 0
        for index in range(shards):
            width = self._base + (1 if index < self._extra else 0)
            self.ranges.append((start, start + width))
            start += width

    def shard_of_slot(self, slot: int) -> int:
        """The shard owning ``slot`` (O(1) arithmetic on the ranges)."""
        if not 0 <= slot < HASH_SLOTS:
            raise ValueError(f"slot {slot} out of range")
        wide_span = self._extra * (self._base + 1)
        if slot < wide_span:
            return slot // (self._base + 1)
        return self._extra + (slot - wide_span) // self._base

    def shard_of_key(self, key: bytes) -> int:
        """The shard owning ``key``'s slot."""
        return self.shard_of_slot(key_slot(key))

    def slots_of_shard(self, shard: int) -> range:
        """The contiguous slot range shard ``shard`` owns."""
        start, end = self.ranges[shard]
        return range(start, end)


# ---------------------------------------------------------------------------
# Pure routing logic (unit-testable without a machine)
# ---------------------------------------------------------------------------

#: Commands that carry no key; the router pins them to slot 0's shard.
_KEYLESS = {b"PING", b"COMMAND"}
#: Multi-key commands whose keys occupy every position after the name.
_MULTI_KEY = {b"DEL", b"EXISTS"}


class RoutePlan:
    """Where one client command goes and how its reply reassembles.

    ``targets`` is ``[(shard, parts, key_indices), ...]``: the frames to
    forward.  ``key_indices`` is ``None`` for single-target commands
    (the shard's raw reply bytes pass through untouched) and the list of
    original key positions for an MGET split (the router scatters each
    shard's array reply back into request order).  ``error`` is a
    router-local RESP error reply (no shard hop at all).
    """

    __slots__ = ("targets", "key_count", "error")

    def __init__(self, targets, key_count: int = 0, error: bytes | None = None):
        self.targets = targets
        self.key_count = key_count
        self.error = error

    @classmethod
    def local_error(cls, message: str) -> "RoutePlan":
        return cls([], error=resp_error(message))

    @property
    def is_split(self) -> bool:
        return self.key_count > 0


class SlotRouter:
    """Slot-aware request planner: command parts -> :class:`RoutePlan`.

    Pure logic (no machine, no channels) so the mapping rules are
    directly unit-testable; the in-CVM router workload drives it frame
    by frame.  Untrusted input: the command bytes come from a client
    ring, so malformed commands become RESP errors, never exceptions.
    """

    def __init__(self, slot_map: SlotMap):
        self.slot_map = slot_map

    def plan(self, parts) -> RoutePlan:
        """Plan one decoded command (a list of ``bytes`` parts)."""
        if not parts:
            return RoutePlan.local_error("empty command")
        name = bytes(parts[0]).upper()
        if name == b"MGET":
            if len(parts) < 2:
                return RoutePlan.local_error("wrong number of arguments for 'mget'")
            return self._plan_mget(parts[1:])
        if name == b"MSET":
            if len(parts) < 3 or len(parts) % 2 == 0:
                return RoutePlan.local_error("wrong number of arguments for 'mset'")
            return self._plan_same_shard(name, parts, parts[1::2])
        if name in _MULTI_KEY and len(parts) > 2:
            return self._plan_same_shard(name, parts, parts[1:])
        if name in _KEYLESS or len(parts) < 2:
            return RoutePlan([(self.slot_map.shard_of_slot(0), parts, None)])
        shard = self.slot_map.shard_of_key(bytes(parts[1]))
        return RoutePlan([(shard, parts, None)])

    def _plan_same_shard(self, name: bytes, parts, keys) -> RoutePlan:
        """Multi-key non-MGET commands must be single-shard (CROSSSLOT)."""
        shards = {self.slot_map.shard_of_key(bytes(key)) for key in keys}
        if len(shards) > 1:
            return RoutePlan.local_error(
                "CROSSSLOT keys in request don't hash to the same slot"
            )
        return RoutePlan([(shards.pop(), parts, None)])

    def _plan_mget(self, keys) -> RoutePlan:
        """Split an MGET by owning shard, remembering request order."""
        groups: dict = {}
        for index, key in enumerate(keys):
            shard = self.slot_map.shard_of_key(bytes(key))
            groups.setdefault(shard, ([b"MGET"], []))
            groups[shard][0].append(key)
            groups[shard][1].append(index)
        targets = [
            (shard, sub_parts, indices)
            for shard, (sub_parts, indices) in sorted(groups.items())
        ]
        return RoutePlan(targets, key_count=len(keys))


# ---------------------------------------------------------------------------
# Calibrated guest costs of the channel data plane
# ---------------------------------------------------------------------------

#: Fixed guest-driver cost per doorbell wake that found work: VSEI demux,
#: ring-header scan, batch setup.  The channel replaces the whole
#: TCP/IP + virtio path (NET_STACK_RX_CYCLES = 100_000 per segment) with
#: a memory-mapped ring, so the fixed cost is ~25x smaller -- the
#: protocol-batching economics SNIPPETS.md #3 (dragonfly) builds on.
CHANNEL_RX_BATCH_CYCLES = 4_000
#: Per-message RX framing/demux (length-prefix walk, dispatch).
CHANNEL_RX_MSG_CYCLES = 900
#: Fixed per-batch TX cost (ring-space check, doorbell decision).
CHANNEL_TX_BATCH_CYCLES = 1_500
#: Per-message TX framing cost.
CHANNEL_TX_MSG_CYCLES = 300
#: Router work per request: CRC16 + slot-range lookup + in-flight FIFO
#: bookkeeping (forwarding is zero-copy at the protocol level: single-
#: target replies pass through as raw bytes).
ROUTER_ROUTE_CYCLES = 1_600
#: Router work per reply forwarded/reassembled.
ROUTER_FORWARD_CYCLES = 400
#: Client-side encode + in-flight slot bookkeeping per request.
CLIENT_ENCODE_CYCLES = 700

#: Shard-resident working set (smaller than the monolithic server's 64
#: pages: each shard holds 1/N of the keyspace).
SHARD_WS_PAGES = 32
SHARD_TOUCH_PER_REQUEST = 8

#: Default channel window geometry (one secure block per channel).
WINDOW_SIZE = 64 * 1024
#: Creator-side window placement (shards and clients: one window each).
PEER_WINDOW_OFFSET = 0x0200_0000
#: Router-side window array: one window per peer, spaced a comfortable
#: 256 KB apart so each window's measurement scratch page and demand
#: faults never collide with a neighbour.
ROUTER_WINDOW_OFFSET = 0x0210_0000
ROUTER_WINDOW_STRIDE = 0x0004_0000

#: Control verbs (router <-> peers, in-band RESP commands).
DISCONNECT = b"DISCONNECT"
SHUTDOWN = b"SHUTDOWN"

#: Consecutive empty polls (while replies are owed) after which the
#: router declares a shard down and fails its in-flight pipeline.
DEFAULT_IDLE_LIMIT = 48


def _preload_keys(server: RedisServer, slot_map: SlotMap, shard_id: int,
                  keyspace: int, value: bytes) -> int:
    """Untimed preload of the shard's share of ``key:0..keyspace-1``."""
    loaded = 0
    for index in range(keyspace):
        key = b"key:%d" % index
        if slot_map.shard_of_key(key) == shard_id:
            server.execute([b"SET", key, value])
            loaded += 1
    return loaded


# ---------------------------------------------------------------------------
# Shard CVM workload
# ---------------------------------------------------------------------------

def shard_server(shard_id: int, channel_boxes: dict, slot_map: SlotMap,
                 *, expected_peer_measurement: bytes,
                 keyspace: int = 128, value_size: int = 16,
                 window_offset: int = PEER_WINDOW_OFFSET,
                 fail_after: int | None = None):
    """Build one shard's generator workload (channel creator).

    The shard creates its channel, publishes the id into
    ``channel_boxes[("shard", shard_id)]`` for the router to connect to,
    preloads its share of the keyspace (untimed, like the virtio bench's
    setup commands), then serves batches: drain the ring, parse + execute
    each command, reply in order, one doorbell per reply batch.

    ``fail_after`` crashes the shard (generator returns, ring stops
    draining, no close) after serving that many requests -- the failure
    mode the router's SHARDDOWN path exists for.
    """

    def workload(ctx):
        endpoint = ChannelEndpoint.create(
            ctx, ctx.session.layout.dram_base + window_offset, WINDOW_SIZE,
            expected_peer_measurement,
        )
        server = RedisServer(
            clock=lambda: ctx.ledger.total / ctx.machine.config.clock_hz
        )
        preloaded = _preload_keys(
            server, slot_map, shard_id, keyspace, b"v" * value_size
        )
        base = ctx.session.layout.dram_base + (64 << 20)
        pages = [base + i * PAGE_SIZE for i in range(SHARD_WS_PAGES)]
        ctx.touch_seq(pages)
        channel_boxes[("shard", shard_id)] = endpoint.channel_id
        served = 0
        busy_cycles = 0
        shutting_down = False
        while not shutting_down:
            batch = endpoint.recv_many(notify=True)
            if not batch:
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL
                continue
            start = ctx.ledger.total
            ctx.compute(
                CHANNEL_RX_BATCH_CYCLES + len(batch) * CHANNEL_RX_MSG_CYCLES
            )
            replies = []
            for frame in batch:
                parts = resp_decode_command(bytes(frame))
                name = bytes(parts[0]).upper()
                if name == SHUTDOWN:
                    shutting_down = True
                    replies.append(b"+BYE\r\n")
                    continue
                if fail_after is not None and served >= fail_after:
                    # Crash mid-stream: drop the batch on the floor and
                    # die without closing the channel -- the router must
                    # detect this via its idle timeout, not a FIN.
                    return {
                        "shard": shard_id, "served": served,
                        "busy_cycles": busy_cycles, "preloaded": preloaded,
                        "doorbells": endpoint.doorbells_rung,
                        "crashed": True,
                    }
                ctx.compute(PARSE_DISPATCH_CYCLES)
                ctx.compute(COMMAND_CYCLES.get(name.decode(), 5_000))
                offset = (served * SHARD_TOUCH_PER_REQUEST) % SHARD_WS_PAGES
                ctx.touch_seq(
                    pages[(offset + k) % SHARD_WS_PAGES]
                    for k in range(SHARD_TOUCH_PER_REQUEST)
                )
                replies.append(server.execute(parts))
                served += 1
            ctx.compute(
                CHANNEL_TX_BATCH_CYCLES + len(replies) * CHANNEL_TX_MSG_CYCLES
            )
            sent = endpoint.send_many(replies)
            del replies[:sent]
            busy_cycles += ctx.ledger.total - start
            while replies:  # reply ring full: wait for credits
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL
                start = ctx.ledger.total
                sent = endpoint.send_many(replies)
                del replies[:sent]
                busy_cycles += ctx.ledger.total - start
        # Deliberately no endpoint.close() here: CHANNEL_CLOSE tears down
        # both ends of the window immediately, which would yank the +BYE
        # out from under the router before it can read it.  The channel
        # is reclaimed by the SM when the CVM is destroyed.
        return {
            "shard": shard_id, "served": served, "busy_cycles": busy_cycles,
            "preloaded": preloaded, "doorbells": endpoint.doorbells_rung,
            "crashed": False,
        }

    return workload


# ---------------------------------------------------------------------------
# Router CVM workload
# ---------------------------------------------------------------------------

class _Pending:
    """One client request in flight: reply slots + reassembly order."""

    __slots__ = ("remaining", "values", "indices", "reply")

    def __init__(self, remaining: int, key_count: int):
        self.remaining = remaining
        #: MGET only: values scattered back into request order.
        self.values = [None] * key_count if key_count else None
        self.reply: bytes | None = None

    def fail(self, reply: bytes) -> None:
        self.remaining = 0
        self.reply = reply

    def complete_part(self, indices, reply_frame: bytes) -> None:
        """Fold one shard's reply in; finalise when all parts arrived."""
        if self.reply is not None:  # already failed (shard down)
            return
        self.remaining -= 1
        if self.values is None:
            self.reply = reply_frame
            return
        value, _ = resp_decode_reply(reply_frame)
        if isinstance(value, ResponseError):
            self.fail(resp_error(value.message.removeprefix("ERR ")))
            return
        for position, item in zip(indices, value):
            self.values[position] = item
        if self.remaining == 0:
            self.reply = resp_array(self.values)


def cluster_router(channel_boxes: dict, shards: int, clients: int,
                   *, shard_measurement: bytes, client_measurement: bytes,
                   idle_limit: int = DEFAULT_IDLE_LIMIT,
                   reply_flush: int = 4,
                   window_offset: int = ROUTER_WINDOW_OFFSET,
                   window_stride: int = ROUTER_WINDOW_STRIDE):
    """Build the router tier's generator workload (connects everywhere).

    The router is the connector of every channel: it waits for all
    shards and clients to publish their channel ids, attests-and-joins
    each (the SM refuses any peer whose launch measurement differs from
    the expected one), then forwards frames until every client has
    disconnected -- at which point it broadcasts SHUTDOWN to the shards
    and returns its statistics.

    Reply ordering: per client, replies flow back strictly in request
    order (a FIFO of :class:`_Pending` slots); per shard, the SPSC ring
    guarantees reply order matches request order, which is what makes
    the shard FIFO sound.  A shard that stops replying while owing
    replies for ``idle_limit`` consecutive polls -- or whose ring fails
    a clamp check -- is declared down: every owed and future request for
    its slots fails fast with ``-ERR SHARDDOWN`` (recorded as a typed
    :class:`~repro.errors.ShardDown` in the stats).
    """

    def workload(ctx):
        dram_base = ctx.session.layout.dram_base
        peer_keys = [("shard", i) for i in range(shards)] + \
                    [("client", i) for i in range(clients)]
        while any(key not in channel_boxes for key in peer_keys):
            yield  # peers still creating their channels
        endpoints: dict = {}
        for index, key in enumerate(peer_keys):
            kind = key[0]
            endpoints[key] = ChannelEndpoint.connect(
                ctx, channel_boxes[key],
                dram_base + window_offset + index * window_stride,
                shard_measurement if kind == "shard" else client_measurement,
            )
            # Tell the creator its channel is fully open (a NOTIFY on a
            # half-open channel is refused by the SM, so peers must not
            # ring before we have joined).
            channel_boxes[("joined",) + key] = True
        slot_map = SlotMap(shards)
        router = SlotRouter(slot_map)

        pending = {c: collections.deque() for c in range(clients)}
        # Ledger mark separating cluster bring-up (creates, attestation,
        # connects, shard preloads) from steady-state serving -- the
        # same split redis_benchmark's serving_cycles makes.
        setup_done_total = ctx.ledger.total
        shard_fifo = {s: collections.deque() for s in range(shards)}
        outbox = {s: collections.deque() for s in range(shards)}
        reply_outbox = {c: collections.deque() for c in range(clients)}
        shard_idle = [0] * shards
        shard_down: dict = {}  # shard -> ShardDown
        client_done = [False] * clients
        stats = {
            "routed": 0, "replies": 0, "mget_splits": 0, "local_errors": 0,
            "per_shard_requests": [0] * shards, "shard_errors": [],
            "setup_done_total": setup_done_total,
        }

        def shard_error_reply(shard: int) -> bytes:
            return resp_error(f"SHARDDOWN shard {shard} is unreachable")

        def mark_shard_down(shard: int, reason: str) -> None:
            if shard in shard_down:
                return
            error = ShardDown(shard, reason=reason)
            shard_down[shard] = error
            stats["shard_errors"].append(error)
            reply = shard_error_reply(shard)
            for client, slot, _indices in shard_fifo[shard]:
                slot.fail(reply)
            shard_fifo[shard].clear()
            outbox[shard].clear()

        def route_frame(client: int, frame: bytes) -> None:
            parts = resp_decode_command(bytes(frame))
            ctx.compute(ROUTER_ROUTE_CYCLES)
            plan = router.plan(parts)
            if plan.error is not None:
                stats["local_errors"] += 1
                slot = _Pending(0, 0)
                slot.fail(plan.error)
                pending[client].append(slot)
                return
            stats["routed"] += 1
            if plan.is_split:
                stats["mget_splits"] += 1
            slot = _Pending(len(plan.targets), plan.key_count)
            pending[client].append(slot)
            for shard, sub_parts, indices in plan.targets:
                stats["per_shard_requests"][shard] += 1
                if shard in shard_down:
                    slot.fail(shard_error_reply(shard))
                    continue
                outbox[shard].append(resp_encode_command(sub_parts))
                shard_fifo[shard].append((client, slot, indices))

        def flush_shards(force: bool) -> bool:
            """Forward queued requests shard-wards (credit-limited)."""
            flushed = False
            for shard in range(shards):
                queue = outbox[shard]
                if not queue or shard in shard_down:
                    continue
                if not force and len(queue) < reply_flush:
                    continue
                ctx.compute(
                    CHANNEL_TX_BATCH_CYCLES + len(queue) * CHANNEL_TX_MSG_CYCLES
                )
                try:
                    sent = endpoints[("shard", shard)].send_many(queue)
                except (ChannelCorrupt, ChannelError):
                    mark_shard_down(shard, "send failed: channel corrupt/closed")
                    continue
                if sent:
                    flushed = True
                    for _ in range(sent):
                        queue.popleft()
            return flushed

        def flush_replies(force: bool) -> bool:
            """Release completed replies, in request order per client.

            A doorbell wake costs the woken client a full world switch,
            so below ``reply_flush`` ready replies the batch is held back
            (hysteresis against one-reply ping-pong) -- unless ``force``,
            which flushes everything before the router parks, so held
            replies can never deadlock the run.
            """
            flushed = False
            for client in range(clients):
                queue = pending[client]
                ready = reply_outbox[client]
                while queue and queue[0].reply is not None:
                    ready.append(queue.popleft().reply)
                if not ready or (not force and len(ready) < reply_flush):
                    continue
                ctx.compute(
                    CHANNEL_TX_BATCH_CYCLES + len(ready) * CHANNEL_TX_MSG_CYCLES
                )
                try:
                    sent = endpoints[("client", client)].send_many(ready)
                except ChannelCorrupt:
                    client_done[client] = True
                    queue.clear()
                    ready.clear()
                    continue
                if sent:
                    flushed = True
                    stats["replies"] += sent
                    for _ in range(sent):
                        ready.popleft()
            return flushed

        while True:
            progress = False
            # 1. Drain client requests (a misbehaving client is dropped,
            #    not fatal: its ring bytes are untrusted).
            for client in range(clients):
                if client_done[client]:
                    continue
                endpoint = endpoints[("client", client)]
                try:
                    frames = endpoint.recv_many(notify=True)
                except ChannelCorrupt:
                    client_done[client] = True
                    pending[client].clear()
                    reply_outbox[client].clear()
                    continue
                if frames:
                    progress = True
                    ctx.compute(
                        CHANNEL_RX_BATCH_CYCLES
                        + len(frames) * CHANNEL_RX_MSG_CYCLES
                    )
                for frame in frames:
                    parts = resp_decode_command(bytes(frame))
                    if parts and bytes(parts[0]).upper() == DISCONNECT:
                        client_done[client] = True
                        continue
                    route_frame(client, frame)
            # 2. Forward queued requests shard-wards (credit-limited,
            #    threshold-batched like the reply path: waking a shard
            #    for a single request wastes a world switch).
            if flush_shards(force=False):
                progress = True
            # 3. Collect shard replies, fold into pending slots.
            for shard in range(shards):
                if shard in shard_down:
                    continue
                try:
                    frames = endpoints[("shard", shard)].recv_many(notify=True)
                except ChannelCorrupt:
                    mark_shard_down(shard, "reply ring failed a clamp check")
                    continue
                if frames:
                    progress = True
                    shard_idle[shard] = 0
                    ctx.compute(
                        CHANNEL_RX_BATCH_CYCLES
                        + len(frames) * CHANNEL_RX_MSG_CYCLES
                    )
                    for frame in frames:
                        client, slot, indices = shard_fifo[shard].popleft()
                        ctx.compute(ROUTER_FORWARD_CYCLES)
                        slot.complete_part(indices, frame)
                elif shard_fifo[shard] and not outbox[shard]:
                    shard_idle[shard] += 1
                    if shard_idle[shard] >= idle_limit:
                        mark_shard_down(
                            shard,
                            f"no replies in {idle_limit} polls with "
                            f"{len(shard_fifo[shard])} owed",
                        )
                        progress = True
            # 4. Release completed replies (threshold-batched).
            if flush_replies(force=False):
                progress = True
            # 5. Done?
            if all(client_done) and not any(pending[c] for c in range(clients)) \
                    and not any(reply_outbox[c] for c in range(clients)):
                break
            # Drain until quiescent before parking: a world switch costs
            # tens of thousands of cycles (SM save/restore, stage-2 TLB
            # flush), so the router keeps looping while any ring is
            # moving and only parks once a full pass found nothing to do
            # -- after force-flushing any held-back reply batches, so
            # hysteresis can never deadlock the pipeline.
            if not progress:
                forced = flush_shards(force=True)
                forced = flush_replies(force=True) or forced
                if forced:
                    continue
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL

        # Shutdown phase: stop the surviving shards, await their BYEs.
        shutdown_frame = resp_encode_command([SHUTDOWN])
        for shard in range(shards):
            if shard in shard_down:
                continue
            endpoint = endpoints[("shard", shard)]
            try:
                while not endpoint.send(shutdown_frame):
                    ctx.deliver_pending_irqs()
                    yield WAIT_DOORBELL
            except (ChannelCorrupt, ChannelError):
                mark_shard_down(shard, "shutdown send failed")
                continue
            idle = 0
            acked = False
            while not acked and idle < idle_limit:
                try:
                    frames = endpoint.recv_many(notify=False)
                except ChannelCorrupt:
                    break
                if frames:
                    acked = any(f == b"+BYE\r\n" for f in frames)
                    if acked:
                        break
                idle += 1
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL
        stats["doorbells"] = sum(e.doorbells_rung for e in endpoints.values())
        stats["shards_down"] = sorted(shard_down)
        return stats

    return workload


# ---------------------------------------------------------------------------
# Client CVM workload + deterministic load generator
# ---------------------------------------------------------------------------

class LoadGenerator:
    """Deterministic mixed GET/SET/MGET request stream.

    Seeded LCG (no ``random`` module: perf-harness runs are golden-
    pinned, so the stream must be bit-stable across processes).  The
    mix percentages and keyspace shape the slot distribution the
    cluster sees; keys are ``key:<n>`` uniform over ``keyspace``.
    """

    _MULTIPLIER = 6364136223846793005
    _INCREMENT = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, seed: int, keyspace: int = 128, value_size: int = 16,
                 get_pct: int = 60, set_pct: int = 30, mget_keys: int = 3):
        if not 0 <= get_pct + set_pct <= 100:
            raise ValueError("mix percentages must sum to at most 100")
        self._state = (seed * 2 + 1) & self._MASK
        self.keyspace = keyspace
        self.value = "v" * value_size
        self.get_pct = get_pct
        self.set_pct = set_pct
        self.mget_keys = mget_keys

    def _rand(self, bound: int) -> int:
        self._state = (
            self._state * self._MULTIPLIER + self._INCREMENT
        ) & self._MASK
        return (self._state >> 33) % bound

    def next(self) -> tuple:
        """The next ``(command_parts, op_name)`` of the stream."""
        roll = self._rand(100)
        if roll < self.get_pct:
            return ["GET", f"key:{self._rand(self.keyspace)}"], "GET"
        if roll < self.get_pct + self.set_pct:
            return (
                ["SET", f"key:{self._rand(self.keyspace)}", self.value],
                "SET",
            )
        keys = [f"key:{self._rand(self.keyspace)}" for _ in range(self.mget_keys)]
        return ["MGET", *keys], "MGET"


def cluster_client(client_id: int, channel_boxes: dict, *,
                   router_measurement: bytes, requests: int,
                   pipeline: int = 8, generator: LoadGenerator | None = None,
                   keyspace: int = 128, value_size: int = 16,
                   window_offset: int = PEER_WINDOW_OFFSET):
    """Build one client connection's generator workload (channel creator).

    Issues up to ``pipeline`` requests in flight: encode + ring-write a
    batch (one doorbell for all of it), then drain replies, recording
    per-request latency in cycles.  Backpressure is the ring's credit
    check -- a refused send parks the client on the doorbell instead of
    spinning.  Returns latency/err statistics for percentile analysis.
    """

    def workload(ctx):
        endpoint = ChannelEndpoint.create(
            ctx, ctx.session.layout.dram_base + window_offset, WINDOW_SIZE,
            router_measurement,
        )
        channel_boxes[("client", client_id)] = endpoint.channel_id
        while ("joined", "client", client_id) not in channel_boxes:
            yield  # router has not connected yet; a doorbell would be refused
        gen = generator or LoadGenerator(
            seed=client_id + 1, keyspace=keyspace, value_size=value_size
        )
        in_flight: collections.deque = collections.deque()
        staged = None  # generated but refused by backpressure
        issued = completed = 0
        latencies: list = []
        errors: list = []
        ops: dict = {}
        while completed < requests:
            sent_any = False
            while issued < requests and len(in_flight) < pipeline:
                if staged is None:
                    parts, op_name = gen.next()
                    ctx.compute(CLIENT_ENCODE_CYCLES)
                    staged = (resp_encode_command(parts), op_name)
                if not endpoint.send(staged[0], notify=False):
                    break  # out of credits: the ring is the throttle
                ops[staged[1]] = ops.get(staged[1], 0) + 1
                in_flight.append((ctx.ledger.total, staged[1]))
                staged = None
                issued += 1
                sent_any = True
            if sent_any:
                endpoint.ring_doorbell()
            replies = endpoint.recv_many(notify=True)
            if replies:
                ctx.compute(
                    CHANNEL_RX_BATCH_CYCLES
                    + len(replies) * CHANNEL_RX_MSG_CYCLES
                )
            for frame in replies:
                issue_cycle, op_name = in_flight.popleft()
                latencies.append(ctx.ledger.total - issue_cycle)
                value, _ = resp_decode_reply(bytes(frame))
                if isinstance(value, ResponseError):
                    errors.append((op_name, value.message))
                completed += 1
            # Same drain-until-quiescent policy as the router: only give
            # up the hart (and pay the world switch) once neither issuing
            # nor draining can make progress.
            if not sent_any and not replies:
                ctx.deliver_pending_irqs()
                yield WAIT_DOORBELL
        while not endpoint.send(resp_encode_command([DISCONNECT])):
            ctx.deliver_pending_irqs()
            yield WAIT_DOORBELL
        return {
            "client": client_id, "completed": completed,
            "latencies": latencies, "errors": errors, "ops": ops,
            "doorbells": endpoint.doorbells_rung,
        }

    return workload
