"""Inter-CVM ping-pong over an SM-brokered channel.

Two generator workloads for :meth:`Machine.run_concurrent`: a *server*
that creates the channel and echoes every message back, and a *client*
that connects, sends ``rounds`` messages of ``message_size`` bytes and
waits for each echo.  Both park on :data:`~repro.machine.WAIT_DOORBELL`,
so the run measures the doorbell path: SM notify ECALL, CLINT IPI,
hypervisor scheduler wake, VSEI delivery in the peer.  The ablation arm
(``polling=True``) never rings a doorbell and never parks -- both sides
spin on the ring through the scheduler, trading notify ECALLs for
scheduler rotations.

The client returns a stats dict (rounds completed, bytes moved, doorbells
rung); the server returns its doorbell count.
"""

from __future__ import annotations

from repro.ipc.endpoint import ChannelEndpoint
from repro.machine import WAIT_DOORBELL

#: Default window placement: one secure block's worth of pages near the
#: top of the CVM's private DRAM (far above any image/demand allocations).
DEFAULT_WINDOW_OFFSET = 0x0200_0000
DEFAULT_WINDOW_SIZE = 64 * 1024


def _window_gpa(ctx, offset: int = DEFAULT_WINDOW_OFFSET) -> int:
    return ctx.session.layout.dram_base + offset


def pingpong_server(window_size: int = DEFAULT_WINDOW_SIZE,
                    expected_peer_measurement: bytes = b"\0" * 32,
                    rounds: int = 16, polling: bool = False,
                    channel_box: dict | None = None):
    """Build the echo-server generator workload (channel creator)."""

    def workload(ctx):
        endpoint = ChannelEndpoint.create(
            ctx, _window_gpa(ctx), window_size, expected_peer_measurement
        )
        if channel_box is not None:
            channel_box["channel_id"] = endpoint.channel_id
        yield  # let the client observe the channel id and connect
        notify = not polling  # the polling arm never rings doorbells
        echoed = 0
        while echoed < rounds:
            message = endpoint.recv(notify=notify)
            if message is None:
                ctx.deliver_pending_irqs()
                yield (None if polling else WAIT_DOORBELL)
                continue
            while not endpoint.send(message, notify=notify):
                yield (None if polling else WAIT_DOORBELL)
            echoed += 1
        return {"echoed": echoed, "doorbells": endpoint.doorbells_rung}

    return workload


def pingpong_client(channel_box: dict, message_size: int = 256,
                    rounds: int = 16,
                    expected_creator_measurement: bytes = b"\0" * 32,
                    polling: bool = False):
    """Build the client generator workload (channel connector).

    ``channel_box`` is the dict the server publishes ``channel_id`` into;
    in a real deployment the id would travel over an attested side
    channel, here the two workloads share it guest-locally.
    """

    def workload(ctx):
        while "channel_id" not in channel_box:
            yield  # server has not created the channel yet
        endpoint = ChannelEndpoint.connect(
            ctx, channel_box["channel_id"], _window_gpa(ctx),
            expected_creator_measurement,
        )
        payload = bytes((i & 0xFF for i in range(message_size)))
        notify = not polling  # the polling arm never rings doorbells
        completed = 0
        bytes_moved = 0
        for seq in range(rounds):
            while not endpoint.send(payload, notify=notify):
                yield (None if polling else WAIT_DOORBELL)
            echo = None
            while echo is None:
                echo = endpoint.recv(notify=notify)
                if echo is None:
                    ctx.deliver_pending_irqs()
                    yield (None if polling else WAIT_DOORBELL)
            assert len(echo) == message_size, "echo length mismatch"
            completed += 1
            bytes_moved += 2 * message_size
        endpoint.close()
        return {
            "rounds": completed,
            "bytes_moved": bytes_moved,
            "doorbells": endpoint.doorbells_rung,
        }

    return workload
