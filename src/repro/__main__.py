"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [--full] [--only E1,E4,...]`` — regenerate the paper's
  tables/figures (the same runners the benchmark suite uses);
- ``demo`` — the quickstart flow with a stats report;
- ``attack`` — run the hypervisor attack battery and report outcomes;
- ``stats`` — launch a CVM, run a mixed workload, print the full
  machine statistics snapshot;
- ``faults [--seeds N | --seed K] [--rounds R] [-v]`` — run the
  seeded fault-injection campaign (``--seed K`` deterministically
  replays one seed, the failing-seed repro workflow);
- ``perf [--quick] [--out PATH] [--compare PREV.json] [--runs N]
  [--gate]`` — wall-clock performance harness: run the fixed scenario
  suite, emit ``BENCH_PERF.json`` and verify simulated cycle totals
  against the committed goldens (any deviation means the *model*
  changed, which an optimization must never do); ``--compare`` prints
  per-scenario wall/cycle deltas against a previous report, ``--gate``
  fails on >10% wall-time regression over the committed quick-mode
  baseline (median of ``--runs``);
- ``lint [paths] [--json] [--baseline FILE] [--changed [REF]]
  [--strict]`` — zionlint, the static
  trust-boundary/taint/charging analyzer for the SM seam (INTERNALS
  §12); exits non-zero on findings that are neither pragma-suppressed
  nor baselined;
- ``virtio-batch [--quick]`` — batched-vs-naive virtio data-plane
  smoke: run the iozone and redis ablation arms plus the channel
  doorbell ablation, print the exit/interrupt/doorbell reductions, and
  exit non-zero if MMIO-exit reduction drops below 2x
  (docs/DATA_PLANE.md);
- ``redis-cluster [--shards N --clients C --requests R --pipeline K]``
  — run the sharded redis cluster over SM channels once and print its
  throughput/latency/balance stats (docs/DATA_PLANE.md);
- ``fleet [--hosts N --cvms M --seeds S --epochs E --rate R]
  [--seams a,b] [--ablate]`` — the fleet orchestrator: multi-host CVM
  lifecycle + live migration under adversarial load, with per-migration
  downtime and containment sweeps (docs/FLEET.md); ``--ablate`` runs
  the migration-rate x fleet-size grid instead.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_experiments(args) -> int:
    from repro.bench import paper_data
    from repro.bench.macro import (
        run_coremark_experiment,
        run_iozone_experiment,
        run_redis_experiment,
        run_rv8_experiment,
    )
    from repro.bench.microbench import (
        run_page_fault_experiment,
        run_switch_path_experiment,
        run_vcpu_switch_experiment,
    )

    full = args.full
    selected = set(args.only.upper().split(",")) if args.only else None

    def want(tag):
        return selected is None or tag in selected

    if want("E1"):
        r = run_vcpu_switch_experiment(iterations=200 if full else 50)
        print("E1 shared vCPU: entry {:.0f}->{:.0f} (-{:.1f}%), exit {:.0f}->{:.0f} (-{:.1f}%)".format(
            r["entry_without_shared"], r["entry_with_shared"], r["entry_improvement_pct"],
            r["exit_without_shared"], r["exit_with_shared"], r["exit_improvement_pct"]))
    if want("E2"):
        r = run_switch_path_experiment(iterations=200 if full else 50)
        print("E2 switch path: entry long {:.0f} short {:.0f} (-{:.1f}%), exit long {:.0f} short {:.0f} (-{:.1f}%)".format(
            r["entry_long_path"], r["entry_short_path"], r["entry_improvement_pct"],
            r["exit_long_path"], r["exit_short_path"], r["exit_improvement_pct"]))
    if want("E3"):
        r = run_page_fault_experiment(pages=2048 if full else 512)
        print("E3 faults: KVM {:.0f}, CVM s1 {:.0f} s2 {:.0f} s3 {:.0f} avg {:.0f}".format(
            r["normal_vm"], r["cvm_stage1"], r["cvm_stage2"], r["cvm_stage3"], r["cvm_average"]))
    if want("E4"):
        r = run_rv8_experiment(scale=0.1 if full else 0.01)
        for name, row in r["benchmarks"].items():
            print(f"E4 {name}: {row['overhead_pct']:+.2f}% (paper {row['paper_overhead_pct']:+.2f}%)")
        print(f"E4 average: {r['average_overhead_pct']:+.2f}% (paper {paper_data.RV8_AVERAGE_OVERHEAD_PCT:+.2f}%)")
    if want("E5"):
        r = run_coremark_experiment(iterations=10_000 if full else 1_500)
        print(f"E5 CoreMark: {r['normal_score']:.1f} -> {r['cvm_score']:.1f} ({r['overhead_pct']:.2f}% drop)")
    if want("E6"):
        r = run_redis_experiment(requests=2_000 if full else 300)
        print(f"E6 Redis: throughput {r['avg_throughput_drop_pct']:+.2f}% "
              f"latency {r['avg_latency_increase_pct']:+.2f}%")
    if want("E7"):
        r = run_iozone_experiment(size_scale=1 if full else 4)
        worst = max(r["cells"], key=lambda c: c["read_overhead_pct"])
        print(f"E7 IOZone: worst overhead {worst['read_overhead_pct']:+.2f}% read "
              f"at {worst['file_bytes'] >> 20} MB / {worst['record_bytes'] >> 10} KB records")
    return 0


def _cmd_demo(args) -> int:
    from repro import Machine, MachineConfig
    from repro.analysis import machine_stats, render_stats

    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"demo-guest" * 200)

    def workload(ctx):
        base = session.layout.dram_base + (16 << 20)
        ctx.write_bytes(base, b"demo secret")
        ctx.compute(3_000_000)
        return ctx.attestation_report(b"cli-demo")

    report = machine.run(session, workload)["workload_result"]
    print(f"CVM {session.cvm.cvm_id} measurement: {report.measurement.hex()[:32]}...")
    print(f"report verified: {machine.monitor.attestation.verify_report(report)}")
    print(render_stats(machine_stats(machine)))
    return 0


def _cmd_attack(args) -> int:
    from repro import Machine, MachineConfig, SecurityViolation, TrapRaised
    from repro.isa.privilege import PrivilegeMode

    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"victim" * 400)
    machine.hart.mode = PrivilegeMode.HS
    pool = machine.monitor.pool.regions[0][0]
    attacks = {
        "pmp read": lambda: machine.bus.cpu_read(machine.hart, pool, 8),
        "pmp write": lambda: machine.bus.cpu_write(machine.hart, pool, b"x"),
        "page-table write": lambda: machine.bus.cpu_write_u64(
            machine.hart, session.cvm.hgatp_root, 0
        ),
        "dma": lambda: machine.bus.dma_read(0, pool, 8),
        "subtree link": lambda: machine.monitor.ecall_link_shared_subtree(
            session.cvm.cvm_id, 300, pool
        ),
    }
    blocked = 0
    for name, attack in attacks.items():
        try:
            attack()
            print(f"{name}: SUCCEEDED (security bug!)")
        except (TrapRaised, SecurityViolation) as failure:
            print(f"{name}: blocked ({type(failure).__name__})")
            blocked += 1
    return 0 if blocked == len(attacks) else 1


def _cmd_stats(args) -> int:
    from repro import Machine, MachineConfig
    from repro.analysis import machine_stats, render_stats

    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"stats" * 200)
    machine.attach_virtio_block(session)

    def workload(ctx):
        blk = ctx.blk_driver()
        ctx.compute(2_500_000)
        for i in range(8):
            blk.write(i * 8, bytes(4096))
        ctx.mmio_read(0x1000_1000 + 0x70)

    machine.run(session, workload)
    print(render_stats(machine_stats(machine)))
    return 0


def _parse_seams(spec):
    """``--seams`` comma list -> validated tuple (None when not given)."""
    if spec is None:
        return None
    from repro.faults.plan import resolve_seams

    seams = tuple(s.strip() for s in spec.split(",") if s.strip())
    resolve_seams(seams)  # raises ValueError on unknown names
    return seams


def _cmd_faults(args) -> int:
    from repro.faults import run_campaign

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.seeds))
    try:
        seams = _parse_seams(args.seams)
    except ValueError as error:
        print(f"--seams: {error}")
        return 2
    failures = 0
    total_injected = 0
    for result in run_campaign(seeds, rounds=args.rounds, seams=seams):
        print(result.summary())
        total_injected += result.injected
        if args.verbose or not result.ok:
            print(f"  plan: {result.plan}")
            for line in result.contained:
                print(f"  contained: {line}")
            for line in result.crashes:
                print(f"  CRASH: {line}")
            for line in result.violations:
                print(f"  VIOLATION: {line}")
        if not result.ok:
            failures += 1
    print(
        f"campaign: {len(seeds)} seeds, {total_injected} faults injected, "
        f"{failures} failing"
    )
    if failures:
        print("replay a failing seed deterministically with: "
              "python -m repro faults --seed K -v")
    return 1 if failures else 0


def _cmd_perf(args) -> int:
    import json as json_module
    import pathlib

    from repro.bench import perf

    only = set(args.only.split(",")) if args.only else None
    if only:
        unknown = only - set(perf.SCENARIOS)
        if unknown:
            print(f"unknown scenarios: {', '.join(sorted(unknown))}")
            return 2
    # Snapshot the comparison report *before* running: --compare and
    # --out may name the same file (the default workflow diffs against
    # the committed BENCH_PERF.json, then overwrites it).
    previous = None
    if args.compare:
        try:
            previous = json_module.loads(pathlib.Path(args.compare).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read comparison report {args.compare}: {exc}")
            return 2
    all_runs = [
        perf.run_suite(quick=args.quick, only=only) for _ in range(args.runs)
    ]
    runs = all_runs[0] if args.runs == 1 else perf.median_runs(all_runs)
    for run in runs:
        print(
            f"{run.name:<12} wall {run.wall_seconds:8.3f} s   "
            f"cycles {run.cycles:>12,}   "
            f"{run.cycles_per_wall_second / 1e6:8.1f} Mcyc/s"
        )
    report = perf.build_report(runs, quick=args.quick)
    perf.write_report(report, args.out)
    print(f"report written to {args.out}")
    if previous is not None:
        prev_mode = previous.get("mode", "?")
        if prev_mode != report["mode"]:
            print(f"compare: note -- previous report is {prev_mode}-mode, "
                  f"this run is {report['mode']}-mode")
        print(f"deltas vs {args.compare}:")
        for name, old_w, new_w, old_c, new_c in perf.compare_reports(previous, report):
            if old_w is None:
                print(f"  {name:<12} wall    --    -> {new_w:8.3f} s             "
                      f"cycles            -- -> {new_c:>14,}")
                continue
            wall_pct = (new_w - old_w) / old_w * 100 if old_w else 0.0
            print(
                f"  {name:<12} wall {old_w:8.3f} -> {new_w:8.3f} s "
                f"({wall_pct:+6.1f}%)   "
                f"cycles {old_c:>14,} -> {new_c:>14,} ({new_c - old_c:+,})"
            )
    if args.update_goldens:
        perf.update_goldens(runs, quick=args.quick)
        print(f"goldens updated in {perf.GOLDEN_PATH}")
        if args.update_baseline:
            perf.write_report(report, perf.BASELINE_PATH)
            print(f"baseline updated in {perf.BASELINE_PATH}")
        return 0
    if args.update_baseline:
        perf.write_report(report, perf.BASELINE_PATH)
        print(f"baseline updated in {perf.BASELINE_PATH}")
        return 0
    exit_code = 0
    if not (args.no_golden_check or only):
        problems = perf.check_goldens(runs, quick=args.quick)
        for problem in problems:
            print(f"GOLDEN MISMATCH: {problem}")
        if not problems:
            print("golden check: all simulated cycle totals match")
        exit_code = 1 if problems else exit_code
    if args.gate:
        try:
            baseline = json_module.loads(perf.BASELINE_PATH.read_text())
        except (OSError, ValueError) as exc:
            print(f"perf gate: cannot read baseline {perf.BASELINE_PATH}: {exc}")
            return 1
        if baseline.get("mode") != report["mode"]:
            print(f"perf gate: baseline is {baseline.get('mode')}-mode but "
                  f"this run is {report['mode']}-mode")
            return 1
        gate_problems = perf.check_gate(runs, baseline)
        for problem in gate_problems:
            print(f"PERF GATE: {problem}")
        if not gate_problems:
            print(
                f"perf gate: all wall times within {perf.GATE_THRESHOLD:.0%} "
                f"of baseline (median of {args.runs})"
            )
        exit_code = 1 if gate_problems else exit_code
    return exit_code


def _cmd_virtio_batch(args) -> int:
    from repro.bench.ipc import run_doorbell_ablation
    from repro.bench.perf import run_iozone, run_redis_batch

    if args.quick:
        runs = [
            run_iozone(file_mb=2, record_kb=64, queue_depth=8),
            run_redis_batch(requests=64, pipeline=8),
        ]
        doorbells = run_doorbell_ablation(messages=128, burst=64)
    else:
        runs = [run_iozone(), run_redis_batch()]
        doorbells = run_doorbell_ablation()

    failures = 0
    for run in runs:
        extra = run.extra
        print(
            f"{run.name:<12} exits {extra['naive']['mmio_exits']:>5} -> "
            f"{extra['batched']['mmio_exits']:>5} "
            f"({extra['mmio_exit_reduction']:.1f}x)   "
            f"irqs {extra['naive']['irqs_raised']:>5} -> "
            f"{extra['batched']['irqs_raised']:>5} "
            f"({extra['irq_reduction']:.1f}x)   "
            f"cycles {extra['cycle_reduction']:.2f}x"
        )
        if extra["mmio_exit_reduction"] < 2:
            print(f"FAIL: {run.name} MMIO-exit reduction "
                  f"{extra['mmio_exit_reduction']:.2f}x < 2x")
            failures += 1
    print(
        f"{'doorbells':<12} rung {doorbells['eager']['doorbells']:>5} -> "
        f"{doorbells['adaptive']['doorbells']:>5} "
        f"({doorbells['doorbell_reduction']:.1f}x)   "
        f"suppressed {doorbells['adaptive']['suppressed']}   "
        f"cycles saved {doorbells['cycles_saved']:,}"
    )
    if doorbells["doorbell_reduction"] < 2:
        print(f"FAIL: doorbell reduction "
              f"{doorbells['doorbell_reduction']:.2f}x < 2x")
        failures += 1
    return 1 if failures else 0


def _cmd_redis_cluster(args) -> int:
    from repro.bench.redis_cluster import run_cluster

    result = run_cluster(
        shards=args.shards, clients=args.clients,
        requests=args.requests, pipeline=args.pipeline,
        wake_priority=not args.tail_wake,
    )
    total = result["requests"]
    print(
        f"{result['shards']} shards, {result['clients']} clients, "
        f"{total} requests, pipeline {result['pipeline']}"
    )
    print(
        f"serving {result['serving_cycles']:,} cycles "
        f"(+{result['setup_cycles']:,} bring-up)   "
        f"{result['cycles_per_request']:,.0f} cycles/request   "
        f"{result['throughput_rps']:,.0f} req/s"
    )
    print(
        f"latency p50 {result['p50_latency_us']:.1f} us   "
        f"p99 {result['p99_latency_us']:.1f} us"
    )
    print(
        f"ops {result['ops']}   mget splits {result['mget_splits']}   "
        f"doorbells {result['doorbells']}"
    )
    print(
        f"per-shard requests {result['per_shard_requests']}   "
        f"balance {result['shard_balance']:.3f}"
    )
    if result["shards_down"]:
        print(f"shards down: {result['shards_down']}")
    if result["errors"]:
        print(f"errors: {result['errors']} (samples {result['error_samples']})")
    return 1 if result["errors"] else 0


def _cmd_fleet(args) -> int:
    from repro.fleet import DEFAULT_SEAMS, run_fleet_ablation, run_fleet_campaign

    if args.ablate:
        cells = run_fleet_ablation()
        print(f"{'hosts':>5} {'cvms':>5} {'rate':>5} {'migr':>5} "
              f"{'downtime mean':>14} {'max':>10} {'dip%':>7} {'ops':>7}")
        bad = 0
        for cell in cells:
            print(
                f"{cell['hosts']:>5} {cell['cvms']:>5} "
                f"{cell['migration_rate']:>5} {cell['migrations']:>5} "
                f"{cell['downtime_mean_cycles']:>14,.0f} "
                f"{cell['downtime_max_cycles']:>10,} "
                f"{cell['throughput_dip_pct']:>+7.1f} {cell['ops']:>7}"
            )
            bad += cell["violations"]
        return 1 if bad else 0

    if args.seams is None:
        seams = DEFAULT_SEAMS
    elif args.seams.strip().lower() == "none":
        seams = None  # clean-room run, no injection
    else:
        try:
            seams = _parse_seams(args.seams)
        except ValueError as error:
            print(f"--seams: {error}")
            return 2
    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.seeds))
    failures = 0
    for result in run_fleet_campaign(
        seeds, hosts=args.hosts, cvms=args.cvms, epochs=args.epochs,
        migration_rate=args.rate, seams=seams,
    ):
        print(result.summary())
        ok = result.ok and result.migrations >= args.min_migrations
        if args.verbose or not ok:
            print(f"  plan: {result.plan}")
            print(f"  arrivals {result.arrivals} "
                  f"(all attestation-checked: "
                  f"{result.attest_checked == result.arrivals})   "
                  f"sched parks {result.sched.get('parks', 0)} "
                  f"wakes {result.sched.get('wakes', 0)}")
            for entry in result.failed:
                print(f"  failed migration: CVM {entry[0]} "
                      f"{entry[1]}: {entry[2]}")
            for entry in result.contained:
                print(f"  contained: CVM {entry[0]} {entry[1]}: {entry[2]}")
            for line in result.ferry_faults:
                print(f"  ferry fault: {line}")
            for line in result.violations:
                print(f"  VIOLATION: {line}")
            if result.migrations < args.min_migrations:
                print(f"  TOO FEW MIGRATIONS: {result.migrations} < "
                      f"{args.min_migrations}")
        if not ok:
            failures += 1
    print(f"fleet campaign: {len(seeds)} seeds, {failures} failing")
    return 1 if failures else 0


def _cmd_lint(args) -> int:
    from repro.lint.engine import run_cli

    return run_cli(args)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ZION reproduction: experiments, demos, diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    experiments = sub.add_parser("experiments", help="regenerate paper results")
    experiments.add_argument("--full", action="store_true", help="paper-scale loads")
    experiments.add_argument("--only", help="comma-separated subset, e.g. E1,E4")
    experiments.set_defaults(func=_cmd_experiments)
    demo = sub.add_parser("demo", help="quickstart demo with stats")
    demo.set_defaults(func=_cmd_demo)
    attack = sub.add_parser("attack", help="hypervisor attack battery")
    attack.set_defaults(func=_cmd_attack)
    stats = sub.add_parser("stats", help="run a mixed workload, dump stats")
    stats.set_defaults(func=_cmd_stats)
    faults = sub.add_parser("faults", help="seeded fault-injection campaign")
    faults.add_argument("--seeds", type=int, default=25,
                        help="run seeds 0..N-1 (default 25)")
    faults.add_argument("--seed", type=int, default=None,
                        help="replay exactly this seed (repro workflow)")
    faults.add_argument("--rounds", type=int, default=8,
                        help="ping-pong rounds per seed (default 8)")
    faults.add_argument("-v", "--verbose", action="store_true",
                        help="print each seed's plan and outcomes")
    faults.add_argument("--seams", default=None,
                        help="comma-separated seam subset to draw faults "
                             "from (e.g. enter,notify or the aliases "
                             "channel,lifecycle); default: every seam")
    faults.set_defaults(func=_cmd_faults)
    perf = sub.add_parser("perf", help="wall-clock performance harness")
    perf.add_argument("--quick", action="store_true",
                      help="CI-scale loads (same code paths, ~5x less work)")
    perf.add_argument("--out", default="BENCH_PERF.json",
                      help="report path (default BENCH_PERF.json)")
    perf.add_argument("--only", help="comma-separated scenario subset "
                      "(skips the golden check)")
    perf.add_argument("--no-golden-check", action="store_true",
                      help="measure only; skip the cycle-exactness gate")
    perf.add_argument("--update-goldens", action="store_true",
                      help="re-record golden cycle totals (model changes only)")
    perf.add_argument("--compare", metavar="PREV.json",
                      help="print per-scenario wall/cycle deltas against a "
                           "previous BENCH_PERF.json (read before --out is "
                           "overwritten, so both may name the same file)")
    perf.add_argument("--runs", type=int, default=1, metavar="N",
                      help="repeat the suite N times and report the "
                           "per-scenario median wall time (default 1)")
    perf.add_argument("--gate", action="store_true",
                      help="fail when any scenario's wall time regresses "
                           ">10%% over the committed quick-mode baseline "
                           "(perf_baseline_quick.json)")
    perf.add_argument("--update-baseline", action="store_true",
                      help="re-record the committed wall-clock baseline "
                           "for the perf gate from this run")
    perf.set_defaults(func=_cmd_perf)
    virtio_batch = sub.add_parser(
        "virtio-batch",
        help="batched-vs-naive virtio + doorbell ablation smoke",
    )
    virtio_batch.add_argument("--quick", action="store_true",
                              help="CI-scale loads (same code paths)")
    virtio_batch.set_defaults(func=_cmd_virtio_batch)
    cluster = sub.add_parser("redis-cluster",
                             help="sharded redis over SM channels, one run")
    cluster.add_argument("--shards", type=int, default=4,
                         help="shard CVM count (default 4)")
    cluster.add_argument("--clients", type=int, default=2,
                         help="client CVM count (default 2)")
    cluster.add_argument("--requests", type=int, default=48,
                         help="requests per client (default 48)")
    cluster.add_argument("--pipeline", type=int, default=8,
                         help="in-flight requests per client (default 8)")
    cluster.add_argument("--tail-wake", action="store_true",
                         help="doorbell wakes go to the back of the run "
                              "queue (throughput policy; default is "
                              "front-wake, the latency policy)")
    cluster.set_defaults(func=_cmd_redis_cluster)
    fleet = sub.add_parser("fleet",
                           help="multi-host CVM fleet: lifecycle + live "
                                "migration under adversarial load")
    fleet.add_argument("--hosts", type=int, default=4,
                       help="simulated host count (default 4)")
    fleet.add_argument("--cvms", type=int, default=12,
                       help="fleet CVM count (default 12)")
    fleet.add_argument("--seeds", type=int, default=3,
                       help="run seeds 0..N-1 (default 3)")
    fleet.add_argument("--seed", type=int, default=None,
                       help="replay exactly this seed (repro workflow)")
    fleet.add_argument("--epochs", type=int, default=6,
                       help="serving epochs per seed (default 6; epochs "
                            "0-1 are the cold start and warm baseline)")
    fleet.add_argument("--rate", type=int, default=4,
                       help="rebalancing group-moves per epoch (default 4)")
    fleet.add_argument("--seams", default=None,
                       help="fault seam subset (default "
                            "migration,channel,lifecycle; 'none' disables "
                            "injection)")
    fleet.add_argument("--min-migrations", type=int, default=10,
                       help="fail a seed that completes fewer successful "
                            "migrations (default 10)")
    fleet.add_argument("--ablate", action="store_true",
                       help="run the migration-rate x fleet-size ablation "
                            "grid instead of the campaign")
    fleet.add_argument("-v", "--verbose", action="store_true",
                       help="print each seed's plan and outcomes")
    fleet.set_defaults(func=_cmd_fleet)
    lint = sub.add_parser("lint", help="zionlint static boundary analyzer")
    from repro.lint.engine import add_arguments as _lint_add_arguments

    _lint_add_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
