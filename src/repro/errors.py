"""Exception hierarchy for the ZION reproduction.

Simulator-level errors (bugs in how the simulation is driven) are kept
distinct from *architectural* events (faults a real machine would raise),
which are modelled as :class:`TrapRaised` and handled by the trap machinery
rather than propagating to the caller.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A machine, VM, or device was configured inconsistently."""


class MemoryError_(ReproError):
    """Out-of-range or unbacked physical memory access at simulator level."""


class SecurityViolation(ReproError):
    """An action that the ZION design forbids was attempted.

    Raised when the simulation detects a breach of a security invariant that
    the real system enforces by construction (e.g. the SM being asked to map
    a frame already owned by another confidential VM). These are *simulation
    assertions*: on real hardware the corresponding request would be refused
    by the SM, and most call sites catch this to model that refusal.
    """


class EcallError(ReproError):
    """An SM ECALL was invoked with invalid arguments."""


class MigrationRejected(SecurityViolation):
    """A migrated-in CVM failed its arrival attestation check.

    The blob authenticated (the sealing MAC passed), but the measurement
    the destination SM reports does not match what the fleet expected for
    this CVM -- the signature of an untrusted ferry swapping in a
    different, validly-sealed guest.  The orchestrator destroys the
    arrival and fail-stops that one CVM; the planned source instance (if
    it was never exported) keeps serving.
    """

    def __init__(self, cvm_id: int, expected: bytes, got: bytes):
        self.cvm_id = cvm_id
        self.expected = expected
        self.got = got
        super().__init__(
            f"arrival attestation mismatch for CVM {cvm_id}: expected "
            f"measurement {expected.hex()[:16]}..., got {got.hex()[:16]}..."
        )


class ChannelCorrupt(ReproError):
    """Shared channel state failed a consumer-side sanity check.

    Raised when a value read from an inter-CVM channel window (a ring
    counter or a message length prefix) is inconsistent with what the
    ring's own invariants allow -- the signature of a corrupted or
    actively malicious peer.  The reader must treat the channel as dead
    rather than act on the value (e.g. copy an attacker-chosen length).
    """


class ShardDown(ReproError):
    """A key-value cluster shard stopped answering its SM channel.

    Raised (or encoded as a ``-ERR SHARDDOWN`` RESP reply) by the slot
    router when a shard's channel endpoint fail-stops -- the peer
    corrupted the shared ring, closed its end, or simply stopped
    draining -- so in-flight and future requests for that shard's slots
    fail fast with a typed error instead of wedging the pipeline.
    """

    def __init__(self, shard: int, slot: int | None = None, reason: str = ""):
        self.shard = shard
        self.slot = slot
        detail = f" (slot {slot})" if slot is not None else ""
        super().__init__(
            f"shard {shard} is down{detail}: {reason or 'channel unresponsive'}"
        )


class VirtioError(ReproError):
    """Base class for virtio transport errors (device or driver side)."""


class VirtqueueOverflow(VirtioError):
    """A descriptor was posted to a virtqueue whose ring is full.

    Driver-side bug (the guest must respect the ring size it chose);
    typed so callers can distinguish it from device misbehaviour.
    """


class VirtioDmaError(VirtioError):
    """A virtio device was asked to DMA with no translation installed.

    Host wiring bug: :meth:`repro.machine.Machine.attach_virtio_block`
    and friends install ``dma_translate`` before the device is visible
    to the guest, so hitting this means the device was constructed by
    hand and used half-wired.
    """


class VirtioIoError(VirtioError):
    """A virtio request completed with a non-OK status.

    Device side, this is raised *internally* for a guest-posted request
    the device refuses (e.g. I/O beyond the disk, a read spanning mixed
    real/symbolic regions) and converted into the completed descriptor's
    ``status`` byte -- it never unwinds through the device model into
    the host loop.  Driver side, it is raised to the guest caller when a
    completion carries a non-OK status, carrying that status.
    """

    def __init__(self, message: str, status: int = 1):
        self.status = status
        super().__init__(message)


class TrapRaised(ReproError):
    """An architectural trap (exception) occurred during an access.

    Carries the RISC-V cause and trap value so the dispatch machinery can
    route it through the delegation rules exactly like hardware would.
    """

    def __init__(self, cause, tval=0, gpa=None, message=""):
        super().__init__(message or f"trap: {cause!r} tval={tval:#x}")
        self.cause = cause
        self.tval = tval
        #: Guest physical address for guest-page faults (goes to htval).
        self.gpa = gpa
