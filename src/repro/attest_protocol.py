"""Remote attestation protocol: verifier <-> confidential guest.

Attestation reports (repro.sm.attestation) are only useful inside a
protocol; this module implements the standard one a ZION tenant would
run before entrusting a CVM with secrets:

1. the **verifier** (tenant-side, off-machine) issues a fresh challenge;
2. the **guest** binds the challenge *and* its ephemeral key-exchange
   share into the report's user data and fetches the signed report via
   the SM ECALL;
3. the verifier checks the signature (platform key), the measurement
   (against its policy of known-good images), the challenge (freshness),
   then completes the key exchange;
4. both sides derive a session key; the verifier can now send secrets
   that only *this measured guest on this platform* can read.

The key exchange is a stdlib-only stand-in with the right binding
structure (hash-committed ephemeral shares -> HKDF-style derivation); a
production implementation would use X25519 under the same message flow.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac

from repro.sm.attestation import AttestationReport


class AttestationError(Exception):
    """The verifier rejected the evidence."""


def _kdf(*parts: bytes) -> bytes:
    state = hashlib.sha256(b"zion-attest-kdf")
    for part in parts:
        state.update(len(part).to_bytes(4, "little"))
        state.update(part)
    return state.digest()


@dataclasses.dataclass(frozen=True)
class Evidence:
    """What the guest sends back to the verifier."""

    report: AttestationReport
    guest_share: bytes


class GuestAttestationAgent:
    """Runs inside the CVM: answers challenges with bound evidence."""

    def __init__(self, ctx):
        self.ctx = ctx

    def respond(self, challenge: bytes) -> Evidence:
        """Produce evidence for ``challenge``.

        The ephemeral share comes from the SM's platform RNG (the guest
        has no other entropy source at this point of its life), and the
        report_data field commits to challenge + share so neither can be
        swapped after signing.
        """
        if len(challenge) < 16:
            raise AttestationError("challenge too short to be fresh")
        guest_secret = self.ctx.get_random(32)
        guest_share = hashlib.sha256(b"share" + guest_secret).digest()
        binding = _kdf(challenge, guest_share)
        report = self.ctx.attestation_report(report_data=binding)
        # The guest remembers its secret for the key derivation.
        self._secret = guest_secret
        return Evidence(report=report, guest_share=guest_share)

    def session_key(self, verifier_share: bytes) -> bytes:
        """Guest-side session key (after the verifier's share arrives)."""
        return _kdf(b"session", self._secret, verifier_share)


class Verifier:
    """Tenant-side relying party.

    ``trusted_measurements`` is the policy: the launch digests of guest
    images the tenant is willing to talk to.  ``platform_verifier`` checks
    report signatures -- in this simulation, the machine's attestation
    service plays the certificate chain's role.
    """

    def __init__(self, platform_verifier, trusted_measurements, rng=None):
        self._platform = platform_verifier
        self._trusted = {bytes(m) for m in trusted_measurements}
        self._rng_state = hashlib.sha256(b"verifier-seed").digest()
        self._outstanding: dict[bytes, bool] = {}

    # -- protocol steps -------------------------------------------------------

    def challenge(self) -> bytes:
        """A fresh, single-use challenge."""
        self._rng_state = hashlib.sha256(self._rng_state + b"next").digest()
        challenge = self._rng_state[:24]
        self._outstanding[challenge] = True
        return challenge

    def verify(self, challenge: bytes, evidence: Evidence) -> bytes:
        """Check the evidence; returns the verifier's key share.

        Raises :class:`AttestationError` on any failure; consumes the
        challenge either way (no replays).
        """
        if not self._outstanding.pop(challenge, False):
            raise AttestationError("unknown or replayed challenge")
        report = evidence.report
        if not self._platform.verify_report(report):
            raise AttestationError("platform signature invalid")
        if report.measurement not in self._trusted:
            raise AttestationError(
                f"measurement {report.measurement.hex()[:16]}... not in policy"
            )
        expected_binding = _kdf(challenge, evidence.guest_share)
        if not hmac.compare_digest(report.report_data, expected_binding):
            raise AttestationError("report does not bind this challenge/share")
        self._rng_state = hashlib.sha256(self._rng_state + b"share").digest()
        self._verifier_secret = self._rng_state
        return hashlib.sha256(b"vshare" + self._verifier_secret).digest()

    def session_key(self, guest_share: bytes) -> bytes:
        """Verifier-side session key.

        NOTE (simulation stand-in): with real X25519 both sides would mix
        their private key with the peer's public share; the stdlib-only
        stand-in derives from the guest's *secret* via the SM-shared RNG
        transcript, so here we model the agreed key as a function the
        test harness can compute on both ends.
        """
        raise NotImplementedError(
            "use agree_session_key() which models the completed exchange"
        )


def agree_session_key(agent: GuestAttestationAgent, verifier_share: bytes) -> bytes:
    """The session key both parties hold after a successful handshake."""
    return agent.session_key(verifier_share)


def seal_message(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC a message under the session key."""
    stream = b""
    counter = 0
    while len(stream) < len(plaintext):
        stream += hmac.new(key, b"ks" + counter.to_bytes(8, "little"), hashlib.sha256).digest()
        counter += 1
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hmac.new(key, b"tag" + ciphertext, hashlib.sha256).digest()
    return ciphertext + tag


def open_message(key: bytes, sealed: bytes) -> bytes:
    """Verify + decrypt; raises :class:`AttestationError` on tampering."""
    if len(sealed) < 32:
        raise AttestationError("sealed message too short")
    ciphertext, tag = sealed[:-32], sealed[-32:]
    expected = hmac.new(key, b"tag" + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, tag):
        raise AttestationError("sealed message failed authentication")
    stream = b""
    counter = 0
    while len(stream) < len(ciphertext):
        stream += hmac.new(key, b"ks" + counter.to_bytes(8, "little"), hashlib.sha256).digest()
        counter += 1
    return bytes(a ^ b for a, b in zip(ciphertext, stream))
