"""Sv39 (stage-1) and Sv39x4 (stage-2) page tables.

Tables are real: :meth:`PageTable.map` writes 64-bit PTE words into
simulated physical memory through a caller-supplied *accessor*, and
:meth:`PageTable.walk` reads them back.  The accessor carries the
privilege of whoever is editing the table -- the SM edits through an
unchecked M-mode accessor, the hypervisor through a PMP-checked one -- so
"the hypervisor cannot modify a CVM's page table" is enforced by the same
mechanism as on hardware: the table lives in PMP-protected memory.

PTE layout follows the privileged spec: V/R/W/X/U/G/A/D in bits 0..7 and
the PPN in bits 10..53.  A PTE with V=1 and R=W=X=0 is a pointer to the
next level; leaves are permitted at any level (superpages) with the usual
alignment requirement.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.isa.traps import AccessType
from repro.mem.physmem import PAGE_SIZE

PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
PTE_G = 1 << 5
PTE_A = 1 << 6
PTE_D = 1 << 7

_PPN_SHIFT = 10
_PPN_MASK = ((1 << 44) - 1) << _PPN_SHIFT

#: PTE permission bit required for each access type.
_REQUIRED_BIT = {
    AccessType.LOAD: PTE_R,
    AccessType.STORE: PTE_W,
    AccessType.FETCH: PTE_X,
}
# The same mapping as a member attribute: permission checks run once per
# guest access, and an attribute load beats an enum-keyed dict hash.
for _access, _bit in _REQUIRED_BIT.items():
    _access.required_pte_bit = _bit
del _access, _bit


def pte_pack(pa: int, flags: int) -> int:
    """Build a PTE word pointing at physical address ``pa``."""
    if pa % PAGE_SIZE:
        raise ValueError(f"PTE target must be page-aligned: {pa:#x}")
    return (pa >> 12) << _PPN_SHIFT | flags


def pte_target(pte: int) -> int:
    """Physical address a PTE points at."""
    return (pte & _PPN_MASK) >> _PPN_SHIFT << 12


def pte_is_leaf(pte: int) -> bool:
    """Whether the PTE is a leaf (any of R/W/X set)."""
    return bool(pte & (PTE_R | PTE_W | PTE_X))


class WalkResult:
    """Outcome of a successful translation walk.

    A ``__slots__`` value object (one is built per completed walk, which
    is once or twice per guest access on the TLB-miss path).
    """

    __slots__ = ("pa", "flags", "level", "levels_touched")

    def __init__(self, pa: int, flags: int, level: int, levels_touched: int):
        self.pa = pa
        self.flags = flags
        self.level = level  # 0 = 4 KB leaf; higher = superpage
        self.levels_touched = levels_touched  # table reads (cycle charging)

    def __repr__(self):
        return (
            f"WalkResult(pa={self.pa:#x}, flags={self.flags:#x}, "
            f"level={self.level}, levels_touched={self.levels_touched})"
        )

    def __eq__(self, other):
        if not isinstance(other, WalkResult):
            return NotImplemented
        return (
            self.pa == other.pa
            and self.flags == other.flags
            and self.level == other.level
            and self.levels_touched == other.levels_touched
        )


class PageTable:
    """A radix page table scheme (generic over Sv39 / Sv39x4 geometry)."""

    #: VPN field widths from root (index 0) to leaf.
    vpn_bits: tuple = (9, 9, 9)

    def __init__(self):
        self.levels = len(self.vpn_bits)
        # Per-depth geometry, precomputed once: recomputing these (a
        # slice + sum per PTE) dominated walk time on the hot path.
        self._shifts = tuple(
            12 + sum(self.vpn_bits[depth + 1 :]) for depth in range(self.levels)
        )
        self._masks = tuple((1 << bits) - 1 for bits in self.vpn_bits)
        self._spans = tuple(PAGE_SIZE << (shift - 12) for shift in self._shifts)
        self._va_limit = 1 << self.va_bits

    @property
    def root_entries(self) -> int:
        return 1 << self.vpn_bits[0]

    @property
    def root_size(self) -> int:
        return self.root_entries * 8

    @property
    def va_bits(self) -> int:
        return 12 + sum(self.vpn_bits)

    def _index(self, va: int, depth: int) -> int:
        """Index into the table at ``depth`` (0 = root) for ``va``."""
        return (va >> self._shifts[depth]) & self._masks[depth]

    def _leaf_span(self, depth: int) -> int:
        """Bytes covered by a leaf installed at ``depth``."""
        return self._spans[depth]

    def _check_va(self, va: int) -> None:
        if not 0 <= va < self._va_limit:
            raise MemoryError_(
                f"address {va:#x} outside the {self.va_bits}-bit space"
            )

    # -- mapping -----------------------------------------------------------

    def map(self, accessor, root_pa: int, va: int, pa: int, flags: int, alloc_table, level: int = 0):
        """Install a leaf mapping ``va -> pa``.

        ``alloc_table`` is called to obtain a zeroed, page-aligned frame for
        each intermediate table that must be created; the caller thereby
        controls *where tables live* (ZION's split-table design hinges on
        this).  ``level`` 0 maps a 4 KB page; ``level`` 1 a 2 MB superpage,
        etc.  Returns the list of table frames allocated.
        """
        self._check_va(va)
        leaf_depth = self.levels - 1 - level
        span = self._leaf_span(leaf_depth)
        if va % span or pa % span:
            raise ValueError(
                f"level-{level} mapping requires {span:#x} alignment"
            )
        allocated = []
        table = root_pa
        read_u64 = accessor.read_u64
        shifts = self._shifts
        masks = self._masks
        for depth in range(leaf_depth):
            slot = table + 8 * ((va >> shifts[depth]) & masks[depth])
            pte = read_u64(slot)
            if not pte & PTE_V:
                child = alloc_table()
                allocated.append(child)
                accessor.write_u64(slot, pte_pack(child, PTE_V))
                table = child
            elif pte & 0b1110:  # leaf (R|W|X)
                raise MemoryError_(
                    f"cannot map {va:#x}: covered by a superpage at depth {depth}"
                )
            else:
                table = (pte & _PPN_MASK) >> _PPN_SHIFT << 12
        slot = table + 8 * ((va >> shifts[leaf_depth]) & masks[leaf_depth])
        old = accessor.read_u64(slot)
        if old & PTE_V:
            raise MemoryError_(f"{va:#x} is already mapped")
        accessor.write_u64(slot, pte_pack(pa, flags | PTE_V))
        return allocated

    def unmap(self, accessor, root_pa: int, va: int) -> int:
        """Remove the leaf covering ``va``; returns the old target PA."""
        self._check_va(va)
        table = root_pa
        for depth in range(self.levels):
            slot = table + 8 * self._index(va, depth)
            pte = accessor.read_u64(slot)
            if not pte & PTE_V:
                raise MemoryError_(f"{va:#x} is not mapped")
            if pte_is_leaf(pte):
                accessor.write_u64(slot, 0)
                return pte_target(pte)
            table = pte_target(pte)
        raise MemoryError_(f"walk for {va:#x} bottomed out without a leaf")

    def set_flags(self, accessor, root_pa: int, va: int, flags: int) -> None:
        """Rewrite the permission bits of the leaf covering ``va``."""
        self._check_va(va)
        table = root_pa
        for depth in range(self.levels):
            slot = table + 8 * self._index(va, depth)
            pte = accessor.read_u64(slot)
            if not pte & PTE_V:
                raise MemoryError_(f"{va:#x} is not mapped")
            if pte_is_leaf(pte):
                accessor.write_u64(slot, pte & _PPN_MASK | flags | PTE_V)
                return
            table = pte_target(pte)

    # -- translation -----------------------------------------------------------

    def walk(self, accessor, root_pa: int, va: int) -> WalkResult | None:
        """Translate ``va``; ``None`` when no valid leaf covers it."""
        self._check_va(va)
        read_u64 = accessor.read_u64
        shifts = self._shifts
        masks = self._masks
        table = root_pa
        for depth in range(self.levels):
            slot = table + 8 * ((va >> shifts[depth]) & masks[depth])
            pte = read_u64(slot)
            if not pte & PTE_V:
                return None
            if pte & 0b1110:  # leaf (R|W|X)
                span = self._spans[depth]
                base = (pte & _PPN_MASK) >> _PPN_SHIFT << 12
                return WalkResult(
                    pa=base + (va & (span - 1)),
                    flags=pte & 0xFF,
                    level=self.levels - 1 - depth,
                    levels_touched=depth + 1,
                )
            table = (pte & _PPN_MASK) >> _PPN_SHIFT << 12
        return None

    def permits(self, flags: int, access: AccessType) -> bool:
        """Whether leaf permission ``flags`` allow ``access``."""
        return bool(flags & access.required_pte_bit)

    # -- introspection -----------------------------------------------------------

    def iter_leaves(self, accessor, root_pa: int):
        """Yield ``(va, pa, flags, level)`` for every installed leaf."""
        yield from self._iter(accessor, root_pa, 0, 0)

    def _iter(self, accessor, table: int, depth: int, va_prefix: int):
        entries = self.root_entries if depth == 0 else 512
        below = sum(self.vpn_bits[depth + 1 :])
        for index in range(entries):
            pte = accessor.read_u64(table + 8 * index)
            if not pte & PTE_V:
                continue
            va = va_prefix | index << (12 + below)
            if pte_is_leaf(pte):
                yield va, pte_target(pte), pte & 0xFF, self.levels - 1 - depth
            else:
                yield from self._iter(accessor, pte_target(pte), depth + 1, va)

    def iter_tables(self, accessor, root_pa: int):
        """Yield the physical address of every table page (root included)."""
        yield root_pa
        yield from self._iter_tables(accessor, root_pa, 0)

    def _iter_tables(self, accessor, table: int, depth: int):
        if depth == self.levels - 1:
            return
        entries = self.root_entries if depth == 0 else 512
        for index in range(entries):
            pte = accessor.read_u64(table + 8 * index)
            if pte & PTE_V and not pte_is_leaf(pte):
                child = pte_target(pte)
                yield child
                yield from self._iter_tables(accessor, child, depth + 1)


class Sv39(PageTable):
    """Stage-1 (or bare-supervisor) 39-bit scheme: 512-entry root."""

    vpn_bits = (9, 9, 9)


class Sv39x4(PageTable):
    """Stage-2 scheme: 41-bit guest-physical space, 16 KB / 2048-entry root."""

    vpn_bits = (11, 9, 9)
