"""Guest-access trace cache: recorded replays of hot access sequences.

Workload hot loops issue the same ``load_seq``/``store_seq``/``touch_seq``
shapes over and over (a redis request touches the same 10 working-set
pages; a ring poll reads the same descriptors).  The first execution of a
shape runs the real per-access engine and *records* what happened -- the
resolved host addresses and the exact charge vector.  Later executions
replay the record against physical memory, provided a set of cheap
validity proofs shows the machine state still implies the identical
architectural outcome:

- a **map token** ``(SplitTableManager.map_generation,
  Hypervisor.map_generation)``: unchanged means no stage-2 table anywhere
  was mutated, so every recorded walk still resolves identically;
- for all-hit traces, the TLB ``generation`` (or, when that is stale, a
  structural re-check that every recorded entry is still present with the
  recorded value): entries can only change via a flush/evict, each of
  which bumps the generation;
- for all-miss traces, every recorded key being *absent* from the TLB.

Only *pure* runs are stored -- every access a TLB hit, or every access a
TLB miss with a valid walk (distinct pages, no faults, no fallback to the
generic path).  Mixed runs, faulting runs, and anything that left the
fast-path region replay nothing and always re-execute.  This keeps the
validity argument airtight: replays are bit-identical in total cycles,
per-category counts, TLB statistics, and memory effects, because the
replay performs the same state updates in the same order and the proofs
guarantee each recorded per-access outcome is the one the live engine
would reach.

Wall-clock only: the cache changes how fast *Python* reproduces a
sequence, never what the sequence charges.
"""

from __future__ import annotations

from collections import OrderedDict


class SeqTrace:
    """One recorded access sequence, pure in flavor ("hit" or "miss")."""

    __slots__ = (
        "flavor",
        "token",
        "tlb_gen",
        "keys",
        "pas",
        "entries",
        "walk_cycles",
        "expected",
    )

    def __init__(self, flavor, token, tlb_gen, keys, pas, entries, walk_cycles, expected):
        #: "hit" (every access a TLB hit) or "miss" (every access a valid-walk miss).
        self.flavor = flavor
        #: (split.map_generation, hypervisor.map_generation) at record time.
        self.token = token
        #: TLB generation at record time ("hit" traces; fast validity shortcut).
        self.tlb_gen = tlb_gen
        #: Per-access TLB key ``(vmid, vpage)``.
        self.keys = keys
        #: Per-access resolved physical address.
        self.pas = pas
        #: Per-access TLB entry value ``(ppage, flags)`` ("miss": what to insert).
        self.entries = entries
        #: Per-access fused walk charge, cycles ("miss" traces only).
        self.walk_cycles = walk_cycles
        #: key -> (ppage, flags) expected present ("hit" traces only).
        self.expected = expected


class TraceCache:
    """Bounded LRU of :class:`SeqTrace`, keyed by the call-site shape.

    Keys are ``(op, vmid, hgatp_root, addresses, size)`` where
    ``addresses`` is ``(gva0, step, count)`` for strided sequences or the
    literal gva tuple for ``touch_seq``.  The vmid/root components make
    stale traces from destroyed VMs unreachable (vmids are never reused
    within a machine), so the cache needs no teardown hook.
    """

    __slots__ = ("capacity", "_traces")

    def __init__(self, capacity: int = 2048):
        self.capacity = capacity
        self._traces: OrderedDict = OrderedDict()

    def get(self, key):
        """The trace recorded for ``key``, refreshed in LRU order."""
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
        return trace

    def put(self, key, trace: SeqTrace) -> None:
        """Record (or replace) ``key``'s trace, evicting the LRU at capacity."""
        traces = self._traces
        traces[key] = trace
        traces.move_to_end(key)
        while len(traces) > self.capacity:
            traces.popitem(last=False)

    def __len__(self):
        return len(self._traces)
