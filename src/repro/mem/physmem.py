"""Sparse physical memory and the permission-checked memory bus.

:class:`PhysicalMemory` is the raw DRAM array (sparse, page-granular, so a
1 GB machine costs only what is actually touched).  :class:`MemoryBus`
wraps it with the two hardware checkers that ZION's isolation rests on:
per-hart PMP for CPU accesses and the platform IOPMP for DMA.  All software
below M mode and all devices must go through the bus; only the SM's own
M-mode accesses bypass permission checks (as the PMP architecture
specifies for M mode).
"""

from __future__ import annotations

import struct

from repro.errors import MemoryError_, TrapRaised
from repro.isa.iopmp import IopmpUnit
from repro.isa.traps import AccessType, access_fault_for

PAGE_SIZE = 4096

_U64 = struct.Struct("<Q")


def page_of(addr: int) -> int:
    """Page index containing physical address ``addr``."""
    return addr >> 12


def page_base(addr: int) -> int:
    """Base address of the page containing ``addr``."""
    return addr & ~(PAGE_SIZE - 1)


class PhysicalMemory:
    """Byte-addressable sparse DRAM.

    Pages materialise (zero-filled) on first write; reads of untouched
    pages return zeros, matching DRAM scrubbed at boot.
    """

    def __init__(self, base: int, size: int):
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("memory base and size must be page-aligned")
        self.base = base
        self.size = size
        # Cached bound: ``end`` is consulted on every u64 access, and a
        # property call per check was measurable on the walk path.
        self._end = base + size
        self._pages: dict[int, bytearray] = {}

    @property
    def end(self) -> int:
        return self._end

    def contains(self, addr: int, size: int = 1) -> bool:
        """Whether the range lies inside this DRAM."""
        return self.base <= addr and addr + size <= self._end

    def _check_range(self, addr: int, size: int) -> None:
        if size < 0:
            raise MemoryError_(f"negative access size {size}")
        if not self.contains(addr, size):
            raise MemoryError_(
                f"physical access [{addr:#x}, {addr + size:#x}) outside "
                f"DRAM [{self.base:#x}, {self.end:#x})"
            )

    def _page(self, index: int, create: bool) -> bytearray | None:
        page = self._pages.get(index)
        if page is None and create:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr`` (zeros for untouched pages)."""
        self._check_range(addr, size)
        offset = addr & (PAGE_SIZE - 1)
        if offset + size <= PAGE_SIZE:
            # Single-page fast path: one slice, no bytearray assembly.
            page = self._pages.get(addr >> 12)
            if page is None:
                return bytes(size)
            return bytes(page[offset : offset + size])
        out = bytearray()
        while size:
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(size, PAGE_SIZE - offset)
            page = self._page(page_of(addr), create=False)
            if page is None:
                out += bytes(chunk)
            else:
                out += page[offset : offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``, materialising pages as needed."""
        size = len(data)
        self._check_range(addr, size)
        offset = addr & (PAGE_SIZE - 1)
        if offset + size <= PAGE_SIZE:
            index = addr >> 12
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset : offset + size] = data
            return
        view = memoryview(data)
        while view:
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(len(view), PAGE_SIZE - offset)
            page = self._page(page_of(addr), create=True)
            page[offset : offset + chunk] = view[:chunk]
            addr += chunk
            view = view[chunk:]

    def read_u64(self, addr: int) -> int:
        """Read one aligned 64-bit little-endian word."""
        if addr & 7:
            raise MemoryError_(f"misaligned u64 read at {addr:#x}")
        if not (self.base <= addr and addr + 8 <= self._end):
            self._check_range(addr, 8)
        # Aligned u64s never straddle a page: unpack in place.
        page = self._pages.get(addr >> 12)
        if page is None:
            return 0
        return _U64.unpack_from(page, addr & (PAGE_SIZE - 1))[0]

    def write_u64(self, addr: int, value: int) -> None:
        """Write one aligned 64-bit little-endian word."""
        if addr & 7:
            raise MemoryError_(f"misaligned u64 write at {addr:#x}")
        if not (self.base <= addr and addr + 8 <= self._end):
            self._check_range(addr, 8)
        index = addr >> 12
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        _U64.pack_into(page, addr & (PAGE_SIZE - 1), value & (1 << 64) - 1)

    def zero_range(self, addr: int, size: int) -> None:
        """Scrub a range (page-efficient; whole pages are dropped)."""
        self._check_range(addr, size)
        if size == PAGE_SIZE and not addr & (PAGE_SIZE - 1):
            # Exactly one aligned page (the allocator's scrub): drop it.
            self._pages.pop(addr >> 12, None)
            return
        while size:
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(size, PAGE_SIZE - offset)
            if offset == 0 and chunk == PAGE_SIZE:
                self._pages.pop(page_of(addr), None)
            else:
                page = self._page(page_of(addr), create=False)
                if page is not None:
                    page[offset : offset + chunk] = bytes(chunk)
            addr += chunk
            size -= chunk

    def resident_pages(self) -> int:
        """Number of materialised pages (simulator introspection)."""
        return len(self._pages)


class MemoryBus:
    """The checked path to physical memory.

    CPU accesses are checked against the issuing hart's PMP at the hart's
    *effective privilege* (VS/VU are below M like HS/U); DMA accesses are
    checked against the platform IOPMP by bus-master source ID.  Denials
    raise the architecturally-correct access-fault trap.
    """

    def __init__(self, dram: PhysicalMemory, iopmp: IopmpUnit | None = None):
        self.dram = dram
        self.iopmp = iopmp if iopmp is not None else IopmpUnit()

    # -- CPU side -----------------------------------------------------------

    def _cpu_check(self, hart, addr: int, size: int, access: AccessType) -> None:
        if not hart.pmp.check(addr, size, access, hart.mode):
            raise TrapRaised(
                access_fault_for(access),
                tval=addr,
                message=f"PMP denied {access.value} at {addr:#x} from {hart.mode.name}",
            )

    def cpu_read(self, hart, addr: int, size: int) -> bytes:
        """PMP-checked CPU load at the hart's current privilege."""
        self._cpu_check(hart, addr, size, AccessType.LOAD)
        return self.dram.read(addr, size)

    def cpu_write(self, hart, addr: int, data: bytes) -> None:
        """PMP-checked CPU store at the hart's current privilege."""
        self._cpu_check(hart, addr, len(data), AccessType.STORE)
        self.dram.write(addr, data)

    def cpu_read_u64(self, hart, addr: int) -> int:
        """PMP-checked 64-bit CPU load."""
        self._cpu_check(hart, addr, 8, AccessType.LOAD)
        return self.dram.read_u64(addr)

    def cpu_write_u64(self, hart, addr: int, value: int) -> None:
        """PMP-checked 64-bit CPU store."""
        self._cpu_check(hart, addr, 8, AccessType.STORE)
        self.dram.write_u64(addr, value)

    def cpu_zero_range(self, hart, addr: int, size: int) -> None:
        """PMP-checked bulk zeroing (the host's page-scrub primitive).

        One store-permission check over the whole range, then the raw
        sparse-aware clear: a scrub that strays into secure memory
        faults exactly like any other hypervisor store.
        """
        self._cpu_check(hart, addr, size, AccessType.STORE)
        self.dram.zero_range(addr, size)

    def cpu_fetch_check(self, hart, addr: int, size: int = 4) -> None:
        """PMP check for an instruction fetch (no data returned)."""
        self._cpu_check(hart, addr, size, AccessType.FETCH)

    # -- DMA side ------------------------------------------------------------

    def _dma_check(self, source_id: int, addr: int, size: int, access: AccessType) -> None:
        if not self.iopmp.check(source_id, addr, size, access):
            raise TrapRaised(
                access_fault_for(access),
                tval=addr,
                message=f"IOPMP denied {access.value} at {addr:#x} from device {source_id}",
            )

    def dma_read(self, source_id: int, addr: int, size: int) -> bytes:
        """IOPMP-checked device read by bus-master source id."""
        self._dma_check(source_id, addr, size, AccessType.LOAD)
        return self.dram.read(addr, size)

    def dma_write(self, source_id: int, addr: int, data: bytes) -> None:
        """IOPMP-checked device write by bus-master source id."""
        self._dma_check(source_id, addr, len(data), AccessType.STORE)
        self.dram.write(addr, data)

    def dma_check_range(self, source_id: int, addr: int, size: int, access: AccessType) -> None:
        """Permission-check a DMA range without moving data.

        Used by the accounting-only bulk-transfer path: the check is what
        security depends on; the byte movement is charged to the cycle
        ledger by the device model.
        """
        self._dma_check(source_id, addr, size, access)
