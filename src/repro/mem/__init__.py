"""Memory substrate: physical memory, the checked bus, paging, and TLB.

Page tables are *real*: mapping writes 64-bit PTE words into simulated
physical memory and translation walks them back out, so the isolation
claims ZION makes about page-table placement (CVM tables live in the
secure pool; the hypervisor's root table physically contains no entry that
reaches a secure frame) are checkable facts about bytes in memory, not
bookkeeping conventions.
"""

from repro.mem.physmem import PAGE_SIZE, MemoryBus, PhysicalMemory
from repro.mem.frames import FrameAllocator
from repro.mem.pagetable import (
    PTE_D,
    PTE_R,
    PTE_U,
    PTE_V,
    PTE_W,
    PTE_X,
    PageTable,
    Sv39,
    Sv39x4,
)
from repro.mem.tlb import Tlb
from repro.mem.translation import AddressTranslator, TranslationResult

__all__ = [
    "PAGE_SIZE",
    "PhysicalMemory",
    "MemoryBus",
    "FrameAllocator",
    "PageTable",
    "Sv39",
    "Sv39x4",
    "PTE_V",
    "PTE_R",
    "PTE_W",
    "PTE_X",
    "PTE_U",
    "PTE_D",
    "Tlb",
    "AddressTranslator",
    "TranslationResult",
]
