"""Physical frame allocator.

A simple page-granular allocator over a physical range.  Used for the
hypervisor's normal-memory allocations (VM memory, shared page tables,
virtio rings) and by tests.  The SM does *not* use this: secure-pool
allocation goes through ZION's hierarchical allocator in
:mod:`repro.sm.alloc`, which is itself an experimental subject.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.mem.physmem import PAGE_SIZE


class FrameAllocator:
    """First-fit page allocator over ``[base, base + size)``."""

    def __init__(self, base: int, size: int):
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("allocator range must be page-aligned")
        self.base = base
        self.size = size
        #: Sorted list of free (start, length) extents.
        self._free: list[tuple[int, int]] = [(base, size)]

    @property
    def end(self) -> int:
        return self.base + self.size

    def free_bytes(self) -> int:
        """Total unallocated bytes remaining."""
        return sum(length for _, length in self._free)

    def alloc(self, size: int = PAGE_SIZE, align: int = PAGE_SIZE) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns the base."""
        if size % PAGE_SIZE:
            raise ValueError("allocation size must be page-aligned")
        if align % PAGE_SIZE or align & (align - 1):
            raise ValueError("alignment must be a page-multiple power of two")
        for i, (start, length) in enumerate(self._free):
            aligned = (start + align - 1) & ~(align - 1)
            waste = aligned - start
            if length < waste + size:
                continue
            # Carve [aligned, aligned+size) out of this extent.
            remainder = []
            if waste:
                remainder.append((start, waste))
            tail = length - waste - size
            if tail:
                remainder.append((aligned + size, tail))
            self._free[i : i + 1] = remainder
            return aligned
        raise MemoryError_(
            f"out of frames: need {size:#x} aligned {align:#x}, "
            f"{self.free_bytes():#x} free"
        )

    def free(self, addr: int, size: int = PAGE_SIZE) -> None:
        """Return ``[addr, addr+size)`` to the pool, coalescing neighbours."""
        if addr % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("free range must be page-aligned")
        if addr < self.base or addr + size > self.end:
            raise MemoryError_(f"free outside allocator range: {addr:#x}")
        for start, length in self._free:
            if addr < start + length and start < addr + size:
                raise MemoryError_(f"double free at {addr:#x}")
        self._free.append((addr, size))
        self._free.sort()
        merged = [self._free[0]]
        for start, length in self._free[1:]:
            last_start, last_len = merged[-1]
            if last_start + last_len == start:
                merged[-1] = (last_start, last_len + length)
            else:
                merged.append((start, length))
        self._free = merged
