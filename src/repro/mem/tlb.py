"""A small TLB model.

Caches successful guest-physical translations keyed by ``(vmid, page)``.
Capacity-bounded with LRU replacement (both ``lookup`` and ``insert``
refresh an entry's recency, and eviction takes the least recently used)
-- enough fidelity to express the performance effect ZION's world
switches have (the PMP toggle forces an ``hfence.gvma``, so a resumed
guest re-walks its hot pages), without modelling associativity.

Statistics distinguish whole-TLB / per-VMID flushes (``flushes``, the
``hfence``-scale events the experiments care about) from single-page
invalidations (``page_flushes``).
"""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Translation cache: (vmid, virtual page) -> (physical page, flags)."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        #: Per-VMID key index so ``flush_vmid`` (the world-switch
        #: ``hfence.gvma`` path) drops exactly one VMID's keys instead of
        #: scanning all ``capacity`` entries.
        self._by_vmid: dict = {}
        self.hits = 0
        self.misses = 0
        #: Whole-TLB and per-VMID flushes (hfence.gvma-scale events).
        self.flushes = 0
        #: Single-page invalidations, counted separately from ``flushes``.
        self.page_flushes = 0
        #: Monotonic invalidation epoch: bumped whenever entries may have
        #: *disappeared* (any flush, or a capacity eviction).  The access
        #: trace cache uses an unchanged generation as proof that every
        #: entry it recorded as present is still present; insertions only
        #: bump it when they evict.
        self.generation = 0

    def lookup(self, vmid: int, vpage: int):
        """Cached (ppage, flags) or ``None``."""
        key = (vmid, vpage)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def insert(self, vmid: int, vpage: int, ppage: int, flags: int) -> None:
        """Cache a translation, evicting the least recently used at capacity."""
        entries = self._entries
        key = (vmid, vpage)
        entries[key] = (ppage, flags)
        entries.move_to_end(key)
        index = self._by_vmid.get(vmid)
        if index is None:
            index = self._by_vmid[vmid] = set()
        index.add(key)
        while len(entries) > self.capacity:
            evicted, _ = entries.popitem(last=False)
            self.generation += 1
            victim_index = self._by_vmid[evicted[0]]
            victim_index.discard(evicted)
            if not victim_index:
                del self._by_vmid[evicted[0]]

    def flush_all(self) -> None:
        """Drop every cached translation."""
        self._entries.clear()
        self._by_vmid.clear()
        self.flushes += 1
        self.generation += 1

    def flush_vmid(self, vmid: int) -> None:
        """Drop all translations of one VMID (O(entries of that VMID))."""
        for key in self._by_vmid.pop(vmid, ()):
            del self._entries[key]
        self.flushes += 1
        self.generation += 1

    def flush_page(self, vmid: int, vpage: int) -> None:
        """Drop one page's translation (counted even if absent)."""
        self.generation += 1
        key = (vmid, vpage)
        if self._entries.pop(key, None) is not None:
            index = self._by_vmid[vmid]
            index.discard(key)
            if not index:
                del self._by_vmid[vmid]
        self.page_flushes += 1

    def __len__(self):
        return len(self._entries)
