"""A small TLB model.

Caches successful guest-physical translations keyed by ``(vmid, page)``.
Capacity-bounded with LRU replacement (both ``lookup`` and ``insert``
refresh an entry's recency, and eviction takes the least recently used)
-- enough fidelity to express the performance effect ZION's world
switches have (the PMP toggle forces an ``hfence.gvma``, so a resumed
guest re-walks its hot pages), without modelling associativity.

Statistics distinguish whole-TLB / per-VMID flushes (``flushes``, the
``hfence``-scale events the experiments care about) from single-page
invalidations (``page_flushes``).
"""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Translation cache: (vmid, virtual page) -> (physical page, flags)."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Whole-TLB and per-VMID flushes (hfence.gvma-scale events).
        self.flushes = 0
        #: Single-page invalidations, counted separately from ``flushes``.
        self.page_flushes = 0

    def lookup(self, vmid: int, vpage: int):
        """Cached (ppage, flags) or ``None``."""
        key = (vmid, vpage)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return entry

    def insert(self, vmid: int, vpage: int, ppage: int, flags: int) -> None:
        """Cache a translation, evicting the least recently used at capacity."""
        key = (vmid, vpage)
        self._entries[key] = (ppage, flags)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def flush_all(self) -> None:
        """Drop every cached translation."""
        self._entries.clear()
        self.flushes += 1

    def flush_vmid(self, vmid: int) -> None:
        """Drop all translations of one VMID."""
        stale = [key for key in self._entries if key[0] == vmid]
        for key in stale:
            del self._entries[key]
        self.flushes += 1

    def flush_page(self, vmid: int, vpage: int) -> None:
        """Drop one page's translation (counted even if absent)."""
        self._entries.pop((vmid, vpage), None)
        self.page_flushes += 1

    def __len__(self):
        return len(self._entries)
