"""Two-stage address translation (VS-stage Sv39 over G-stage Sv39x4).

Implements the hypervisor-extension translation pipeline: a guest virtual
address is first translated by the guest-controlled VS-stage table (unless
``vsatp`` is Bare), and every resulting guest-physical address -- including
the VS-stage table pointers themselves -- is translated by the G-stage
table.  Misses raise the architecturally-correct fault: VS-stage misses are
ordinary page faults (handleable by the guest kernel), G-stage misses are
guest-page faults (the hypervisor's or SM's job), carrying the faulting GPA
for ``htval``.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import TrapRaised
from repro.isa.traps import AccessType, guest_page_fault_for, page_fault_for
from repro.mem.pagetable import _PPN_MASK, _PPN_SHIFT, Sv39, Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.mem.tlb import Tlb


class TranslationResult:
    """A completed translation.

    A ``__slots__`` value object rather than a dataclass: one is built
    per guest access, making construction cost part of the simulator's
    innermost loop.
    """

    __slots__ = ("pa", "gpa", "flags", "tlb_hit")

    def __init__(self, pa: int, gpa: int, flags: int, tlb_hit: bool):
        self.pa = pa
        self.gpa = gpa
        self.flags = flags
        self.tlb_hit = tlb_hit

    def __repr__(self):
        return (
            f"TranslationResult(pa={self.pa:#x}, gpa={self.gpa:#x}, "
            f"flags={self.flags:#x}, tlb_hit={self.tlb_hit})"
        )

    def __eq__(self, other):
        if not isinstance(other, TranslationResult):
            return NotImplemented
        return (
            self.pa == other.pa
            and self.gpa == other.gpa
            and self.flags == other.flags
            and self.tlb_hit == other.tlb_hit
        )


class _RawAccessor:
    """Page-walker view of DRAM: raw, charged per PTE read.

    Hardware page-table-walker accesses are implicit loads; we model them
    as raw DRAM reads (the walker runs with the translation machinery's
    own access path) and charge one walk-level cost each.  Stateless, so
    the translator builds one and reuses it for every walk.
    """

    __slots__ = ("_read_u64", "_charge_walk")

    def __init__(self, dram, ledger: CycleLedger, costs: CycleCosts):
        self._read_u64 = dram.read_u64
        self._charge_walk = ledger.charger(Category.PAGE_WALK, costs.page_walk_level)

    def read_u64(self, addr: int) -> int:
        self._charge_walk()
        return self._read_u64(addr)

    def write_u64(self, addr: int, value: int) -> None:
        # The walker writes A/D bits in principle; ZION pre-sets them, so
        # any write through this accessor is a simulator bug.
        raise AssertionError("hardware walker performed a PTE write")


class AddressTranslator:
    """The per-machine translation unit (walker + TLB)."""

    def __init__(self, bus, costs: CycleCosts, ledger: CycleLedger, tlb: Tlb | None = None):
        self.bus = bus
        self.costs = costs
        self.ledger = ledger
        self.tlb = tlb if tlb is not None else Tlb()
        self.sv39 = Sv39()
        self.sv39x4 = Sv39x4()
        self._accessor = _RawAccessor(bus.dram, ledger, costs)
        self._charge_tlb_hit = ledger.charger(Category.TLB, costs.tlb_hit)
        self._charge_flush_page = ledger.charger(Category.TLB, costs.tlb_flush_page)

    def _walker(self):
        return self._accessor

    def gpa_to_pa(self, hgatp_root: int, gpa: int, access: AccessType) -> tuple:
        """G-stage only: translate a GPA, returning ``(pa, flags)``.

        Raises the guest-page fault for ``access`` when unmapped or when
        the leaf lacks the needed permission.
        """
        result = self.sv39x4.walk(self._accessor, hgatp_root, gpa)
        if result is None or not result.flags & access.required_pte_bit:
            raise TrapRaised(
                guest_page_fault_for(access),
                tval=gpa,
                gpa=gpa,
                message=f"G-stage miss for {access.value} at GPA {gpa:#x}",
            )
        return result.pa, result.flags

    def probe_gpa(self, hgatp_root: int, gpa: int) -> tuple:
        """Uncharged, non-mutating G-stage walk for the batched access engine.

        Returns ``(pa, flags, levels, leaf_slot)``:

        - valid leaf: the translation plus ``levels``, the number of PTE
          reads a charged walk performs;
        - invalid: ``pa`` is ``None``, ``levels`` is the reads a charged
          walk would perform before faulting, and ``leaf_slot`` is the
          physical slot of the invalid *full-depth* leaf PTE (0 when an
          intermediate table is missing -- the SM's fused fault fix needs
          the leaf slot to already exist).

        The caller charges ``levels * page_walk_level`` itself once it
        commits to an outcome; probing performs no charge and no TLB or
        statistics mutation, so the caller can still fall back to the
        generic per-access path with nothing to undo.
        """
        sv = self.sv39x4
        read_u64 = self.bus.dram.read_u64
        shifts = sv._shifts
        masks = sv._masks
        spans = sv._spans
        last = sv.levels - 1
        table = hgatp_root
        for depth in range(sv.levels):
            slot = table + 8 * ((gpa >> shifts[depth]) & masks[depth])
            pte = read_u64(slot)  # zionlint: disable=ZL3 probe only: no committed outcome yet; each caller charges levels*page_walk_level in bulk once it commits (batched engine and fused SM fault path both do)
            if not pte & 1:  # PTE_V
                return None, 0, depth + 1, slot if depth == last else 0
            if pte & 0b1110:  # leaf (R|W|X)
                base = (pte & _PPN_MASK) >> _PPN_SHIFT << 12
                return base + (gpa & (spans[depth] - 1)), pte & 0xFF, depth + 1, 0
            table = (pte & _PPN_MASK) >> _PPN_SHIFT << 12
        return None, 0, sv.levels, 0

    def translate(
        self,
        hart,
        vmid: int,
        gva: int,
        access: AccessType,
        hgatp_root: int,
        vsatp_root: int | None = None,
    ) -> TranslationResult:
        """Full two-stage translation of a guest access.

        ``vsatp_root`` of ``None`` means VS-stage Bare (GVA == GPA), the
        configuration our synthetic guests boot with.
        """
        vpage = gva >> 12
        cached = self.tlb.lookup(vmid, vpage)
        if cached is not None:
            ppage, flags = cached
            if flags & access.required_pte_bit:
                # TLB-hit fast path: no walker, no permits() dispatch.
                self._charge_tlb_hit()
                pa = ppage << 12 | gva & (PAGE_SIZE - 1)
                return TranslationResult(pa, gva, flags, True)
            # Permission-insufficient TLB entry: hardware re-walks.
            self.tlb.flush_page(vmid, vpage)

        if vsatp_root is None:
            gpa = gva
            leaf_flags = None
        else:
            gpa, leaf_flags = self._vs_stage(gva, access, hgatp_root, vsatp_root)

        pa, g_flags = self.gpa_to_pa(hgatp_root, gpa, access)
        flags = g_flags if leaf_flags is None else g_flags & leaf_flags

        # The access itself is PMP-checked at the hart's effective privilege.
        self.bus._cpu_check(hart, pa, 1, access)

        self.tlb.insert(vmid, vpage, pa >> 12, flags)
        return TranslationResult(pa, gpa, flags, False)

    def _vs_stage(self, gva: int, access: AccessType, hgatp_root: int, vsatp_root: int) -> tuple:
        """VS-stage walk; each table pointer is itself G-stage translated."""
        walker = self._walker()
        table_gpa = vsatp_root
        for depth in range(self.sv39.levels):
            table_pa, _ = self.gpa_to_pa(hgatp_root, table_gpa, AccessType.LOAD)
            slot = table_pa + 8 * self.sv39._index(gva, depth)
            pte = walker.read_u64(slot)
            if not pte & 1:  # PTE_V
                raise TrapRaised(
                    page_fault_for(access),
                    tval=gva,
                    message=f"VS-stage miss at GVA {gva:#x}",
                )
            if pte & 0b1110:  # leaf (R|W|X)
                if not self.sv39.permits(pte & 0xFF, access):
                    raise TrapRaised(
                        page_fault_for(access),
                        tval=gva,
                        message=f"VS-stage permission fault at GVA {gva:#x}",
                    )
                span = self.sv39._leaf_span(depth)
                base = (pte >> 10) << 12
                return base + (gva & (span - 1)), pte & 0xFF
            table_gpa = (pte >> 10) << 12
        raise TrapRaised(page_fault_for(access), tval=gva, message="VS-stage bottomed out")

    # -- fence instructions ------------------------------------------------------

    def hfence_gvma(self, vmid: int | None = None) -> None:
        """Flush G-stage translations (all VMIDs when ``vmid`` is None)."""
        self.ledger.charge(Category.TLB, self.costs.tlb_flush_gvma)
        if vmid is None:
            self.tlb.flush_all()
        else:
            self.tlb.flush_vmid(vmid)

    def sfence_page(self, vmid: int, gva: int) -> None:
        """Flush one page's translation."""
        self._charge_flush_page()
        self.tlb.flush_page(vmid, gva >> 12)
