"""Whole-project model for zionlint v2: classes, functions, receiver types.

The v1 engine analyzed one function at a time and went blind at every
call boundary: ``self.split.map_private(...)`` was an opaque attribute
chain, so neither the charging rule nor the taint rule could say
anything about what the callee does.  This module builds the shared
ground truth the v2 passes (``dataflow``, ``concurrency``) stand on:

* a table of every class defined in the linted tree, with the semantic
  type of each instance attribute inferred from ``__init__`` (and other
  method) assignments plus parameter annotations;
* a table of every function/method keyed by module and qualname;
* a resolver that maps a call expression in some function back to the
  concrete :class:`FunctionInfo` it invokes, when that can be done
  soundly (single candidate), and ``None`` otherwise.

Inference is deliberately shallow and syntactic -- the linted tree is
plain dataclass-free Python, so ``self.split = SplitTableManager(...)``
in a constructor, or a ``monitor: "SecureMonitor"`` annotation, carries
all the type information the rules need.  Anything ambiguous resolves
to ``None`` and the rules stay conservative, exactly like v1.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .astutil import call_name, dotted_name, iter_functions

# Attribute names that always mean "raw physical memory" regardless of
# how the binding was produced.  ``self.dram = bus.dram`` and a bare
# ``dram`` parameter both land here.
DRAM_NAMES = {"dram", "_dram"}

# Method names on PhysicalMemory whose bound form (``self._dram_write =
# bus.dram.write_u64``) must keep their raw-memory identity: calling the
# bound name is calling dram.
DRAM_METHODS = {"read", "write", "read_u64", "write_u64", "zero_range"}


@dataclass
class FunctionInfo:
    """One function or method in the linted tree."""

    module: str  # module key, e.g. "sm/monitor.py"
    qualname: str  # e.g. "SecureMonitor.ecall_map_private"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # enclosing class, if a method
    is_property: bool = False

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class: its methods and inferred instance-attribute types."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    # attribute name -> semantic type tag.  Tags are either a class name
    # defined somewhere in the project ("SplitTableManager"), the string
    # "dram" for raw physical memory, or "dram_method:<op>" for a bound
    # raw-memory method.
    attr_types: Dict[str, str] = field(default_factory=dict)
    # module-level key of the module defining each attr's class type,
    # when the class was resolvable.  attr name -> module key.
    attr_type_modules: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    key: str  # path-like key, e.g. "sm/monitor.py"
    tree: ast.Module
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # by qualname


def _is_property(node: ast.AST) -> bool:
    for deco in getattr(node, "decorator_list", ()):
        if dotted_name(deco) == "property":
            return True
    return False


def _annotation_type(node: Optional[ast.AST]) -> Optional[str]:
    """Extract a class-name tag from a parameter annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # forward reference: 'SecureMonitor' or "sm.SecureMonitor"
        return node.value.split(".")[-1].strip() or None
    name = dotted_name(node)
    if name:
        return name.split(".")[-1]
    if isinstance(node, ast.Subscript):  # Optional[X] / List[X]
        base = dotted_name(node.value)
        if base and base.split(".")[-1] == "Optional":
            return _annotation_type(node.slice)
    return None


class Project:
    """Parsed view of every module handed to one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        # class name -> list of (module key, ClassInfo); names may
        # collide across modules, the resolver requires uniqueness.
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}

    # -- construction ---------------------------------------------------

    def add_module(self, key: str, tree: ast.Module) -> ModuleInfo:
        mod = ModuleInfo(key=key, tree=tree)
        self.modules[key] = mod
        # Nested classes count too: migration's export_cvm defines a local
        # ``Raw`` accessor class whose methods the charging rule must see.
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                cls = ClassInfo(module=key, name=node.name, node=node)
                mod.classes.setdefault(node.name, cls)
                self.classes_by_name.setdefault(node.name, []).append(cls)
        for qualname, fn in iter_functions(tree):
            parts = qualname.split(".")
            cls = mod.classes.get(parts[-2]) if len(parts) > 1 else None
            if cls is not None:
                # parts[-2] can also be an enclosing *function*; require
                # the def to actually sit inside the class body.
                end = getattr(cls.node, "end_lineno", None)
                if not (cls.node.lineno <= fn.lineno <= (end or fn.lineno)):
                    cls = None
            info = FunctionInfo(
                module=key,
                qualname=qualname,
                node=fn,
                class_name=cls.name if cls is not None else None,
                is_property=_is_property(fn),
            )
            mod.functions[qualname] = info
            if cls is not None:
                cls.methods[fn.name] = info
        return mod

    def finalize(self) -> None:
        """Run attribute-type inference once all modules are added."""
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self._infer_class_attrs(cls)

    # -- attribute inference ---------------------------------------------

    def _infer_class_attrs(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            params = self._param_types(method.node)
            for stmt in ast.walk(method.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._record_attr(cls, target.attr, value, params, stmt)

    def _param_types(self, fn: ast.AST) -> Dict[str, str]:
        out: Dict[str, str] = {}
        args = fn.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg in DRAM_NAMES:
                out[arg.arg] = "dram"
                continue
            tag = _annotation_type(arg.annotation)
            if tag:
                out[arg.arg] = tag
        return out

    def _record_attr(
        self,
        cls: ClassInfo,
        attr: str,
        value: Optional[ast.AST],
        params: Dict[str, str],
        stmt: ast.AST,
    ) -> None:
        tag = self._value_type(value, params, cls.module)
        if tag is None and isinstance(stmt, ast.AnnAssign):
            tag = _annotation_type(stmt.annotation)
        if tag is None and attr in DRAM_NAMES:
            tag = "dram"
        if tag is None:
            return
        prev = cls.attr_types.get(attr)
        if prev is not None and prev != tag:
            # conflicting writes -> unknown, stay conservative
            cls.attr_types[attr] = "?"
            cls.attr_type_modules.pop(attr, None)
            return
        cls.attr_types[attr] = tag
        resolved = self._unique_class(tag)
        if resolved is not None:
            cls.attr_type_modules[attr] = resolved.module

    def _value_type(
        self, value: Optional[ast.AST], params: Dict[str, str], module_key: str
    ) -> Optional[str]:
        if value is None:
            return None
        # self.split = SplitTableManager(...)
        if isinstance(value, ast.Call):
            ctor = dotted_name(value.func)
            if ctor:
                return self._class_tag(ctor.split(".")[-1], module_key)
            return None
        # self.dram = bus.dram / self._dram_write = bus.dram.write_u64
        if isinstance(value, ast.Attribute):
            if value.attr in DRAM_NAMES:
                return "dram"
            if value.attr in DRAM_METHODS:
                base = value.value
                if isinstance(base, ast.Attribute) and base.attr in DRAM_NAMES:
                    return f"dram_method:{value.attr}"
                if isinstance(base, ast.Name) and base.id in DRAM_NAMES:
                    return f"dram_method:{value.attr}"
            return None
        # self.monitor = monitor  (typed parameter passthrough)
        if isinstance(value, ast.Name):
            return params.get(value.id)
        return None

    def _class_tag(self, name: str, module_key: str) -> Optional[str]:
        """Type tag for a constructed class name, disambiguated by module.

        A globally-unique class name is its own tag.  When the same name
        is defined in several modules (two ``_RawAccessor`` walkers), the
        same-module candidate wins and the tag carries its module key as
        ``"<module>::<Class>"``; with no same-module candidate the name
        stays ambiguous and resolves to nothing.
        """
        if not name:
            return None
        cands = self.classes_by_name.get(name, [])
        if len(cands) == 1:
            return name
        for cand in cands:
            if cand.module == module_key:
                return f"{module_key}::{name}"
        return None

    # -- queries ---------------------------------------------------------

    def _unique_class(self, tag: Optional[str]) -> Optional[ClassInfo]:
        if not tag or tag in ("dram", "?") or tag.startswith("dram_method:"):
            return None
        if "::" in tag:
            mod_key, name = tag.split("::", 1)
            mod = self.modules.get(mod_key)
            return mod.classes.get(name) if mod is not None else None
        cands = self.classes_by_name.get(tag, [])
        return cands[0] if len(cands) == 1 else None

    def class_of(self, module_key: str, name: str) -> Optional[ClassInfo]:
        mod = self.modules.get(module_key)
        if mod and name in mod.classes:
            return mod.classes[name]
        return self._unique_class(name)

    def attr_type(
        self, module_key: str, class_name: Optional[str], attr: str
    ) -> Optional[str]:
        """Semantic type tag of ``self.<attr>`` inside ``class_name``."""
        if class_name is None:
            return None
        cls = self.class_of(module_key, class_name)
        if cls is None:
            return None
        tag = cls.attr_types.get(attr)
        return None if tag == "?" else tag

    def receiver_type(
        self,
        expr: ast.AST,
        module_key: str,
        class_name: Optional[str],
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Infer the semantic type tag of an arbitrary receiver expression.

        Handles ``self``, ``self.attr``, bare locals/params recorded in
        ``local_types``, and one level of chaining through class-typed
        attributes (``self.split.dram`` -> whatever SplitTableManager
        records for ``dram``).
        """
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return class_name
            if local_types and expr.id in local_types:
                tag = local_types[expr.id]
                return None if tag == "?" else tag
            if expr.id in DRAM_NAMES:
                return "dram"
            return None
        if isinstance(expr, ast.Call):
            # Inline construction: ``Sv39x4().iter_leaves(...)``.
            ctor = dotted_name(expr.func)
            if ctor:
                return self._class_tag(ctor.split(".")[-1], module_key)
            return None
        if isinstance(expr, ast.Attribute):
            if expr.attr in DRAM_NAMES:
                return "dram"
            base = self.receiver_type(expr.value, module_key, class_name, local_types)
            if base is None:
                return None
            if base == "dram":
                return None
            cls = self._unique_class(base)
            if cls is None and base == class_name:
                cls = self.class_of(module_key, base)
            if cls is None:
                return None
            tag = cls.attr_types.get(expr.attr)
            return None if tag == "?" else tag
        return None

    def resolve_call(
        self,
        call: ast.Call,
        module_key: str,
        class_name: Optional[str],
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a call expression to its target function, or None."""
        func = call.func
        mod = self.modules.get(module_key)
        if mod is None:
            return None
        # bare name: module-level function in the same module
        if isinstance(func, ast.Name):
            info = mod.functions.get(func.id)
            if info is not None and info.class_name is None:
                return info
            # bound dram method assigned to a local?  Not a project fn.
            return None
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        # self.method(...)
        if isinstance(recv, ast.Name) and recv.id == "self" and class_name:
            cls = self.class_of(module_key, class_name)
            if cls is not None:
                info = cls.methods.get(func.attr)
                if info is not None:
                    return info
            return None
        # <typed receiver>.method(...)
        tag = self.receiver_type(recv, module_key, class_name, local_types)
        cls = self._unique_class(tag) if tag else None
        if cls is None and tag and tag == class_name:
            cls = self.class_of(module_key, tag)
        if cls is not None:
            return cls.methods.get(func.attr)
        return None

    def resolve_property(
        self,
        expr: ast.Attribute,
        module_key: str,
        class_name: Optional[str],
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """If ``expr`` reads a @property defined in the project, return it."""
        tag = self.receiver_type(expr.value, module_key, class_name, local_types)
        cls = self._unique_class(tag) if tag else None
        if cls is None and tag and tag == class_name:
            cls = self.class_of(module_key, tag)
        if cls is None:
            return None
        info = cls.methods.get(expr.attr)
        if info is not None and info.is_property:
            return info
        return None

    def is_dram_receiver(
        self,
        expr: ast.AST,
        module_key: str,
        class_name: Optional[str],
        local_types: Optional[Dict[str, str]] = None,
    ) -> bool:
        """True when ``expr`` denotes raw physical memory."""
        return (
            self.receiver_type(expr, module_key, class_name, local_types) == "dram"
        )

    def bound_dram_op(
        self,
        func: ast.AST,
        module_key: str,
        class_name: Optional[str],
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """If calling ``func`` invokes a raw dram method, return the op name.

        Covers direct ``<dram>.write_u64`` chains and bound-method
        attributes/locals like ``self._dram_write`` whose inferred tag is
        ``dram_method:write_u64``.
        """
        if isinstance(func, ast.Attribute):
            if func.attr in DRAM_METHODS and self.is_dram_receiver(
                func.value, module_key, class_name, local_types
            ):
                return func.attr
            tag = self.receiver_type(func, module_key, class_name, local_types)
            if tag and tag.startswith("dram_method:"):
                return tag.split(":", 1)[1]
            return None
        if isinstance(func, ast.Name):
            tag = None
            if local_types:
                tag = local_types.get(func.id)
            if tag and tag.startswith("dram_method:"):
                return tag.split(":", 1)[1]
        return None


def local_bindings(
    project: Project,
    fn: ast.AST,
    module_key: str,
    class_name: Optional[str],
) -> Dict[str, str]:
    """Infer semantic type tags for a function's params and simple locals.

    Only single-assignment, syntactically obvious bindings are recorded:
    annotated/dram-named parameters, ``x = self.attr`` where the attr has
    a known tag, ``x = SomeClass(...)``, and bound dram methods like
    ``read_u64 = self.bus.dram.read_u64``.  A name assigned twice with
    different tags degrades to unknown.
    """
    out: Dict[str, str] = {}
    args = fn.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg == "self":
            continue
        if arg.arg in DRAM_NAMES:
            out[arg.arg] = "dram"
            continue
        tag = _annotation_type(arg.annotation)
        if tag:
            out[arg.arg] = tag

    def record(name: str, tag: Optional[str]) -> None:
        if tag is None:
            out.pop(name, None)
            out[name] = "?"
            return
        prev = out.get(name)
        if prev is not None and prev != tag:
            out[name] = "?"
        else:
            out[name] = tag

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            tag: Optional[str] = None
            if isinstance(value, ast.Call):
                ctor = dotted_name(value.func)
                if ctor:
                    tag = project._class_tag(ctor.split(".")[-1], module_key)
            elif isinstance(value, ast.Attribute):
                if value.attr in DRAM_NAMES:
                    tag = "dram"
                elif value.attr in DRAM_METHODS:
                    base_tag = project.receiver_type(
                        value.value, module_key, class_name, out
                    )
                    if base_tag == "dram":
                        tag = f"dram_method:{value.attr}"
                else:
                    tag = project.receiver_type(value, module_key, class_name, out)
            elif isinstance(value, ast.Name):
                tag = out.get(value.id)
            record(target.id, tag)
    return {k: v for k, v in out.items() if v != "?"}
