"""ZL4 -- PMP/TLB pairing for SM mapping and pool transitions.

Paper clause (PAPER.md §Design, world switch; THREAT_MODEL "stale
translation"): ZION keeps the secure pool usable only because every PMP
reconfiguration at a world switch and every stage-2 mapping change is
paired with the matching translation flush -- ``hfence.gvma`` by VMID on
the world-switch path, page-granular fences on map/unmap.  A toggle or
remap whose stale TLB entry survives lets a CVM (or the host) keep using
a translation the new PMP/stage-2 state forbids, which is precisely the
window the fault campaign's TLB probes attack.

Rule: a function that *calls* a PMP/mapping mutator
(:data:`MUTATORS`) must reach a flush (:data:`FLUSHES`) in the same
function or in a **direct callee** -- callees are resolved by bare name
against every function in the analysed SM module set (one level deep;
deeper reachability is a ROADMAP follow-up).

The mutator set names the SM's *semantic* operations (``open_pool``,
``map_private``, ...), not raw PTE stores -- the primitives are already
wrapped by exactly these verbs, and flagging the wrappers themselves
(their *definitions* contain no flush) would be noise: it is the call
site that owns the transaction and therefore the fence.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name, iter_functions
from repro.lint.findings import Finding

RULE = "ZL4"

#: Pool-visibility toggles and stage-2 mapping mutators.
MUTATORS = {
    "open_pool",
    "close_pool",
    "add_pool_region",
    "map_private",
    "unmap_private",
    "map_channel",
    "unmap_channel",
    "link_shared_subtree",
}

#: Translation flushes that make the new state visible.
FLUSHES = {
    "hfence_gvma",
    "sfence_page",
    "flush_all",
    "flush_vmid",
    "flush_page",
}

_WHY = (
    "stale-translation window: a PMP/stage-2 change without the paired "
    "flush leaves a TLB entry the new state forbids"
)


def _calls_in(fn: ast.AST) -> set[str]:
    names = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is not None:
                names.add(name)
    return names


def check_modules(modules: list[tuple[ast.Module, str]]) -> list[Finding]:
    """Run ZL4 over the whole SM module set at once.

    Cross-module analysis is needed because the flush often lives in a
    helper defined elsewhere in ``sm/`` (e.g. the world switch calling
    a monitor helper); direct callees are matched by bare name.
    """
    # qualname-tail -> called-name-set for every analysed function.
    functions: dict[str, tuple[str, str, int, ast.AST]] = {}
    call_map: dict[int, set[str]] = {}
    per_name: dict[str, list[int]] = {}
    entries = []
    for tree, path in modules:
        for qual, fn in iter_functions(tree):
            idx = len(entries)
            entries.append((qual, fn, path))
            call_map[idx] = _calls_in(fn)
            per_name.setdefault(fn.name, []).append(idx)

    findings = []
    for idx, (qual, fn, path) in enumerate(entries):
        calls = call_map[idx]
        used_mutators = sorted(calls & MUTATORS)
        if not used_mutators:
            continue
        if calls & FLUSHES:
            continue
        # One level of direct callees, matched by bare name.
        flushed = False
        for callee in calls:
            for target in per_name.get(callee, []):
                if call_map[target] & FLUSHES:
                    flushed = True
                    break
            if flushed:
                break
        if flushed:
            continue
        # Anchor the finding at the first mutator call site.
        line = fn.lineno
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and call_name(node) in MUTATORS:
                line = node.lineno
                break
        findings.append(
            Finding(
                rule=RULE,
                path=path,
                line=line,
                func=qual,
                message=(
                    f"mutator(s) {', '.join(used_mutators)} with no reachable "
                    "TLB/VMID flush (function or direct callees)"
                ),
                why=_WHY,
                def_line=fn.lineno,
            )
        )
    return findings
