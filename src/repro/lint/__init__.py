"""zionlint: static analysis for the SM/hypervisor seam.

ZION's security argument is a *code-level* boundary (PAPER.md §Design):
the SM owns secure vCPU state, stage-2 tables and the secure pool; the
hypervisor only ever sees the shared vCPU structure and the shared
subtree; and every value the SM loads from hypervisor-writable memory
must pass Check-after-Load before use.  The `verify.py` sweeps and the
fault campaign probe that boundary dynamically; this package closes the
static half: an AST pass (stdlib ``ast`` only, no dependencies) that
runs at CI time and fails on new violations.

Rule families
-------------
- **ZL1** (:mod:`repro.lint.boundary`) -- trust-boundary: untrusted
  domains (``hyp/``, ``guest/``, ``workloads/``, ``ipc/``) may import
  only the sanctioned ABI surface from ``repro.sm`` and may not
  attribute-access SM-private state.
- **ZL2** (:mod:`repro.lint.taint`) -- check-after-load taint:
  hypervisor-supplied ECALL arguments and shared-memory loads are
  tainted until validated; tainted indexes/lengths/addresses/branches
  in SM code are findings.
- **ZL3** (:mod:`repro.lint.charging`) -- charging discipline: SM/mem
  functions that touch raw physical memory or walk page tables must
  charge the :class:`~repro.cycles.ledger.CycleLedger`.
- **ZL4** (:mod:`repro.lint.pairing`) -- PMP/TLB pairing: pool toggles
  and stage-2 mapping changes need a reachable TLB/VMID flush.
- **ZL0** (:mod:`repro.lint.findings`) -- meta: every suppression
  pragma must carry a reason.

Suppressions: ``# zionlint: disable=ZLn <reason>`` on the finding line
or on the enclosing ``def`` line.  Accepted legacy findings live in
``baseline.json`` next to this package.
"""

from repro.lint.findings import Finding, PragmaMap, load_baseline, save_baseline
from repro.lint.engine import LintReport, run_lint

__all__ = [
    "Finding",
    "PragmaMap",
    "LintReport",
    "run_lint",
    "load_baseline",
    "save_baseline",
]
