"""ZL5 -- concurrency discipline for the SMP era.

ROADMAP item 2 (multi-hart SMP) will run SM and hypervisor code on
several simulated harts at once.  The state that must then be protected
is exactly the state that is *shared across objects today*: stage-2 map
generations, the shared-subtree registry, channel registries, scheduler
queues, allocator block lists.  This rule family is the groundwork that
refactor will be held to -- it freezes the single-writer discipline
while the codebase is still single-threaded, so the SMP change cannot
quietly scatter writers.

Two sub-rules:

**Seam discipline.**  Mutating a :data:`GUARDED_ATTRS` attribute on a
*foreign* receiver (anything that is not ``self``/``cls``) is only
allowed inside that attribute's designated seam functions
(:data:`SEAMS`).  ``self.map_generation += 1`` is the owner maintaining
its own invariant and always fine; ``split.map_generation += 1`` from
the monitor's fault path is a cross-object write that every future lock
scheme would have to know about, so it must go through a seam method on
the owner.  ``global`` rebinding in SM/hypervisor code is flagged
unconditionally -- module-level mutable state has no owner to lock.

**Determinism.**  Simulated paths (``sm/``, ``hyp/``, ``mem/``,
``isa/``, ``ipc/``, ``guest/``) must not read wall-clock time or host
randomness: cycle-exact goldens and the attestation transcripts are
replayable only because every input is modelled.  Importing ``time``,
``random``, ``secrets``, or ``datetime``, or calling ``os.urandom``,
in a simulated module is a finding.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import dotted_name, iter_functions
from repro.lint.findings import Finding

RULE = "ZL5"

#: Cross-object mutable state the SMP refactor will have to lock, and
#: the seam functions allowed to mutate it on a foreign receiver:
#: attr -> set of (module-path suffix, function qualname).
GUARDED_ATTRS: dict[str, set[tuple[str, str]]] = {
    # stage-2 map epoch (split-table manager, hypervisor, trace cache)
    "map_generation": set(),
    # TLB/trace-cache generation counters
    "generation": set(),
    # per-CVM donated-subtree registry: installed by the SM's link seam,
    # mirrored by the hypervisor's provisioning seam
    "shared_subtrees": {
        ("sm/share.py", "SplitTableManager.link_shared_subtree"),
        ("hyp/hypervisor.py", "Hypervisor._provision_shared_window"),
    },
    # IPC channel registry
    "channels": set(),
    # scheduler run/block queues
    "_blocked": set(),
    "_run_queue": set(),
    # allocator block bookkeeping
    "block": set(),
    "_global_block": set(),
}

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "add", "discard", "sort",
}

_WHY_STATE = (
    "SMP-readiness: cross-object writes to shared SM/hypervisor state "
    "must go through the owner's seam functions, or the multi-hart "
    "refactor cannot place locks without auditing every caller"
)
_WHY_DETERMINISM = (
    "replayability: simulated paths must not read wall-clock time or "
    "host randomness, or cycle goldens and attestation transcripts "
    "stop being reproducible"
)


def _is_seam(path: str, qualname: str, attr: str) -> bool:
    for suffix, seam_qual in GUARDED_ATTRS.get(attr, ()):
        if qualname == seam_qual and path.replace("\\", "/").endswith(suffix):
            return True
    return False


def _nested_ids(fn: ast.AST) -> set[int]:
    out: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            out.update(id(sub) for sub in ast.walk(node))
    return out


def _foreign_receiver(expr: ast.AST) -> str | None:
    """Receiver name when ``expr`` is ``<recv>.<attr>`` off a non-self base."""
    if not isinstance(expr, ast.Attribute):
        return None
    base = expr.value
    if isinstance(base, ast.Name):
        return None if base.id in ("self", "cls") else base.id
    name = dotted_name(base)
    return name if name is not None else "<expr>"


def _guarded_writes(stmt: ast.stmt):
    """Yield ``(node, receiver, attr)`` for guarded-state mutations."""
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        attr_node = target
        if isinstance(attr_node, ast.Subscript):
            # ``recv.attr[key] = ...`` mutates the container behind attr
            attr_node = attr_node.value
        if isinstance(attr_node, ast.Attribute) and attr_node.attr in GUARDED_ATTRS:
            recv = _foreign_receiver(attr_node)
            if recv is not None:
                yield target, recv, attr_node.attr
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in GUARDED_ATTRS
        ):
            recv = _foreign_receiver(func.value)
            if recv is not None:
                yield stmt.value, recv, func.value.attr


def check_state(tree: ast.Module, path: str) -> list[Finding]:
    """Seam-discipline sub-rule over one sm/hyp module."""
    findings: list[Finding] = []
    for qualname, fn in iter_functions(tree):
        nested = _nested_ids(fn)
        for node in ast.walk(fn):
            if id(node) in nested:
                continue
            if isinstance(node, ast.Global):
                findings.append(
                    Finding(
                        rule=RULE,
                        path=path,
                        line=node.lineno,
                        func=qualname,
                        message=(
                            "module-level mutable state rebound via "
                            f"'global {', '.join(node.names)}'"
                        ),
                        why=_WHY_STATE,
                        def_line=fn.lineno,
                    )
                )
        for stmt in ast.walk(fn):
            if id(stmt) in nested or not isinstance(stmt, ast.stmt):
                continue
            for node, recv, attr in _guarded_writes(stmt):
                if _is_seam(path, qualname, attr):
                    continue
                findings.append(
                    Finding(
                        rule=RULE,
                        path=path,
                        line=node.lineno,
                        func=qualname,
                        message=(
                            f"guarded shared state '{recv}.{attr}' mutated "
                            "outside its owner's seam functions"
                        ),
                        why=_WHY_STATE,
                        def_line=fn.lineno,
                    )
                )
    return findings


# -- determinism sub-rule ----------------------------------------------------

#: Modules whose import into a simulated path is itself the finding.
NONDET_MODULES = {"time", "random", "secrets", "datetime"}

#: Fully-dotted calls that read host entropy through allowed modules.
NONDET_CALLS = {"os.urandom", "os.getrandom", "uuid.uuid4"}


def check_determinism(tree: ast.Module, path: str) -> list[Finding]:
    """Determinism sub-rule over one simulated-path module."""
    findings: list[Finding] = []

    def flag(node: ast.AST, qualname: str, def_line: int, what: str) -> None:
        findings.append(
            Finding(
                rule=RULE,
                path=path,
                line=node.lineno,
                func=qualname,
                message=f"non-deterministic input in simulated path: {what}",
                why=_WHY_DETERMINISM,
                def_line=def_line,
            )
        )

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in NONDET_MODULES:
                    flag(node, "<module>", node.lineno, f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in NONDET_MODULES:
                flag(node, "<module>", node.lineno, f"from {node.module} import ...")

    for qualname, fn in iter_functions(tree):
        nested = _nested_ids(fn)
        for node in ast.walk(fn):
            if id(node) in nested or not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in NONDET_CALLS or name.split(".")[0] in NONDET_MODULES:
                flag(node, qualname, fn.lineno, f"call to {name}()")
    return findings
