"""Finding objects, suppression pragmas, and the accepted-findings baseline.

A finding is one rule violation at one source location.  Its *key*
deliberately excludes the line number so the baseline survives unrelated
edits above a finding: two findings are "the same" when rule, file,
enclosing function and message all match.

Suppression has two layers:

- **pragmas** -- ``# zionlint: disable=ZLn <reason>`` on the finding
  line or on the enclosing ``def`` line silences matching rules there.
  A pragma without a reason is itself reported (rule **ZL0**): a
  suppression that does not explain *why* the seam is safe to cross is
  exactly the silent drift this linter exists to stop.
- **baseline** -- a committed JSON file of accepted finding keys; the
  CLI exits non-zero only on findings that are in neither layer.
"""

from __future__ import annotations

import dataclasses
import json
import re

#: ``# zionlint: disable=ZL1,ZL3 frame is host-owned`` -> rules + reason.
PRAGMA_RE = re.compile(
    r"#\s*zionlint:\s*disable=([A-Za-z0-9_,\s]*?[A-Za-z0-9_])(?:\s+(\S.*))?$"
)

BASELINE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation: where, what, and why it is the ZION seam."""

    rule: str      #: "ZL1".."ZL4" (or "ZL0" for meta findings)
    path: str      #: repo-relative posix path
    line: int      #: 1-based source line
    func: str      #: enclosing function qualname, or "<module>"
    message: str   #: what is wrong, one line
    why: str       #: the paper clause this violates, one line
    def_line: int = 0  #: line of the enclosing ``def`` (0 = none)

    @property
    def key(self) -> str:
        """Line-independent identity used by the baseline file."""
        return f"{self.rule}|{self.path}|{self.func}|{self.message}"

    def to_json(self) -> dict:
        entry = dataclasses.asdict(self)
        del entry["def_line"]
        entry["key"] = self.key
        return entry

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.func}] {self.message}\n"
            f"    why: {self.why}"
        )


class PragmaMap:
    """All ``zionlint: disable`` pragmas of one source file, by line."""

    def __init__(self, source: str, path: str):
        self.path = path
        #: line -> (set of rule ids, reason-or-None, pragma line)
        self._by_line: dict[int, tuple[set[str], str | None]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = PRAGMA_RE.search(text)
            if match is None:
                continue
            rules = {r.strip().upper() for r in match.group(1).split(",") if r.strip()}
            self._by_line[lineno] = (rules, match.group(2))

    def suppresses(self, finding: Finding) -> bool:
        """Pragma on the finding line or its ``def`` line matches its rule."""
        for line in (finding.line, finding.def_line):
            entry = self._by_line.get(line)
            if entry is not None and finding.rule in entry[0]:
                return True
        return False

    def meta_findings(self) -> list[Finding]:
        """ZL0 findings: one per pragma that carries no reason."""
        out = []
        for line, (rules, reason) in sorted(self._by_line.items()):
            if reason is None:
                out.append(
                    Finding(
                        rule="ZL0",
                        path=self.path,
                        line=line,
                        func="<module>",
                        message=(
                            "suppression pragma for "
                            f"{','.join(sorted(rules))} gives no reason"
                        ),
                        why=(
                            "an unexplained suppression hides exactly the "
                            "boundary drift zionlint exists to catch"
                        ),
                    )
                )
        return out

    def __len__(self) -> int:
        return len(self._by_line)


def load_baseline(path) -> set[str]:
    """Accepted finding keys from a baseline JSON file (empty if absent)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return set()
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported zionlint baseline version in {path}")
    return set(data.get("suppressions", []))


def save_baseline(path, keys) -> None:
    """Write a baseline file accepting exactly ``keys`` (sorted, stable)."""
    payload = {"version": BASELINE_VERSION, "suppressions": sorted(keys)}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
