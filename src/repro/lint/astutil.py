"""Small AST helpers shared by every zionlint rule."""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` chains; ``None`` for anything non-trivial.

    ``monitor.cvms`` -> ``"monitor.cvms"``; a chain rooted in a call or
    subscript (``f().x``) renders its tail only (``".x"`` is dropped --
    the caller sees ``None`` for the root and should fall back to the
    attribute name itself).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The bare name a call resolves through: ``x.y.f(...)`` -> ``"f"``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_tail(call: ast.Call) -> str | None:
    """Last component of a method call's receiver: ``a.b.dram.read()`` -> ``"dram"``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def iter_functions(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(qualname, def-node)`` for every function, nested included."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")


def names_in(node: ast.AST) -> set[str]:
    """Every plain ``Name`` referenced anywhere inside ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def is_terminating(stmt: ast.stmt) -> bool:
    """Whether a statement unconditionally leaves the current block."""
    return isinstance(stmt, (ast.Raise, ast.Return, ast.Continue, ast.Break))


def is_guard(node: ast.If) -> bool:
    """An ``if`` whose body only rejects (raise/return/continue/break).

    This is the shape Check-after-Load takes in code: test the loaded
    value, bail out if it is unacceptable.  The tested names are treated
    as validated afterwards.
    """
    return all(is_terminating(s) for s in node.body) and not node.orelse
