"""zionlint engine: file discovery, rule routing, reporting, CLI.

The v2 engine parses every discovered file into one shared
:class:`repro.lint.callgraph.Project` (classes, methods, inferred
receiver types) before any rule runs, so the flow rules see across
call boundaries.  Domain routing mirrors the trust structure:

=========  =======================================  =====================
domain     directories                              rules
=========  =======================================  =====================
untrusted  ``hyp/``, ``guest/``, ``workloads/``,    ZL1 (+ ZL2 on ipc/,
           ``ipc/``                                 whose ring reads are
                                                    shared-memory loads)
sm         ``sm/``                                  ZL2, ZL3, ZL4, ZL5
hyp        ``hyp/``                                 ZL5 (plus ZL1 above)
mem/isa    ``mem/``, ``isa/``                       ZL3
simulated  sm/hyp/mem/isa/ipc/guest                 ZL5 determinism
=========  =======================================  =====================

Everything else (``cycles/``, ``bench/``, the machine glue, and this
package itself) is out of scope.  ZL0 (pragma hygiene) runs everywhere
a pragma appears.

Exit status: 0 when every finding is pragma-suppressed or baselined,
1 when new findings exist, 2 on usage/parse errors.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import sys
from pathlib import Path

from repro.lint import boundary, charging, concurrency, dataflow, pairing
from repro.lint.callgraph import Project
from repro.lint.findings import Finding, PragmaMap, load_baseline, save_baseline

UNTRUSTED_DIRS = {"hyp", "guest", "workloads", "ipc"}
SM_DIRS = {"sm"}
MEM_DIRS = {"mem"}
ISA_DIRS = {"isa"}
_KNOWN_DIRS = UNTRUSTED_DIRS | SM_DIRS | MEM_DIRS | ISA_DIRS

#: Domains whose code the ZL2 taint rule checks directly.
TAINTED_DOMAINS = {"sm", "ipc"}
#: Domains under the ZL3 charging rule (see also dataflow's call-site filter).
CHARGED_DOMAINS = {"sm", "mem", "isa"}
#: Domains under the ZL5 seam-discipline sub-rule.
STATE_DOMAINS = {"sm", "hyp"}
#: Simulated paths under the ZL5 determinism sub-rule.
SIM_DOMAINS = {"sm", "hyp", "mem", "isa", "ipc", "guest"}

RULE_ORDER = ("ZL0", "ZL1", "ZL2", "ZL3", "ZL4", "ZL5")


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def _display_path(path: Path) -> str:
    """Stable repo-relative path (``src/repro/...``) when possible."""
    resolved = path.resolve()
    repo_root = _package_root().parent.parent  # src/repro -> repo
    try:
        return resolved.relative_to(repo_root).as_posix()
    except ValueError:
        return path.as_posix()


def _domain_of(path: Path) -> str | None:
    """Classify by the *last* known directory name in the path."""
    for part in reversed(path.parts[:-1]):
        if part in _KNOWN_DIRS:
            return part
    return None


def discover_files(paths=None) -> list[Path]:
    """Python files to lint: the whole package, or the given paths."""
    if not paths:
        return sorted(_package_root().rglob("*.py"))
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        else:
            out.append(p)
    return out


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run, pre-split by suppression layer."""

    new: list[Finding]
    pragma_suppressed: list[Finding]
    baselined: list[Finding]
    pragma_count: int
    files: int

    @property
    def all_findings(self) -> list[Finding]:
        return self.new + self.pragma_suppressed + self.baselined

    def counts(self, findings=None) -> dict[str, int]:
        counts = {rule: 0 for rule in RULE_ORDER}
        for f in self.new if findings is None else findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {rule: n for rule, n in counts.items() if n}

    def to_json(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "pragmas": self.pragma_count,
            "counts": {
                "new": self.counts(self.new),
                "pragma_suppressed": self.counts(self.pragma_suppressed),
                "baselined": self.counts(self.baselined),
            },
            "findings": [f.to_json() for f in self.new],
            "pragma_suppressed": [f.to_json() for f in self.pragma_suppressed],
            "baselined": [f.to_json() for f in self.baselined],
        }


def changed_files(ref: str = "HEAD") -> set[str]:
    """Repo-relative ``.py`` paths that differ from ``ref`` (git diff).

    Covers staged and unstaged edits plus committed divergence from
    ``ref``; output paths match the display paths findings carry, so
    the set can be handed straight to :func:`run_lint`'s ``only``.
    """
    import subprocess

    repo_root = _package_root().parent.parent
    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"git diff --name-only {ref} failed: {proc.stderr.strip()}"
        )
    return {
        line.strip()
        for line in proc.stdout.splitlines()
        if line.strip().endswith(".py")
    }


def run_lint(paths=None, baseline_keys=frozenset(), only=None) -> LintReport:
    """Lint ``paths`` (default: the whole ``repro`` package).

    ``only`` restricts *reporting* to findings whose display path is in
    the given set, without shrinking the analysis scope: the whole
    package is still parsed into the project model, so interprocedural
    results (caller-side charging, cross-module taint) stay identical
    to a full run -- a diff-aware mode, not a partial one.
    """
    files = discover_files(paths)
    raw: list[Finding] = []
    pragma_maps: list[tuple[PragmaMap, Path]] = []
    sm_modules: list[tuple[ast.Module, str]] = []

    # Pass 1: parse everything into the shared project model, so the
    # flow rules can resolve receivers and calls across files.
    project = Project()
    parsed: list[tuple[Path, str, ast.Module, PragmaMap]] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        display = _display_path(path)
        tree = ast.parse(source, filename=str(path))
        pragmas = PragmaMap(source, display)
        parsed.append((path, display, tree, pragmas))
        project.add_module(display, tree)
    project.finalize()
    summaries = dataflow.SummaryTable(project)
    analysis = dataflow.ChargingAnalysis(project)

    # Pass 2: route each module through its domain's rules.
    for path, display, tree, pragmas in parsed:
        pragma_maps.append((pragmas, path))
        raw.extend(pragmas.meta_findings())

        domain = _domain_of(path)
        if domain in UNTRUSTED_DIRS:
            raw.extend(boundary.check(tree, display))
        if domain in TAINTED_DOMAINS:
            raw.extend(dataflow.check_taint(project, summaries, display))
        if domain in SM_DIRS:
            sm_modules.append((tree, display))
        if domain in CHARGED_DOMAINS and path.name not in charging.EXEMPT_MODULES:
            raw.extend(dataflow.check_charging(project, analysis, display))
        if domain in STATE_DOMAINS:
            raw.extend(concurrency.check_state(tree, display))
        if domain in SIM_DOMAINS:
            raw.extend(concurrency.check_determinism(tree, display))

    raw.extend(pairing.check_modules(sm_modules))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    by_path = {pm.path: pm for pm, _ in pragma_maps}
    new: list[Finding] = []
    suppressed: list[Finding] = []
    baselined: list[Finding] = []
    for finding in raw:
        pragmas = by_path.get(finding.path)
        if pragmas is not None and pragmas.suppresses(finding):
            suppressed.append(finding)
        elif finding.key in baseline_keys:
            baselined.append(finding)
        else:
            new.append(finding)

    report_files = len(files)
    if only is not None:
        new = [f for f in new if f.path in only]
        suppressed = [f for f in suppressed if f.path in only]
        baselined = [f for f in baselined if f.path in only]
        report_files = sum(1 for _, display, _, _ in parsed if display in only)

    return LintReport(
        new=new,
        pragma_suppressed=suppressed,
        baselined=baselined,
        pragma_count=sum(len(pm) for pm, _ in pragma_maps),
        files=report_files,
    )


# -- CLI -------------------------------------------------------------------


def add_arguments(parser) -> None:
    """Register the ``lint`` subcommand's options on ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the whole repro package)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of accepted findings "
        "(default: src/repro/lint/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only report findings in files that differ from REF "
        "(git diff; default HEAD) -- the whole package is still "
        "analyzed, so interprocedural results match a full run",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="ignore the baseline: every finding that is not "
        "pragma-suppressed fails the run",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report on stdout instead of human output",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE",
    )


def run_cli(args) -> int:
    """Entry point behind ``python -m repro lint``."""
    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    try:
        baseline_keys = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"zionlint: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "strict", False):
        baseline_keys = frozenset()

    only = None
    if getattr(args, "changed", None):
        try:
            only = changed_files(args.changed)
        except RuntimeError as exc:
            print(f"zionlint: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_lint(args.paths or None, baseline_keys, only=only)
    except SyntaxError as exc:
        print(f"zionlint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if only is not None:
            print(
                "zionlint: --update-baseline cannot be combined with "
                "--changed (a filtered run would drop accepted findings)",
                file=sys.stderr,
            )
            return 2
        save_baseline(baseline_path, {f.key for f in report.new + report.baselined})
        print(
            f"zionlint: baseline {baseline_path} updated "
            f"({len(report.new) + len(report.baselined)} accepted findings)"
        )
        return 0

    payload = report.to_json()
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for finding in report.new:
            print(finding.render())
        summary_counts = report.counts(report.new)
        detail = (
            ", ".join(f"{rule}:{n}" for rule, n in summary_counts.items())
            if summary_counts
            else "none"
        )
        print(
            f"zionlint: {len(report.new)} new finding(s) [{detail}] over "
            f"{report.files} file(s); {len(report.pragma_suppressed)} "
            f"pragma-suppressed, {len(report.baselined)} baselined"
        )
    return 1 if report.new else 0
