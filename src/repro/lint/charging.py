"""ZL3 -- charging discipline for SM and memory-subsystem code.

Paper clause (PAPER.md §Evaluation; INTERNALS §11 cycle-exactness): the
reproduction's performance claims rest on the :class:`CycleLedger`
seeing every modelled memory touch -- the wall-clock goldens are only
meaningful if DRAM traffic and page-table walks are charged where they
happen.  A function that reads or writes physical memory, or walks a
stage-2 table, without charging the ledger silently deflates the very
numbers the paper reproduces.

Rule: any function in ``sm/`` or ``mem/`` that calls a raw physical
memory operation (:data:`RAW_MEM_OPS` on a DRAM receiver) or a
page-table walk (:data:`WALK_OPS` on an Sv39x4 receiver) must also
contain a charge -- a call named ``charge`` or ``_charge*`` (the
precompiled :meth:`CycleLedger.charger` closures are bound to
``_charge_...`` names).

Approximations, by design:

- per-function *presence*, not per-path dominance (every-path analysis
  is a ROADMAP follow-up);
- modules that are themselves the costed abstraction are exempt
  (:data:`EXEMPT_MODULES`): ``physmem.py`` *is* the DRAM device,
  ``pagetable.py`` is pure geometry whose traffic the caller's accessor
  charges, ``tlb.py`` is bookkeeping charged by the translator.

A function that delegates charging to its caller states so with a
``# zionlint: disable=ZL3 <reason>`` pragma on its ``def`` line.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name, iter_functions, receiver_tail
from repro.lint.findings import Finding

RULE = "ZL3"

RAW_MEM_OPS = {"read", "write", "read_u64", "write_u64", "zero_range"}
RAW_MEM_RECEIVERS = {"dram", "_dram"}

WALK_OPS = {"walk", "map", "unmap"}
WALK_RECEIVERS = {"sv39x4", "_sv39x4"}

#: Module basenames exempt from ZL3 (see module docstring for reasons).
EXEMPT_MODULES = {"physmem.py", "pagetable.py", "tlb.py"}

_WHY = (
    "cycle-exactness: the ledger must see every modelled memory touch or "
    "the reproduced wall-clock numbers silently deflate"
)


def _is_charge(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and (name == "charge" or name.startswith("_charge"))


def _memory_touches(fn: ast.AST) -> list[tuple[int, str]]:
    """(line, description) for each raw memory op / table walk in ``fn``."""
    touches = []
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            # Nested functions are checked on their own.
            continue
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        tail = receiver_tail(node)
        if name in RAW_MEM_OPS and tail in RAW_MEM_RECEIVERS:
            touches.append((node.lineno, f"raw memory access '{name}'"))
        elif name in WALK_OPS and tail in WALK_RECEIVERS:
            touches.append((node.lineno, f"page-table walk '{name}'"))
    return touches


def _nested_lines(fn: ast.AST) -> set[int]:
    lines: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            end = getattr(node, "end_lineno", node.lineno)
            lines.update(range(node.lineno, end + 1))
    return lines


def check(tree: ast.Module, path: str) -> list[Finding]:
    """Run ZL3 over one SM/mem module."""
    findings = []
    for qual, fn in iter_functions(tree):
        nested = _nested_lines(fn)
        touches = [t for t in _memory_touches(fn) if t[0] not in nested]
        if not touches:
            continue
        charges = any(
            isinstance(node, ast.Call)
            and node.lineno not in nested
            and _is_charge(node)
            for node in ast.walk(fn)
        )
        if charges:
            continue
        line, what = touches[0]
        extra = f" (+{len(touches) - 1} more)" if len(touches) > 1 else ""
        findings.append(
            Finding(
                rule=RULE,
                path=path,
                line=line,
                func=qual,
                message=f"{what}{extra} with no CycleLedger charge in the function",
                why=_WHY,
                def_line=fn.lineno,
            )
        )
    return findings
