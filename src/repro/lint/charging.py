"""ZL3 -- charging discipline for SM and memory-subsystem code.

Paper clause (PAPER.md §Evaluation; INTERNALS §11 cycle-exactness): the
reproduction's performance claims rest on the :class:`CycleLedger`
seeing every modelled memory touch -- the wall-clock goldens are only
meaningful if DRAM traffic and page-table walks are charged where they
happen.  A function that reads or writes physical memory, or walks a
stage-2 table, without charging the ledger silently deflates the very
numbers the paper reproduces.

Rule: any raw physical memory operation (:data:`RAW_MEM_OPS` on a DRAM
receiver) or page-table walk (:data:`WALK_OPS` on an Sv39x4 receiver)
in ``sm/``, ``mem/``, or ``isa/`` code must have a charge -- a call
named ``charge`` or ``_charge*`` (the precompiled
:meth:`CycleLedger.charger` closures are bound to ``_charge_...``
names) -- on **every execution path reaching it**.

This module owns the rule's vocabulary (the op/receiver tables) and the
*structural* per-path analysis: a touch is covered when some block on
the spine from the function body down to the touch's own block contains
a statement that charges on every path through it (both arms of an
``if``, the ``finally`` of a ``try``, a plain charging statement).  A
charge on one branch of a divergent ``if`` no longer excuses the
uncharged sibling path, which is the v1->v2 deepening.

The interprocedural resolutions (charged accessors, caller-side
charging) and the findings themselves live in
:mod:`repro.lint.dataflow`, which combines this structural pass with
the project call graph.

Modules that are themselves the costed abstraction are exempt
(:data:`EXEMPT_MODULES`): ``physmem.py`` *is* the DRAM device,
``pagetable.py`` is pure geometry whose traffic the caller's accessor
charges, ``tlb.py`` is bookkeeping charged by the translator.

A function that delegates charging to a caller the analysis cannot see
states so with a ``# zionlint: disable=ZL3 <reason>`` pragma on the
touch line or its ``def`` line.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name

RULE = "ZL3"

RAW_MEM_OPS = {"read", "write", "read_u64", "write_u64", "zero_range"}
RAW_MEM_RECEIVERS = {"dram", "_dram"}

WALK_OPS = {"walk", "map", "unmap", "iter_leaves"}
WALK_RECEIVERS = {"sv39x4", "_sv39x4"}

#: Module basenames exempt from ZL3 (see module docstring for reasons).
EXEMPT_MODULES = {"physmem.py", "pagetable.py", "tlb.py"}

_WHY = (
    "cycle-exactness: the ledger must see every modelled memory touch or "
    "the reproduced wall-clock numbers silently deflate"
)


def _is_charge(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and (name == "charge" or name.startswith("_charge"))


# -- structural per-path coverage -------------------------------------------


def _expr_has_charge(node: ast.AST | None) -> bool:
    if node is None:
        return False
    return any(
        isinstance(sub, ast.Call) and _is_charge(sub) for sub in ast.walk(node)
    )


def block_always_charges(block) -> bool:
    """Whether every path through ``block`` executes a charge."""
    return any(_stmt_always_charges(stmt) for stmt in block)


def _stmt_always_charges(stmt: ast.stmt) -> bool:
    """Whether ``stmt``, once reached, charges on every path through it."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    if isinstance(stmt, ast.If):
        if _expr_has_charge(stmt.test):
            return True
        return bool(stmt.orelse) and block_always_charges(
            stmt.body
        ) and block_always_charges(stmt.orelse)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _expr_has_charge(stmt.iter)  # body may run zero times
    if isinstance(stmt, ast.While):
        return _expr_has_charge(stmt.test)
    if isinstance(stmt, ast.Try):
        # The body can raise partway through; only ``finally`` is certain.
        return block_always_charges(stmt.finalbody)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(
            _expr_has_charge(item.context_expr) for item in stmt.items
        ) or block_always_charges(stmt.body)
    return _expr_has_charge(stmt)


def _child_blocks(stmt: ast.stmt):
    for fname in ("body", "orelse", "finalbody"):
        block = getattr(stmt, fname, None)
        if isinstance(block, list) and block:
            yield block
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body


def touch_covered(fn: ast.AST, touch: ast.AST) -> bool:
    """Whether every path to ``touch`` inside ``fn`` runs through a charge.

    True when any block on the chain from ``fn.body`` down to the block
    holding ``touch`` always-charges.  Charges later in the same block
    count: ZL3 demands the path be charged, not that the charge come
    first (the migration export charges its whole page sweep in bulk
    after the loop).
    """
    return bool(_covered_in_block(fn.body, touch))


def _covered_in_block(block, touch) -> bool | None:
    """True/False when ``touch`` is in this subtree; None when absent."""
    for stmt in block:
        if not any(node is touch for node in ast.walk(stmt)):
            continue
        for child in _child_blocks(stmt):
            sub = _covered_in_block(child, touch)
            if sub is True:
                return True
            if sub is False:
                break
        return block_always_charges(block)
    return None
