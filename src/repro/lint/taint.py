"""ZL2 -- check-after-load taint tracking for SM code.

Paper clause (PAPER.md §Design, Check-after-Load): the shared vCPU page
and every ECALL argument register are hypervisor-writable, and the
hypervisor may rewrite them *between* the SM's load and its use (the
classic double-fetch/TOCTOU window).  ZION's rule is that the SM
validates every such value immediately after loading it -- bounds,
alignment, state -- before it can steer an index, a length, an address,
or SM control flow.

This module is an **intraprocedural** approximation of that rule:

- *sources* -- parameters of ``ecall_*`` / ``_host_call`` /
  ``_guest_call`` functions (hypervisor- or guest-supplied registers;
  kind ``arg``), and results of shared-memory load calls
  (:data:`SOURCE_CALLS`: ``sm_read``/``hyp_read`` on the shared vCPU
  page, ring reads; kind ``shared``);
- *propagation* -- assignments, arithmetic, boolean ops, tuple unpacks,
  and ``int.from_bytes`` keep taint.  A modulo (``x % cap``) clamps and
  therefore cleans; any other call result is untainted (call-boundary
  opacity -- callees are analysed separately);
- *sanitizers* -- passing a tainted name to a call whose name matches
  :data:`SANITIZER_NAMES` / :data:`SANITIZER_SUBSTRINGS` cleans it, and
  so does a guard statement (``if <test>: raise/return``) over it --
  the literal shape Check-after-Load takes in this codebase;
- *sinks* -- a tainted subscript index, a tainted *address or length*
  argument to a raw M-mode memory access (``*.dram.read``/``write``/...
  -- written *content* may be guest-chosen by design, e.g. image bytes,
  so only the positions in :data:`RAW_MEM_SINK_ARGS` count), a tainted
  ``range()`` bound, and -- for ``shared`` taint only -- a non-guard
  branch condition.  ``x is None`` / ``x is not None`` tests are
  availability checks, not data uses, and never make a branch a sink.

PMP-checked bus accessors (``cpu_read*``/``cpu_write*``/``dma_*``) are
deliberately *not* sinks: hardware validates those addresses, which is
the architectural difference between the checked bus and raw M-mode
access.

This module is the **intraprocedural base walker**.  The v2 engine runs
:class:`repro.lint.dataflow._InterTaint` instead, which subclasses
:class:`_FunctionTaint` and fills in the call-boundary hooks
(``_call_taint``/``_attribute_taint``/``_saw_return``/``_validated``)
with function summaries, so taint follows helper calls and ``@property``
reads over shared memory instead of dropping at the boundary.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import call_name, is_guard, iter_functions, names_in, receiver_tail
from repro.lint.findings import Finding

RULE = "ZL2"

#: Functions whose parameters arrive from hypervisor/guest registers.
ENTRY_FUNCTIONS = {"_host_call", "_guest_call"}
ENTRY_PREFIX = "ecall_"
#: Parameters that are simulator plumbing, not guest-controlled data.
UNTAINTED_PARAMS = {"self", "cls", "hart", "monitor", "machine"}

#: Calls whose *result* is a load from hypervisor-writable memory.
#: ``load`` is the shared-context accessor the IPC rings read their
#: counters and event words through (``ctx.load``).
SOURCE_CALLS = {"sm_read", "hyp_read", "try_recv", "_read_wrapped", "load"}

#: Pure converters that preserve taint across a call boundary.
PROPAGATING_CALLS = {"from_bytes"}

#: Exact call names that validate/clamp their arguments.  (``_guest_pa``
#: was hardcoded here in v1; v2 derives its validating effect from its
#: own guards via function summaries in :mod:`repro.lint.dataflow`.)
SANITIZER_NAMES = {
    "_cvm",
    "require_state",
    "register_region",
    "min",
    "max",
}
#: Name fragments that mark a call as a validator.
SANITIZER_SUBSTRINGS = ("check", "validate", "clamp", "sanitiz")

#: Raw M-mode memory operations (the receiver is the DRAM device),
#: mapped to the positional args that are addresses/lengths -- the
#: positions Check-after-Load must have validated.
RAW_MEM_SINK_ARGS = {
    "read": (0, 1),       # (addr, length)
    "write": (0,),        # (addr, data) -- data content may be guest-chosen
    "read_u64": (0,),     # (addr)
    "write_u64": (0,),    # (addr, value) -- value is data
    "zero_range": (0, 1), # (addr, length)
}
RAW_MEM_RECEIVERS = {"dram", "_dram"}

_WHY = {
    "index": (
        "Check-after-Load: a hypervisor-controlled index into SM state "
        "reads/writes out of bounds before PMP can object"
    ),
    "range": (
        "Check-after-Load: an unvalidated length bounds SM work "
        "(over-copy or unbounded loop on a guest-chosen value)"
    ),
    "raw-mem": (
        "Check-after-Load: raw M-mode access bypasses PMP, so the SM "
        "itself must validate the address/length first"
    ),
    "branch": (
        "Check-after-Load: branching on an unvalidated shared-memory "
        "value lets the hypervisor steer SM control flow mid-window"
    ),
}


def _is_sanitizer(name: str | None) -> bool:
    if name is None:
        return False
    if name in SANITIZER_NAMES:
        return True
    lowered = name.lower()
    return any(frag in lowered for frag in SANITIZER_SUBSTRINGS)


class _FunctionTaint:
    """Linear taint walk over one function body (no fixed point)."""

    def __init__(self, qual: str, fn: ast.AST, path: str):
        self.qual = qual
        self.fn = fn
        self.path = path
        self.findings: list[Finding] = []
        #: name -> "arg" | "shared"
        self.taint: dict[str, str] = {}
        #: whether shared-memory load calls seed taint (summary runs in
        #: :mod:`repro.lint.dataflow` turn this off to isolate one param)
        self.shared_sources = True
        name = fn.name
        if name.startswith(ENTRY_PREFIX) or name in ENTRY_FUNCTIONS:
            args = fn.args
            params = [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
            ]
            for param in params:
                if param.arg not in UNTAINTED_PARAMS:
                    self.taint[param.arg] = "arg"

    # -- expression-level taint -------------------------------------------

    def _expr_taint(self, node: ast.AST | None) -> str | None:
        """Taint kind of an expression value, ``None`` when clean."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.taint.get(node.id)
        if isinstance(node, ast.Call):
            fname = call_name(node)
            if fname in SOURCE_CALLS:
                return "shared" if self.shared_sources else None
            if fname in PROPAGATING_CALLS:
                return self._exprs_taint(node.args)
            return self._call_taint(node)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mod):
                return None  # modulo clamps to the divisor's span
            return self._exprs_taint([node.left, node.right])
        if isinstance(node, ast.UnaryOp):
            return self._expr_taint(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._exprs_taint(node.values)
        if isinstance(node, ast.IfExp):
            return self._exprs_taint([node.body, node.orelse])
        if isinstance(node, ast.Compare):
            return self._exprs_taint([node.left, *node.comparators])
        if isinstance(node, ast.Subscript):
            return self._expr_taint(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._exprs_taint(node.elts)
        if isinstance(node, ast.Attribute):
            # Attribute loads are fresh objects, not the name's taint --
            # unless they resolve to a @property over shared memory (the
            # interprocedural walker overrides this hook).
            return self._attribute_taint(node)
        if isinstance(node, ast.Starred):
            return self._expr_taint(node.value)
        return None

    def _attribute_taint(self, node: ast.Attribute) -> str | None:
        """Hook: taint of an attribute load (default: clean)."""
        return None

    def _call_taint(self, node: ast.Call) -> str | None:
        """Taint of an unrecognised call result.

        The base (v1) walker is call-boundary opaque: any call not in
        :data:`SOURCE_CALLS`/:data:`PROPAGATING_CALLS` returns clean.
        The interprocedural walker in :mod:`repro.lint.dataflow`
        overrides this with function-summary lookups.
        """
        return None

    def _exprs_taint(self, nodes) -> str | None:
        kind = None
        for node in nodes:
            k = self._expr_taint(node)
            if k == "shared":
                return "shared"
            kind = kind or k
        return kind

    # -- sinks -------------------------------------------------------------

    def _finding(self, node: ast.AST, sink: str, detail: str) -> None:
        self.findings.append(
            Finding(
                rule=RULE,
                path=self.path,
                line=node.lineno,
                func=self.qual,
                message=detail,
                why=_WHY[sink],
                def_line=self.fn.lineno,
            )
        )

    def _saw_return(self, kind: str | None) -> None:
        """Hook: a ``return <expr>`` whose value has taint ``kind``."""

    def _tainted_names(self, node: ast.AST) -> list[str]:
        return sorted(n for n in names_in(node) if n in self.taint)

    def _check_expr_sinks(self, node: ast.AST) -> None:
        """Scan one expression tree for sink patterns."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Subscript) and not isinstance(
                sub.ctx, ast.Del
            ):
                hot = self._tainted_names(sub.slice)
                if hot:
                    self._finding(
                        sub,
                        "index",
                        f"tainted value {', '.join(hot)!s} used as subscript index",
                    )
            elif isinstance(sub, ast.Call):
                fname = call_name(sub)
                if fname == "range":
                    hot = sorted(
                        {n for a in sub.args for n in self._tainted_names(a)}
                    )
                    if hot:
                        self._finding(
                            sub,
                            "range",
                            f"tainted value {', '.join(hot)!s} bounds a range()",
                        )
                elif (
                    fname in RAW_MEM_SINK_ARGS
                    and receiver_tail(sub) in RAW_MEM_RECEIVERS
                ):
                    positions = RAW_MEM_SINK_ARGS[fname]
                    hot = sorted(
                        {
                            n
                            for i, a in enumerate(sub.args)
                            if i in positions
                            for n in self._tainted_names(a)
                        }
                    )
                    if hot:
                        self._finding(
                            sub,
                            "raw-mem",
                            f"tainted value {', '.join(hot)!s} reaches raw "
                            f"M-mode memory access '{fname}'",
                        )

    def _validated(self, name: str) -> None:
        """One name was validated (guard or sanitizer): clean it.

        Split out so the summary walker in :mod:`repro.lint.dataflow`
        can distinguish an *explicitly validated* parameter from one
        that merely went unused.
        """
        self.taint.pop(name, None)

    def _apply_sanitizers(self, node: ast.AST) -> None:
        """Names passed to validator calls are clean afterwards."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _is_sanitizer(call_name(sub)):
                for arg in [*sub.args, *[k.value for k in sub.keywords]]:
                    for name in names_in(arg):
                        self._validated(name)

    # -- statement walk ----------------------------------------------------

    def run(self) -> list[Finding]:
        self._walk_body(self.fn.body)
        return self.findings

    def _walk_body(self, body) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed on their own
        if isinstance(stmt, ast.Assign):
            self._check_expr_sinks(stmt.value)
            kind = self._expr_taint(stmt.value)
            self._apply_sanitizers(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, kind, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_expr_sinks(stmt.value)
                kind = self._expr_taint(stmt.value)
                self._apply_sanitizers(stmt.value)
                self._assign_target(stmt.target, kind, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._check_expr_sinks(stmt.value)
            kind = self._expr_taint(stmt.value)
            self._apply_sanitizers(stmt.value)
            if isinstance(stmt.target, ast.Name) and kind is not None:
                self.taint[stmt.target.id] = kind
        elif isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr_sinks(stmt.iter)
            kind = self._expr_taint(stmt.iter)
            self._apply_sanitizers(stmt.iter)
            self._assign_target(stmt.target, kind, stmt.iter)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self._check_expr_sinks(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr_sinks(item.context_expr)
                self._apply_sanitizers(item.context_expr)
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Return, ast.Expr, ast.Raise, ast.Assert, ast.Delete)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._saw_return(self._expr_taint(stmt.value))
            for value in ast.iter_child_nodes(stmt):
                self._check_expr_sinks(value)
                self._apply_sanitizers(value)
        else:
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._check_expr_sinks(value)
                    self._apply_sanitizers(value)

    def _assign_target(self, target: ast.AST, kind: str | None, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if kind is None:
                self.taint.pop(target.id, None)
            else:
                self.taint[target.id] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Element-wise when shapes line up, else blanket-apply.
            elements = target.elts
            values = value.elts if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(elements) else None
            for i, element in enumerate(elements):
                element_kind = (
                    self._expr_taint(values[i]) if values is not None else kind
                )
                self._assign_target(element, element_kind, value)
        elif isinstance(target, ast.Subscript):
            hot = self._tainted_names(target.slice)
            if hot:
                self._finding(
                    target,
                    "index",
                    f"tainted value {', '.join(hot)!s} used as subscript index",
                )

    def _visit_if(self, stmt: ast.If) -> None:
        self._check_expr_sinks(stmt.test)
        if is_guard(stmt):
            # The Check-after-Load shape itself: testing a tainted value
            # and rejecting on failure validates it for the fall-through.
            for name in names_in(stmt.test):
                self._validated(name)
            self._walk_body(stmt.body)
            return
        hot = sorted(
            n
            for n in _branch_sensitive_names(stmt.test)
            if self.taint.get(n) == "shared"
        )
        if hot:
            self._finding(
                stmt,
                "branch",
                f"non-guard branch on tainted shared-memory value {', '.join(hot)!s}",
            )
        before = dict(self.taint)
        self._walk_body(stmt.body)
        after_body = self.taint
        self.taint = dict(before)
        self._walk_body(stmt.orelse)
        # Conservative join: tainted if tainted on either branch.
        for name, kind in after_body.items():
            self.taint.setdefault(name, kind)


def _branch_sensitive_names(test: ast.AST) -> set[str]:
    """Names in a branch test, minus pure ``is (not) None`` presence checks."""
    skip: set[int] = set()
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
            and all(
                isinstance(c, ast.Constant) and c.value is None
                for c in node.comparators
            )
        ):
            skip.update(id(sub) for sub in ast.walk(node))
    return {
        node.id
        for node in ast.walk(test)
        if isinstance(node, ast.Name) and id(node) not in skip
    }


def check(tree: ast.Module, path: str) -> list[Finding]:
    """Run ZL2 over one SM-domain module."""
    findings: list[Finding] = []
    for qual, fn in iter_functions(tree):
        findings.extend(_FunctionTaint(qual, fn, path).run())
    return findings
