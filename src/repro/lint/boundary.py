"""ZL1 -- trust-boundary rule for untrusted domains.

Paper clause (PAPER.md §Design, THREAT_MODEL "hypervisor is untrusted"):
the hypervisor and guests interact with the SM **only** through the
numbered ECALL ABI and the two deliberately shared structures -- the
shared vCPU page and the hypervisor-owned shared subtree.  Everything
else inside the SM (the CVM registry, the secure pool, secure vCPU
state, stage-2 table objects, the measurement log) is M-mode private:
on hardware PMP makes it unreadable, so simulation code that reaches it
directly is modelling an access the silicon would fault.

Concretely, for modules under ``hyp/``, ``guest/``, ``workloads/`` and
``ipc/``:

- imports from ``repro.sm`` must stay inside :data:`ALLOWED_SM_IMPORTS`
  (the ABI module wholesale, plus a short list of shared-surface types);
- attribute accesses named in :data:`PRIVATE_ATTRS` are findings --
  ``monitor.ecall_*`` calls are the sanctioned verbs, ``.cvms`` /
  ``.pool`` / ``.vcpus`` and friends are the unsanctioned nouns.

The check is name-based (no type inference): a denylisted attribute on
*any* receiver is flagged.  Names were chosen so no untrusted module
legitimately owns them; type-aware narrowing is a ROADMAP follow-up.
One collision is special-cased: ``.split`` names the SM's split-table
manager *namespace*, but called directly (``text.split()``) it is
string splitting -- so names in :data:`METHOD_COLLISIONS` are only
flagged when the attribute is not itself the callee.
"""

from __future__ import annotations

import ast

from repro.lint.astutil import iter_functions
from repro.lint.findings import Finding

RULE = "ZL1"

#: ``repro.sm`` modules untrusted code may import wholesale.  ``abi`` IS
#: the architectural boundary -- everything it exports is by definition
#: visible below M mode.
ALLOWED_SM_MODULES = {"repro.sm.abi"}

#: Per-module allowlist for ``from repro.sm.X import Y``.  ``None``
#: means the whole module surface is sanctioned.
ALLOWED_SM_IMPORTS: dict[str, set[str] | None] = {
    "repro.sm.abi": None,
    # GpaLayout is the *architectural* address-space contract both sides
    # agree on (the DESCRIBE_CVM descriptor carrying it lives in sm.abi).
    "repro.sm.cvm": {"GpaLayout"},
    # The shared vCPU page layout is hypervisor-writable by design.
    "repro.sm.vcpu": {"SHARED_VCPU_FIELDS", "SHARED_VCPU_SIZE"},
}

#: SM-private attribute names, each with the clause it would violate.
PRIVATE_ATTRS: dict[str, str] = {
    "cvms": "the CVM registry is M-mode state; hosts name CVMs by id through ECALLs",
    "pool": "the secure pool's geometry/ownership is invisible below M mode",
    "secure_vcpu": "secure vCPU state never leaves the SM (only the shared page does)",
    "secure_vcpus": "secure vCPU state never leaves the SM (only the shared page does)",
    "vcpus": "the secure vCPU array is SM-private; hosts see only shared_vcpus",
    "split": "stage-2 split-table management is the SM's alone",
    "check_after_load": "Check-after-Load is SM-internal validation machinery",
    "world_switch": "world-switch internals (PMP toggling) are M-mode only",
    "measurement_log": "the measurement log backs attestation; reads go via ECALL",
    "attestation_key": "the attestation key must never be readable below M mode",
    # The raw sm_* accessors bypass the PMP-checked bus; untrusted code
    # must use hyp_read/hyp_write, which fault on secure memory.
    "sm_read": "untrusted code must use the PMP-checked hyp_read, not the M-mode accessor",
    "sm_write": "untrusted code must use the PMP-checked hyp_write, not the M-mode accessor",
    # ``bus.dram`` is the raw memory device behind the bus.  Going through
    # it skips the PMP check entirely -- an M-mode capability no code
    # below M mode may hold (the host's scrub/walk paths use cpu_zero_range
    # / cpu_read_u64, which fault on secure memory like any other store).
    "dram": "raw DRAM access bypasses the PMP check; untrusted code must use the bus cpu_* accessors",
}


def _import_findings(tree: ast.Module, path: str) -> list[Finding]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == "repro.sm" or (
                    name.startswith("repro.sm.") and name not in ALLOWED_SM_MODULES
                ):
                    out.append(
                        Finding(
                            rule=RULE,
                            path=path,
                            line=node.lineno,
                            func="<module>",
                            message=f"import of SM-internal module '{name}'",
                            why="only the ECALL ABI surface crosses the SM boundary",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro" and any(a.name == "sm" for a in node.names):
                out.append(
                    Finding(
                        rule=RULE,
                        path=path,
                        line=node.lineno,
                        func="<module>",
                        message="import of the whole 'repro.sm' package",
                        why="only the ECALL ABI surface crosses the SM boundary",
                    )
                )
                continue
            if module == "repro.sm":
                # ``from repro.sm import abi`` style.
                for alias in node.names:
                    if f"repro.sm.{alias.name}" not in ALLOWED_SM_MODULES:
                        out.append(
                            Finding(
                                rule=RULE,
                                path=path,
                                line=node.lineno,
                                func="<module>",
                                message=(
                                    f"import of SM-internal module 'repro.sm.{alias.name}'"
                                ),
                                why="only the ECALL ABI surface crosses the SM boundary",
                            )
                        )
                continue
            if not module.startswith("repro.sm."):
                continue
            allowed = ALLOWED_SM_IMPORTS.get(module)
            if allowed is None and module in ALLOWED_SM_IMPORTS:
                continue  # whole surface sanctioned
            for alias in node.names:
                if allowed is None or alias.name not in allowed:
                    out.append(
                        Finding(
                            rule=RULE,
                            path=path,
                            line=node.lineno,
                            func="<module>",
                            message=(
                                f"import of '{alias.name}' from SM-internal "
                                f"module '{module}'"
                            ),
                            why="only the ECALL ABI surface crosses the SM boundary",
                        )
                    )
    return out


#: Denylisted names that collide with builtin methods: flagged only as a
#: namespace access (``monitor.split.map_private``), never as a direct
#: call (``text.split()``).
METHOD_COLLISIONS = {"split"}


def _attr_findings(tree: ast.Module, path: str) -> list[Finding]:
    # Map every node to its enclosing function for def-line pragmas.
    spans: list[tuple[int, int, str, int]] = []
    for qual, fn in iter_functions(tree):
        end = getattr(fn, "end_lineno", fn.lineno)
        spans.append((fn.lineno, end, qual, fn.lineno))

    def enclosing(line: int) -> tuple[str, int]:
        best = ("<module>", 0)
        best_size = None
        for start, end, qual, def_line in spans:
            if start <= line <= end and (best_size is None or end - start < best_size):
                best, best_size = (qual, def_line), end - start
        return best

    called_attrs = {
        id(node.func)
        for node in ast.walk(tree)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
    }
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        why = PRIVATE_ATTRS.get(node.attr)
        if why is None:
            continue
        if node.attr in METHOD_COLLISIONS and id(node) in called_attrs:
            continue
        func, def_line = enclosing(node.lineno)
        out.append(
            Finding(
                rule=RULE,
                path=path,
                line=node.lineno,
                func=func,
                message=f"access to SM-private attribute '.{node.attr}'",
                why=why,
                def_line=def_line,
            )
        )
    return out


def check(tree: ast.Module, path: str) -> list[Finding]:
    """Run ZL1 over one untrusted-domain module."""
    return _import_findings(tree, path) + _attr_findings(tree, path)
