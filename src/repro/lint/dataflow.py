"""Interprocedural passes for zionlint v2: ZL2 summaries, per-path ZL3.

Two analyses share the :class:`repro.lint.callgraph.Project` call graph:

**Interprocedural ZL2** (:func:`check_taint`).  Each project function
gets a :class:`FunctionSummary` describing how taint moves across its
boundary: does it *return* a shared-memory load (``@property`` counter
reads), does a given parameter flow to its return value, does it
*validate* a parameter (guard or sanitizer over it), does it pass a
parameter to a raw-memory sink unchecked.  The checking walker,
:class:`_InterTaint`, subclasses the v1 intraprocedural walker and
fills in its call-boundary hooks with summary lookups, so
``pa = self._guest_pa(cvm, gpa)`` cleans ``gpa`` because ``_guest_pa``
guards it, and ``self._read_guest_buffer(addr, n)`` is a finding when
the callee feeds ``addr`` to raw DRAM without checking it.

Summaries are computed by running the same walker in *summary mode*:
once with shared sources live (for ``returns_shared``), then once per
parameter with only that parameter seeded (for flow/validation/sink
facts), so a shared-load sink inside the callee is never attributed to
an innocent parameter.  A cycle in the call graph yields the empty
summary for the function that closed it -- conservative, like v1.

**Path-sensitive ZL3** (:func:`check_charging`).  The structural
every-path analysis lives in :mod:`repro.lint.charging`; this module
adds type-aware touch detection (bound dram methods like
``self._read_u64``, constructed ``Sv39x4()`` walk receivers) and three
interprocedural resolutions, applied in order to each structurally
uncovered touch:

1. *charged accessor*: a page-table walk whose accessor argument is a
   class whose ``read_u64`` both touches DRAM and charges (the
   translator's ``_RawAccessor`` charges per PTE inside the walker);
2. *bulk-charged accessor*: raw-memory methods of a class that is only
   ever handed to walk ops inside functions that charge (the share
   manager's accessor, migration's local ``Raw`` -- the caller charges
   the whole walk in bulk);
3. *caller-side charging*: every resolvable in-domain call site of the
   function sits in a function that charges.  Call sites outside
   ``sm``/``mem``/``isa`` do not participate in the cycle model and are
   ignored; a function with no in-domain call sites stays flagged.

Anything still uncovered is a finding at the touch line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.astutil import call_name, iter_functions, names_in, receiver_tail
from repro.lint.callgraph import ClassInfo, FunctionInfo, Project, local_bindings
from repro.lint.charging import (
    RAW_MEM_OPS,
    RAW_MEM_RECEIVERS,
    WALK_OPS,
    WALK_RECEIVERS,
    _WHY as _ZL3_WHY,
    _is_charge,
    touch_covered,
)
from repro.lint.charging import RULE as ZL3_RULE
from repro.lint.findings import Finding
from repro.lint.taint import UNTAINTED_PARAMS, _FunctionTaint, _is_sanitizer

#: Domains whose call sites participate in the ZL3 cycle model.
CHARGED_DOMAIN_DIRS = ("sm", "mem", "isa")


# -- function summaries ------------------------------------------------------


def _param_names(fn: ast.AST) -> List[str]:
    args = fn.args
    return [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]


@dataclass
class FunctionSummary:
    """Boundary-crossing taint facts about one function."""

    param_names: List[str]
    #: the return value is (or may be) a shared-memory load
    returns_shared: bool = False
    #: parameter positions that flow to the return value
    return_taints: Set[int] = field(default_factory=set)
    #: parameter positions the function guards/sanitizes
    validates: Set[int] = field(default_factory=set)
    #: parameter position -> sink kind it reaches unvalidated
    param_sinks: Dict[int, str] = field(default_factory=dict)


class SummaryTable:
    """Memoized on-demand :class:`FunctionSummary` store."""

    def __init__(self, project: Project):
        self.project = project
        self._memo: Dict[Tuple[str, str], FunctionSummary] = {}
        self._in_progress: Set[Tuple[str, str]] = set()

    def summary(self, fi: FunctionInfo) -> FunctionSummary:
        key = (fi.module, fi.qualname)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            # Recursion: break the cycle with the empty (conservative)
            # summary; the memoized result for the outer frame still
            # reflects everything below the back edge.
            return FunctionSummary(param_names=_param_names(fi.node))
        self._in_progress.add(key)
        try:
            result = self._compute(fi)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = result
        return result

    def _compute(self, fi: FunctionInfo) -> FunctionSummary:
        names = _param_names(fi.node)
        out = FunctionSummary(param_names=names)

        # Pass 1: shared sources only -- does a shared load reach a return?
        walker = _InterTaint(fi, self.project, self, summary_mode=True)
        walker.run()
        out.returns_shared = "shared" in walker.returned_kinds

        # Pass 2: one run per parameter, shared sources off, so every
        # fact below is attributable to exactly that parameter.
        for pos, pname in enumerate(names):
            if pname in UNTAINTED_PARAMS:
                continue
            walker = _InterTaint(fi, self.project, self, summary_mode=True)
            walker.shared_sources = False
            walker.taint = {pname: "arg"}
            walker.run()
            if "arg" in walker.returned_kinds:
                out.return_taints.add(pos)
            if pname in walker.validated_names:
                out.validates.add(pos)
            if walker.sink_hits:
                out.param_sinks[pos] = walker.sink_hits[0]
        return out


class _InterTaint(_FunctionTaint):
    """The v1 taint walker with its call-boundary hooks filled in."""

    def __init__(
        self,
        fi: FunctionInfo,
        project: Project,
        summaries: SummaryTable,
        summary_mode: bool = False,
    ):
        super().__init__(fi.qualname, fi.node, fi.module)
        self.fi = fi
        self.project = project
        self.summaries = summaries
        self.summary_mode = summary_mode
        self.locals_ = local_bindings(project, fi.node, fi.module, fi.class_name)
        self.returned_kinds: Set[str] = set()
        self.validated_names: Set[str] = set()
        self.sink_hits: List[str] = []
        if summary_mode:
            # Summary runs seed taint explicitly; drop the entry-function
            # parameter seeding the base constructor may have applied.
            self.taint = {}

    # -- resolution helpers ---------------------------------------------

    def _resolve(self, node: ast.Call) -> Optional[FunctionInfo]:
        if _is_sanitizer(call_name(node)):
            return None  # handled by _apply_sanitizers, result is clean
        return self.project.resolve_call(
            node, self.fi.module, self.fi.class_name, self.locals_
        )

    def _call_args(self, node: ast.Call, fi: FunctionInfo, s: FunctionSummary):
        """(absolute param position, argument expression) pairs."""
        offset = 1 if fi.class_name else 0
        pairs = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            pairs.append((i + offset, arg))
        for kw in node.keywords:
            if kw.arg and kw.arg in s.param_names:
                pairs.append((s.param_names.index(kw.arg), kw.value))
        return pairs

    # -- hook overrides ---------------------------------------------------

    def _saw_return(self, kind: str | None) -> None:
        if kind is not None:
            self.returned_kinds.add(kind)

    def _validated(self, name: str) -> None:
        if name in self.taint:
            self.validated_names.add(name)
        super()._validated(name)

    def _finding(self, node: ast.AST, sink: str, detail: str) -> None:
        if self.summary_mode:
            self.sink_hits.append(sink)
            return
        super()._finding(node, sink, detail)

    def _attribute_taint(self, node: ast.Attribute) -> str | None:
        if not self.shared_sources:
            return None
        prop = self.project.resolve_property(
            node, self.fi.module, self.fi.class_name, self.locals_
        )
        if prop is not None and self.summaries.summary(prop).returns_shared:
            return "shared"
        return None

    def _call_taint(self, node: ast.Call) -> str | None:
        callee = self._resolve(node)
        if callee is None:
            return None
        s = self.summaries.summary(callee)
        if s.returns_shared and self.shared_sources:
            return "shared"
        kind = None
        for pos, arg in self._call_args(node, callee, s):
            if pos in s.return_taints:
                k = self._expr_taint(arg)
                if k == "shared":
                    return "shared"
                kind = kind or k
        return kind

    def _check_expr_sinks(self, node: ast.AST) -> None:
        super()._check_expr_sinks(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = self._resolve(sub)
            if callee is None:
                continue
            s = self.summaries.summary(callee)
            if not s.param_sinks:
                continue
            for pos, arg in self._call_args(sub, callee, s):
                if pos not in s.param_sinks:
                    continue
                hot = self._tainted_names(arg)
                if not hot:
                    continue
                self._finding(
                    sub,
                    s.param_sinks[pos],
                    f"tainted value {', '.join(hot)!s} flows through call "
                    f"'{callee.name}' (parameter '{s.param_names[pos]}') "
                    f"into a {s.param_sinks[pos]} sink",
                )

    def _apply_sanitizers(self, node: ast.AST) -> None:
        super()._apply_sanitizers(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee = self._resolve(sub)
            if callee is None:
                continue
            s = self.summaries.summary(callee)
            if not s.validates:
                continue
            for pos, arg in self._call_args(sub, callee, s):
                if pos in s.validates:
                    for name in names_in(arg):
                        self._validated(name)


def check_taint(
    project: Project, summaries: SummaryTable, module_key: str
) -> list[Finding]:
    """Run interprocedural ZL2 over one SM/IPC-domain module."""
    mod = project.modules[module_key]
    findings: list[Finding] = []
    for qualname, fn in iter_functions(mod.tree):
        fi = mod.functions.get(qualname) or FunctionInfo(
            module=module_key, qualname=qualname, node=fn
        )
        findings.extend(_InterTaint(fi, project, summaries).run())
    return findings


# -- path-sensitive ZL3 ------------------------------------------------------


def _is_sv39x4_tag(tag: Optional[str]) -> bool:
    return tag is not None and (tag == "Sv39x4" or tag.endswith("::Sv39x4"))


def _nested_ids(fn: ast.AST) -> Set[int]:
    out: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            out.update(id(sub) for sub in ast.walk(node))
    return out


def _collect_touches(
    project: Project,
    fi: FunctionInfo,
    locals_: Dict[str, str],
) -> List[Tuple[ast.Call, str, bool]]:
    """(call, description, is_walk) for raw memory ops and table walks."""
    touches: List[Tuple[ast.Call, str, bool]] = []
    nested = _nested_ids(fi.node)
    for node in ast.walk(fi.node):
        if id(node) in nested or not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        tail = receiver_tail(node)
        op = project.bound_dram_op(node.func, fi.module, fi.class_name, locals_)
        if op is None and name in RAW_MEM_OPS and tail in RAW_MEM_RECEIVERS:
            op = name
        if op is not None:
            touches.append((node, f"raw memory access '{op}'", False))
            continue
        if name in WALK_OPS and isinstance(node.func, ast.Attribute):
            typed = _is_sv39x4_tag(
                project.receiver_type(
                    node.func.value, fi.module, fi.class_name, locals_
                )
            )
            if tail in WALK_RECEIVERS or typed:
                touches.append((node, f"page-table walk '{name}'", True))
    return touches


def _fn_has_charge(fn: ast.AST) -> bool:
    nested = _nested_ids(fn)
    return any(
        isinstance(node, ast.Call) and id(node) not in nested and _is_charge(node)
        for node in ast.walk(fn)
    )


def _in_charged_domain(module_key: str) -> bool:
    parts = module_key.replace("\\", "/").split("/")
    return any(part in CHARGED_DOMAIN_DIRS for part in parts[:-1])


class ChargingAnalysis:
    """Whole-project facts the interprocedural ZL3 resolutions need."""

    def __init__(self, project: Project):
        self.project = project
        self._fn_charges: Dict[Tuple[str, str], bool] = {}
        #: (module, qualname) -> caller FunctionInfos of resolved calls
        self.calls_to: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        #: method name -> caller FunctionInfos of *unresolved* attr calls
        self.calls_by_name: Dict[str, List[FunctionInfo]] = {}
        #: function name -> number of definitions project-wide
        self.name_defs: Dict[str, int] = {}
        #: (module, class name) -> walk-site caller FunctionInfos
        self.walk_accessor_uses: Dict[Tuple[str, str], List[FunctionInfo]] = {}
        self._build()

    def _build(self) -> None:
        for mod in self.project.modules.values():
            for fi in mod.functions.values():
                self.name_defs[fi.name] = self.name_defs.get(fi.name, 0) + 1
        for mod in self.project.modules.values():
            for fi in mod.functions.values():
                self._scan_function(fi)

    def _scan_function(self, fi: FunctionInfo) -> None:
        locals_ = local_bindings(self.project, fi.node, fi.module, fi.class_name)
        nested = _nested_ids(fi.node)
        for node in ast.walk(fi.node):
            if id(node) in nested or not isinstance(node, ast.Call):
                continue
            target = self.project.resolve_call(
                node, fi.module, fi.class_name, locals_
            )
            if target is not None:
                self.calls_to.setdefault(
                    (target.module, target.qualname), []
                ).append(fi)
            elif isinstance(node.func, ast.Attribute):
                self.calls_by_name.setdefault(node.func.attr, []).append(fi)
            name = call_name(node)
            if name in WALK_OPS and node.args:
                tag = self.project.receiver_type(
                    node.args[0], fi.module, fi.class_name, locals_
                )
                cls = self.project._unique_class(tag)
                if cls is not None:
                    self.walk_accessor_uses.setdefault(
                        (cls.module, cls.name), []
                    ).append(fi)

    def fn_charges(self, fi: FunctionInfo) -> bool:
        key = (fi.module, fi.qualname)
        if key not in self._fn_charges:
            self._fn_charges[key] = _fn_has_charge(fi.node)
        return self._fn_charges[key]

    def accessor_self_charges(self, cls: Optional[ClassInfo]) -> bool:
        """Resolution 1: the walk accessor's ``read_u64`` touches + charges."""
        if cls is None:
            return False
        method = cls.methods.get("read_u64")
        if method is None or not self.fn_charges(method):
            return False
        method_locals = local_bindings(
            self.project, method.node, method.module, method.class_name
        )
        return bool(_collect_touches(self.project, method, method_locals))

    def accessor_bulk_charged(self, cls: Optional[ClassInfo]) -> bool:
        """Resolution 2: every walk handing out ``cls`` instances charges."""
        if cls is None:
            return False
        uses = self.walk_accessor_uses.get((cls.module, cls.name), [])
        return bool(uses) and all(self.fn_charges(u) for u in uses)

    def callers_always_charge(self, fi: FunctionInfo) -> bool:
        """Resolution 3: every resolvable in-domain call site charges."""
        sites = list(self.calls_to.get((fi.module, fi.qualname), []))
        if self.name_defs.get(fi.name, 0) == 1:
            # The name is defined exactly once project-wide, so even
            # receiver-untyped ``x.<name>(...)`` sites are its calls.
            sites.extend(self.calls_by_name.get(fi.name, []))
        sites = [s for s in sites if _in_charged_domain(s.module)]
        return bool(sites) and all(self.fn_charges(s) for s in sites)


def check_charging(
    project: Project, analysis: ChargingAnalysis, module_key: str
) -> list[Finding]:
    """Run path-sensitive ZL3 over one sm/mem/isa-domain module."""
    mod = project.modules[module_key]
    findings: list[Finding] = []
    for qualname, fn in iter_functions(mod.tree):
        fi = mod.functions.get(qualname) or FunctionInfo(
            module=module_key, qualname=qualname, node=fn
        )
        locals_ = local_bindings(project, fn, module_key, fi.class_name)
        touches = _collect_touches(project, fi, locals_)
        if not touches:
            continue
        own_cls = (
            mod.classes.get(fi.class_name) if fi.class_name is not None else None
        )
        caller_charged = None  # computed lazily, it is the costliest check
        for node, what, is_walk in touches:
            if touch_covered(fn, node):
                continue
            if is_walk and node.args:
                accessor_cls = project._unique_class(
                    project.receiver_type(
                        node.args[0], module_key, fi.class_name, locals_
                    )
                )
                if analysis.accessor_self_charges(accessor_cls):
                    continue
            if analysis.accessor_bulk_charged(own_cls):
                continue
            if caller_charged is None:
                caller_charged = analysis.callers_always_charge(fi)
            if caller_charged:
                continue
            findings.append(
                Finding(
                    rule=ZL3_RULE,
                    path=module_key,
                    line=node.lineno,
                    func=qualname,
                    message=(
                        f"{what} with no CycleLedger charge on every path "
                        "reaching it"
                    ),
                    why=_ZL3_WHY,
                    def_line=fn.lineno,
                )
            )
    return findings
