"""ZION reproduction: a confidential-VM architecture for commodity RISC-V.

This package reproduces *ZION: A Practical Confidential Virtual Machine
Architecture on Commodity RISC-V Processors* (DAC 2025) as a functional
simulation: the RISC-V privileged architecture (PMP, IOPMP, trap
delegation, the hypervisor extension, two-stage translation) is modelled in
:mod:`repro.isa` and :mod:`repro.mem`, the ZION Secure Monitor -- the
paper's contribution -- is implemented in full in :mod:`repro.sm`, and the
untrusted host stack (KVM-like hypervisor, QEMU-like device emulation,
virtio, SWIOTLB) lives in :mod:`repro.hyp`.  A calibrated cycle-accounting
model (:mod:`repro.cycles`) lets the benchmark harness regenerate every
table and figure of the paper's evaluation.

Quickstart::

    from repro import Machine, MachineConfig

    machine = Machine(MachineConfig())
    cvm = machine.create_confidential_vm(memory_bytes=64 << 20)
    ...
"""

from repro.cycles import Category, CycleCosts, CycleLedger, DEFAULT_COSTS
from repro.errors import (
    ConfigurationError,
    EcallError,
    MigrationRejected,
    ReproError,
    SecurityViolation,
    TrapRaised,
)
from repro.machine import Machine, MachineConfig
from repro.analysis import machine_stats, overhead_report
from repro.trace import Tracer
from repro.verify import assert_invariants, check_invariants

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "Category",
    "CycleCosts",
    "CycleLedger",
    "DEFAULT_COSTS",
    "ReproError",
    "ConfigurationError",
    "SecurityViolation",
    "MigrationRejected",
    "EcallError",
    "TrapRaised",
    "machine_stats",
    "overhead_report",
    "Tracer",
    "check_invariants",
    "assert_invariants",
    "__version__",
]
