"""Event tracing: a cycle-timestamped log of architectural events.

Attach a :class:`Tracer` to a machine and every significant event --
world switches, stage-2 faults, ECALLs, device interrupts, pool
operations -- is recorded with the ledger timestamp at which it happened.
Useful for debugging workload behaviour ("why did this exit happen at
cycle 2,401,733?"), for tests that assert event *ordering* rather than
just counts, and for producing the per-exit breakdowns the analysis
module reports.

The tracer hooks the existing objects non-invasively (method wrapping),
so tracing can be enabled per-experiment without a machine rebuild and
costs nothing when absent.
"""

from __future__ import annotations

import dataclasses
import sys


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    kind: str  # "cvm_exit", "cvm_enter", "fault", "ecall", "irq", ...
    detail: dict

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"<{self.cycle:>12,} {self.kind} {inner}>"


class Tracer:
    """Records machine events until detached or the limit is reached."""

    def __init__(self, machine, limit: int = 100_000):
        self.machine = machine
        self.limit = limit
        self.events: list[TraceEvent] = []
        #: Events discarded after the limit was reached -- a non-zero
        #: value means the timeline is a prefix, not the whole run.
        self.dropped = 0
        self._unhook = []
        self._attach()

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, **detail) -> None:
        """Append one event at the current ledger timestamp."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(cycle=self.machine.ledger.total, kind=kind, detail=detail)
        )

    # -- hooks --------------------------------------------------------------

    def _attach(self) -> None:
        machine = self.machine
        ws = machine.monitor.world_switch

        original_exit = ws.exit_to_normal

        def traced_exit(hart, cvm, vcpu, exit_info):
            result = original_exit(hart, cvm, vcpu, exit_info)
            self.record(
                "cvm_exit",
                cvm=cvm.cvm_id,
                vcpu=vcpu.vcpu_id,
                reason=exit_info.get("kind"),
                hart=hart.hart_id,
            )
            return result

        ws.exit_to_normal = traced_exit
        self._unhook.append(lambda: setattr(ws, "exit_to_normal", original_exit))

        original_enter = ws.enter_cvm

        def traced_enter(hart, cvm, vcpu):
            result = original_enter(hart, cvm, vcpu)
            self.record("cvm_enter", cvm=cvm.cvm_id, vcpu=vcpu.vcpu_id, hart=hart.hart_id)
            return result

        ws.enter_cvm = traced_enter
        self._unhook.append(lambda: setattr(ws, "enter_cvm", original_enter))

        previous_observer = machine.fault_observer

        def traced_fault(kind, stage, cycles):
            self.record(
                "fault",
                path=kind,
                stage=stage.name if stage is not None else None,
                cycles=cycles,
            )
            if previous_observer is not None:
                previous_observer(kind, stage, cycles)

        machine.fault_observer = traced_fault
        self._unhook.append(
            lambda: setattr(machine, "fault_observer", previous_observer)
        )

        monitor = machine.monitor
        original_charge = monitor._charge_ecall
        # ECALL tracing piggybacks on the monitor's common charge point.
        # sys._getframe is ~1000x cheaper than inspect.stack() (which
        # resolves source lines for the whole call stack); tracing every
        # ECALL must not distort the very runs it is observing.

        def traced_charge():
            caller = sys._getframe(1).f_code.co_name
            self.record("ecall", function=caller)
            original_charge()

        monitor._charge_ecall = traced_charge
        self._unhook.append(lambda: setattr(monitor, "_charge_ecall", original_charge))

    def detach(self) -> None:
        """Remove every hook (events stay available)."""
        for undo in self._unhook:
            undo()
        self._unhook.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # -- queries --------------------------------------------------------------

    def of_kind(self, kind: str) -> list:
        """All recorded events of the given kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def timeline(self) -> str:
        """Human-readable event dump (notes any events lost to the limit)."""
        lines = [repr(event) for event in self.events]
        if self.dropped:
            lines.append(
                f"... {self.dropped} events dropped (limit={self.limit})"
            )
        return "\n".join(lines)

    def exit_latencies(self) -> list:
        """Cycle gaps between each cvm_exit and the following cvm_enter."""
        gaps = []
        pending = None
        for event in self.events:
            if event.kind == "cvm_exit":
                pending = event.cycle
            elif event.kind == "cvm_enter" and pending is not None:
                gaps.append(event.cycle - pending)
                pending = None
        return gaps
