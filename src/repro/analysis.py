"""Run analysis: machine statistics and cycle-breakdown reporting.

A downstream user debugging CVM overhead needs to see where time and
events went: this module consolidates the counters every layer already
maintains (ledger categories, TLB hit rates, fault stages, exit reasons,
pool occupancy, PMP budget) into one structured snapshot, plus
human-readable rendering for reports and examples.
"""

from __future__ import annotations

from repro.cycles import Category
from repro.sm.alloc import AllocStage


def machine_stats(machine) -> dict:
    """A structured snapshot of every diagnostic counter in the machine."""
    tlb = machine.translator.tlb
    lookups = tlb.hits + tlb.misses
    pool = machine.monitor.pool
    stats = {
        "cycles": {
            "total": machine.ledger.total,
            "by_category": {
                category.value: cycles
                for category, cycles in sorted(
                    machine.ledger.by_category().items(), key=lambda kv: -kv[1]
                )
            },
        },
        "tlb": {
            "hits": tlb.hits,
            "misses": tlb.misses,
            "hit_rate": tlb.hits / lookups if lookups else None,
            "flushes": tlb.flushes,
            "page_flushes": tlb.page_flushes,
        },
        "faults": {
            stage.name.lower(): count
            for stage, count in machine.monitor.fault_stage_counts.items()
        },
        "pool": {
            "regions": len(pool.regions),
            "free_blocks": pool.free_blocks,
            "registered_bytes": sum(size for _base, size in pool.regions),
        },
        "pmp_entries_used": machine.pmp_controller.pmp_entries_used,
        "hypervisor": {
            "mmio_exits": machine.hypervisor.mmio_exits,
            "pool_expansions": machine.hypervisor.pool_expansions,
            "normal_vms": len(machine.hypervisor.normal_vms),
        },
        "cvms": {
            cvm_id: {
                "state": cvm.state.value,
                "entries": cvm.entry_count,
                "exits": cvm.exit_count,
                "exit_reasons": dict(cvm.exit_reasons),
            }
            for cvm_id, cvm in machine.monitor.cvms.items()
        },
    }
    return stats


def overhead_report(normal_breakdown: dict, cvm_breakdown: dict) -> list:
    """Per-category deltas between a normal-VM and a CVM run.

    Both arguments are ``{Category: cycles}`` breakdowns from
    :meth:`repro.Machine.run` results.  Returns rows sorted by absolute
    delta, answering "where does the confidential overhead live?".
    """
    categories = set(normal_breakdown) | set(cvm_breakdown)
    rows = []
    for category in categories:
        normal = normal_breakdown.get(category, 0)
        confidential = cvm_breakdown.get(category, 0)
        rows.append(
            {
                "category": category.value if isinstance(category, Category) else category,
                "normal": normal,
                "cvm": confidential,
                "delta": confidential - normal,
            }
        )
    rows.sort(key=lambda row: -abs(row["delta"]))
    return rows


def render_stats(stats: dict) -> str:
    """Human-readable rendering of :func:`machine_stats` output."""
    lines = [f"total cycles: {stats['cycles']['total']:,}"]
    for name, cycles in stats["cycles"]["by_category"].items():
        lines.append(f"  {name:<14} {cycles:>14,}")
    tlb = stats["tlb"]
    if tlb["hit_rate"] is not None:
        lines.append(
            f"TLB: {tlb['hits']:,} hits / {tlb['misses']:,} misses "
            f"({tlb['hit_rate']:.1%}), {tlb['flushes']} flushes"
        )
    lines.append(
        "faults: " + ", ".join(f"{k}={v}" for k, v in stats["faults"].items())
    )
    pool = stats["pool"]
    lines.append(
        f"pool: {pool['registered_bytes'] >> 20} MB in {pool['regions']} region(s), "
        f"{pool['free_blocks']} free blocks; PMP entries {stats['pmp_entries_used']}/16"
    )
    for cvm_id, info in stats["cvms"].items():
        reasons = ", ".join(f"{k}:{v}" for k, v in info["exit_reasons"].items())
        lines.append(
            f"CVM {cvm_id} [{info['state']}]: {info['entries']} entries / "
            f"{info['exits']} exits ({reasons})"
        )
    return "\n".join(lines)
