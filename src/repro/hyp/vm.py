"""Virtual machine records on the hypervisor side.

A :class:`NormalVm` is a conventional KVM guest: the hypervisor owns its
stage-2 table (in normal memory) and allocates its frames from the host
allocator on demand.  Confidential VMs are represented hypervisor-side
only by their opaque handle (the SM-issued ``cvm_id``) plus the host
resources the hypervisor legitimately manages for them: the shared-vCPU
pages, the shared-region subtree tables, and the normal frames backing the
shared window.
"""

from __future__ import annotations

import enum
import itertools

from repro.sm.cvm import GpaLayout

_vmid_counter = itertools.count(1000)


class VmKind(enum.Enum):
    """Whether a VM is conventional or SM-protected."""
    NORMAL = "normal"
    CONFIDENTIAL = "confidential"


class NormalVm:
    """A conventional guest fully managed by the hypervisor."""

    def __init__(self, name: str, layout: GpaLayout | None = None):
        self.name = name
        self.kind = VmKind.NORMAL
        self.layout = layout or GpaLayout()
        self.vmid = next(_vmid_counter)
        #: Stage-2 root PA (normal memory), set by the hypervisor.
        self.hgatp_root: int | None = None
        #: Guest program counter mirror (for the machine's engine).
        self.pc = 0
        self.fault_count = 0


class CvmHostHandle:
    """What the hypervisor knows about a confidential VM it hosts."""

    def __init__(self, cvm_id: int, layout: GpaLayout):
        self.cvm_id = cvm_id
        self.kind = VmKind.CONFIDENTIAL
        self.layout = layout
        #: Normal-memory PAs of the shared-vCPU pages, by vCPU id.
        self.shared_vcpu_pages: dict[int, int] = {}
        #: Shared-region subtree root tables (root index -> table PA).
        self.shared_subtrees: dict[int, int] = {}
        #: Shared-window GPA -> backing HPA premapped by the hypervisor.
        self.shared_window_base: int | None = None
        self.shared_window_size: int = 0
