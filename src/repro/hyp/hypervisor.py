"""The KVM-like hypervisor (Normal mode, HS privilege).

Fully manages normal VMs (stage-2 tables in normal memory, demand paging
via the KVM fault path) and performs the *untrusted* host half of the CVM
lifecycle: donating shared-vCPU pages, building and linking shared-region
subtrees, premapping the shared window for SWIOTLB, servicing MMIO exits
through the device registry, and expanding the secure pool when the SM
asks (allocation stage 3).

Everything here executes below M mode: its page-table edits and
shared-vCPU accesses go through the PMP-checked bus, so an attempt to
touch secure memory faults exactly as on hardware.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.hyp.devices import MmioRegistry
from repro.hyp.vm import CvmHostHandle, NormalVm
from repro.isa.privilege import PrivilegeMode
from repro.mem.frames import FrameAllocator
from repro.mem.pagetable import PTE_D, PTE_R, PTE_U, PTE_W, PTE_X, Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.sm.cvm import GpaLayout
from repro.sm.vcpu import SHARED_VCPU_FIELDS

#: Default contiguous chunk donated per pool-expansion request.
DEFAULT_EXPAND_CHUNK = 8 << 20


class _HypAccessor:
    """PTE accessor running at the hypervisor's privilege (PMP-checked)."""

    def __init__(self, bus, hart):
        self._bus = bus
        self._hart = hart

    def read_u64(self, addr: int) -> int:
        return self._bus.cpu_read_u64(self._hart, addr)

    def write_u64(self, addr: int, value: int) -> None:
        self._bus.cpu_write_u64(self._hart, addr, value)


class Hypervisor:
    """The untrusted host kernel + VMM."""

    def __init__(
        self,
        bus,
        translator,
        allocator: FrameAllocator,
        ledger: CycleLedger,
        costs: CycleCosts,
        expand_chunk: int = DEFAULT_EXPAND_CHUNK,
    ):
        self.bus = bus
        self.translator = translator
        self.allocator = allocator
        self.ledger = ledger
        self.costs = costs
        self.expand_chunk = expand_chunk
        self.devices = MmioRegistry()
        self._sv39x4 = Sv39x4()
        self.normal_vms: list[NormalVm] = []
        self.cvm_handles: dict[int, CvmHostHandle] = {}
        self.pool_expansions = 0
        self.mmio_exits = 0
        #: Monotonic epoch bumped on every hypervisor-side stage-2 table
        #: mutation (normal-VM demand maps and shared-subtree edits).  The
        #: access trace cache pairs it with the SM split manager's epoch;
        #: see share.py.  Shared-window extensions (``on_share_request``,
        #: ``_fix_shared_fault``) edit tables without any fence, so flush
        #: statistics alone cannot prove a recorded trace still valid.
        self.map_generation = 0
        #: Platform interrupt controller; installed by the machine.
        self.plic = None
        #: PLIC source -> device bindings (set by the machine's wiring).
        self.plic_bindings = {}
        #: The hart the host kernel runs on; set by the machine at wiring
        #: time and used for PMP-checked page-table edits in callbacks
        #: that are not passed a hart explicitly.
        self.hart = None
        #: Wake callback installed by the machine's concurrent executor:
        #: called with a CVM id when an inter-CVM channel doorbell targets
        #: one of its vCPUs, so a blocked session re-enters the rotation.
        self.scheduler_wake = None
        #: Channel doorbells observed by the host scheduler (statistics;
        #: the host never learns more than "a doorbell rang").
        self.doorbell_wakeups = 0

    # ------------------------------------------------------------------
    # Normal VM management (the conventional KVM path)
    # ------------------------------------------------------------------

    def create_normal_vm(self, name: str, hart, layout: GpaLayout | None = None) -> NormalVm:
        """Allocate a normal VM and its stage-2 root in normal memory."""
        vm = NormalVm(name, layout)
        root = self.allocator.alloc(size=16 * 1024, align=16 * 1024)
        self.bus.cpu_zero_range(hart, root, 16 * 1024)
        vm.hgatp_root = root
        self.normal_vms.append(vm)
        return vm

    def normal_vm_exit(self, hart) -> None:
        """Charge a VM exit into KVM (trap + state save)."""
        self.ledger.charge(Category.TRAP, self.costs.trap_to_hs)
        self.ledger.charge(Category.HYP_LOGIC, self.costs.kvm_exit_logic)
        self.ledger.charge(
            Category.REG_SAVE,
            self.costs.gpr_file_save + self.costs.kvm_csr_context * self.costs.csr_read,
        )
        hart.mode = PrivilegeMode.HS

    def normal_vm_enter(self, hart) -> None:
        """Charge a VM entry from KVM (state restore + sret)."""
        self.ledger.charge(Category.HYP_LOGIC, self.costs.kvm_entry_logic)
        self.ledger.charge(
            Category.REG_SAVE,
            self.costs.gpr_file_save + self.costs.kvm_csr_context * self.costs.csr_write,
        )
        self.ledger.charge(Category.TRAP, self.costs.xret)
        hart.mode = PrivilegeMode.VS

    def sched_tick(self) -> None:
        """Scheduler pass on a timer tick."""
        self.ledger.charge(Category.HYP_LOGIC, self.costs.hyp_sched_pass)

    def on_channel_doorbell(self, cvm_id: int) -> None:
        """An inter-CVM doorbell IPI landed: run a scheduler pass and wake
        the target CVM's session if it was blocked waiting for one.

        The SM already injected the VSEI; the host only sees the CLINT
        kick and reschedules -- it cannot observe the channel contents.
        """
        self.doorbell_wakeups += 1
        self.ledger.charge(Category.HYP_LOGIC, self.costs.hyp_sched_pass)
        if self.scheduler_wake is not None:
            self.scheduler_wake(cvm_id)

    def handle_normal_stage2_fault(self, hart, vm: NormalVm, gpa: int) -> int:
        """KVM's stage-2 fault path: allocate a frame, map it, return PA.

        The dominant cost is the measurement-calibrated ``kvm_fault_fixed``
        (memslot lookup + get_user_pages + mmu lock on the paper's 100 MHz
        platform); the PTE installation is charged on top.
        """
        self.ledger.charge(Category.HYP_LOGIC, self.costs.kvm_fault_fixed)
        page_gpa = gpa & ~(PAGE_SIZE - 1)
        pa = self.allocator.alloc()
        self.bus.cpu_zero_range(hart, pa, PAGE_SIZE)
        self.ledger.charge(Category.HYP_LOGIC, self.costs.zero_bytes(PAGE_SIZE))
        flags = PTE_R | PTE_W | PTE_X | PTE_U | PTE_D
        self._sv39x4.map(
            _HypAccessor(self.bus, hart),
            vm.hgatp_root,
            page_gpa,
            pa,
            flags,
            alloc_table=lambda: self._alloc_table_page(hart),
        )
        self.map_generation += 1
        self.ledger.charge(Category.HYP_LOGIC, self.costs.kvm_pte_install)
        self.translator.sfence_page(vm.vmid, page_gpa)
        vm.fault_count += 1
        return pa

    def _alloc_table_page(self, hart) -> int:
        pa = self.allocator.alloc()
        self.bus.cpu_zero_range(hart, pa, PAGE_SIZE)
        return pa

    # ------------------------------------------------------------------
    # CVM host-side lifecycle
    # ------------------------------------------------------------------

    def host_create_cvm(
        self,
        monitor,
        hart,
        layout: GpaLayout | None = None,
        vcpu_count: int = 1,
        image: bytes = b"",
        image_gpa: int | None = None,
        entry_pc: int | None = None,
        shared_window: int | None = None,
    ) -> CvmHostHandle:
        """Drive the full CVM creation ECALL sequence against the SM.

        Returns the host handle.  ``shared_window`` bytes of the shared
        region (default 4 MB, enough for SWIOTLB + rings) are premapped to
        normal frames through the hypervisor-managed shared subtree.
        """
        layout = layout or GpaLayout()
        cvm_id = monitor.ecall_create_cvm(layout, vcpu_count)
        handle = CvmHostHandle(cvm_id, layout)
        self.cvm_handles[cvm_id] = handle

        for vcpu_id in range(vcpu_count):
            page = self.allocator.alloc()
            self.bus.cpu_zero_range(hart, page, PAGE_SIZE)
            monitor.ecall_assign_shared_vcpu(cvm_id, vcpu_id, page)
            handle.shared_vcpu_pages[vcpu_id] = page

        window = shared_window if shared_window is not None else 4 << 20
        self._provision_shared_window(monitor, hart, handle, window)

        if image:
            gpa = image_gpa if image_gpa is not None else layout.dram_base
            monitor.ecall_load_image(cvm_id, gpa, image)
        pc = entry_pc if entry_pc is not None else layout.dram_base
        monitor.ecall_set_entry_point(cvm_id, 0, pc)
        monitor.ecall_finalize(cvm_id)
        return handle

    def host_adopt_cvm(self, monitor, hart, cvm_id: int, shared_window: int | None = None) -> CvmHostHandle:
        """Provision host resources for an SM-created CVM (e.g. migrated in).

        Performs the same donation sequence as creation -- shared vCPU
        pages, shared subtree, premapped window -- then finalizes.  The
        CVM's shape (vCPU count, GPA layout) comes from the DESCRIBE_CVM
        ECALL: the host never touches the SM's CVM registry directly.
        """
        descriptor = monitor.ecall_describe_cvm(cvm_id)
        handle = CvmHostHandle(cvm_id, descriptor.layout)
        self.cvm_handles[cvm_id] = handle
        for vcpu_id in range(descriptor.vcpu_count):
            page = self.allocator.alloc()
            self.bus.cpu_zero_range(hart, page, PAGE_SIZE)
            monitor.ecall_assign_shared_vcpu(cvm_id, vcpu_id, page)
            handle.shared_vcpu_pages[vcpu_id] = page
        window = shared_window if shared_window is not None else 4 << 20
        self._provision_shared_window(monitor, hart, handle, window)
        monitor.ecall_finalize(cvm_id)
        return handle

    def _provision_shared_window(self, monitor, hart, handle: CvmHostHandle, window: int) -> None:
        """Build the shared subtree and premap ``window`` bytes of it."""
        layout = handle.layout
        if window > layout.shared_size:
            raise ValueError("shared window exceeds the layout's shared region")
        accessor = _HypAccessor(self.bus, hart)
        root_index = layout.shared_base >> 30
        subtree = self.allocator.alloc()
        self.bus.cpu_zero_range(hart, subtree, PAGE_SIZE)
        handle.shared_subtrees[root_index] = subtree
        monitor.ecall_link_shared_subtree(handle.cvm_id, root_index, subtree)

        backing = self.allocator.alloc(size=window)
        handle.shared_window_base = backing
        handle.shared_window_size = window
        flags = PTE_R | PTE_W | PTE_U | PTE_D
        for offset in range(0, window, PAGE_SIZE):
            gpa = layout.shared_base + offset
            self._map_in_subtree(accessor, hart, subtree, gpa, backing + offset, flags)

    def _map_in_subtree(self, accessor, hart, subtree_pa: int, gpa: int, pa: int, flags: int) -> None:
        """Map a page under a shared level-1 table the hypervisor owns.

        The subtree root covers 1 GiB (a stage-2 root slot); levels below
        it are normal Sv39x4 geometry.
        """
        level1_index = (gpa >> 21) & 0x1FF
        slot = subtree_pa + 8 * level1_index
        pte = accessor.read_u64(slot)
        if not pte & 1:
            leaf_table = self._alloc_table_page(hart)
            accessor.write_u64(slot, (leaf_table >> 12) << 10 | 1)
            pte = accessor.read_u64(slot)
        leaf_table = (pte >> 10) << 12
        leaf_index = (gpa >> 12) & 0x1FF
        accessor.write_u64(leaf_table + 8 * leaf_index, (pa >> 12) << 10 | flags | 1)
        self.map_generation += 1
        self.ledger.charge(Category.PAGE_WALK, 2 * self.costs.page_walk_level)

    def shared_gpa_to_hpa(self, handle: CvmHostHandle, gpa: int) -> int:
        """Device-side translation through the hypervisor's shared view.

        Performs a real walk of the hypervisor-owned shared subtree (the
        same table pages linked under the CVM's stage-2 root), so it stays
        correct for windows extended by guest share requests regardless
        of backing contiguity.
        """
        layout = handle.layout
        if not layout.in_shared(gpa):
            raise ValueError(f"GPA {gpa:#x} is not in the shared region")
        subtree = handle.shared_subtrees.get(gpa >> 30)
        if subtree is None:
            raise ValueError(f"no shared subtree covers GPA {gpa:#x}")
        self.ledger.charge(Category.PAGE_WALK, 2 * self.costs.page_walk_level)
        level1_pte = self.bus.cpu_read_u64(self.hart, subtree + 8 * ((gpa >> 21) & 0x1FF))
        if not level1_pte & 1:
            raise ValueError(f"shared GPA {gpa:#x} beyond the premapped window")
        leaf_table = (level1_pte >> 10) << 12
        leaf_pte = self.bus.cpu_read_u64(self.hart, leaf_table + 8 * ((gpa >> 12) & 0x1FF))
        if not leaf_pte & 1:
            raise ValueError(f"shared GPA {gpa:#x} beyond the premapped window")
        return ((leaf_pte >> 10) << 12) | (gpa & (PAGE_SIZE - 1))

    # ------------------------------------------------------------------
    # CVM exit servicing (the QEMU/KVM half of an MMIO exit)
    # ------------------------------------------------------------------

    def handle_cvm_exit(self, hart, monitor, cvm, vcpu_id: int) -> None:
        """Service whatever the shared vCPU says this exit needs.

        Reads the exit fields through the PMP-checked bus (the hypervisor
        cannot see anything else), emulates MMIO through the device
        registry, and writes the reply back into the shared vCPU.
        """
        shared = cvm.shared_vcpus[vcpu_id]
        read = lambda field: shared.hyp_read(hart, field)
        self.ledger.charge(
            Category.HYP_LOGIC, len(SHARED_VCPU_FIELDS) * self.costs.field_copy
        )
        cause = read("exit_cause")
        if cause not in (21, 23):  # not a load/store guest-page fault
            return
        gpa = read("htval")
        handle = self.cvm_handles.get(cvm.cvm_id)
        if handle is None:
            # An exit for a CVM this host never provisioned (possible only
            # if the exit fields were corrupted): nothing to service.
            return
        if handle.layout.in_shared(gpa):
            # The CVM touched shared GPA space the subtree does not map
            # yet; extend the premapped window (no SM involvement at all).
            if handle.shared_subtrees.get(gpa >> 30) is not None:
                self._fix_shared_fault(hart, handle, gpa)
            # No covering subtree: the exit fields describe a fault that
            # cannot have happened -- drop it rather than crash the host.
            return
        self.mmio_exits += 1
        self.ledger.charge(Category.HYP_LOGIC, self.costs.qemu_mmio_dispatch)
        device = self.devices.find(gpa)
        if cause == 21:
            value = device.mmio_load(gpa - device.mmio_base, 8) if device else 0
            shared.hyp_write(hart, "gpr_value", value)
            shared.hyp_write(hart, "gpr_index", read("gpr_index"))
        else:
            value = read("gpr_value")
            if device is not None:
                device.mmio_store(gpa - device.mmio_base, value, 8)
        shared.hyp_write(hart, "sepc_advance", 4)

    def _fix_shared_fault(self, hart, handle: CvmHostHandle, gpa: int) -> None:
        """Demand-map one page of the shared region in the hyp's subtree."""
        root_index = gpa >> 30
        subtree = handle.shared_subtrees.get(root_index)
        if subtree is None:
            raise ValueError(f"no shared subtree covers GPA {gpa:#x}")
        page_gpa = gpa & ~(PAGE_SIZE - 1)
        pa = self.allocator.alloc()
        self.bus.cpu_zero_range(hart, pa, PAGE_SIZE)
        accessor = _HypAccessor(self.bus, hart)
        flags = PTE_R | PTE_W | PTE_U | PTE_D
        self._map_in_subtree(accessor, hart, subtree, page_gpa, pa, flags)
        self.translator.sfence_page(0, page_gpa)

    def service_plic(self, hart, cvm=None, vcpu_id: int = 0, machine=None) -> int:
        """Claim/complete every pending device interrupt (context 0).

        For a CVM target, each claim becomes a validated VSEI injection
        through the shared vCPU; for a normal VM, KVM's direct injection
        flag.  Returns the number of interrupts serviced.
        """
        if self.plic is None:
            return 0
        served = 0
        while True:
            source = self.plic.claim(0)
            if not source:
                break
            self.ledger.charge(Category.HYP_LOGIC, self.costs.plic_claim_cost)
            if cvm is not None:
                self.inject_vs_external(hart, cvm, vcpu_id)
            elif machine is not None:
                machine._normal_irq_flag = True
            self.plic.complete(0, source)
            served += 1
        return served

    def inject_vs_external(self, hart, cvm, vcpu_id: int) -> None:
        """Queue a VS external interrupt via the shared vCPU reply field."""
        shared = cvm.shared_vcpus[vcpu_id]
        pending = shared.hyp_read(hart, "pending_irq")
        shared.hyp_write(hart, "pending_irq", pending | 1 << 10)

    # ------------------------------------------------------------------
    # Stage-3 pool expansion
    # ------------------------------------------------------------------

    def on_share_request(self, monitor, cvm_id: int, size: int) -> int:
        """Extend a CVM's premapped shared window by ``size`` bytes.

        Allocates normal backing and maps it into the hypervisor-owned
        shared subtree immediately after the current window.  Returns the
        GPA of the new range.
        """
        handle = self.cvm_handles[cvm_id]
        self.ledger.charge(Category.HYP_LOGIC, self.costs.hyp_sched_pass)
        backing = self.allocator.alloc(size=size)
        self.bus.cpu_zero_range(self.hart, backing, size)
        accessor = _HypAccessor(self.bus, self.hart)
        root_index = handle.layout.shared_base >> 30
        subtree = handle.shared_subtrees[root_index]
        flags = PTE_R | PTE_W | PTE_U | PTE_D
        old_size = handle.shared_window_size
        for offset in range(0, size, PAGE_SIZE):
            gpa = handle.layout.shared_base + old_size + offset
            self._map_in_subtree(accessor, self.hart, subtree, gpa, backing + offset, flags)
        handle.shared_window_size = old_size + size
        return handle.layout.shared_base + old_size

    def on_pool_expand_request(self, monitor) -> None:
        """The SM asked for more secure memory: donate a contiguous chunk."""
        self.ledger.charge(Category.HYP_LOGIC, self.costs.hyp_expand_cost)
        base = self.allocator.alloc(size=self.expand_chunk)
        monitor.ecall_register_pool_memory(base, self.expand_chunk)
        self.pool_expansions += 1
