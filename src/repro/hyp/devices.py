"""MMIO device framework (the QEMU role).

Devices claim windows of the guest-physical MMIO region; the hypervisor's
exit handler dispatches emulated loads/stores to them.  Data moved by
*DMA* (virtio) goes through the IOPMP-checked bus instead -- the MMIO path
here is only for the small register interface (doorbells, status).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class MmioDevice:
    """Base class: an emulated device occupying one MMIO window."""

    def __init__(self, name: str, mmio_base: int, mmio_size: int = 0x1000):
        self.name = name
        self.mmio_base = mmio_base
        self.mmio_size = mmio_size

    def claims(self, gpa: int) -> bool:
        """Whether the GPA falls in this device's MMIO window."""
        return self.mmio_base <= gpa < self.mmio_base + self.mmio_size

    def mmio_load(self, offset: int, size: int) -> int:
        """Emulated register read; devices override."""
        return 0

    def mmio_store(self, offset: int, value: int, size: int) -> None:
        """Emulated register write; devices override."""


class ConsoleDevice(MmioDevice):
    """A UART-like console: writes collect output, reads return status."""

    DATA = 0x0
    STATUS = 0x4

    def __init__(self, mmio_base: int):
        super().__init__("console", mmio_base)
        self.output = bytearray()

    def mmio_load(self, offset: int, size: int) -> int:
        """Status register reads as ready; everything else as zero."""
        if offset == self.STATUS:
            return 1  # always ready
        return 0

    def mmio_store(self, offset: int, value: int, size: int) -> None:
        """Writes to DATA append to the captured output."""
        if offset == self.DATA:
            self.output.append(value & 0xFF)


class MmioRegistry:
    """Address decode for a VM's emulated devices."""

    def __init__(self):
        self._devices: list[MmioDevice] = []

    def add(self, device: MmioDevice) -> MmioDevice:
        """Register a device, rejecting window overlaps."""
        for existing in self._devices:
            overlap = (
                device.mmio_base < existing.mmio_base + existing.mmio_size
                and existing.mmio_base < device.mmio_base + device.mmio_size
            )
            if overlap:
                raise ConfigurationError(
                    f"MMIO window of {device.name} overlaps {existing.name}"
                )
        self._devices.append(device)
        return device

    def find(self, gpa: int) -> MmioDevice | None:
        """The device claiming the GPA, or ``None``."""
        for device in self._devices:
            if device.claims(gpa):
                return device
        return None

    def devices(self):
        """A copy of the registered device list."""
        return list(self._devices)
