"""The untrusted Normal-mode host stack.

Models the software ZION coexists with but does not trust: a KVM-like
hypervisor in HS mode (vCPU run loops, stage-2 fault handling for normal
VMs, scheduling), QEMU-style MMIO device emulation in U mode, virtio
block/network devices with real virtqueues and IOPMP-checked DMA, and the
host side of ZION's CVM lifecycle (donating shared-vCPU pages and
shared-region subtrees, expanding the secure pool on request).

Nothing in this package is trusted: tests drive *attacks* from these
classes (reading secure memory, tampering with shared-vCPU replies,
remapping shared subtrees) and assert that the SM-side defences hold.
"""

from repro.hyp.vm import NormalVm, VmKind
from repro.hyp.hypervisor import Hypervisor
from repro.hyp.virtio import VirtioBlockDevice, VirtioNetDevice, Virtqueue

__all__ = [
    "NormalVm",
    "VmKind",
    "Hypervisor",
    "Virtqueue",
    "VirtioBlockDevice",
    "VirtioNetDevice",
]
