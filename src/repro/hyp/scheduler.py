"""Round-robin VM scheduler for concurrent multi-VM execution.

The hypervisor schedules vCPUs; for confidential VMs it can only ask the
SM to run or stop them (the run ECALL / the timer exit), never touch
their state.  The machine's concurrent executor drives this scheduler:
workloads written as generators yield at their natural preemption points
and the scheduler rotates sessions, performing the correct world-switch
sequence for each VM kind on every rotation -- so a multi-tenant run
charges exactly the switching the paper's design implies.
"""

from __future__ import annotations

from collections import deque


class RoundRobinScheduler:
    """Rotates runnable sessions; removes them as their workloads finish.

    Sessions may *block* (e.g. waiting on an inter-CVM channel doorbell):
    a blocked item leaves the rotation until :meth:`wake` returns it, so
    the executor never burns switch cycles polling a sleeping vCPU.
    """

    def __init__(self):
        self._queue: deque = deque()
        # Insertion-ordered (dict keys) so wake_all unparks in block order
        # -- keeps concurrent runs deterministic for seeded replay.
        self._blocked: dict = {}
        #: Park/resume accounting, reported by :meth:`stats`.  The fleet
        #: orchestrator reads these to attribute serving-round stalls:
        #: a rebalancing epoch that parks often is channel-bound, one
        #: that barely parks is compute-bound.
        self.park_count = 0
        self.wake_count = 0
        self.wake_front_count = 0
        self.wake_all_count = 0

    def add(self, item) -> None:
        """Append a runnable item to the rotation."""
        self._queue.append(item)

    def __len__(self):
        return len(self._queue)

    @property
    def blocked_count(self) -> int:
        """Number of sessions parked waiting for a wake event."""
        return len(self._blocked)

    def next(self):
        """The next runnable item (moves it to the tail)."""
        if not self._queue:
            return None
        item = self._queue.popleft()
        self._queue.append(item)
        return item

    def block(self, item) -> None:
        """Park a runnable item until it is woken (no-op if absent)."""
        try:
            self._queue.remove(item)
        except ValueError:
            return
        self._blocked[item] = None
        self.park_count += 1

    def wake(self, item, front: bool = False) -> bool:
        """Return a blocked item to the rotation; True if it was parked.

        ``front=True`` enqueues the woken item at the *head* of the
        rotation instead of the tail: a doorbell wake then runs the
        consumer on the very next dispatch, which is what keeps the
        router->shard->router reply hop short in pipelined cluster runs
        (tail wake would first rotate through every other runnable VM).
        The default stays tail-wake -- the fair policy the existing
        benches and their cycle goldens were recorded against.
        """
        if item in self._blocked:
            del self._blocked[item]
            if front:
                self._queue.appendleft(item)
                self.wake_front_count += 1
            else:
                self._queue.append(item)
            self.wake_count += 1
            return True
        return False

    def wake_all(self) -> int:
        """Unpark every blocked item, in the order they blocked."""
        woken = len(self._blocked)
        if woken:
            self.wake_all_count += 1
        for item in tuple(self._blocked):
            self.wake(item)
        return woken

    def stats(self) -> dict:
        """Park/resume accounting snapshot (counts since construction)."""
        return {
            "parks": self.park_count,
            "wakes": self.wake_count,
            "front_wakes": self.wake_front_count,
            "wake_all_calls": self.wake_all_count,
        }

    def remove(self, item) -> None:
        """Drop an item from the rotation (no-op if absent)."""
        self._blocked.pop(item, None)
        try:
            self._queue.remove(item)
        except ValueError:
            pass
