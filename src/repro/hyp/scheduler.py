"""Round-robin VM scheduler for concurrent multi-VM execution.

The hypervisor schedules vCPUs; for confidential VMs it can only ask the
SM to run or stop them (the run ECALL / the timer exit), never touch
their state.  The machine's concurrent executor drives this scheduler:
workloads written as generators yield at their natural preemption points
and the scheduler rotates sessions, performing the correct world-switch
sequence for each VM kind on every rotation -- so a multi-tenant run
charges exactly the switching the paper's design implies.
"""

from __future__ import annotations

from collections import deque


class RoundRobinScheduler:
    """Rotates runnable sessions; removes them as their workloads finish."""

    def __init__(self):
        self._queue: deque = deque()

    def add(self, item) -> None:
        """Append a runnable item to the rotation."""
        self._queue.append(item)

    def __len__(self):
        return len(self._queue)

    def next(self):
        """The next runnable item (moves it to the tail)."""
        if not self._queue:
            return None
        item = self._queue.popleft()
        self._queue.append(item)
        return item

    def remove(self, item) -> None:
        """Drop an item from the rotation (no-op if absent)."""
        try:
            self._queue.remove(item)
        except ValueError:
            pass
