"""Virtio devices with real virtqueues and IOPMP-checked DMA.

The guest driver posts descriptors naming guest-physical buffers; the
device models here pop them, translate GPA to HPA through a
hypervisor-supplied translation function (the shared-region subtree for
confidential VMs, the ordinary stage-2 table for normal VMs), and move
data through the bus's DMA path, where the IOPMP checks every transaction.
A descriptor that resolves into the secure pool therefore faults exactly
the way the paper's DMA-attack defence (IV-C) says it must.

Payloads are either real ``bytes`` (tests, small I/O such as Redis
protocol frames) or a plain ``int`` byte-length (the accounting-only fast
path used by the large IOZone sweeps): both take the same control path
and charge the same cycles; only the Python-level byte shuffling differs.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.cycles import Category
from repro.hyp.devices import MmioDevice


def payload_len(payload) -> int:
    """Byte length of a real or symbolic payload."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, int) and payload >= 0:
        return payload
    raise TypeError(f"payload must be bytes or a non-negative length: {payload!r}")


@dataclasses.dataclass
class Descriptor:
    """One virtqueue descriptor: a guest-physical buffer."""

    gpa: int
    length: int
    device_writes: bool = False
    #: Driver-attached payload for device-readable buffers (real bytes or
    #: symbolic length); filled by the device for device-writable ones.
    payload: object = None
    #: Opaque request header the driver attaches (request type, sector...).
    header: dict | None = None


class Virtqueue:
    """A split-virtqueue modelled at descriptor granularity.

    ``ring_gpa`` records where the ring itself lives in guest-physical
    space; for confidential VMs the driver places it in the shared region,
    and the SM-side checks rely on that placement.
    """

    def __init__(self, ring_gpa: int, size: int = 256):
        self.ring_gpa = ring_gpa
        self.size = size
        self.available: deque[Descriptor] = deque()
        self.used: deque[Descriptor] = deque()

    def post(self, descriptor: Descriptor) -> None:
        """Driver side: make a descriptor available to the device."""
        if len(self.available) >= self.size:
            raise RuntimeError("virtqueue overflow")
        self.available.append(descriptor)

    def pop_used(self) -> Descriptor | None:
        """Driver side: take one completed descriptor, or ``None``."""
        if not self.used:
            return None
        return self.used.popleft()


class VirtioDevice(MmioDevice):
    """Common virtio-MMIO transport behaviour."""

    QUEUE_NOTIFY = 0x50
    INTERRUPT_STATUS = 0x60
    INTERRUPT_ACK = 0x64
    STATUS = 0x70

    def __init__(self, name: str, mmio_base: int, source_id: int, bus, ledger, costs):
        super().__init__(name, mmio_base)
        self.source_id = source_id
        self.bus = bus
        self.ledger = ledger
        self.costs = costs
        self.queues: dict[int, Virtqueue] = {}
        #: GPA -> HPA translation, installed by the hypervisor per VM.
        self.dma_translate = None
        #: Called with the VS interrupt bit to inject on completion.
        self.irq_sink = None
        self.interrupt_status = 0
        self.status = 0

    def attach_queue(self, index: int, queue: Virtqueue) -> None:
        """Bind a virtqueue to a queue index."""
        self.queues[index] = queue

    def mmio_load(self, offset: int, size: int) -> int:
        """virtio-MMIO register read (interrupt status, device status)."""
        if offset == self.INTERRUPT_STATUS:
            return self.interrupt_status
        if offset == self.STATUS:
            return self.status
        return 0

    def mmio_store(self, offset: int, value: int, size: int) -> None:
        """virtio-MMIO register write; QUEUE_NOTIFY triggers processing."""
        if offset == self.QUEUE_NOTIFY:
            self.process_queue(value)
        elif offset == self.INTERRUPT_ACK:
            self.interrupt_status &= ~value
        elif offset == self.STATUS:
            self.status = value

    # -- DMA helpers -----------------------------------------------------

    def _hpa(self, gpa: int) -> int:
        if self.dma_translate is None:
            raise RuntimeError(f"{self.name}: no DMA translation installed")
        return self.dma_translate(gpa)

    def dma_read(self, gpa: int, payload) -> object:
        """Device reads a guest buffer; returns its contents.

        The translation and the IOPMP check are performed for real -- a
        descriptor resolving into protected memory faults here.  The data
        itself is taken from the descriptor's attached payload (the guest
        driver charges, rather than performs, the bounce copy into the
        buffer, so DRAM is not authoritative for device-readable buffers).
        """
        length = payload_len(payload)
        hpa = self._hpa(gpa)
        from repro.isa.traps import AccessType

        self.bus.dma_check_range(self.source_id, hpa, max(length, 1), AccessType.LOAD)
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(length))
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        return length

    def dma_write(self, gpa: int, payload) -> None:
        """Device writes a guest buffer (checked, charged)."""
        length = payload_len(payload)
        hpa = self._hpa(gpa)
        from repro.isa.traps import AccessType

        if isinstance(payload, (bytes, bytearray)):
            self.bus.dma_write(self.source_id, hpa, bytes(payload))
        else:
            self.bus.dma_check_range(self.source_id, hpa, max(length, 1), AccessType.STORE)
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(length))

    def _complete(self, queue: Virtqueue, descriptor: Descriptor) -> None:
        queue.used.append(descriptor)
        self.interrupt_status |= 1
        if self.irq_sink is not None:
            self.irq_sink(self)

    def process_queue(self, index: int) -> None:
        """Service the available ring of queue ``index``; device-specific."""
        raise NotImplementedError


class VirtioBlockDevice(VirtioDevice):
    """virtio-blk with an in-memory backing disk.

    The disk stores real bytes for real payloads and byte-counts for
    symbolic ones, keyed by sector (512-byte units).
    """

    SECTOR = 512

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs, capacity_sectors: int = 1 << 21):
        super().__init__("virtio-blk", mmio_base, source_id, bus, ledger, costs)
        self.capacity_sectors = capacity_sectors
        self._disk: dict[int, object] = {}
        self.reads = 0
        self.writes = 0

    def process_queue(self, index: int) -> None:
        """Serve block reads/writes: DMA each buffer, post completions."""
        queue = self.queues[index]
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            header = descriptor.header or {}
            sector = header.get("sector", 0)
            if sector * self.SECTOR + descriptor.length > self.capacity_sectors * self.SECTOR:
                raise ValueError(f"I/O beyond disk capacity at sector {sector}")
            if header.get("type") == "write":
                data = self.dma_read(descriptor.gpa, descriptor.payload)
                self._store(sector, data, descriptor.length)
                self.writes += 1
            else:
                data = self._fetch(sector, descriptor.length)
                self.dma_write(descriptor.gpa, data)
                descriptor.payload = data
                self.reads += 1
            self._complete(queue, descriptor)

    def _store(self, sector: int, data, length: int) -> None:
        if isinstance(data, (bytes, bytearray)):
            for i in range(0, length, self.SECTOR):
                self._disk[sector + i // self.SECTOR] = bytes(data[i : i + self.SECTOR])
        else:
            for i in range(0, length, self.SECTOR):
                self._disk[sector + i // self.SECTOR] = min(self.SECTOR, length - i)

    def _fetch(self, sector: int, length: int):
        first = self._disk.get(sector)
        if isinstance(first, (bytes, bytearray)) or first is None:
            out = bytearray()
            for i in range(0, length, self.SECTOR):
                chunk = self._disk.get(sector + i // self.SECTOR, b"\x00" * self.SECTOR)
                if isinstance(chunk, int):
                    chunk = b"\x00" * self.SECTOR
                out += chunk[: min(self.SECTOR, length - i)]
            return bytes(out)
        return length  # symbolic region: return a symbolic payload


class VirtioRngDevice(VirtioDevice):
    """virtio-rng: the host feeds entropy into guest-posted buffers.

    The entropy source is *host-controlled* and therefore untrusted for a
    confidential VM: a sensible CVM kernel mixes it with SM-provided
    randomness rather than consuming it raw (see
    :class:`repro.guest.virtio_driver.VirtioRngDriver`).
    """

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs, seed: bytes = b"host-rng"):
        super().__init__("virtio-rng", mmio_base, source_id, bus, ledger, costs)
        self._state = seed
        self.bytes_served = 0

    def _entropy(self, count: int) -> bytes:
        import hashlib

        out = b""
        while len(out) < count:
            self._state = hashlib.sha256(self._state + b"n").digest()
            out += self._state
        return out[:count]

    def process_queue(self, index: int) -> None:
        """Fill each posted buffer with host entropy and complete it."""
        queue = self.queues[index]
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            data = self._entropy(descriptor.length)
            self.dma_write(descriptor.gpa, data)
            descriptor.payload = data
            self.bytes_served += descriptor.length
            self._complete(queue, descriptor)


class VirtioNetDevice(VirtioDevice):
    """virtio-net: TX frames go to a host handler, RX frames come from it.

    ``host_handler(frame_payload, header)`` is the host-side network peer
    (e.g. the Redis benchmark client); frames it sends back are queued and
    delivered into guest-posted RX buffers.
    """

    TX_QUEUE = 0
    RX_QUEUE = 1

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs):
        super().__init__("virtio-net", mmio_base, source_id, bus, ledger, costs)
        self.host_handler = None
        self._host_backlog: deque = deque()
        self.tx_frames = 0
        self.rx_frames = 0

    def process_queue(self, index: int) -> None:
        """TX: hand frames to the host handler; then flush RX backlog."""
        if index == self.TX_QUEUE:
            self._process_tx()
        self._flush_rx()

    def _process_tx(self) -> None:
        queue = self.queues[self.TX_QUEUE]
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            frame = self.dma_read(descriptor.gpa, descriptor.payload)
            self.tx_frames += 1
            if self.host_handler is not None:
                for reply in self.host_handler(frame, descriptor.header or {}):
                    self._host_backlog.append(reply)
            self._complete(queue, descriptor)

    def host_deliver(self, frame) -> None:
        """Host side queues a frame for the guest; delivered into RX buffers."""
        self._host_backlog.append(frame)
        self._flush_rx()

    def _flush_rx(self) -> None:
        queue = self.queues.get(self.RX_QUEUE)
        if queue is None:
            return
        while self._host_backlog and queue.available:
            descriptor = queue.available.popleft()
            frame = self._host_backlog.popleft()
            length = payload_len(frame)
            if length > descriptor.length:
                raise ValueError("RX frame larger than posted buffer")
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            self.dma_write(descriptor.gpa, frame)
            descriptor.payload = frame
            self.rx_frames += 1
            self._complete(queue, descriptor)

    @property
    def backlog(self) -> int:
        return len(self._host_backlog)
