"""Virtio devices with real virtqueues and IOPMP-checked DMA.

The guest driver posts descriptors naming guest-physical buffers; the
device models here pop them, translate GPA to HPA through a
hypervisor-supplied translation function (the shared-region subtree for
confidential VMs, the ordinary stage-2 table for normal VMs), and move
data through the bus's DMA path, where the IOPMP checks every transaction.
A descriptor that resolves into the secure pool therefore faults exactly
the way the paper's DMA-attack defence (IV-C) says it must.

Payloads are either real ``bytes`` (tests, small I/O such as Redis
protocol frames) or a plain ``int`` byte-length (the accounting-only fast
path used by the large IOZone sweeps): both take the same control path
and charge the same cycles; only the Python-level byte shuffling differs.

Batching model (docs/DATA_PLANE.md): one ``QUEUE_NOTIFY`` kick drains the
*whole* available ring, used entries are posted as a batch, and with
``event_idx`` (the EVENT_IDX-style suppression flag, on by default) the
device raises one completion interrupt per drain instead of one per
descriptor.  Error containment: a guest-posted descriptor the device
cannot serve is *completed* with a non-OK :attr:`Descriptor.status` --
guest-controlled garbage never unwinds an exception through the device
model into the host loop (only architectural DMA faults, ``TrapRaised``,
propagate: they model the IOPMP stopping a DMA attack).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.cycles import Category
from repro.errors import VirtioDmaError, VirtioIoError, VirtqueueOverflow
from repro.hyp.devices import MmioDevice

#: virtio-blk-style request status byte (VIRTIO_BLK_S_*): OK, device-side
#: I/O error, request the device does not support / cannot parse.
STATUS_OK = 0
STATUS_IOERR = 1
STATUS_UNSUPP = 2


def payload_len(payload) -> int:
    """Byte length of a real or symbolic payload."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, int) and not isinstance(payload, bool) and payload >= 0:
        return payload
    raise TypeError(f"payload must be bytes or a non-negative length: {payload!r}")


@dataclasses.dataclass
class Descriptor:
    """One virtqueue descriptor: a guest-physical buffer."""

    gpa: int
    length: int
    device_writes: bool = False
    #: Driver-attached payload for device-readable buffers (real bytes or
    #: symbolic length); filled by the device for device-writable ones.
    payload: object = None
    #: Opaque request header the driver attaches (request type, sector...).
    header: dict | None = None
    #: Completion status written by the device (STATUS_*); the driver must
    #: check it -- a refused request is *completed* with a non-OK status,
    #: never turned into a device-side exception.
    status: int = STATUS_OK


class Virtqueue:
    """A split-virtqueue modelled at descriptor granularity.

    ``ring_gpa`` records where the ring itself lives in guest-physical
    space; for confidential VMs the driver places it in the shared region,
    and the SM-side checks rely on that placement.
    """

    def __init__(self, ring_gpa: int, size: int = 256):
        self.ring_gpa = ring_gpa
        self.size = size
        self.available: deque[Descriptor] = deque()
        self.used: deque[Descriptor] = deque()

    def post(self, descriptor: Descriptor) -> None:
        """Driver side: make a descriptor available to the device."""
        if len(self.available) >= self.size:
            raise VirtqueueOverflow(
                f"virtqueue overflow: ring of {self.size} is full"
            )
        self.available.append(descriptor)

    def pop_used(self) -> Descriptor | None:
        """Driver side: take one completed descriptor, or ``None``."""
        if not self.used:
            return None
        return self.used.popleft()


class VirtioDevice(MmioDevice):
    """Common virtio-MMIO transport behaviour."""

    QUEUE_NOTIFY = 0x50
    INTERRUPT_STATUS = 0x60
    INTERRUPT_ACK = 0x64
    STATUS = 0x70

    def __init__(self, name: str, mmio_base: int, source_id: int, bus, ledger,
                 costs, event_idx: bool = True):
        super().__init__(name, mmio_base)
        self.source_id = source_id
        self.bus = bus
        self.ledger = ledger
        self.costs = costs
        self.queues: dict[int, Virtqueue] = {}
        #: GPA -> HPA translation, installed by the hypervisor per VM.
        self.dma_translate = None
        #: Called with the VS interrupt bit to inject on completion.
        self.irq_sink = None
        self.interrupt_status = 0
        self.status = 0
        #: EVENT_IDX-style interrupt suppression: one ``irq_sink`` call per
        #: drain instead of one per completed descriptor.  Off = the naive
        #: pre-batching behaviour (the ablation baseline).
        self.event_idx = event_idx
        #: QUEUE_NOTIFY doorbell writes (each one is a full MMIO exit).
        self.kicks = 0
        #: Non-empty drains (batches of completions posted together).
        self.drains = 0
        #: Descriptors completed (whatever their status).
        self.completions = 0
        #: ``irq_sink`` invocations (the interrupt-suppression statistic).
        self.irqs_raised = 0
        #: Requests completed with a non-OK status byte.
        self.io_errors = 0

    def attach_queue(self, index: int, queue: Virtqueue) -> None:
        """Bind a virtqueue to a queue index."""
        self.queues[index] = queue

    def mmio_load(self, offset: int, size: int) -> int:
        """virtio-MMIO register read (interrupt status, device status)."""
        if offset == self.INTERRUPT_STATUS:
            return self.interrupt_status
        if offset == self.STATUS:
            return self.status
        return 0

    def mmio_store(self, offset: int, value: int, size: int) -> None:
        """virtio-MMIO register write; QUEUE_NOTIFY triggers processing."""
        if offset == self.QUEUE_NOTIFY:
            self.kicks += 1
            self.process_queue(value)
        elif offset == self.INTERRUPT_ACK:
            self.interrupt_status &= ~value
        elif offset == self.STATUS:
            self.status = value

    # -- DMA helpers -----------------------------------------------------

    def _hpa(self, gpa: int) -> int:
        if self.dma_translate is None:
            raise VirtioDmaError(f"{self.name}: no DMA translation installed")
        return self.dma_translate(gpa)

    def dma_read(self, gpa: int, payload) -> object:
        """Device reads a guest buffer; returns its contents.

        The translation and the IOPMP check are performed for real -- a
        descriptor resolving into protected memory faults here.  The data
        itself is taken from the descriptor's attached payload (the guest
        driver charges, rather than performs, the bounce copy into the
        buffer, so DRAM is not authoritative for device-readable buffers).
        """
        length = payload_len(payload)
        hpa = self._hpa(gpa)
        from repro.isa.traps import AccessType

        self.bus.dma_check_range(self.source_id, hpa, max(length, 1), AccessType.LOAD)
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(length))
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        return length

    def dma_write(self, gpa: int, payload) -> None:
        """Device writes a guest buffer (checked, charged)."""
        length = payload_len(payload)
        hpa = self._hpa(gpa)
        from repro.isa.traps import AccessType

        if isinstance(payload, (bytes, bytearray)):
            self.bus.dma_write(self.source_id, hpa, bytes(payload))
        else:
            self.bus.dma_check_range(self.source_id, hpa, max(length, 1), AccessType.STORE)
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(length))

    # -- completion ------------------------------------------------------

    def _complete_batch(self, queue: Virtqueue, descriptors) -> None:
        """Post a drain's completions to the used ring in one batch.

        With ``event_idx`` the whole batch raises one interrupt (the
        guest's handler walks the used ring anyway); without it, the
        naive one-interrupt-per-descriptor behaviour is preserved for the
        ablation baseline.  The PLIC latches pending per source, so the
        two arms differ in ``irq_sink`` traffic and statistics, not in
        what the guest eventually observes.
        """
        if not descriptors:
            return
        queue.used.extend(descriptors)
        self.drains += 1
        self.completions += len(descriptors)
        self.interrupt_status |= 1
        if self.irq_sink is None:
            return
        pulses = 1 if self.event_idx else len(descriptors)
        for _ in range(pulses):
            self.irqs_raised += 1
            self.irq_sink(self)

    def _complete(self, queue: Virtqueue, descriptor: Descriptor) -> None:
        """Single-descriptor completion (a batch of one)."""
        self._complete_batch(queue, (descriptor,))

    def process_queue(self, index: int) -> None:
        """Service the available ring of queue ``index``; device-specific."""
        raise NotImplementedError


def _validated_request(descriptor: Descriptor) -> dict:
    """Sanity-check the guest-controlled descriptor fields.

    Everything in a descriptor is guest-posted and therefore untrusted:
    a malformed length, header or payload must become a typed
    :class:`VirtioIoError` (caught and turned into an error completion),
    never a ``TypeError`` unwinding through the host loop.
    """
    if not isinstance(descriptor.length, int) or isinstance(descriptor.length, bool) \
            or descriptor.length < 0:
        raise VirtioIoError(
            f"descriptor length {descriptor.length!r} is not a byte count",
            status=STATUS_UNSUPP,
        )
    header = descriptor.header or {}
    if not isinstance(header, dict):
        raise VirtioIoError(
            f"descriptor header {header!r} is not a mapping", status=STATUS_UNSUPP
        )
    return header


class VirtioBlockDevice(VirtioDevice):
    """virtio-blk with an in-memory backing disk.

    The disk stores real bytes for real payloads and byte-counts for
    symbolic ones, keyed by sector (512-byte units).
    """

    SECTOR = 512

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs,
                 capacity_sectors: int = 1 << 21, event_idx: bool = True):
        super().__init__("virtio-blk", mmio_base, source_id, bus, ledger, costs,
                         event_idx=event_idx)
        self.capacity_sectors = capacity_sectors
        self._disk: dict[int, object] = {}
        self.reads = 0
        self.writes = 0

    def process_queue(self, index: int) -> None:
        """Drain the available ring; batch-post completions.

        A request the device refuses (beyond-capacity sector, malformed
        guest fields, a read spanning mixed real/symbolic regions) is
        completed with a non-OK status -- the queue stays consistent and
        the drain continues.  Only architectural DMA faults
        (:class:`~repro.errors.TrapRaised` from the IOPMP) propagate.
        """
        queue = self.queues[index]
        completed = []
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            try:
                self._serve(descriptor)
                descriptor.status = STATUS_OK
            except VirtioIoError as refusal:
                descriptor.status = refusal.status
                self.io_errors += 1
            completed.append(descriptor)
        self._complete_batch(queue, completed)

    def _serve(self, descriptor: Descriptor) -> None:
        """Serve one request or raise :class:`VirtioIoError` to refuse it."""
        header = _validated_request(descriptor)
        sector = header.get("sector", 0)
        if not isinstance(sector, int) or isinstance(sector, bool) or sector < 0:
            raise VirtioIoError(
                f"sector {sector!r} is not a sector number", status=STATUS_UNSUPP
            )
        if sector * self.SECTOR + descriptor.length > self.capacity_sectors * self.SECTOR:
            raise VirtioIoError(
                f"I/O beyond disk capacity at sector {sector}", status=STATUS_IOERR
            )
        if header.get("type") == "write":
            try:
                data = self.dma_read(descriptor.gpa, descriptor.payload)
            except TypeError as bad_payload:
                raise VirtioIoError(str(bad_payload), status=STATUS_UNSUPP) from None
            self._store(sector, data, descriptor.length)
            self.writes += 1
        else:
            data = self._fetch(sector, descriptor.length)
            self.dma_write(descriptor.gpa, data)
            descriptor.payload = data
            self.reads += 1

    def _store(self, sector: int, data, length: int) -> None:
        if isinstance(data, (bytes, bytearray)):
            for i in range(0, length, self.SECTOR):
                self._disk[sector + i // self.SECTOR] = bytes(data[i : i + self.SECTOR])
        else:
            for i in range(0, length, self.SECTOR):
                self._disk[sector + i // self.SECTOR] = min(self.SECTOR, length - i)

    def _fetch(self, sector: int, length: int):
        """Read ``length`` bytes at ``sector`` from the backing store.

        The disk holds real ``bytes`` for real writes and plain ``int``
        lengths for symbolic ones.  A read spanning *both* kinds cannot
        be served faithfully -- the symbolic sectors have no bytes to
        return -- so it is refused (:class:`VirtioIoError`, completed as
        ``STATUS_IOERR``) instead of silently substituting zeros for the
        symbolic part, which would be data corruption.  All-symbolic
        regions (unwritten sectors included) stay on the accounting-only
        path and return a symbolic payload; all-real regions return real
        bytes with zeros for unwritten holes, as a disk does.
        """
        chunks = [
            self._disk.get(sector + i // self.SECTOR)
            for i in range(0, length, self.SECTOR)
        ]
        has_real = any(isinstance(c, (bytes, bytearray)) for c in chunks)
        has_symbolic = any(isinstance(c, int) for c in chunks)
        if has_real and has_symbolic:
            raise VirtioIoError(
                f"read of {length} bytes at sector {sector} spans mixed "
                "real/symbolic disk regions",
                status=STATUS_IOERR,
            )
        if has_symbolic:
            return length  # symbolic region: return a symbolic payload
        out = bytearray()
        for i, chunk in zip(range(0, length, self.SECTOR), chunks):
            if chunk is None:
                chunk = b"\x00" * self.SECTOR
            out += chunk[: min(self.SECTOR, length - i)]
        return bytes(out)


class VirtioRngDevice(VirtioDevice):
    """virtio-rng: the host feeds entropy into guest-posted buffers.

    The entropy source is *host-controlled* and therefore untrusted for a
    confidential VM: a sensible CVM kernel mixes it with SM-provided
    randomness rather than consuming it raw (see
    :class:`repro.guest.virtio_driver.VirtioRngDriver`).
    """

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs,
                 seed: bytes = b"host-rng", event_idx: bool = True):
        super().__init__("virtio-rng", mmio_base, source_id, bus, ledger, costs,
                         event_idx=event_idx)
        self._state = seed
        self.bytes_served = 0

    def _entropy(self, count: int) -> bytes:
        import hashlib

        out = b""
        while len(out) < count:
            self._state = hashlib.sha256(self._state + b"n").digest()
            out += self._state
        return out[:count]

    def process_queue(self, index: int) -> None:
        """Fill each posted buffer with host entropy; batch completions."""
        queue = self.queues[index]
        completed = []
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            try:
                _validated_request(descriptor)
                data = self._entropy(descriptor.length)
                self.dma_write(descriptor.gpa, data)
                descriptor.payload = data
                self.bytes_served += descriptor.length
                descriptor.status = STATUS_OK
            except VirtioIoError as refusal:
                descriptor.status = refusal.status
                self.io_errors += 1
            completed.append(descriptor)
        self._complete_batch(queue, completed)


class VirtioNetDevice(VirtioDevice):
    """virtio-net: TX frames go to a host handler, RX frames come from it.

    ``host_handler(frame_payload, header)`` is the host-side network peer
    (e.g. the Redis benchmark client); frames it sends back are queued and
    delivered into guest-posted RX buffers.
    """

    TX_QUEUE = 0
    RX_QUEUE = 1

    def __init__(self, mmio_base: int, source_id: int, bus, ledger, costs,
                 event_idx: bool = True):
        super().__init__("virtio-net", mmio_base, source_id, bus, ledger, costs,
                         event_idx=event_idx)
        self.host_handler = None
        self._host_backlog: deque = deque()
        self.tx_frames = 0
        self.rx_frames = 0
        #: Host-delivered frames dropped (oversized or malformed); the
        #: posted RX buffer is returned to the ring, never lost.
        self.rx_dropped = 0

    def process_queue(self, index: int) -> None:
        """TX: hand frames to the host handler; then flush RX backlog."""
        if index == self.TX_QUEUE:
            self._process_tx()
        self._flush_rx()

    def _process_tx(self) -> None:
        queue = self.queues[self.TX_QUEUE]
        completed = []
        while queue.available:
            descriptor = queue.available.popleft()
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            try:
                _validated_request(descriptor)
                try:
                    frame = self.dma_read(descriptor.gpa, descriptor.payload)
                except TypeError as bad_payload:
                    raise VirtioIoError(str(bad_payload), status=STATUS_UNSUPP) from None
                self.tx_frames += 1
                if self.host_handler is not None:
                    for reply in self.host_handler(frame, descriptor.header or {}):
                        self._host_backlog.append(reply)
                descriptor.status = STATUS_OK
            except VirtioIoError as refusal:
                descriptor.status = refusal.status
                self.io_errors += 1
            completed.append(descriptor)
        self._complete_batch(queue, completed)

    def host_deliver(self, frame) -> None:
        """Host side queues a frame for the guest; delivered into RX buffers."""
        self._host_backlog.append(frame)
        self._flush_rx()

    def _flush_rx(self) -> None:
        """Deliver backlog frames into posted RX buffers; batch completions.

        A frame that does not fit its buffer (or is not a payload at all)
        is *dropped* -- real virtio-net semantics for an undersized RX
        ring -- and the popped descriptor goes back to the front of the
        available ring, so no guest buffer is ever lost and the rest of
        the backlog still drains.
        """
        queue = self.queues.get(self.RX_QUEUE)
        if queue is None:
            return
        completed = []
        while self._host_backlog and queue.available:
            frame = self._host_backlog.popleft()
            try:
                length = payload_len(frame)
            except TypeError:
                self.rx_dropped += 1  # not a frame: drop, keep draining
                continue
            descriptor = queue.available.popleft()
            if length > descriptor.length:
                self.rx_dropped += 1
                queue.available.appendleft(descriptor)  # buffer not consumed
                continue
            self.ledger.charge(Category.DEVICE, self.costs.virtio_request_fixed)
            self.dma_write(descriptor.gpa, frame)
            descriptor.payload = frame
            descriptor.status = STATUS_OK
            self.rx_frames += 1
            completed.append(descriptor)
        self._complete_batch(queue, completed)

    @property
    def backlog(self) -> int:
        return len(self._host_backlog)
