"""Guest-side inter-CVM IPC: SPSC rings over SM-brokered channel windows.

The SM half lives in :mod:`repro.sm.channel`; this package is what a
guest kernel links: :class:`~repro.ipc.ring.SpscRing` (a cycle-accounted
single-producer/single-consumer byte ring with credit-based backpressure)
and :class:`~repro.ipc.endpoint.ChannelEndpoint` (the ECALL plumbing plus
a bidirectional pair of rings over one window).
"""

from repro.ipc.endpoint import ChannelEndpoint
from repro.ipc.ring import SpscRing

__all__ = ["ChannelEndpoint", "SpscRing"]
