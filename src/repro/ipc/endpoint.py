"""Guest endpoint of an SM-brokered inter-CVM channel.

Wraps the four ``ZION_GUEST`` channel ECALLs and lays a *bidirectional*
pair of :class:`~repro.ipc.ring.SpscRing` over the window: the creator
transmits on the lower half and receives on the upper half, the connector
the mirror image -- each ring therefore has exactly one producer and one
consumer, which is what makes the lock-free counters sound.

All control transfers use the raw register-convention ABI
(:meth:`GuestContext.sbi_ecall`), so the endpoint pays the same trap /
dispatch / translate costs a real guest kernel would; the measurement a
side expects of its peer crosses as a 32-byte (GPA, implicit-length)
buffer like every other SBI byte argument.
"""

from __future__ import annotations

from repro.errors import ChannelCorrupt, ReproError
from repro.mem.physmem import PAGE_SIZE
from repro.sm.abi import EXT_ZION_GUEST, GuestFunction, SbiError
from repro.ipc.ring import SpscRing


class ChannelError(ReproError):
    """A channel ECALL returned an SBI error."""

    def __init__(self, operation: str, error: int):
        self.operation = operation
        self.error = error
        try:
            name = SbiError(error).name
        except ValueError:
            name = str(error)
        super().__init__(f"channel {operation} failed: {name}")


class ChannelEndpoint:
    """One guest's end of a channel (rings + ECALL plumbing).

    Trust assumptions (THREAT_MODEL vocabulary): the *peer CVM* is
    untrusted once connected -- everything read from the shared window
    (ring counters, length prefixes, payload bytes) is attacker-supplied
    and goes through Check-after-Load in :class:`~repro.ipc.ring.SpscRing`
    before it is used as a count, offset or copy length.  The
    *hypervisor* never maps the window at all (SM-enforced), so it is
    outside this endpoint's attack surface; the *SM* is trusted and its
    ECALL results (channel id, window size) are used unclamped.  On the
    first failed sanity check the endpoint fail-stops (``corrupt``):
    containment, not recovery, is the policy for a lying peer.
    """

    def __init__(self, ctx, channel_id: int, window_gpa: int, size: int,
                 is_creator: bool, adaptive: bool = True):
        self.ctx = ctx
        self.channel_id = channel_id
        self.window_gpa = window_gpa
        self.window_size = size
        self.is_creator = is_creator
        #: Adaptive doorbell coalescing (EVENT_IDX-style, the default):
        #: ring the peer only when a send crosses its published wake
        #: point, instead of on every send / near-full receive.  The
        #: eager arm (``adaptive=False``) keeps the original policy for
        #: the ablation in ``bench/ipc.py``.
        self.adaptive = adaptive
        half = size // 2
        lower = SpscRing(ctx, window_gpa, half, adaptive=adaptive)
        upper = SpscRing(ctx, window_gpa + half, size - half, adaptive=adaptive)
        self.tx, self.rx = (lower, upper) if is_creator else (upper, lower)
        self.closed = False
        #: Set when the peer's shared state failed a sanity check; the
        #: endpoint fail-stops -- all further data-path calls refuse.
        self.corrupt = False
        #: Doorbells this endpoint has rung (ablation statistic).
        self.doorbells_rung = 0
        #: notify=True operations that decided *not* to ring because the
        #: peer's event word said it was not waiting (ablation statistic).
        self.doorbells_suppressed = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, ctx, window_gpa: int, size: int,
               expected_peer_measurement: bytes,
               scratch_gpa: int | None = None,
               adaptive: bool = True) -> "ChannelEndpoint":
        """CHANNEL_CREATE: allocate the window and become the creator."""
        meas_gpa = cls._stage_measurement(
            ctx, expected_peer_measurement, scratch_gpa, window_gpa + size
        )
        error, channel_id = ctx.sbi_ecall(
            EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CREATE),
            window_gpa, size, meas_gpa,
        )
        if error != SbiError.SUCCESS:
            raise ChannelError("create", error)
        return cls(ctx, channel_id, window_gpa, size, is_creator=True,
                   adaptive=adaptive)

    @classmethod
    def connect(cls, ctx, channel_id: int, window_gpa: int,
                expected_creator_measurement: bytes,
                scratch_gpa: int | None = None,
                adaptive: bool = True) -> "ChannelEndpoint":
        """CHANNEL_CONNECT: join; the SM returns the window size."""
        meas_gpa = cls._stage_measurement(
            ctx, expected_creator_measurement, scratch_gpa, window_gpa - PAGE_SIZE
        )
        error, size = ctx.sbi_ecall(
            EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CONNECT),
            channel_id, window_gpa, meas_gpa,
        )
        if error != SbiError.SUCCESS:
            raise ChannelError("connect", error)
        return cls(ctx, channel_id, window_gpa, size, is_creator=False,
                   adaptive=adaptive)

    @staticmethod
    def _stage_measurement(ctx, measurement: bytes, scratch_gpa: int | None,
                           default_gpa: int) -> int:
        """Put the expected-measurement bytes where the SM can read them.

        The default scratch page sits just outside the window (the page
        after it for the creator, before it for the connector), so the
        demand-fault that backs it never lands inside the window range the
        SM requires to be unmapped.
        """
        if len(measurement) != 32:
            raise ValueError("expected measurement must be 32 bytes")
        gpa = default_gpa if scratch_gpa is None else scratch_gpa
        ctx.write_bytes(gpa, measurement)
        return gpa

    # -- data path ---------------------------------------------------------

    def send(self, payload: bytes, notify: bool = True) -> bool:
        """Enqueue one message; rings the peer's doorbell on success.

        Returns False (never blocks, never partially writes) when the
        peer's unreturned credits would be exceeded.  The credit check
        reads the peer-writable ``cons`` counter through the ring's
        clamped invariant check: an out-of-range counter fail-stops the
        endpoint instead of authorising an overwrite.
        """
        self._require_open()
        try:
            sent = self.tx.try_send(payload)
        except ChannelCorrupt:
            self.corrupt = True
            raise
        if not sent:
            return False
        if notify:
            self._notify_data()
        return True

    def _notify_data(self) -> None:
        """Ring the new-data doorbell, or suppress it (adaptive mode).

        Adaptive: the ring accumulated a hint iff a send crossed the
        consumer's published wake point -- a consumer that is busy
        draining (its event word is stale) costs no notify ECALL.  A
        consumer about to park always republishes the event on its empty
        poll first, so suppression never loses a wakeup.
        """
        if not self.adaptive:
            self.ring_doorbell()
        elif self.tx.take_data_hint():
            self.ring_doorbell()
        else:
            self.doorbells_suppressed += 1

    def _notify_credits(self) -> None:
        """Ring the credit-return doorbell, or suppress it (adaptive)."""
        if self.rx.take_credit_hint():
            self.ring_doorbell()
        else:
            self.doorbells_suppressed += 1

    #: Credit-return doorbell watermark (the *eager* arm only): after a
    #: recv, ring the peer only if the ring was this full (the producer
    #: may be throttled).  A ring with plenty of credits left needs no
    #: wakeup -- saving the notify ECALL on every uncontended receive is
    #: most of the fast path.  Adaptive mode replaces this heuristic with
    #: the producer's exact published wake point (see
    #: :meth:`_notify_credits`), which rings strictly when needed.
    CREDIT_WATERMARK = 4

    def recv(self, notify: bool = True) -> bytes | None:
        """Dequeue one message; doorbells the peer if it may be throttled.

        The message header and counters are untrusted (peer-writable):
        the length prefix is clamped against the published byte count
        before any copy, and counter inconsistency raises
        :class:`ChannelCorrupt` and fail-stops the endpoint.
        """
        self._require_open()
        try:
            if self.adaptive:
                # The producer publishes its wake point on a refused
                # send; the ring flags a hint only when this receive
                # crosses it -- no advisory credit sampling needed.
                throttled = False
                payload = self.rx.try_recv()
            else:
                throttled = (
                    self.rx.credits() < self.rx.capacity // self.CREDIT_WATERMARK
                )
                payload = self.rx.try_recv()
        except ChannelCorrupt:
            self.corrupt = True
            raise
        if payload is not None and notify:
            if self.adaptive:
                self._notify_credits()
            elif throttled:
                self.ring_doorbell()
        return payload

    def send_many(self, payloads, notify: bool = True) -> int:
        """Enqueue messages until credits run out; one doorbell for the batch.

        Returns how many of ``payloads`` were enqueued (a prefix: the
        first refusal stops the batch, so the caller can retry the tail
        after the peer returns credits).  Trust: the refusal decision
        reads the peer-writable ``cons`` counter, but only through the
        ring's clamped invariant check -- a lying peer can deny us
        credits (liveness), never make us overwrite unconsumed data
        (integrity).  Ringing one doorbell per batch instead of one per
        message is the pipelining fast path: the notify ECALL (trap,
        dispatch, SM bookkeeping, IPI) amortises across the batch.
        """
        self._require_open()
        sent = 0
        for payload in payloads:
            try:
                if not self.tx.try_send(payload):
                    break
            except ChannelCorrupt:
                self.corrupt = True
                raise
            sent += 1
        if sent and notify:
            self._notify_data()
        return sent

    def recv_many(self, limit: int | None = None, notify: bool = True) -> list:
        """Drain up to ``limit`` messages; one credit-return doorbell.

        The throttle check (was the producer near out of credits?) is
        sampled *before* draining, exactly like :meth:`recv`, so the
        batch rings at most one doorbell however many messages it frees.
        Every message crossed the untrusted window: length prefixes are
        clamped by the ring before any copy, and a corrupt counter
        fail-stops the endpoint mid-drain (messages already returned
        were individually validated and remain good).
        """
        self._require_open()
        out: list = []
        try:
            throttled = (
                not self.adaptive
                and self.rx.credits() < self.rx.capacity // self.CREDIT_WATERMARK
            )
            while limit is None or len(out) < limit:
                payload = self.rx.try_recv()
                if payload is None:
                    break
                out.append(payload)
        except ChannelCorrupt:
            self.corrupt = True
            raise
        if out and notify:
            if self.adaptive:
                self._notify_credits()
            elif throttled:
                self.ring_doorbell()
        return out

    def credits(self) -> int:
        """Free bytes on the transmit ring (credit-based backpressure)."""
        return self.tx.credits()

    def ring_doorbell(self) -> int:
        """CHANNEL_NOTIFY: raise the peer's VSEI through the SM.

        The doorbell carries no data -- the untrusted host observes only
        *that* a notify happened (it schedules the woken vCPU), never
        what is in the window.  The SM validates that this CVM is an
        endpoint of the channel before touching the peer's hvip.
        """
        error, pending = self.ctx.sbi_ecall(
            EXT_ZION_GUEST, int(GuestFunction.CHANNEL_NOTIFY), self.channel_id
        )
        if error != SbiError.SUCCESS:
            raise ChannelError("notify", error)
        self.doorbells_rung += 1
        return pending

    def close(self) -> None:
        """CHANNEL_CLOSE: unmap both sides, scrub, free (idempotent).

        Either endpoint may close unilaterally; the SM (trusted) unmaps
        the window from *both* CVMs and zeroes it before the block can
        be reused, so no residue of the conversation survives for the
        next owner.  The peer subsequently faults on the window --
        containment it must expect from an untrusted counterpart.
        """
        if self.closed:
            return
        error, _ = self.ctx.sbi_ecall(
            EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CLOSE), self.channel_id
        )
        if error != SbiError.SUCCESS:
            raise ChannelError("close", error)
        self.closed = True

    def _require_open(self) -> None:
        if self.closed:
            raise ChannelError("use-after-close", int(SbiError.INVALID_PARAM))
        if self.corrupt:
            raise ChannelCorrupt(
                f"channel {self.channel_id} endpoint is fail-stopped after "
                f"detecting corrupt shared state"
            )
