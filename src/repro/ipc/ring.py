"""A cycle-accounted SPSC ring buffer over a shared channel window.

Classic single-producer/single-consumer byte ring: two monotonic 64-bit
byte counters (``prod``, ``cons``) in a small header at the base of the
region, followed by the data area.  Messages are 8-byte-length-prefixed
byte strings, written wrap-aware, so the stream needs no alignment
padding and arbitrary message sizes coexist.

Backpressure is credit-based: the producer's *credits* are the free bytes
``capacity - (prod - cons)``; a send that does not fit is refused (never
partially written), and the producer is expected to wait for a doorbell
-- the consumer rings after it advances ``cons`` -- rather than poll.

Every header access and payload byte moves through the owning
:class:`~repro.machine.GuestContext`, so each is translated through the
CVM's stage-2 tables and charged to the ledger -- the ring is exactly as
expensive as the loads, stores and copies it performs, which is the whole
point of comparing it against the virtio bounce path.
"""

from __future__ import annotations

from repro.errors import ChannelCorrupt

#: Bytes reserved at the base of the region for the two counters (padded
#: to a cache line so producer and consumer do not false-share).
HEADER_SIZE = 64

_PROD_OFFSET = 0
_CONS_OFFSET = 8
#: EVENT_IDX-style doorbell-suppression words (adaptive mode only).
#: ``data_event`` is written by the *consumer* ("ring me when ``prod``
#: passes this") and read by the producer; ``credit_event`` is written by
#: the *producer* ("ring me when ``cons`` reaches this") and read by the
#: consumer.  Both are advisory and untrusted: they steer only whether a
#: doorbell is rung, never a copy, so a lying peer can at worst suppress
#: its *own* wakeups (self-harm) or draw spurious doorbells bounded by
#: the honest side's own send/recv rate.
_DATA_EVENT_OFFSET = 16
_CREDIT_EVENT_OFFSET = 24

#: Bytes of length prefix before each message payload.
LENGTH_PREFIX = 8


class SpscRing:
    """One direction of a channel: a byte ring inside ``[base, base+size)``.

    Trust assumptions: the whole region is shared with the (untrusted)
    peer CVM, so *every* load from it -- ``prod``, ``cons``, length
    prefixes, payloads -- is attacker-controllable and must pass
    Check-after-Load before it steers a copy.  The local side only
    trusts what it derives itself: ``capacity`` (from the SM-returned
    window size) and its own statistics counters, which live in guest
    locals, not in the window.  Violations surface as
    :class:`ChannelCorrupt`, never as an out-of-bounds access.
    """

    def __init__(self, ctx, base_gpa: int, size: int, adaptive: bool = False):
        if size <= HEADER_SIZE:
            raise ValueError("ring region too small for its header")
        self.ctx = ctx
        self.base = base_gpa
        self.data_base = base_gpa + HEADER_SIZE
        self.capacity = size - HEADER_SIZE
        #: Adaptive doorbell coalescing (EVENT_IDX-style): each side
        #: publishes the counter value it wants to be woken at, and the
        #: other side rings only when an operation crosses that event.
        #: Off by default at ring level; the endpoint turns it on.
        self.adaptive = adaptive
        #: Pending "the peer asked to be notified" hints, accumulated by
        #: the data path and consumed by the endpoint's doorbell policy
        #: (guest-local state, nothing the peer can touch).
        self._data_hint = False
        self._credit_hint = False
        #: Messages this side sent / received (statistics, guest-local).
        self.sent = 0
        self.received = 0

    # -- counters ----------------------------------------------------------

    @property
    def prod(self) -> int:
        """Producer byte counter -- an *untrusted* load from the window.

        Raw by design: clamping happens in :meth:`_checked_used`, the
        single choke point every data-path decision goes through.
        """
        return self.ctx.load(self.base + _PROD_OFFSET)

    @property
    def cons(self) -> int:
        """Consumer byte counter -- an *untrusted* load from the window."""
        return self.ctx.load(self.base + _CONS_OFFSET)

    def used(self) -> int:
        """Bytes currently queued (consumer's view of available work).

        Advisory only (doorbell/throttle heuristics): reads both shared
        counters without clamping, so callers must not size a copy from
        it -- the data paths re-derive the value via the checked form.
        """
        return self.prod - self.cons

    def credits(self) -> int:
        """Free bytes the producer may still write without overrunning.

        Advisory (backpressure heuristics), like :meth:`used`: a lying
        peer can understate credits and stall us, but an overstated
        value never reaches a copy -- :meth:`try_send` re-checks through
        the clamped path before writing a byte.
        """
        return self.capacity - self.used()

    def _checked_used(self, prod: int, cons: int) -> int:
        """Queued-byte count, validated against the ring's invariants.

        Both counters live in the shared window, so either can hold
        garbage after peer misbehaviour (torn update, byte flip).  A sane
        ring always satisfies ``0 <= prod - cons <= capacity``; anything
        else is :class:`ChannelCorrupt`, never a basis for a copy.
        """
        used = prod - cons
        if used < 0 or used > self.capacity:
            raise ChannelCorrupt(
                f"ring counters inconsistent: prod={prod} cons={cons} "
                f"capacity={self.capacity}"
            )
        return used

    # -- producer ----------------------------------------------------------

    def try_send(self, payload: bytes) -> bool:
        """Enqueue one message, or refuse (False) if credits are short."""
        need = LENGTH_PREFIX + len(payload)
        if need > self.capacity:
            raise ValueError(
                f"message of {len(payload)} bytes can never fit a "
                f"{self.capacity}-byte ring"
            )
        prod = self.prod
        used = self._checked_used(prod, self.cons)
        if need > self.capacity - used:
            if self.adaptive:
                # Publish the cons value that frees enough credits, so
                # the consumer knows when a credit-return doorbell is
                # actually needed (it rings only when it crosses this).
                self.ctx.store(
                    self.base + _CREDIT_EVENT_OFFSET, prod + need - self.capacity
                )
            return False  # out of credits: back-pressure the producer
        frame = len(payload).to_bytes(LENGTH_PREFIX, "little") + payload
        self._write_wrapped(prod, frame)
        # Publish after the payload is in place (store-release ordering).
        self.ctx.store(self.base + _PROD_OFFSET, prod + len(frame))
        self.sent += 1
        if self.adaptive:
            # vring_need_event: notify only if this send crossed the
            # consumer's published wake point.  The event word is
            # peer-written and advisory -- it steers a doorbell, never a
            # copy, so no clamping is required (see the offset comment).
            event = self.ctx.load(self.base + _DATA_EVENT_OFFSET)
            if prod <= event < prod + len(frame):  # zionlint: disable=ZL2 advisory event word by design: the branch only raises a doorbell hint, never steers a copy or an index (vring_need_event semantics)
                self._data_hint = True
        return True

    # -- consumer ----------------------------------------------------------

    def try_recv(self) -> bytes | None:
        """Dequeue one message, or None if the ring is empty.

        Raises :class:`ChannelCorrupt` if the shared counters or the
        length prefix are inconsistent with the ring invariants -- the
        prefix is attacker-reachable (it lives in the shared window), so
        it is clamped against the published byte count before any copy.
        """
        cons = self.cons
        prod = self.prod
        used = self._checked_used(prod, cons)
        if used < LENGTH_PREFIX:
            if self.adaptive:
                # Empty poll: publish "wake me when prod passes here".
                # Every consumer in this tree polls empty before parking
                # on WAIT_DOORBELL, so the event is always fresh by the
                # time the side actually sleeps.
                self.ctx.store(self.base + _DATA_EVENT_OFFSET, prod)
            return None
        header = self._read_wrapped(cons, LENGTH_PREFIX)
        length = int.from_bytes(header, "little")
        if LENGTH_PREFIX + length > used:
            raise ChannelCorrupt(
                f"length prefix {length} exceeds published bytes "
                f"({used - LENGTH_PREFIX} available)"
            )
        payload = self._read_wrapped(cons + LENGTH_PREFIX, length)
        # Release the credits only after the payload has been copied out.
        new_cons = cons + LENGTH_PREFIX + length
        self.ctx.store(self.base + _CONS_OFFSET, new_cons)
        self.received += 1
        if self.adaptive:
            # Credit-return doorbell only when this receive crossed the
            # producer's published wake point (set on a refused send).
            event = self.ctx.load(self.base + _CREDIT_EVENT_OFFSET)
            if cons < event <= new_cons:  # zionlint: disable=ZL2 advisory event word by design: the branch only raises a doorbell hint, never steers a copy or an index (vring_need_event semantics)
                self._credit_hint = True
        return payload

    # -- doorbell hints (adaptive mode) ------------------------------------

    def take_data_hint(self) -> bool:
        """Consume the pending new-data notify hint (producer side)."""
        hint, self._data_hint = self._data_hint, False
        return hint

    def take_credit_hint(self) -> bool:
        """Consume the pending credit-return notify hint (consumer side)."""
        hint, self._credit_hint = self._credit_hint, False
        return hint

    # -- wrap-aware data movement -----------------------------------------

    def _write_wrapped(self, counter: int, data: bytes) -> None:
        pos = counter % self.capacity
        first = min(self.capacity - pos, len(data))
        self.ctx.write_bytes(self.data_base + pos, data[:first])
        if first < len(data):
            self.ctx.write_bytes(self.data_base, data[first:])

    def _read_wrapped(self, counter: int, length: int) -> bytes:
        if length == 0:
            return b""
        pos = counter % self.capacity
        first = min(self.capacity - pos, length)
        out = self.ctx.read_bytes(self.data_base + pos, first)
        if first < length:
            out += self.ctx.read_bytes(self.data_base, length - first)
        return out
