"""mstatus / hstatus bit-field encoding (the fields ZION manipulates).

The world switch and trap machinery communicate through architectural
status bits: ``mstatus.MPP``/``MPV`` say where ``mret`` will land (and
record where a trap came from), ``mstatus.SIE``/``MPIE`` hold the
interrupt-enable stack, ``hstatus.SPV`` records whether an HS-level trap
arrived from a virtual mode, and ``hstatus.SPVP`` the guest privilege.
Field positions follow the privileged spec (RV64).
"""

from __future__ import annotations

from repro.isa.privilege import PrivilegeMode

# mstatus fields
MSTATUS_SIE = 1 << 1
MSTATUS_MIE = 1 << 3
MSTATUS_SPIE = 1 << 5
MSTATUS_MPIE = 1 << 7
MSTATUS_SPP = 1 << 8
_MPP_SHIFT = 11
_MPP_MASK = 0b11 << _MPP_SHIFT
MSTATUS_MPV = 1 << 39
MSTATUS_GVA = 1 << 38

# hstatus fields
HSTATUS_SPV = 1 << 7
HSTATUS_SPVP = 1 << 8
HSTATUS_GVA = 1 << 6


def mpp_of(mstatus: int) -> int:
    """The MPP field (privilege level mret returns to)."""
    return (mstatus & _MPP_MASK) >> _MPP_SHIFT


def with_mpp(mstatus: int, level: int) -> int:
    """mstatus with the MPP field set to ``level``."""
    return (mstatus & ~_MPP_MASK) | ((level & 0b11) << _MPP_SHIFT)


def mret_target(mstatus: int) -> PrivilegeMode:
    """Where ``mret`` lands given mstatus.MPP/MPV."""
    level = mpp_of(mstatus)
    virtual = bool(mstatus & MSTATUS_MPV) and level != 3
    if level == 3:
        return PrivilegeMode.M
    if level == 1:
        return PrivilegeMode.VS if virtual else PrivilegeMode.HS
    return PrivilegeMode.VU if virtual else PrivilegeMode.U


def encode_trap_entry(mstatus: int, from_mode: PrivilegeMode) -> int:
    """mstatus after a trap into M: record the interrupted mode.

    MPP gets the privilege level, MPV whether it was a virtual mode;
    MPIE saves MIE and MIE clears (the spec's interrupt-enable stack).
    """
    updated = with_mpp(mstatus, from_mode.level)
    if from_mode.virtualized:
        updated |= MSTATUS_MPV
    else:
        updated &= ~MSTATUS_MPV
    if updated & MSTATUS_MIE:
        updated |= MSTATUS_MPIE
    else:
        updated &= ~MSTATUS_MPIE
    updated &= ~MSTATUS_MIE
    return updated


def encode_mret(mstatus: int) -> int:
    """mstatus after ``mret``: pop the interrupt-enable stack, clear MPP."""
    updated = mstatus
    if updated & MSTATUS_MPIE:
        updated |= MSTATUS_MIE
    else:
        updated &= ~MSTATUS_MIE
    updated |= MSTATUS_MPIE
    updated = with_mpp(updated, 0)
    updated &= ~MSTATUS_MPV
    return updated


def encode_hstatus_for_guest(hstatus: int, guest_mode: PrivilegeMode) -> int:
    """hstatus while a guest trap is being serviced: SPV/SPVP per spec."""
    updated = hstatus | HSTATUS_SPV
    if guest_mode is PrivilegeMode.VS:
        updated |= HSTATUS_SPVP
    else:
        updated &= ~HSTATUS_SPVP
    return updated
