"""Functional model of the RISC-V privileged architecture.

Models the architectural features ZION relies on, per the privileged spec
and the hypervisor extension: privilege modes (including the virtualized VS
and VU modes), CSRs, trap causes and delegation (``medeleg``/``hedeleg``),
Physical Memory Protection (PMP), IOPMP, and the hart itself.

This is a *functional* model: no instructions are decoded; the objects here
answer the questions the rest of the stack asks of real hardware ("may VS
mode write this physical address?", "where does this trap land given the
current delegation CSRs?") with architecturally-accurate rules.
"""

from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType, ExceptionCause, InterruptCause, TrapKind
from repro.isa.csr import CsrFile
from repro.isa.pmp import PmpAddressMode, PmpEntry, PmpUnit
from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.isa.hart import Hart

__all__ = [
    "PrivilegeMode",
    "AccessType",
    "ExceptionCause",
    "InterruptCause",
    "TrapKind",
    "CsrFile",
    "PmpAddressMode",
    "PmpEntry",
    "PmpUnit",
    "IopmpEntry",
    "IopmpUnit",
    "Hart",
]
