"""CLINT: the core-local interruptor (machine timer + software IPIs).

The real platform's CLINT provides ``mtime`` (a global cycle-speed
counter), per-hart ``mtimecmp`` (machine timer compare) and per-hart
``msip`` (inter-processor software interrupt) registers, all owned by
M-mode software.  ZION's SM programs ``mtimecmp`` to get the scheduler
tick that drives CVM time-slicing, and uses ``msip`` to kick remote harts
(e.g. for cross-hart TLB shootdown on pool expansion).

``mtime`` is driven by the machine's cycle ledger through a time-source
callable, so simulated time and timer behaviour stay consistent by
construction.
"""

from __future__ import annotations

_U64_MAX = (1 << 64) - 1


class Clint:
    """Functional CLINT for ``hart_count`` harts."""

    def __init__(self, hart_count: int, time_source):
        self.hart_count = hart_count
        self._time_source = time_source
        self._mtimecmp = [_U64_MAX] * hart_count
        self._msip = [False] * hart_count

    # -- mtime --------------------------------------------------------------

    @property
    def mtime(self) -> int:
        return self._time_source() & _U64_MAX

    # -- machine timer --------------------------------------------------------

    def read_mtimecmp(self, hart_id: int) -> int:
        """The hart's programmed timer deadline."""
        return self._mtimecmp[hart_id]

    def write_mtimecmp(self, hart_id: int, value: int) -> None:
        """Program the next timer interrupt (also clears a pending one)."""
        self._mtimecmp[hart_id] = value & _U64_MAX

    def timer_pending(self, hart_id: int) -> bool:
        """MTIP for this hart: mtime >= mtimecmp (the spec's comparison)."""
        return self.mtime >= self._mtimecmp[hart_id]

    def arm_after(self, hart_id: int, cycles: int) -> int:
        """Convenience: program the timer ``cycles`` from now."""
        deadline = (self.mtime + cycles) & _U64_MAX
        self.write_mtimecmp(hart_id, deadline)
        return deadline

    # -- software interrupts (IPIs) ------------------------------------------------

    def send_ipi(self, hart_id: int) -> None:
        """Assert the target hart's software-interrupt pending bit."""
        self._msip[hart_id] = True

    def clear_ipi(self, hart_id: int) -> None:
        """Acknowledge (clear) the hart's software interrupt."""
        self._msip[hart_id] = False

    def ipi_pending(self, hart_id: int) -> bool:
        """Whether the hart has an unacknowledged IPI."""
        return self._msip[hart_id]

    def broadcast_ipi(self, exclude: int | None = None) -> None:
        """Kick every hart (cross-hart fence protocols)."""
        for hart_id in range(self.hart_count):
            if hart_id != exclude:
                self._msip[hart_id] = True
