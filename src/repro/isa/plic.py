"""PLIC: the platform-level interrupt controller.

Routes device (external) interrupts to hart contexts with the standard
claim/complete protocol: a device raises its source line; the highest-
priority pending+enabled source above a context's threshold asserts the
context's external-interrupt pin; software claims (reads the source id,
atomically clearing its pending bit), services the device, and completes.

The hypervisor owns the PLIC and uses claims to decide which guest to
inject a virtual external interrupt into -- the hardware never routes
device interrupts directly into a VM, which is why ZION does not need to
protect the PLIC itself (interrupt *delivery* to a CVM still goes through
the SM's validated injection path).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Plic:
    """Functional PLIC: ``source_count`` lines, ``context_count`` targets."""

    def __init__(self, source_count: int = 32, context_count: int = 8):
        self.source_count = source_count
        self.context_count = context_count
        #: Source priorities; 0 means "never interrupts".
        self._priority = [0] * (source_count + 1)
        self._pending = [False] * (source_count + 1)
        #: In-flight claims (claimed but not completed).
        self._claimed = [False] * (source_count + 1)
        self._enabled = [set() for _ in range(context_count)]
        self._threshold = [0] * context_count

    # -- configuration (hypervisor side) ------------------------------------

    def set_priority(self, source: int, priority: int) -> None:
        """Program a source's priority (0 disables it)."""
        self._check_source(source)
        if priority < 0:
            raise ConfigurationError("priority must be non-negative")
        self._priority[source] = priority

    def enable(self, context: int, source: int) -> None:
        """Enable a source for a context."""
        self._check_source(source)
        self._enabled[context].add(source)

    def disable(self, context: int, source: int) -> None:
        """Disable a source for a context."""
        self._check_source(source)
        self._enabled[context].discard(source)

    def set_threshold(self, context: int, threshold: int) -> None:
        """Sources at or below this priority will not interrupt the context."""
        self._threshold[context] = threshold

    # -- device side ------------------------------------------------------------

    def raise_irq(self, source: int) -> None:
        """Device side: latch the source's pending bit."""
        self._check_source(source)
        if not self._claimed[source]:
            self._pending[source] = True

    # -- hart side -----------------------------------------------------------------

    def _best_candidate(self, context: int):
        best = None
        best_priority = self._threshold[context]
        for source in self._enabled[context]:
            if not self._pending[source] or self._claimed[source]:
                continue
            if self._priority[source] > best_priority:
                best = source
                best_priority = self._priority[source]
        return best

    def external_pending(self, context: int) -> bool:
        """The context's MEIP/SEIP line."""
        return self._best_candidate(context) is not None

    def claim(self, context: int) -> int:
        """Claim the highest-priority pending source (0 = none)."""
        source = self._best_candidate(context)
        if source is None:
            return 0
        self._pending[source] = False
        self._claimed[source] = True
        return source

    def complete(self, context: int, source: int) -> None:
        """Finish servicing a claimed source (re-arms it)."""
        self._check_source(source)
        if not self._claimed[source]:
            raise ConfigurationError(f"complete of unclaimed source {source}")
        self._claimed[source] = False

    # ------------------------------------------------------------------

    def _check_source(self, source: int) -> None:
        if not 1 <= source <= self.source_count:
            raise ConfigurationError(f"invalid PLIC source {source}")
