"""IOPMP: physical memory protection for bus masters (DMA).

Models the RISC-V IOPMP proposal at the level ZION uses it: a table of
(source-id, region, permissions) rules checked on every DMA transaction.
The SM programs a deny rule covering the secure memory pool for all
device source IDs, so a malicious peripheral cannot read or tamper with
CVM memory even though the CPU-side PMP does not see DMA traffic.
"""

from __future__ import annotations

import dataclasses

from repro.isa.traps import AccessType


@dataclasses.dataclass(frozen=True)
class IopmpEntry:
    """One IOPMP rule.

    ``source_id`` is the bus-master ID the rule applies to, or ``None``
    for a rule that matches every master.  Rules are priority-ordered;
    the first matching rule decides.
    """

    base: int
    size: int
    source_id: int | None = None
    readable: bool = False
    writable: bool = False

    @property
    def end(self) -> int:
        return self.base + self.size

    def matches(self, source_id: int, addr: int, size: int) -> str:
        """'full', 'partial' or 'none' match of the DMA access."""
        if self.source_id is not None and self.source_id != source_id:
            return "none"
        lo, hi = addr, addr + size
        if hi <= self.base or lo >= self.end:
            return "none"
        if lo >= self.base and hi <= self.end:
            return "full"
        return "partial"

    def permits(self, access: AccessType) -> bool:
        """Whether the rule's permissions allow the access type."""
        if access is AccessType.LOAD:
            return self.readable
        if access is AccessType.STORE:
            return self.writable
        return False  # devices do not fetch


class IopmpUnit:
    """The platform IOPMP: checks every DMA transaction."""

    def __init__(self):
        self._entries: list[IopmpEntry] = []

    def entries(self):
        """A copy of the current rule list, in priority order."""
        return list(self._entries)

    def add_entry(self, entry: IopmpEntry) -> int:
        """Append a rule at the lowest priority; returns its index."""
        self._entries.append(entry)
        return len(self._entries) - 1

    def insert_entry(self, index: int, entry: IopmpEntry) -> None:
        """Insert a rule at ``index`` (higher priority than what follows)."""
        self._entries.insert(index, entry)

    def remove_entry(self, index: int) -> IopmpEntry:
        """Delete and return the rule at ``index``."""
        return self._entries.pop(index)

    def clear(self) -> None:
        """Remove every rule (back to the default-allow reset state)."""
        self._entries.clear()

    def check(self, source_id: int, addr: int, size: int, access: AccessType) -> bool:
        """Whether the DMA access is permitted.

        Default-deny once any rule is programmed (matching the IOPMP
        spec's initial-state recommendation for secure platforms);
        default-allow on a platform with no IOPMP rules at all.
        """
        for entry in self._entries:
            match = entry.matches(source_id, addr, size)
            if match == "none":
                continue
            if match == "partial":
                return False
            return entry.permits(access)
        return not self._entries
