"""RISC-V privilege modes, including hypervisor-extension virtual modes."""

from __future__ import annotations

import enum


class PrivilegeMode(enum.Enum):
    """A RISC-V privilege mode.

    With the hypervisor extension, supervisor mode becomes HS
    (hypervisor-extended supervisor) and two virtual modes are added: VS
    (virtual supervisor, the guest kernel) and VU (virtual user, guest
    applications).  ``value`` encodes ``(privilege_level, virtualized)``
    where level follows the spec encoding (U=0, S=1, M=3).
    """

    U = (0, False)
    HS = (1, False)
    M = (3, False)
    VU = (0, True)
    VS = (1, True)

    @property
    def level(self) -> int:
        """Numeric privilege level (U/VU=0, HS/VS=1, M=3)."""
        return self.value[0]

    @property
    def virtualized(self) -> bool:
        """True for the guest-side modes added by the hypervisor extension."""
        return self.value[1]

    @property
    def is_guest(self) -> bool:
        """Alias for :attr:`virtualized`: the mode executes inside a VM."""
        return self.virtualized

    def __repr__(self):
        return f"PrivilegeMode.{self.name}"
