"""Trap causes and the delegation rules that route them.

Encodings follow the RISC-V privileged spec v1.12 (Table 8.6 / 5.2),
including the hypervisor-extension guest-page-fault and virtual-instruction
causes.  The routing functions implement the architectural delegation
algorithm: a trap taken while executing at privilege <= x lands in M mode
unless delegated via ``medeleg``/``mideleg``, in which case it lands in HS
mode unless further delegated via ``hedeleg``/``hideleg`` (for traps from
virtual modes), in which case it lands in VS mode.
"""

from __future__ import annotations

import enum

from repro.isa.privilege import PrivilegeMode


class AccessType(enum.Enum):
    """The kind of memory access being performed."""

    FETCH = "fetch"
    LOAD = "load"
    STORE = "store"


class ExceptionCause(enum.IntEnum):
    """Synchronous exception cause codes (mcause with interrupt bit clear)."""

    INSTRUCTION_ADDRESS_MISALIGNED = 0
    INSTRUCTION_ACCESS_FAULT = 1
    ILLEGAL_INSTRUCTION = 2
    BREAKPOINT = 3
    LOAD_ADDRESS_MISALIGNED = 4
    LOAD_ACCESS_FAULT = 5
    STORE_ADDRESS_MISALIGNED = 6
    STORE_ACCESS_FAULT = 7
    ECALL_FROM_U = 8
    ECALL_FROM_HS = 9
    ECALL_FROM_VS = 10
    ECALL_FROM_M = 11
    INSTRUCTION_PAGE_FAULT = 12
    LOAD_PAGE_FAULT = 13
    STORE_PAGE_FAULT = 15
    INSTRUCTION_GUEST_PAGE_FAULT = 20
    LOAD_GUEST_PAGE_FAULT = 21
    VIRTUAL_INSTRUCTION = 22
    STORE_GUEST_PAGE_FAULT = 23


class InterruptCause(enum.IntEnum):
    """Interrupt cause codes (mcause with interrupt bit set)."""

    SUPERVISOR_SOFTWARE = 1
    VIRTUAL_SUPERVISOR_SOFTWARE = 2
    MACHINE_SOFTWARE = 3
    SUPERVISOR_TIMER = 5
    VIRTUAL_SUPERVISOR_TIMER = 6
    MACHINE_TIMER = 7
    SUPERVISOR_EXTERNAL = 9
    VIRTUAL_SUPERVISOR_EXTERNAL = 10
    MACHINE_EXTERNAL = 11


class TrapKind(enum.Enum):
    """Whether a cause code is an exception or an interrupt."""

    EXCEPTION = "exception"
    INTERRUPT = "interrupt"


#: Exception causes that can never be delegated below M mode
#: (ECALL_FROM_M architecturally always traps to M).
_NEVER_DELEGATED = frozenset({ExceptionCause.ECALL_FROM_M})

#: Guest-page faults and virtual-instruction exceptions cannot be delegated
#: past HS to VS -- they exist *for* the hypervisor (spec: hedeleg bits for
#: causes 20, 21, 22, 23 are read-only zero).
_NOT_VS_DELEGATABLE = frozenset(
    {
        ExceptionCause.INSTRUCTION_GUEST_PAGE_FAULT,
        ExceptionCause.LOAD_GUEST_PAGE_FAULT,
        ExceptionCause.STORE_GUEST_PAGE_FAULT,
        ExceptionCause.VIRTUAL_INSTRUCTION,
        ExceptionCause.ECALL_FROM_VS,
    }
)


#: Cause tables, built once: these functions run on every faulting guest
#: access, so rebuilding a dict per call was measurable.
_PAGE_FAULT_CAUSE = {
    AccessType.FETCH: ExceptionCause.INSTRUCTION_PAGE_FAULT,
    AccessType.LOAD: ExceptionCause.LOAD_PAGE_FAULT,
    AccessType.STORE: ExceptionCause.STORE_PAGE_FAULT,
}
_GUEST_PAGE_FAULT_CAUSE = {
    AccessType.FETCH: ExceptionCause.INSTRUCTION_GUEST_PAGE_FAULT,
    AccessType.LOAD: ExceptionCause.LOAD_GUEST_PAGE_FAULT,
    AccessType.STORE: ExceptionCause.STORE_GUEST_PAGE_FAULT,
}
_ACCESS_FAULT_CAUSE = {
    AccessType.FETCH: ExceptionCause.INSTRUCTION_ACCESS_FAULT,
    AccessType.LOAD: ExceptionCause.LOAD_ACCESS_FAULT,
    AccessType.STORE: ExceptionCause.STORE_ACCESS_FAULT,
}


def page_fault_for(access: AccessType) -> ExceptionCause:
    """The stage-1 page-fault cause for an access type."""
    return _PAGE_FAULT_CAUSE[access]


def guest_page_fault_for(access: AccessType) -> ExceptionCause:
    """The stage-2 (guest) page-fault cause for an access type."""
    return _GUEST_PAGE_FAULT_CAUSE[access]


def access_fault_for(access: AccessType) -> ExceptionCause:
    """The access-fault cause (PMP denial) for an access type."""
    return _ACCESS_FAULT_CAUSE[access]


def route_exception(
    cause: ExceptionCause,
    from_mode: PrivilegeMode,
    medeleg: frozenset,
    hedeleg: frozenset,
) -> PrivilegeMode:
    """Where an exception raised in ``from_mode`` lands.

    ``medeleg`` / ``hedeleg`` are the sets of delegated
    :class:`ExceptionCause` values (the set-bit view of the CSRs).
    Delegation never routes a trap to a mode less privileged than the one
    it was raised in (spec 3.1.8): e.g. an ECALL from HS delegated in
    medeleg is still handled in HS, not VS.
    """
    if from_mode is PrivilegeMode.M or cause in _NEVER_DELEGATED:
        return PrivilegeMode.M
    if cause not in medeleg:
        return PrivilegeMode.M
    # Delegated past M.  Traps from non-virtual modes stop at HS.
    if not from_mode.virtualized:
        return PrivilegeMode.HS
    if cause in _NOT_VS_DELEGATABLE or cause not in hedeleg:
        return PrivilegeMode.HS
    return PrivilegeMode.VS


#: Interrupt classes for routing (never rebuilt per call).
_MACHINE_LEVEL_IRQS = frozenset(
    {
        InterruptCause.MACHINE_SOFTWARE,
        InterruptCause.MACHINE_TIMER,
        InterruptCause.MACHINE_EXTERNAL,
    }
)
_VS_LEVEL_IRQS = frozenset(
    {
        InterruptCause.VIRTUAL_SUPERVISOR_SOFTWARE,
        InterruptCause.VIRTUAL_SUPERVISOR_TIMER,
        InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL,
    }
)


def route_interrupt(
    cause: InterruptCause,
    from_mode: PrivilegeMode,
    mideleg: frozenset,
    hideleg: frozenset,
) -> PrivilegeMode:
    """Where an interrupt pending while executing in ``from_mode`` lands.

    Machine-level interrupts (MSI/MTI/MEI) are never delegatable; the VS*
    interrupts are delegated to VS via ``hideleg`` once ``mideleg``
    forwards them past M.
    """
    if cause in _MACHINE_LEVEL_IRQS:
        return PrivilegeMode.M
    if cause not in mideleg:
        return PrivilegeMode.M
    if cause in _VS_LEVEL_IRQS and cause in hideleg and from_mode.virtualized:
        return PrivilegeMode.VS
    return PrivilegeMode.HS
