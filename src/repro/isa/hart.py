"""The hart (hardware thread) model.

A hart bundles the per-thread architectural state: current privilege mode,
GPR file, CSR file, and the PMP unit.  Each hart also carries the machine's
cycle ledger reference so that components charging cycles do so against the
hart that performs the action.
"""

from __future__ import annotations

from repro.cycles import Category, CycleLedger
from repro.isa.csr import CsrFile
from repro.isa.pmp import PmpUnit
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause, InterruptCause

#: ABI names of the 31 writable general-purpose registers.
GPR_NAMES = (
    "ra sp gp tp t0 t1 t2 s0 s1 "
    "a0 a1 a2 a3 a4 a5 a6 a7 "
    "s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 "
    "t3 t4 t5 t6"
).split()


#: Memoized set-views of delegation CSR values.  Trap dispatch reads the
#: medeleg/hedeleg views on every guest fault, and the CSRs only ever
#: hold a handful of distinct values (the delegation profiles), so the
#: frozensets are built once per (enum, value) pair and shared -- they
#: are immutable, which makes the cache safe.
_BITS_CACHE: dict = {}


def _bits_to_set(value: int, enum_cls):
    key = (enum_cls, value)
    members = _BITS_CACHE.get(key)
    if members is None:
        members = frozenset(
            member for member in enum_cls if value >> member.value & 1
        )
        _BITS_CACHE[key] = members
    return members


#: Memoized bitmasks of delegation cause-sets (the setter direction of
#: the same round trip; keyed by the frozenset itself).
_MASK_CACHE: dict = {}


def _set_to_bits(members) -> int:
    if isinstance(members, frozenset):
        value = _MASK_CACHE.get(members)
        if value is None:
            value = 0
            for member in members:
                value |= 1 << member.value
            _MASK_CACHE[members] = value
        return value
    value = 0
    for member in members:
        value |= 1 << member.value
    return value


class Hart:
    """One hardware thread of the simulated machine."""

    def __init__(self, hart_id: int, ledger: CycleLedger | None = None):
        self.hart_id = hart_id
        self.mode = PrivilegeMode.M  # harts reset into M mode
        self.csrs = CsrFile(hart_id)
        self.pmp = PmpUnit()
        self.ledger = ledger if ledger is not None else CycleLedger()
        self.gprs = {name: 0 for name in GPR_NAMES}
        #: Interrupts currently pending at machine level.
        self.pending_interrupts: set[InterruptCause] = set()

    # -- GPR access ---------------------------------------------------------

    def read_gpr(self, name: str) -> int:
        """Read a GPR by ABI name (x0/zero reads as 0)."""
        if name == "zero" or name == "x0":
            return 0
        return self.gprs[name]

    def write_gpr(self, name: str, value: int) -> None:
        """Write a GPR by ABI name (writes to x0/zero are ignored)."""
        if name == "zero" or name == "x0":
            return
        if name not in self.gprs:
            raise KeyError(f"unknown GPR {name!r}")
        self.gprs[name] = value & (1 << 64) - 1

    def gpr_snapshot(self) -> dict:
        """A copy of the full GPR file (vCPU state save)."""
        return dict(self.gprs)

    def load_gprs(self, values: dict) -> None:
        """Bulk-restore GPRs from a snapshot."""
        for name, value in values.items():
            self.write_gpr(name, value)

    # -- delegation views -----------------------------------------------------

    @property
    def medeleg(self) -> frozenset:
        return _bits_to_set(self.csrs.read_raw("medeleg"), ExceptionCause)

    @medeleg.setter
    def medeleg(self, causes) -> None:
        self.csrs.write_raw("medeleg", _set_to_bits(causes))

    @property
    def mideleg(self) -> frozenset:
        return _bits_to_set(self.csrs.read_raw("mideleg"), InterruptCause)

    @mideleg.setter
    def mideleg(self, causes) -> None:
        self.csrs.write_raw("mideleg", _set_to_bits(causes))

    @property
    def hedeleg(self) -> frozenset:
        return _bits_to_set(self.csrs.read_raw("hedeleg"), ExceptionCause)

    @hedeleg.setter
    def hedeleg(self, causes) -> None:
        self.csrs.write_raw("hedeleg", _set_to_bits(causes))

    @property
    def hideleg(self) -> frozenset:
        return _bits_to_set(self.csrs.read_raw("hideleg"), InterruptCause)

    @hideleg.setter
    def hideleg(self, causes) -> None:
        self.csrs.write_raw("hideleg", _set_to_bits(causes))

    # -- cycle charging shortcuts ----------------------------------------------

    def charge(self, category: Category, cycles) -> None:
        """Charge cycles to this hart's ledger."""
        self.ledger.charge(category, cycles)

    def __repr__(self):
        return f"<Hart {self.hart_id} mode={self.mode.name}>"
