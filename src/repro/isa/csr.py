"""Control and status register file.

Models the CSRs the ZION stack reads and writes, with per-mode access
control (a CSR whose required privilege exceeds the hart's current mode
raises an illegal-instruction trap, as hardware would).  Values are plain
64-bit integers; named accessors exist for the registers with structured
meaning to the rest of the stack.
"""

from __future__ import annotations

from repro.errors import TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause

#: CSR name -> minimum privilege level required to access it.
#: (Simplified: we key on level, and virtual modes accessing HS-level CSRs
#: raise virtual-instruction exceptions per the hypervisor spec.)
CSR_PRIVILEGE = {
    # Machine level
    "mstatus": 3,
    "mepc": 3,
    "mcause": 3,
    "mtval": 3,
    "mtval2": 3,
    "mtinst": 3,
    "medeleg": 3,
    "mideleg": 3,
    "mie": 3,
    "mip": 3,
    "mtvec": 3,
    "mscratch": 3,
    "mhartid": 3,
    "mcycle": 3,
    # Hypervisor / HS level
    "hstatus": 1,
    "hedeleg": 1,
    "hideleg": 1,
    "hgatp": 1,
    "htval": 1,
    "htinst": 1,
    "hvip": 1,
    "hie": 1,
    "hip": 1,
    "hcounteren": 1,
    # Supervisor level (backed by vs* when V=1; we keep both banks)
    "sstatus": 1,
    "sepc": 1,
    "scause": 1,
    "stval": 1,
    "stvec": 1,
    "sscratch": 1,
    "satp": 1,
    "sie": 1,
    "sip": 1,
    # Virtual-supervisor bank (accessible from HS/M for guest management)
    "vsstatus": 1,
    "vsepc": 1,
    "vscause": 1,
    "vstval": 1,
    "vstvec": 1,
    "vsscratch": 1,
    "vsatp": 1,
    "vsie": 1,
    "vsip": 1,
}

#: CSRs that only exist at HS level or above; access from a virtual mode
#: raises a virtual-instruction exception rather than illegal-instruction.
_HS_ONLY = frozenset(
    {
        "hstatus",
        "hedeleg",
        "hideleg",
        "hgatp",
        "htval",
        "htinst",
        "hvip",
        "hie",
        "hip",
        "hcounteren",
        "vsstatus",
        "vsepc",
        "vscause",
        "vstval",
        "vstvec",
        "vsscratch",
        "vsatp",
        "vsie",
        "vsip",
    }
)

#: CSRs that, when accessed from VS mode under the name ``s*``, transparently
#: redirect to the ``vs*`` bank (hypervisor-extension register aliasing).
_S_TO_VS_ALIAS = {
    "sstatus": "vsstatus",
    "sepc": "vsepc",
    "scause": "vscause",
    "stval": "vstval",
    "stvec": "vstvec",
    "sscratch": "vsscratch",
    "satp": "vsatp",
    "sie": "vsie",
    "sip": "vsip",
}

_MASK64 = (1 << 64) - 1


class CsrFile:
    """The CSR state of one hart.

    Raw access (:meth:`read`/:meth:`write`) enforces privilege; components
    that model hardware behaviour (the trap unit) use
    :meth:`read_raw`/:meth:`write_raw` which bypass the checks the same way
    hardware-internal updates do.
    """

    def __init__(self, hart_id: int = 0):
        self._values = {name: 0 for name in CSR_PRIVILEGE}
        self._values["mhartid"] = hart_id

    # -- raw (hardware-internal) access ----------------------------------

    def read_raw(self, name: str) -> int:
        """Hardware-internal CSR read (no privilege check)."""
        if name not in self._values:
            raise KeyError(f"unknown CSR {name!r}")
        return self._values[name]

    def write_raw(self, name: str, value: int) -> None:
        """Hardware-internal CSR write (no privilege check), masked to 64 bits."""
        if name not in self._values:
            raise KeyError(f"unknown CSR {name!r}")
        self._values[name] = value & _MASK64

    # -- privileged (software) access -------------------------------------

    def _resolve(self, name: str, mode: PrivilegeMode) -> str:
        if name not in self._values:
            raise KeyError(f"unknown CSR {name!r}")
        if mode.virtualized:
            if name in _HS_ONLY:
                raise TrapRaised(
                    ExceptionCause.VIRTUAL_INSTRUCTION,
                    message=f"{mode.name} accessed HS-level CSR {name}",
                )
            if name.startswith("m"):
                raise TrapRaised(
                    ExceptionCause.ILLEGAL_INSTRUCTION,
                    message=f"{mode.name} accessed M-level CSR {name}",
                )
            if mode is PrivilegeMode.VS and name in _S_TO_VS_ALIAS:
                return _S_TO_VS_ALIAS[name]
        if CSR_PRIVILEGE[name] > mode.level:
            raise TrapRaised(
                ExceptionCause.ILLEGAL_INSTRUCTION,
                message=f"{mode.name} accessed CSR {name}",
            )
        return name

    def read(self, name: str, mode: PrivilegeMode) -> int:
        """Software CSR read from ``mode``; traps on privilege violation."""
        return self._values[self._resolve(name, mode)]

    def write(self, name: str, value: int, mode: PrivilegeMode) -> None:
        """Software CSR write from ``mode``; traps on privilege violation."""
        self._values[self._resolve(name, mode)] = value & _MASK64

    # -- structured views ---------------------------------------------------

    def snapshot(self, names) -> dict:
        """Raw values of the listed CSRs (for vCPU state save)."""
        return {name: self.read_raw(name) for name in names}

    def load_snapshot(self, values: dict) -> None:
        """Raw-restore a set of CSRs (for vCPU state restore)."""
        for name, value in values.items():
            self.write_raw(name, value)
