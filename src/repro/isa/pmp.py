"""Physical Memory Protection (PMP).

Faithful functional model of the PMP unit per the privileged spec: 16
entries, each an address-matching rule (OFF / TOR / NA4 / NAPOT) with R/W/X
permissions and a lock bit.  Matching priority is the entry index (lowest
wins); an access that only partially matches an entry fails; if no entry
matches, M-mode accesses succeed and lower-privilege accesses fail (when at
least one entry is implemented).

ZION uses PMP to carve the secure memory pool out of normal DRAM: the SM
flips the pool entry's permissions on every world switch so that Normal
mode (the hypervisor and everything below it) cannot touch CVM memory.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType

PMP_ENTRY_COUNT = 16


class PmpAddressMode(enum.Enum):
    """The A field of pmpcfg: how the entry's address range is encoded."""

    OFF = 0
    TOR = 1  # top of range: [previous entry's address, this address)
    NA4 = 2  # naturally aligned 4-byte region
    NAPOT = 3  # naturally aligned power-of-two region


@dataclasses.dataclass(frozen=True)
class PmpEntry:
    """One PMP entry: an address rule plus permissions.

    For convenience the simulator stores the region explicitly as
    ``(base, size)`` rather than the raw pmpaddr encoding; ``base`` and
    ``size`` must reflect a region the chosen mode could encode (NAPOT
    regions must be naturally-aligned powers of two).
    """

    mode: PmpAddressMode = PmpAddressMode.OFF
    base: int = 0
    size: int = 0
    readable: bool = False
    writable: bool = False
    executable: bool = False
    locked: bool = False

    def __post_init__(self):
        if self.mode is PmpAddressMode.NA4 and self.size != 4:
            raise ValueError("NA4 entries cover exactly 4 bytes")
        if self.mode is PmpAddressMode.NAPOT:
            if self.size < 8 or self.size & (self.size - 1):
                raise ValueError("NAPOT size must be a power of two >= 8")
            if self.base % self.size:
                raise ValueError("NAPOT region must be naturally aligned")

    @property
    def end(self) -> int:
        return self.base + self.size

    def matches(self, addr: int, size: int) -> str:
        """'full', 'partial', or 'none' match of [addr, addr+size)."""
        if self.mode is PmpAddressMode.OFF or self.size == 0:
            return "none"
        lo, hi = addr, addr + size
        if hi <= self.base or lo >= self.end:
            return "none"
        if lo >= self.base and hi <= self.end:
            return "full"
        return "partial"

    def permits(self, access: AccessType) -> bool:
        """Whether the entry's permissions allow the access type."""
        if access is AccessType.LOAD:
            return self.readable
        if access is AccessType.STORE:
            return self.writable
        return self.executable


class PmpUnit:
    """The per-hart array of PMP entries plus the checking logic."""

    def __init__(self, entry_count: int = PMP_ENTRY_COUNT):
        self.entry_count = entry_count
        self._entries = [PmpEntry() for _ in range(entry_count)]
        self._rebuild()

    def _rebuild(self) -> None:
        # Flat tuples of the matchable entries in priority order: check()
        # runs once per guest access, and iterating 16 PmpEntry objects
        # (enum compare + method calls each) dominated it.  OFF/zero-size
        # entries can never match, so they drop out of the scan entirely;
        # the checking semantics are unchanged.
        self._active = [
            (e.base, e.base + e.size, e.locked, e.readable, e.writable, e.executable)
            for e in self._entries
            if e.mode is not PmpAddressMode.OFF and e.size != 0
        ]
        self._any_implemented = any(
            e.mode is not PmpAddressMode.OFF for e in self._entries
        )

    def __getitem__(self, index: int) -> PmpEntry:
        return self._entries[index]

    def set_entry(self, index: int, entry: PmpEntry) -> None:
        """Program entry ``index``; locked entries refuse modification."""
        if self._entries[index].locked:
            raise PermissionError(f"PMP entry {index} is locked")
        self._entries[index] = entry
        self._rebuild()

    def entries(self):
        """A copy of the 16-entry array."""
        return list(self._entries)

    def any_implemented(self) -> bool:
        """True when at least one entry is programmed (spec default-deny)."""
        return self._any_implemented

    def check(self, addr: int, size: int, access: AccessType, mode: PrivilegeMode) -> bool:
        """Whether the access is permitted under the current configuration.

        ``mode`` is the *effective* privilege of the access; virtual modes
        (VS/VU) are below M and subject to PMP exactly like HS/U.
        """
        hi = addr + size
        is_m = mode is PrivilegeMode.M
        for base, end, locked, readable, writable, executable in self._active:
            if hi <= base or addr >= end:
                continue
            if addr < base or hi > end:
                return False  # partial match always fails
            if is_m and not locked:
                return True
            if access is AccessType.LOAD:
                return readable
            if access is AccessType.STORE:
                return writable
            return executable
        if is_m:
            return True
        return not self._any_implemented
