"""The simulated machine: platform wiring plus the guest execution engine.

A :class:`Machine` assembles the paper's platform (4 harts, 1 GB DRAM,
PMP/IOPMP, the SM in firmware, a KVM-like host) and executes *guest
workloads*: plain Python callables driving a :class:`GuestContext` whose
methods perform architecturally-faithful operations -- every load/store is
translated through real page tables with a TLB, every fault is routed by
the live delegation CSRs, every CVM exit runs the SM's world-switch code,
and every cycle lands in the machine's ledger.

Timer interrupts fire on a fixed cycle period (the host scheduler tick);
for a confidential VM each tick is a full short-path world switch through
the SM, for a normal VM a conventional KVM exit -- which is exactly the
asymmetry the paper's macrobenchmarks measure.
"""

from __future__ import annotations

import dataclasses

from repro.cycles import Category, CycleCosts, CycleLedger, DEFAULT_COSTS
from repro.errors import (
    ConfigurationError,
    ReproError,
    SecurityViolation,
    TrapRaised,
)
from repro.hyp.hypervisor import Hypervisor
from repro.hyp.vm import NormalVm, VmKind
from repro.isa.hart import Hart
from repro.isa.iopmp import IopmpUnit
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import (
    AccessType,
    ExceptionCause,
    guest_page_fault_for,
    route_exception,
)
from repro.mem.frames import FrameAllocator
from repro.mem.physmem import PAGE_SIZE, MemoryBus, PhysicalMemory
from repro.mem.tlb import Tlb
from repro.mem.tracecache import SeqTrace, TraceCache
from repro.mem.translation import AddressTranslator
from repro.sm.cvm import CvmState, GpaLayout
from repro.sm.monitor import SecureMonitor
from repro.sm.pmp_plan import PmpController

#: GPR index the synthetic MMIO instructions use (a0).
_MMIO_GPR_INDEX = 10

#: Yielded by a concurrent workload to park its session until an
#: inter-CVM channel doorbell targets its CVM (see :meth:`Machine.run_concurrent`).
WAIT_DOORBELL = object()

#: Returned by :meth:`Machine._replay_seq` when a recorded trace failed its
#: structural validity check and the sequence must re-execute live.
_REPLAY_REJECT = object()


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Platform configuration (defaults mirror the paper's Genesys2 setup)."""

    dram_base: int = 0x8000_0000
    dram_size: int = 1 << 30  # 1 GB
    firmware_size: int = 2 << 20  # OpenSBI + SM + metadata seed
    hart_count: int = 4
    clock_hz: int = 100_000_000  # 100 MHz Rocket cores
    #: Host scheduler tick period in cycles (100 Hz at 100 MHz).
    timer_tick_cycles: int = 1_000_000
    #: Secure pool registered at boot.
    initial_pool_bytes: int = 16 << 20
    tlb_capacity: int = 512
    #: ZION knobs (the ablation baselines flip these).
    use_shared_vcpu: bool = True
    long_path: bool = False
    #: Secure-memory block size (paper default 256 KB).
    secure_block_size: int | None = None
    #: Ablation switch: stage-1 per-vCPU page caches (paper IV-D).
    use_page_cache: bool = True
    #: Wall-clock switch: record/replay hot guest-access sequences
    #: (:mod:`repro.mem.tracecache`).  Cycle-exact either way; exposed so
    #: the equivalence tests can diff cached against uncached runs.
    trace_cache: bool = True
    costs: CycleCosts = DEFAULT_COSTS


class GuestSession:
    """One VM being executed (normal or confidential)."""

    def __init__(self, machine, kind: VmKind, *, cvm=None, handle=None, normal_vm=None):
        self.machine = machine
        self.kind = kind
        self.cvm = cvm
        self.handle = handle
        self.normal_vm = normal_vm
        self.vcpu_id = 0
        #: The hart this session executes on (settable before running;
        #: each hart has its own PMP state and delegation CSRs).
        self.hart = machine.harts[0]
        #: Guest stage-1 root (a GPA) once the guest kernel enables paging;
        #: ``None`` means vsatp is Bare (GVA == GPA), the boot state.
        self.vsatp_root = None
        #: VS-level interrupt bits pending delivery to the guest kernel.
        self.pending_irq_bits = 0
        #: Host-side work poller: ``callable(machine, session) -> bool``;
        #: invoked when the guest WFIs.  Returns True if it produced work.
        self.host_work = None
        self.active = False

    @property
    def vmid(self) -> int:
        return self.cvm.vmid if self.kind is VmKind.CONFIDENTIAL else self.normal_vm.vmid

    @property
    def layout(self) -> GpaLayout:
        return self.cvm.layout if self.kind is VmKind.CONFIDENTIAL else self.normal_vm.layout

    @property
    def hgatp_root(self) -> int:
        if self.kind is VmKind.CONFIDENTIAL:
            return self.cvm.hgatp_root
        return self.normal_vm.hgatp_root


class Machine:
    """The simulated platform."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        cfg = self.config
        self.ledger = CycleLedger()
        self.costs = cfg.costs
        self.dram = PhysicalMemory(cfg.dram_base, cfg.dram_size)
        self.iopmp = IopmpUnit()
        self.bus = MemoryBus(self.dram, self.iopmp)
        self.harts = [Hart(i, self.ledger) for i in range(cfg.hart_count)]
        self.translator = AddressTranslator(
            self.bus, self.costs, self.ledger, Tlb(cfg.tlb_capacity)
        )
        self.pmp_controller = PmpController(
            self.harts,
            self.iopmp,
            firmware_base=cfg.dram_base,
            firmware_size=cfg.firmware_size,
            dram_base=cfg.dram_base,
            dram_size=cfg.dram_size,
            ledger=self.ledger,
            costs=self.costs,
        )
        self.monitor = SecureMonitor(
            self.bus,
            self.translator,
            self.pmp_controller,
            self.ledger,
            self.costs,
            use_shared_vcpu=cfg.use_shared_vcpu,
            long_path=cfg.long_path,
            block_size=cfg.secure_block_size,
            use_page_cache=cfg.use_page_cache,
        )
        host_base = cfg.dram_base + cfg.firmware_size
        self.host_allocator = FrameAllocator(host_base, cfg.dram_size - cfg.firmware_size)
        self.hypervisor = Hypervisor(
            self.bus, self.translator, self.host_allocator, self.ledger, self.costs
        )
        self.monitor.connect_hypervisor(self.hypervisor)
        self.hypervisor.hart = self.harts[0]
        if cfg.initial_pool_bytes:
            self.hypervisor.expand_chunk = cfg.initial_pool_bytes
            self.hypervisor.on_pool_expand_request(self.monitor)
            self.hypervisor.expand_chunk = 8 << 20
            # Boot-time registration is not an on-demand expansion.
            self.hypervisor.pool_expansions = 0
        # Boot-time delegation: the SM (like OpenSBI) configures the
        # conventional hosted profile; world switches swap it thereafter.
        from repro.sm import delegation

        for hart in self.harts:
            delegation.NORMAL_MODE.apply(hart)
        from repro.isa.clint import Clint
        from repro.isa.plic import Plic

        #: Core-local interruptor: mtime tracks the cycle ledger; the SM
        #: arms each hart's scheduler tick here.
        self.clint = Clint(cfg.hart_count, lambda: self.ledger.total)
        for hart_id in range(cfg.hart_count):
            self.clint.arm_after(hart_id, cfg.timer_tick_cycles)
        #: Platform interrupt controller (device IRQs -> host claims).
        self.plic = Plic()
        self.hypervisor.plic = self.plic
        self.monitor.clint = self.clint
        #: The hart guest sessions execute on.
        self.hart = self.harts[0]
        #: Currently-executing session (guest ECALL attribution).
        self._active_session: GuestSession | None = None
        from repro.sm.abi import EcallInterface

        self.ecall_interface = EcallInterface(
            self.monitor, running_cvm_of=self._running_cvm_of
        )
        # Batched guest-access engine state.  The engine fuses same-category
        # charges (n TLB hits as one charge of n*tlb_hit), which is only
        # bit-identical to per-access charging when the per-access costs are
        # integral (charge() floors); non-integral cost ablations fall back
        # to the per-access loops wholesale.
        costs_integral = (
            self.costs.tlb_hit == int(self.costs.tlb_hit)
            and self.costs.page_walk_level == int(self.costs.page_walk_level)
        )
        self._trace_cache = TraceCache() if cfg.trace_cache and costs_integral else None
        self._charge_seq_compute = self.ledger.charger(Category.COMPUTE, 1)

    def _running_cvm_of(self, hart):
        """ABI helper: which CVM/vCPU is executing on this hart, if any."""
        session = self._active_session
        if session is None or session.kind is not VmKind.CONFIDENTIAL:
            return None
        return session.cvm, session.vcpu_id

    # ------------------------------------------------------------------
    # VM launch
    # ------------------------------------------------------------------

    def launch_confidential_vm(
        self,
        image: bytes = b"",
        layout: GpaLayout | None = None,
        vcpu_count: int = 1,
        shared_window: int | None = None,
    ) -> GuestSession:
        """Create + finalize a CVM via the host's ECALL sequence."""
        handle = self.hypervisor.host_create_cvm(
            self.monitor,
            self.hart,
            layout=layout,
            vcpu_count=vcpu_count,
            image=image,
            shared_window=shared_window,
        )
        cvm = self.monitor.cvms[handle.cvm_id]
        return GuestSession(self, VmKind.CONFIDENTIAL, cvm=cvm, handle=handle)

    def launch_normal_vm(self, name: str = "vm", layout: GpaLayout | None = None) -> GuestSession:
        """Create a conventional KVM guest managed by the hypervisor."""
        vm = self.hypervisor.create_normal_vm(name, self.hart, layout)
        return GuestSession(self, VmKind.NORMAL, normal_vm=vm)

    # ------------------------------------------------------------------
    # CVM migration (extension; see repro.sm.migration)
    # ------------------------------------------------------------------

    def export_confidential_vm(self, session: GuestSession, key: bytes) -> bytes:
        """Seal a session's CVM into a migration blob (destroys it here).

        The CVM must not be running; the SM suspends, serialises under
        ``key``, scrubs, and hands the opaque blob to the host.
        """
        if session.kind is not VmKind.CONFIDENTIAL:
            raise ConfigurationError("only confidential VMs migrate through the SM")
        from repro.sm.migration import export_cvm

        cvm_id = session.cvm.cvm_id
        if session.cvm.state is not CvmState.SUSPENDED:
            self.monitor.ecall_suspend(cvm_id)
        return export_cvm(self.monitor, cvm_id, key)

    def import_confidential_vm(self, blob: bytes, key: bytes) -> GuestSession:
        """Re-instantiate a migrated CVM on this machine.

        Verifies + decrypts through the SM, then the local hypervisor
        provisions shared vCPU pages and the shared window.  Returns a
        runnable session with all guest state intact.
        """
        from repro.sm.migration import import_cvm

        cvm_id = import_cvm(self.monitor, blob, key)
        handle = self.hypervisor.host_adopt_cvm(self.monitor, self.hart, cvm_id)
        cvm = self.monitor.cvms[cvm_id]
        return GuestSession(self, VmKind.CONFIDENTIAL, cvm=cvm, handle=handle)

    # ------------------------------------------------------------------
    # Virtio device wiring
    # ------------------------------------------------------------------

    def attach_virtio_block(self, session: GuestSession, mmio_base: int = 0x1000_1000, source_id: int = 1,
                            event_idx: bool = True):
        """Create a virtio-blk device for the session and wire its DMA path."""
        from repro.hyp.virtio import VirtioBlockDevice

        device = VirtioBlockDevice(mmio_base, source_id, self.bus, self.ledger, self.costs,
                                   event_idx=event_idx)
        self._wire_device(session, device)
        session.virtio_blk = device
        return device

    def attach_virtio_net(self, session: GuestSession, mmio_base: int = 0x1000_2000, source_id: int = 2,
                          event_idx: bool = True):
        """Create a virtio-net device for the session and wire its DMA path."""
        from repro.hyp.virtio import VirtioNetDevice

        device = VirtioNetDevice(mmio_base, source_id, self.bus, self.ledger, self.costs,
                                 event_idx=event_idx)
        self._wire_device(session, device)
        session.virtio_net = device
        return device

    def attach_virtio_rng(self, session: GuestSession, mmio_base: int = 0x1000_3000, source_id: int = 3):
        """Create a virtio-rng device for the session and wire its DMA path."""
        from repro.hyp.virtio import VirtioRngDevice

        device = VirtioRngDevice(mmio_base, source_id, self.bus, self.ledger, self.costs)
        self._wire_device(session, device)
        session.virtio_rng = device
        return device

    def _wire_device(self, session: GuestSession, device) -> None:
        self.hypervisor.devices.add(device)
        source = device.source_id
        self.plic.set_priority(source, 1)
        self.plic.enable(0, source)
        self.hypervisor.plic_bindings[source] = device
        device.irq_sink = lambda _dev: self.plic.raise_irq(source)
        if session.kind is VmKind.CONFIDENTIAL:
            handle = session.handle
            device.dma_translate = lambda gpa: self.hypervisor.shared_gpa_to_hpa(handle, gpa)
        else:
            vm = session.normal_vm

            def translate(gpa, _vm=vm):
                pa, _flags = self.translator.gpa_to_pa(_vm.hgatp_root, gpa, AccessType.LOAD)
                return pa

            device.dma_translate = translate

    def swiotlb_window(self, session: GuestSession) -> tuple:
        """(base_gpa, size) where the session's SWIOTLB pool should live.

        Confidential VMs place it in the shared region (after a 64 KB
        reservation for virtqueue rings); normal VMs carve it from the top
        of their own DRAM -- SWIOTLB is enabled on both, per the paper's
        experimental setup.
        """
        layout = session.layout
        if session.kind is VmKind.CONFIDENTIAL:
            return layout.shared_base + 0x10000, 2 << 20
        return layout.dram_base + layout.dram_size - (2 << 20) - 0x10000, 2 << 20

    # ------------------------------------------------------------------
    # Workload execution
    # ------------------------------------------------------------------

    def run(self, session: GuestSession, workload) -> dict:
        """Run ``workload(ctx)`` to completion inside the session's VM.

        Returns a result dict with the cycle span and category breakdown
        of the guest's execution (world switches included).
        """
        with self.ledger.span() as span:
            self._enter_guest(session)
            ctx = GuestContext(self, session)
            try:
                result = workload(ctx)
            finally:
                self._leave_guest(session)
        return {
            "cycles": span.cycles,
            "breakdown": span.breakdown,
            "workload_result": result,
        }

    def run_concurrent(self, pairs, on_error: str = "raise",
                       wake_priority: bool = False) -> dict:
        """Interleave several VMs' workloads on the hart, round-robin.

        ``pairs`` is a list of ``(session, generator_workload)`` where each
        workload is a *generator function* taking a :class:`GuestContext`
        and yielding at its preemption points.  Every rotation performs
        the full architectural switch sequence: the outgoing VM exits (a
        CVM through the SM's short path, a normal VM through KVM), the
        hypervisor's scheduler runs, and the incoming VM enters.

        A workload may yield :data:`WAIT_DOORBELL` to park itself until an
        inter-CVM channel doorbell targets its CVM (the hypervisor's
        :meth:`on_channel_doorbell` wakes it); if every remaining workload
        is parked, all are woken -- the single-hart executor's progress
        backstop against lost doorbells.

        ``on_error`` selects what happens when a session raises a typed
        :class:`~repro.errors.ReproError` (an architectural refusal such
        as ``SecurityViolation`` or ``ChannelCorrupt``): ``"raise"`` (the
        default) propagates it, aborting the whole run; ``"contain"``
        records the exception object as that session's result, drops the
        session from the rotation, and keeps the other VMs running --
        the fault-injection campaigns run in this mode, where a typed
        error is precisely a *contained* fault.

        ``wake_priority`` selects the doorbell wake policy: ``False``
        (default, the recorded-golden behaviour) returns a woken session
        to the rotation *tail*; ``True`` puts it at the *head*, so the
        session a doorbell targets runs on the next dispatch -- the
        latency-oriented policy the sharded redis cluster uses for its
        router<->shard hops (see docs/DATA_PLANE.md).

        Returns ``{session: workload_return_value}`` plus the total cycle
        span under the key ``"cycles"`` and the scheduler's park/resume
        accounting under ``"sched"``.
        """
        from repro.hyp.scheduler import RoundRobinScheduler

        scheduler = RoundRobinScheduler()
        state = {}
        wake_keys: dict[int, int] = {}  # cvm_id -> session key
        for session, workload in pairs:
            ctx = GuestContext(self, session)
            state[id(session)] = (session, workload(ctx))
            scheduler.add(id(session))
            if session.kind is VmKind.CONFIDENTIAL:
                wake_keys[session.cvm.cvm_id] = id(session)

        def wake(cvm_id: int) -> None:
            key = wake_keys.get(cvm_id)
            if key is not None:
                scheduler.wake(key, front=wake_priority)

        previous_wake = self.hypervisor.scheduler_wake
        self.hypervisor.scheduler_wake = wake
        results = {}
        try:
            with self.ledger.span() as span:
                while len(scheduler) or scheduler.blocked_count:
                    key = scheduler.next()
                    if key is None:
                        scheduler.wake_all()
                        continue
                    session, generator = state[key]
                    yielded = None
                    try:
                        self._enter_guest(session)
                        try:
                            yielded = next(generator)
                        except StopIteration as stop:
                            results[session] = stop.value
                            scheduler.remove(key)
                        finally:
                            self._leave_guest(session)
                    except ReproError as error:
                        if on_error != "contain":
                            raise
                        # Typed architectural refusal: the session is dead
                        # but the fault is contained -- record it, drop the
                        # session, keep every other VM running.
                        results[session] = error
                        scheduler.remove(key)
                        session.active = False
                        if self._active_session is session:
                            self._active_session = None
                    self.hypervisor.sched_tick()
                    if yielded is WAIT_DOORBELL:
                        scheduler.block(key)
        finally:
            self.hypervisor.scheduler_wake = previous_wake
        results["cycles"] = span.cycles
        results["sched"] = scheduler.stats()
        return results

    def _enter_guest(self, session: GuestSession) -> None:
        if session.active:
            raise ConfigurationError("session is already active")
        if session.kind is VmKind.CONFIDENTIAL:
            session.cvm.require_state(CvmState.FINALIZED, CvmState.RUNNING)
            vcpu = session.cvm.vcpu(session.vcpu_id)
            self.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
            session.cvm.state = CvmState.RUNNING
        else:
            self.hypervisor.normal_vm_enter(session.hart)
        session.active = True
        self._active_session = session

    def _leave_guest(self, session: GuestSession) -> None:
        if not session.active:
            return
        if session.kind is VmKind.CONFIDENTIAL:
            vcpu = session.cvm.vcpu(session.vcpu_id)
            self.monitor.world_switch.exit_to_normal(
                session.hart, session.cvm, vcpu, {"kind": "halt", "cause": 0}
            )
            vcpu.exit_context = None
            session.cvm.state = CvmState.FINALIZED
        else:
            self.hypervisor.normal_vm_exit(session.hart)
        session.active = False
        self._active_session = None

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------

    def check_timer(self, session: GuestSession) -> None:
        """Fire the host scheduler tick when this hart's MTIP asserts."""
        hart_id = session.hart.hart_id
        # Inline timer_pending: mtime is the ledger total (the CLINT's time
        # source) and totals never approach the 64-bit wrap, so the idle
        # case -- checked once per guest access -- is a single compare.
        if self.ledger._total < self.clint._mtimecmp[hart_id]:
            return
        if not self.clint.timer_pending(hart_id):
            return
        self.clint.arm_after(hart_id, self.config.timer_tick_cycles)
        if session.kind is VmKind.CONFIDENTIAL:
            vcpu = session.cvm.vcpu(session.vcpu_id)
            self.monitor.world_switch.exit_to_normal(
                session.hart, session.cvm, vcpu, {"kind": "timer", "cause": 7}
            )
            self.hypervisor.sched_tick()
            self.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
            self._collect_injected_irqs(session)
        else:
            self.hypervisor.normal_vm_exit(session.hart)
            self.hypervisor.sched_tick()
            self.hypervisor.normal_vm_enter(session.hart)

    # ------------------------------------------------------------------
    # Guest memory access (the heart of the engine)
    # ------------------------------------------------------------------

    def guest_access(self, session: GuestSession, gva: int, access: AccessType, size: int = 8):
        """Translate-and-perform one guest access, handling faults.

        Returns ``(pa, 'memory')`` when the access hit RAM, or
        ``(value, 'mmio')`` when it was emulated as MMIO.
        """
        self.check_timer(session)
        for _attempt in range(8):
            try:
                result = self.translator.translate(
                    session.hart,
                    session.vmid,
                    gva,
                    access,
                    session.hgatp_root,
                    vsatp_root=session.vsatp_root,
                )
            except TrapRaised as trap:
                outcome = self._dispatch_trap(session, trap, access, gva)
                if outcome is not None:
                    return outcome, "mmio"
                continue
            self._check_shared_leaf(session, result)
            return result.pa, "memory"
        raise ConfigurationError(
            f"guest access at {gva:#x} did not make progress after 8 faults"
        )

    def _check_shared_leaf(self, session: GuestSession, result) -> None:
        """Split-table backstop: shared-region leaves must target normal memory.

        A malicious hypervisor controls the shared subtree; if it aliases a
        shared GPA onto a secure frame, the SM's walk-time validation
        refuses the access (modelled here; see DESIGN.md section 6).
        """
        if session.kind is not VmKind.CONFIDENTIAL:
            return
        if not session.layout.in_shared(result.gpa):
            return
        if not self.monitor.split.shared_leaf_is_safe(result.pa):
            raise SecurityViolation(
                f"shared GPA {result.gpa:#x} resolves into the secure pool "
                f"(PA {result.pa:#x}); hypervisor-controlled alias refused"
            )

    # ------------------------------------------------------------------
    # Batched guest-access engine (load_seq / store_seq / touch_seq)
    # ------------------------------------------------------------------

    def run_seq(self, session: GuestSession, op: str, gva0: int, step: int,
                count: int, size: int, values, gvas):
        """Execute one access sequence: replay its trace, or run + record.

        ``op`` is ``"L"``/``"S"``/``"T"`` (load_seq / store_seq /
        touch_seq).  Strided sequences address ``gva0 + i*step``; touch
        sequences carry their literal ``gvas`` tuple.  Cycle-exact against
        the per-access loops by construction (see
        :mod:`repro.mem.tracecache` for the validity argument).
        """
        if count <= 0:
            return [] if op == "L" else None
        key = (
            op,
            session.vmid,
            session.hgatp_root,
            gvas if gvas is not None else (gva0, step, count),
            size,
        )
        trace = self._trace_cache.get(key)
        if trace is not None and trace.token == (
            self.monitor.split.map_generation,
            self.hypervisor.map_generation,
        ):
            result = self._replay_seq(session, op, trace, gva0, step, count,
                                      size, values, gvas)
            if result is not _REPLAY_REJECT:
                return result
        return self._engine_seq(session, op, gva0, step, count, size,
                                values, gvas, key)

    def _access_one(self, session: GuestSession, gva: int, access: AccessType):
        """Single-access engine fast path: resolved PA, or ``None``.

        The inlined common case of :meth:`guest_access` -- timer compare,
        TLB hit or valid-walk miss on an ordinary memory address -- with
        identical charges, statistics and LRU motion.  Returns ``None``
        *before* charging or mutating anything whenever the access needs
        the generic machinery (MMIO or out-of-region addresses,
        permission faults, stage-2 faults), so the caller falls back to
        :meth:`guest_access` with nothing to undo.  Channel-ring header
        words and payload chunks are the hot callers.
        """
        ledger = self.ledger
        hart = session.hart
        if ledger._total >= self.clint._mtimecmp[hart.hart_id]:
            self.check_timer(session)
        layout = session.layout
        if session.kind is VmKind.CONFIDENTIAL:
            if not 0 <= gva - layout.dram_base < layout.dram_size:
                return None
        elif layout.mmio_base <= gva < layout.mmio_base + layout.mmio_size:
            return None
        translator = self.translator
        tlb = translator.tlb
        key = (session.vmid, gva >> 12)
        entry = tlb._entries.get(key)
        required = access.required_pte_bit
        if entry is not None:
            ppage, flags = entry
            if not flags & required:
                return None
            tlb.hits += 1
            tlb._entries.move_to_end(key)
            translator._charge_tlb_hit()
            return ppage << 12 | gva & 0xFFF
        if not 0 <= gva < translator.sv39x4._va_limit:
            return None
        wpa, wflags, levels, _slot = translator.probe_gpa(session.hgatp_root, gva)
        if wpa is None or not wflags & required:
            return None
        tlb.misses += 1
        ledger.charge(Category.PAGE_WALK, levels * int(self.costs.page_walk_level))
        self.bus._cpu_check(hart, wpa, 1, access)
        tlb.insert(session.vmid, gva >> 12, wpa >> 12, wflags)
        return wpa

    def _engine_seq(self, session: GuestSession, op: str, gva0: int, step: int,
                    count: int, size: int, values, gvas, key,
                    start: int = 0, out=None):
        """The live per-access engine: TLB probe, walk, fault fix, record.

        Per access this performs exactly the architectural sequence the
        per-element :meth:`guest_access` loop performs -- same timer
        check, same TLB statistics and LRU motion, same charges in the
        same order -- but with translation inlined for the common
        outcomes.  Anything unusual (MMIO or shared-region addresses,
        permission-insufficient entries, faults that cannot take the SM's
        fused fix, VS-stage paging enabled upstream) detours that one
        access through the generic :meth:`guest_access` *before* any
        charge or mutation, so the detour is invisible.

        A clean pure-flavor run starting at ``start == 0`` is recorded
        under ``key`` for future replay.
        """
        ledger = self.ledger
        charge = ledger.charge
        tlb = self.translator.tlb
        entries = tlb._entries
        entries_get = entries.get
        move_to_end = entries.move_to_end
        insert = tlb.insert
        charge_tlb_hit = self.translator._charge_tlb_hit
        charge_compute = self._charge_seq_compute
        probe = self.translator.probe_gpa
        va_limit = self.translator.sv39x4._va_limit
        walk_cost = int(self.costs.page_walk_level)
        hart = session.hart
        hart_id = hart.hart_id
        mtimecmp = self.clint._mtimecmp
        check_timer = self.check_timer
        vmid = session.vmid
        root = session.hgatp_root
        cpu_check = self.bus._cpu_check
        guest_access = self.guest_access
        dram = self.dram
        read_u64 = dram.read_u64
        dread = dram.read
        write_u64 = dram.write_u64
        dwrite = dram.write
        confidential = session.kind is VmKind.CONFIDENTIAL
        layout = session.layout
        if confidential:
            private_lo = layout.dram_base
            private_hi = private_lo + layout.dram_size
        else:
            mmio_lo = layout.mmio_base
            mmio_hi = mmio_lo + layout.mmio_size
        access = AccessType.STORE if op == "S" else AccessType.LOAD
        required = access.required_pte_bit
        # The SM's fused fault fix applies only when the fault would route
        # to M mode with nobody observing the piecewise handler.  Routing
        # depends only on the delegation CSRs, which world switches restore
        # identically, so one check covers the whole sequence.
        fault_direct = (
            confidential
            and self.fault_observer is None
            and route_exception(
                guest_page_fault_for(access), hart.mode, hart.medeleg, hart.hedeleg
            ) is PrivilegeMode.M
        )
        monitor = self.monitor
        cvm = session.cvm
        vcpu_id = session.vcpu_id
        mask64 = (1 << 64) - 1
        small = min(size, 8)
        small_mask = (1 << (8 * small)) - 1
        aligned8 = size == 8

        if out is None and op == "L":
            out = []
        append = out.append if op == "L" else None

        recording = key is not None and start == 0
        rec_keys: list = []
        rec_pas: list = []
        rec_entries: list = []
        rec_walks: list = []
        any_hit = any_miss = False

        i = start
        while i < count:
            gva = gvas[i] if gvas is not None else gva0 + i * step
            if ledger._total >= mtimecmp[hart_id]:
                check_timer(session)
            engine_ok = (
                private_lo <= gva < private_hi
                if confidential
                else not mmio_lo <= gva < mmio_hi
            )
            pa = 0
            if engine_ok:
                for _attempt in range(8):
                    key2 = (vmid, gva >> 12)
                    entry = entries_get(key2)
                    if entry is not None:
                        ppage, flags = entry
                        if not flags & required:
                            # Hardware re-walks; take the generic path (the
                            # probe above mutated nothing).
                            engine_ok = False
                            break
                        tlb.hits += 1
                        move_to_end(key2)
                        charge_tlb_hit()
                        pa = ppage << 12 | gva & 0xFFF
                        if recording:
                            if any_miss:
                                recording = False
                            else:
                                any_hit = True
                                rec_keys.append(key2)
                                rec_pas.append(pa)
                                rec_entries.append(entry)
                        break
                    if not 0 <= gva < va_limit:
                        engine_ok = False
                        break
                    wpa, wflags, levels, leaf_slot = probe(root, gva)
                    if wpa is not None:
                        if not wflags & required:
                            engine_ok = False
                            break
                        tlb.misses += 1
                        charge(Category.PAGE_WALK, levels * walk_cost)
                        cpu_check(hart, wpa, 1, access)
                        insert(vmid, gva >> 12, wpa >> 12, wflags)
                        pa = wpa
                        if recording:
                            if any_hit:
                                recording = False
                            else:
                                any_miss = True
                                rec_keys.append(key2)
                                rec_pas.append(pa)
                                rec_entries.append((wpa >> 12, wflags))
                                rec_walks.append(levels * walk_cost)
                        break
                    # Invalid walk: a stage-2 guest page fault.
                    if not fault_direct:
                        engine_ok = False
                        break
                    recording = False
                    tlb.misses += 1
                    charge(Category.PAGE_WALK, levels * walk_cost)
                    if not leaf_slot or not monitor.fault_fix_fast(
                        cvm, vcpu_id, gva, leaf_slot
                    ):
                        monitor.handle_guest_page_fault(hart, cvm, vcpu_id, gva)
                    # Retry in-engine: charges already landed, and the
                    # per-access loop performs no extra timer check between
                    # a fault fix and its retry.
                else:
                    raise ConfigurationError(
                        f"guest access at {gva:#x} did not make progress after 8 faults"
                    )
            if not engine_ok:
                recording = False
                if op == "S":
                    value = values[i]
                    self._pending_store_value = value & mask64
                    res, kind = guest_access(session, gva, access, size)
                    charge_compute()
                    if kind != "mmio":
                        if aligned8 and not res & 7:
                            write_u64(res, value)
                        else:
                            dwrite(res, (value & small_mask).to_bytes(small, "little"))
                elif op == "L":
                    res, kind = guest_access(session, gva, access, size)
                    charge_compute()
                    if kind == "mmio":
                        append(res)
                    elif aligned8 and not res & 7:
                        append(read_u64(res))
                    else:
                        append(int.from_bytes(dread(res, small), "little"))
                else:
                    guest_access(session, gva, access, 1)
                    charge_compute()
                i += 1
                continue
            charge_compute()
            if op == "L":
                if aligned8 and not pa & 7:
                    append(read_u64(pa))
                else:
                    append(int.from_bytes(dread(pa, small), "little"))
            elif op == "S":
                value = values[i]
                if aligned8 and not pa & 7:
                    write_u64(pa, value)
                else:
                    dwrite(pa, (value & small_mask).to_bytes(small, "little"))
            i += 1

        if op == "S":
            # Residual-state parity: the per-access loop leaves the last
            # store value latched for MMIO emulation.
            self._pending_store_value = values[count - 1] & mask64

        if recording:
            token = (self.monitor.split.map_generation, self.hypervisor.map_generation)
            if any_miss and not any_hit and len(set(rec_keys)) == count:
                self._trace_cache.put(key, SeqTrace(
                    "miss", token, None, rec_keys, rec_pas, rec_entries,
                    rec_walks, None,
                ))
            elif any_hit and not any_miss:
                expected: dict = {}
                consistent = True
                for k, e in zip(rec_keys, rec_entries):
                    prev = expected.get(k)
                    if prev is None:
                        expected[k] = e
                    elif prev != e:
                        consistent = False
                        break
                if consistent:
                    self._trace_cache.put(key, SeqTrace(
                        "hit", token, tlb.generation, rec_keys, rec_pas,
                        None, None, expected,
                    ))
        return out

    def _replay_seq(self, session: GuestSession, op: str, trace, gva0: int,
                    step: int, count: int, size: int, values, gvas):
        """Replay a validated trace; ``_REPLAY_REJECT`` if validation fails.

        The caller has already checked the map token.  Here the TLB-side
        proof runs, then the replay performs the identical state updates
        and charges the live engine would.  All-hit replays fuse each
        timer-window's worth of accesses into one pair of charges; the
        chunk boundary is computed so the timer fires at exactly the
        access where the per-access loop would have fired it.
        """
        tlb = self.translator.tlb
        entries = tlb._entries
        keys = trace.keys
        if trace.flavor == "hit":
            if tlb.generation != trace.tlb_gen:
                entries_get = entries.get
                for k, e in trace.expected.items():
                    if entries_get(k) != e:
                        return _REPLAY_REJECT
                trace.tlb_gen = tlb.generation
        else:
            for k in keys:
                if k in entries:
                    return _REPLAY_REJECT

        ledger = self.ledger
        hart_id = session.hart.hart_id
        mtimecmp = self.clint._mtimecmp
        check_timer = self.check_timer
        dram = self.dram
        read_u64 = dram.read_u64
        dread = dram.read
        write_u64 = dram.write_u64
        dwrite = dram.write
        mask64 = (1 << 64) - 1
        small = min(size, 8)
        small_mask = (1 << (8 * small)) - 1
        aligned8 = size == 8
        pas = trace.pas
        out = [] if op == "L" else None

        if trace.flavor == "miss":
            # Per-access replay: the PMP check can legitimately raise, so
            # charges must land access-by-access exactly as recorded.
            charge = ledger.charge
            hart = session.hart
            cpu_check = self.bus._cpu_check
            insert = tlb.insert
            access = AccessType.STORE if op == "S" else AccessType.LOAD
            charge_compute = self._charge_seq_compute
            ents = trace.entries
            walks = trace.walk_cycles
            for i in range(count):
                if ledger._total >= mtimecmp[hart_id]:
                    check_timer(session)
                tlb.misses += 1
                charge(Category.PAGE_WALK, walks[i])
                pa = pas[i]
                cpu_check(hart, pa, 1, access)
                k = keys[i]
                e = ents[i]
                insert(k[0], k[1], e[0], e[1])
                charge_compute()
                if op == "L":
                    if aligned8 and not pa & 7:
                        out.append(read_u64(pa))
                    else:
                        out.append(int.from_bytes(dread(pa, small), "little"))
                elif op == "S":
                    value = values[i]
                    if aligned8 and not pa & 7:
                        write_u64(pa, value)
                    else:
                        dwrite(pa, (value & small_mask).to_bytes(small, "little"))
        else:
            move_to_end = entries.move_to_end
            tlb_hit = int(self.costs.tlb_hit)
            per_access = tlb_hit + 1  # TLB hit + the compute charge
            charge = ledger.charge
            append = out.append if op == "L" else None
            i = 0
            while i < count:
                total = ledger._total
                cmp_ = mtimecmp[hart_id]
                if total >= cmp_:
                    generation = tlb.generation
                    check_timer(session)
                    if tlb.generation != generation:
                        # The tick flushed translations: the rest of the
                        # sequence misses, which this trace cannot speak
                        # for -- hand the tail to the live engine.
                        return self._engine_seq(
                            session, op, gva0, step, count, size, values,
                            gvas, None, start=i, out=out,
                        )
                    total = ledger._total
                    cmp_ = mtimecmp[hart_id]
                # Largest chunk whose accesses all run before the next
                # tick: access j fires the timer iff the total *before* it
                # reached mtimecmp, so n accesses are safe when
                # total + (n-1)*per_access < cmp.
                n = (cmp_ - total - 1) // per_access + 1
                remaining = count - i
                if n > remaining:
                    n = remaining
                end = i + n
                if op == "L":
                    for j in range(i, end):
                        move_to_end(keys[j])
                        pa = pas[j]
                        if aligned8 and not pa & 7:
                            append(read_u64(pa))
                        else:
                            append(int.from_bytes(dread(pa, small), "little"))
                elif op == "S":
                    for j in range(i, end):
                        move_to_end(keys[j])
                        pa = pas[j]
                        value = values[j]
                        if aligned8 and not pa & 7:
                            write_u64(pa, value)
                        else:
                            dwrite(pa, (value & small_mask).to_bytes(small, "little"))
                else:
                    for j in range(i, end):
                        move_to_end(keys[j])
                tlb.hits += n
                charge(Category.TLB, n * tlb_hit)
                charge(Category.COMPUTE, n)
                i = end

        if op == "S":
            self._pending_store_value = values[count - 1] & mask64
        return out

    # ------------------------------------------------------------------
    # Trap dispatch
    # ------------------------------------------------------------------

    def _dispatch_trap(self, session: GuestSession, trap: TrapRaised, access: AccessType, gva: int):
        """Route a guest trap per the live delegation CSRs.

        Returns an MMIO value when the trap was consumed by device
        emulation (the access is complete), else ``None`` (retry).
        """
        cause = trap.cause
        hart = session.hart
        from_mode = hart.mode
        dest = route_exception(cause, from_mode, hart.medeleg, hart.hedeleg)
        if dest is PrivilegeMode.VS:
            # The guest kernel handles its own trap entirely inside the VM.
            self.ledger.charge(Category.TRAP, self.costs.trap_to_vs)
            self.ledger.charge(Category.GUEST_KERNEL, self.costs.guest_trap_handler)
            self.ledger.charge(Category.TRAP, self.costs.xret)
            raise SecurityViolation(
                f"guest cannot resolve its own {cause!r} at {gva:#x} "
                "(VS-delegated trap in a Bare-paging guest)"
            )
        if dest is PrivilegeMode.HS:
            return self._handle_in_hypervisor(session, trap, access)
        return self._handle_in_monitor(session, trap, access)

    def _handle_in_hypervisor(self, session: GuestSession, trap: TrapRaised, access: AccessType):
        """Normal-mode handling: the conventional KVM/QEMU paths."""
        if session.kind is not VmKind.NORMAL:
            raise SecurityViolation(
                f"CVM trap {trap.cause!r} was routed to the hypervisor: "
                "delegation misconfiguration"
            )
        gpa = trap.gpa if trap.gpa is not None else trap.tval
        guest_fault_causes = (
            ExceptionCause.LOAD_GUEST_PAGE_FAULT,
            ExceptionCause.STORE_GUEST_PAGE_FAULT,
            ExceptionCause.INSTRUCTION_GUEST_PAGE_FAULT,
        )
        if trap.cause in guest_fault_causes:
            layout = session.layout
            if layout.in_mmio(gpa):
                self.hypervisor.normal_vm_exit(session.hart)
                value = self._emulate_mmio_normal(session, gpa, access)
                self.hypervisor.service_plic(session.hart, machine=self)
                self.hypervisor.normal_vm_enter(session.hart)
                self._deliver_normal_irqs(session)
                return value
            with self.ledger.span() as span:
                self.hypervisor.normal_vm_exit(session.hart)
                self.hypervisor.handle_normal_stage2_fault(
                    session.hart, session.normal_vm, gpa
                )
                self.hypervisor.normal_vm_enter(session.hart)
            if self.fault_observer is not None:
                self.fault_observer("kvm", None, span.cycles)
            return None
        raise SecurityViolation(f"unhandled normal-VM trap {trap.cause!r}")

    def _emulate_mmio_normal(self, session: GuestSession, gpa: int, access: AccessType):
        self.hypervisor.mmio_exits += 1
        self.ledger.charge(Category.HYP_LOGIC, self.costs.qemu_mmio_dispatch)
        device = self.hypervisor.devices.find(gpa)
        if device is None:
            return 0
        if access is AccessType.LOAD:
            return device.mmio_load(gpa - device.mmio_base, 8)
        device.mmio_store(gpa - device.mmio_base, self._pending_store_value, 8)
        return 0

    def _handle_in_monitor(self, session: GuestSession, trap: TrapRaised, access: AccessType):
        """CVM-mode handling in the SM: the short-path flows."""
        if session.kind is not VmKind.CONFIDENTIAL:
            raise SecurityViolation(
                f"normal-VM trap {trap.cause!r} reached the SM unexpectedly"
            )
        gpa = trap.gpa if trap.gpa is not None else trap.tval
        layout = session.layout
        if layout.in_private_dram(gpa):
            # Stage-2 fault on private memory: the SM resolves it alone --
            # no world switch, the whole point of SM-side allocation.
            # Spans are charge-free snapshots, so opening one only matters
            # when an observer will read it.
            if self.fault_observer is None:
                self.monitor.handle_guest_page_fault(
                    session.hart, session.cvm, session.vcpu_id, gpa
                )
                return None
            with self.ledger.span() as span:
                stage = self.monitor.handle_guest_page_fault(
                    session.hart, session.cvm, session.vcpu_id, gpa
                )
            self.fault_observer("sm", stage, span.cycles)
            return None
        if layout.in_mmio(gpa):
            return self._emulate_mmio_cvm(session, gpa, access)
        if layout.in_shared(gpa):
            # Shared-region fault: only the hypervisor can fix its subtree.
            vcpu = session.cvm.vcpu(session.vcpu_id)
            self.monitor.world_switch.exit_to_normal(
                session.hart, session.cvm, vcpu,
                {"kind": "shared_fault", "cause": int(trap.cause), "htval": gpa},
            )
            self.hypervisor.handle_cvm_exit(
                session.hart, self.monitor, session.cvm, session.vcpu_id
            )
            self.hypervisor.service_plic(session.hart, cvm=session.cvm, vcpu_id=session.vcpu_id)
            self.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
            self._collect_injected_irqs(session)
            return None
        raise SecurityViolation(
            f"CVM {session.cvm.cvm_id} faulted outside every region: GPA {gpa:#x}"
        )

    def _emulate_mmio_cvm(self, session: GuestSession, gpa: int, access: AccessType):
        """The full MMIO exit: SM -> hypervisor/QEMU -> SM -> guest."""
        vcpu = session.cvm.vcpu(session.vcpu_id)
        is_load = access is AccessType.LOAD
        exit_info = {
            "kind": "mmio_load" if is_load else "mmio_store",
            "cause": 21 if is_load else 23,
            "htval": gpa,
            "htinst": self._encode_htinst(is_load),
            "gpr_index": _MMIO_GPR_INDEX if is_load else 0,
            "gpr_value": 0 if is_load else self._pending_store_value,
        }
        self.monitor.world_switch.exit_to_normal(session.hart, session.cvm, vcpu, exit_info)
        self.hypervisor.handle_cvm_exit(session.hart, self.monitor, session.cvm, session.vcpu_id)
        self.hypervisor.service_plic(session.hart, cvm=session.cvm, vcpu_id=session.vcpu_id)
        reply = self.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
        self._collect_injected_irqs(session)
        return reply.get("gpr_value", 0) if is_load else 0

    @staticmethod
    def _encode_htinst(is_load: bool) -> int:
        """A plausible transformed-instruction encoding for the exit."""
        # ld a0, 0(a0) / sd a0, 0(a0) style encodings.
        return 0x00053503 if is_load else 0x00A53023

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------

    def _collect_injected_irqs(self, session: GuestSession) -> None:
        """Move validated hvip bits into the session's pending set."""
        vcpu = session.cvm.vcpu(session.vcpu_id)
        bits = vcpu.csrs.get("hvip", 0)
        if bits:
            session.pending_irq_bits |= bits
            vcpu.csrs["hvip"] = 0

    def _deliver_normal_irqs(self, session: GuestSession) -> None:
        """Normal VM: KVM injects directly; collect from the device layer."""
        if self._normal_irq_flag:
            session.pending_irq_bits |= 1 << 10
            self._normal_irq_flag = False

    #: Set by GuestContext around emulated stores (the store value has to
    #: reach the device model through the exit path, as htinst implies).
    _pending_store_value: int = 0
    _normal_irq_flag: bool = False
    #: Optional instrumentation: ``callable(kind, stage, cycles)`` invoked
    #: after every stage-2 fault is handled ("kvm" or "sm" paths).  Used
    #: by the E3 experiment harness.
    fault_observer = None


class GuestContext:
    """The API guest workloads program against.

    Every method models what the corresponding guest instruction sequence
    would do architecturally, including faulting and being resumed.
    """

    def __init__(self, machine: Machine, session: GuestSession):
        self.machine = machine
        self.session = session
        self.ledger = machine.ledger
        self.costs = machine.costs
        # Precompiled "one compute cycle" charge: every load/store issues
        # it, so the generic charge() path was measurable.
        self._charge_access = machine.ledger.charger(Category.COMPUTE, 1)

    # -- computation -------------------------------------------------------

    def compute(self, cycles: int) -> None:
        """Execute ``cycles`` of guest-local work (interleaves timer ticks)."""
        remaining = int(cycles)
        clint = self.machine.clint
        hart_id = self.session.hart.hart_id
        while remaining > 0:
            self.machine.check_timer(self.session)
            until_tick = clint.read_mtimecmp(hart_id) - clint.mtime
            slice_ = min(remaining, max(1, until_tick))
            self.ledger.charge(Category.COMPUTE, slice_)
            remaining -= slice_

    # -- memory -------------------------------------------------------------

    def load(self, gva: int, size: int = 8) -> int:
        """Guest load; returns the value (integers up to 8 bytes)."""
        machine = self.machine
        if machine._trace_cache is not None and self.session.vsatp_root is None:
            pa = machine._access_one(self.session, gva, AccessType.LOAD)
            if pa is not None:
                self._charge_access()
                if size == 8 and not pa & 7:
                    return machine.dram.read_u64(pa)
                return int.from_bytes(machine.dram.read(pa, min(size, 8)), "little")
        value, kind = machine.guest_access(self.session, gva, AccessType.LOAD, size)
        self._charge_access()
        if kind == "mmio":
            return value
        if size == 8 and not value & 7:
            return machine.dram.read_u64(value)
        data = machine.dram.read(value, min(size, 8))
        return int.from_bytes(data, "little")

    def store(self, gva: int, value: int, size: int = 8) -> None:
        """Guest store of an integer value."""
        machine = self.machine
        machine._pending_store_value = value & (1 << 64) - 1
        if machine._trace_cache is not None and self.session.vsatp_root is None:
            pa = machine._access_one(self.session, gva, AccessType.STORE)
            if pa is not None:
                self._charge_access()
                if size == 8 and not pa & 7:
                    machine.dram.write_u64(pa, value)
                    return
                machine.dram.write(pa, (value & (1 << (8 * min(size, 8))) - 1).to_bytes(min(size, 8), "little"))
                return
        pa, kind = machine.guest_access(self.session, gva, AccessType.STORE, size)
        self._charge_access()
        if kind == "mmio":
            return
        if size == 8 and not pa & 7:
            machine.dram.write_u64(pa, value)
            return
        machine.dram.write(pa, (value & (1 << (8 * min(size, 8))) - 1).to_bytes(min(size, 8), "little"))

    def load_seq(self, gva: int, count: int, size: int = 8, stride: int | None = None) -> list:
        """Batched guest loads: ``count`` values starting at ``gva``.

        Wall-clock batching only -- every element performs the identical
        architectural sequence an individual :meth:`load` would (timer
        check, translation with its TLB lookup and charges, per-access
        compute charge), so simulated cycles are bit-for-bit the same.
        """
        step = size if stride is None else stride
        machine = self.machine
        session = self.session
        if machine._trace_cache is not None and session.vsatp_root is None:
            return machine.run_seq(session, "L", gva, step, count, size, None, None)
        guest_access = machine.guest_access
        charge = self._charge_access
        read_u64 = machine.dram.read_u64
        read = machine.dram.read
        out = []
        append = out.append
        for i in range(count):
            addr = gva + i * step
            value, kind = guest_access(session, addr, AccessType.LOAD, size)
            charge()
            if kind == "mmio":
                append(value)
            elif size == 8 and not value & 7:
                append(read_u64(value))
            else:
                append(int.from_bytes(read(value, min(size, 8)), "little"))
        return out

    def store_seq(self, gva: int, values, size: int = 8, stride: int | None = None) -> None:
        """Batched guest stores of ``values`` starting at ``gva``.

        Same cycle-exactness contract as :meth:`load_seq`: this is the
        per-element :meth:`store` sequence with the Python call overhead
        hoisted out of the loop, never a change to what is charged.
        """
        step = size if stride is None else stride
        machine = self.machine
        session = self.session
        if machine._trace_cache is not None and session.vsatp_root is None:
            if not isinstance(values, (list, tuple)):
                values = list(values)
            machine.run_seq(session, "S", gva, step, len(values), size, values, None)
            return
        guest_access = machine.guest_access
        charge = self._charge_access
        write_u64 = machine.dram.write_u64
        write = machine.dram.write
        mask64 = (1 << 64) - 1
        small = min(size, 8)
        small_mask = (1 << (8 * small)) - 1
        for i, value in enumerate(values):
            addr = gva + i * step
            machine._pending_store_value = value & mask64
            pa, kind = guest_access(session, addr, AccessType.STORE, size)
            charge()
            if kind == "mmio":
                continue
            if size == 8 and not pa & 7:
                write_u64(pa, value)
            else:
                write(pa, (value & small_mask).to_bytes(small, "little"))

    def write_bytes(self, gva: int, data: bytes) -> None:
        """Bulk guest write (page-wise translation, per-byte copy charge)."""
        machine = self.machine
        fast = machine._trace_cache is not None and self.session.vsatp_root is None
        offset = 0
        while offset < len(data):
            chunk = min(len(data) - offset, PAGE_SIZE - (gva + offset) % PAGE_SIZE)
            pa = (
                machine._access_one(self.session, gva + offset, AccessType.STORE)
                if fast
                else None
            )
            if pa is None:
                pa, kind = machine.guest_access(
                    self.session, gva + offset, AccessType.STORE, chunk
                )
                if kind != "memory":
                    raise ConfigurationError("bulk write hit an MMIO window")
            machine.dram.write(pa, data[offset : offset + chunk])
            offset += chunk
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(len(data)))

    def read_bytes(self, gva: int, length: int) -> bytes:
        """Bulk guest read."""
        machine = self.machine
        fast = machine._trace_cache is not None and self.session.vsatp_root is None
        out = bytearray()
        offset = 0
        while offset < length:
            chunk = min(length - offset, PAGE_SIZE - (gva + offset) % PAGE_SIZE)
            pa = (
                machine._access_one(self.session, gva + offset, AccessType.LOAD)
                if fast
                else None
            )
            if pa is None:
                pa, kind = machine.guest_access(
                    self.session, gva + offset, AccessType.LOAD, chunk
                )
                if kind != "memory":
                    raise ConfigurationError("bulk read hit an MMIO window")
            out += machine.dram.read(pa, chunk)
            offset += chunk
        self.ledger.charge(Category.COPY, self.costs.copy_bytes(length))
        return bytes(out)

    def touch(self, gva: int) -> None:
        """Touch one page (a minimal load; populates mappings and TLB)."""
        self.load(gva, 1)

    def touch_range(self, gva: int, length: int) -> None:
        """Touch every page of ``[gva, gva+length)`` (e.g. a bounce copy)."""
        page = gva & ~(PAGE_SIZE - 1)
        end = gva + max(length, 1)
        while page < end:
            self.touch(page)
            page += PAGE_SIZE

    def touch_seq(self, gvas) -> None:
        """Touch every address in ``gvas`` (batched :meth:`touch`).

        Architecturally identical to touching each address in a Python
        loop -- same timer checks, translations, and compute charges --
        but with the loop overhead hoisted and the discarded 1-byte data
        fetch skipped (reading DRAM has no model-visible effect; the
        cycle cost of a load is charged by the access path, not by the
        byte copy).  MMIO touches still perform the full device access.
        """
        machine = self.machine
        session = self.session
        if machine._trace_cache is not None and session.vsatp_root is None:
            gvas = tuple(gvas)
            machine.run_seq(session, "T", 0, 0, len(gvas), 1, None, gvas)
            return
        guest_access = machine.guest_access
        charge = self._charge_access
        for gva in gvas:
            guest_access(session, gva, AccessType.LOAD, 1)
            charge()

    # -- virtio driver construction ---------------------------------------------

    def blk_driver(self):
        """Build (once) the guest's virtio-blk driver over SWIOTLB."""
        if not hasattr(self, "_blk_driver"):
            from repro.guest.swiotlb import Swiotlb
            from repro.guest.virtio_driver import VirtioBlkDriver
            from repro.hyp.virtio import Virtqueue

            device = self.session.virtio_blk
            swiotlb = self._get_swiotlb()
            queue = Virtqueue(ring_gpa=self._ring_gpa(0))
            self._blk_driver = VirtioBlkDriver(self, device, swiotlb, queue)
        return self._blk_driver

    def net_driver(self):
        """Build (once) the guest's virtio-net driver over SWIOTLB."""
        if not hasattr(self, "_net_driver"):
            from repro.guest.virtio_driver import VirtioNetDriver
            from repro.hyp.virtio import Virtqueue

            device = self.session.virtio_net
            swiotlb = self._get_swiotlb()
            tx = Virtqueue(ring_gpa=self._ring_gpa(1))
            rx = Virtqueue(ring_gpa=self._ring_gpa(2))
            self._net_driver = VirtioNetDriver(self, device, swiotlb, tx, rx)
        return self._net_driver

    def rng_driver(self):
        """Build (once) the guest's virtio-rng driver over SWIOTLB."""
        if not hasattr(self, "_rng_driver"):
            from repro.guest.virtio_driver import VirtioRngDriver
            from repro.hyp.virtio import Virtqueue

            device = self.session.virtio_rng
            swiotlb = self._get_swiotlb()
            queue = Virtqueue(ring_gpa=self._ring_gpa(3))
            self._rng_driver = VirtioRngDriver(self, device, swiotlb, queue)
        return self._rng_driver

    def _get_swiotlb(self):
        if not hasattr(self, "_swiotlb"):
            from repro.guest.swiotlb import Swiotlb

            base, size = self.machine.swiotlb_window(self.session)
            self._swiotlb = Swiotlb(base, size, self.ledger, self.costs)
        return self._swiotlb

    def _ring_gpa(self, index: int) -> int:
        layout = self.session.layout
        if self.session.kind is VmKind.CONFIDENTIAL:
            return layout.shared_base + index * 0x1000
        return layout.dram_base + layout.dram_size - 0x10000 + index * 0x1000

    # -- MMIO ------------------------------------------------------------------

    def mmio_read(self, gpa: int) -> int:
        """Emulated-device register read (a load into the MMIO window)."""
        return self.load(gpa)

    def mmio_write(self, gpa: int, value: int) -> None:
        """Emulated-device register write (a store into the MMIO window)."""
        self.store(gpa, value)

    # -- SM services (CVM only) ---------------------------------------------------

    def attestation_report(self, report_data: bytes = b""):
        """ECALL the SM for a signed measurement report."""
        self._require_cvm()
        return self.machine.monitor.ecall_attestation_report(
            self.session.cvm.cvm_id, report_data
        )

    def extend_rtmr(self, index: int, data: bytes) -> bytes:
        """Extend a runtime measurement register (ECALL to the SM)."""
        self._require_cvm()
        return self.machine.monitor.ecall_extend_rtmr(
            self.session.cvm.cvm_id, index, data
        )

    def get_random(self, count: int) -> bytes:
        """ECALL the SM for platform random bytes."""
        self._require_cvm()
        return self.machine.monitor.ecall_get_random(self.session.cvm.cvm_id, count)

    def sbi_ecall(self, eid: int, fid: int, *args) -> tuple:
        """Raw register-convention ECALL into the SM (the real ABI path).

        Writes a7/a6/a0-a5, traps to M mode, and returns the SBI
        ``(error, value)`` pair from a0/a1.  Most callers prefer the typed
        convenience methods; this is the boundary conformance surface.
        """
        hart = self.session.hart
        hart.write_gpr("a7", eid)
        hart.write_gpr("a6", fid)
        for i in range(6):
            hart.write_gpr(f"a{i}", args[i] if i < len(args) else 0)
        self.ledger.charge(Category.TRAP, self.costs.trap_to_m)
        self.ledger.charge(Category.SM_LOGIC, self.costs.ecall_dispatch)
        self.machine.ecall_interface.dispatch(hart)
        self.ledger.charge(Category.TRAP, self.costs.xret)
        error = hart.read_gpr("a0")
        if error >= 1 << 63:
            error -= 1 << 64  # SBI errors are negative
        return error, hart.read_gpr("a1")

    # -- guest user mode (VU) ------------------------------------------------

    def run_user_process(self, user_fn):
        """Run ``user_fn(ctx)`` as a guest *user* process (VU mode).

        Models the guest kernel dispatching to userspace: ``sret`` into
        VU, the function's memory accesses translate at VU privilege, and
        :meth:`syscall` round-trips stay entirely inside the VM (the
        compatibility property VM-based TEEs claim: unmodified apps).
        """
        hart = self.session.hart
        if hart.mode is not PrivilegeMode.VS:
            raise ConfigurationError("only the guest kernel can start a process")
        self.ledger.charge(Category.TRAP, self.costs.xret)  # sret to VU
        self.ledger.charge(Category.GUEST_KERNEL, self.costs.guest_trap_handler)
        hart.mode = PrivilegeMode.VU
        self.syscall_count = getattr(self, "syscall_count", 0)
        try:
            return user_fn(self)
        finally:
            # Process exit: one final trap back into the guest kernel.
            self.ledger.charge(Category.TRAP, self.costs.trap_to_vs)
            self.ledger.charge(Category.GUEST_KERNEL, self.costs.guest_trap_handler)
            hart.mode = PrivilegeMode.VS

    def syscall(self, cost: int | None = None) -> None:
        """A guest-internal syscall from VU mode.

        Routed by the live delegation CSRs: for a confidential VM the
        ECALL-from-U cause is delegated to VS, so the whole round trip
        happens inside the VM -- no world switch, nothing for the host or
        the SM to see.  Raises if delegation would leak it (a
        configuration the SM never produces).
        """
        hart = self.session.hart
        if hart.mode is not PrivilegeMode.VU:
            raise ConfigurationError("syscalls come from user mode")
        dest = route_exception(
            ExceptionCause.ECALL_FROM_U, PrivilegeMode.VU, hart.medeleg, hart.hedeleg
        )
        if dest is not PrivilegeMode.VS:
            raise SecurityViolation(
                f"guest syscall would trap to {dest.name}: delegation broken"
            )
        self.ledger.charge(Category.TRAP, self.costs.trap_to_vs)
        self.ledger.charge(
            Category.GUEST_KERNEL, cost if cost is not None else self.costs.guest_syscall
        )
        self.ledger.charge(Category.TRAP, self.costs.xret)
        self.syscall_count = getattr(self, "syscall_count", 0) + 1

    def request_shared_memory(self, size: int) -> int:
        """Ask the SM/host to grow the shared window; returns the new GPA.

        Models the paper's patched guest kernel issuing a shared-memory
        request (e.g. enlarging its SWIOTLB pool at runtime).
        """
        self._require_cvm()
        return self.machine.monitor.ecall_guest_share_request(
            self.session.hart,
            self.session.cvm.cvm_id,
            self.session.vcpu_id,
            size,
        )

    def reclaim_pages(self, gpa: int, count: int) -> int:
        """Return private pages to the SM (balloon); returns pages freed."""
        self._require_cvm()
        return self.machine.monitor.ecall_reclaim_pages(
            self.session.cvm.cvm_id, self.session.vcpu_id, gpa, count
        )

    def _require_cvm(self) -> None:
        if self.session.kind is not VmKind.CONFIDENTIAL:
            raise ConfigurationError("SM guest services require a confidential VM")

    # -- waiting / interrupts ------------------------------------------------------

    def wfi(self) -> bool:
        """Wait-for-interrupt: exit to the host until it produces work.

        Returns True if the host's work poller reported progress.
        """
        session = self.session
        machine = self.machine
        if session.kind is VmKind.CONFIDENTIAL:
            vcpu = session.cvm.vcpu(session.vcpu_id)
            machine.monitor.world_switch.exit_to_normal(
                session.hart, session.cvm, vcpu, {"kind": "wfi", "cause": 0}
            )
            produced = bool(session.host_work and session.host_work(machine, session))
            machine.hypervisor.service_plic(
                session.hart, cvm=session.cvm, vcpu_id=session.vcpu_id
            )
            machine.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
            machine._collect_injected_irqs(session)
        else:
            machine.hypervisor.normal_vm_exit(session.hart)
            produced = bool(session.host_work and session.host_work(machine, session))
            machine.hypervisor.service_plic(session.hart, machine=machine)
            machine.hypervisor.normal_vm_enter(session.hart)
            machine._deliver_normal_irqs(session)
        return produced

    def deliver_pending_irqs(self) -> int:
        """Run the guest kernel's handler for each pending VS interrupt."""
        delivered = 0
        bits = self.session.pending_irq_bits
        self.session.pending_irq_bits = 0
        while bits:
            bits &= bits - 1
            self.ledger.charge(Category.TRAP, self.costs.trap_to_vs)
            self.ledger.charge(Category.GUEST_KERNEL, self.costs.guest_trap_handler)
            self.ledger.charge(Category.TRAP, self.costs.xret)
            delivered += 1
        return delivered
