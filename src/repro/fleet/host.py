"""One simulated host of a ZION fleet: a full machine plus fleet identity.

A :class:`FleetHost` owns an independent :class:`~repro.machine.Machine`
-- its own SM, hypervisor, secure pool, cycle ledger -- exactly as each
physical board in a deployment would.  On top it carries the two pieces
of fleet identity migration needs: a deterministic per-host *nonce*
(both SMs mix their nonces into the migration key, so every host pair
derives a distinct key) and a host id the orchestrator schedules by.

Hosts share the simulator's default attestation device secret, which
models a fleet whose verifier trusts one platform vendor key: a report
signed by any host's SM verifies on any other, and what distinguishes a
genuine arrival from an impostor is the *measurement* inside the report,
never the signature.
"""

from __future__ import annotations

import hashlib

from repro.machine import Machine, MachineConfig


class FleetHost:
    """A fleet member: one machine plus its migration identity."""

    def __init__(self, host_id: int, config: MachineConfig | None = None):
        self.host_id = host_id
        self.machine = Machine(config or MachineConfig())
        #: Migration-key nonce; deterministic per host id so seeded fleet
        #: runs replay bit-for-bit (a production SM would draw it fresh).
        self.nonce = hashlib.sha256(f"zion-fleet-host-{host_id}".encode()).digest()[:16]

    @property
    def cycles(self) -> int:
        """This host's ledger total (its private notion of time)."""
        return self.machine.ledger.total

    def describe(self) -> str:
        """Short identity string for logs and reports."""
        return f"host{self.host_id}"

    def __repr__(self):
        return f"FleetHost({self.host_id})"
