"""Per-epoch serving bursts for fleet CVMs.

Each fleet CVM serves one *burst* per orchestrator epoch: a bounded
generator workload for :meth:`Machine.run_concurrent` built fresh each
epoch, so a CVM can be parked, migrated and resumed between any two
epochs without a generator holding stale machine references.

Every burst maintains a **persistent operation counter in guest
memory** (a u64 at a fixed private-DRAM offset).  The counter survives
across epochs only through the CVM's private pages -- after a live
migration it travelled inside the encrypted blob -- so the orchestrator
comparing the returned counter against its host-side expectation is an
end-to-end memory-integrity check of the whole park/export/import/resume
pipeline, not just a liveness probe.

The ping/pong pair bursts are patience-bounded like the fault campaign's
tolerant workloads: a peer that died contained (fault injection, failed
migration) makes its partner give up gracefully within the epoch, never
wedge the host's scheduler rotation.
"""

from __future__ import annotations

from repro.errors import ChannelCorrupt
from repro.ipc.endpoint import ChannelEndpoint, ChannelError
from repro.machine import WAIT_DOORBELL

#: Private-DRAM offset of the persistent op counter (demand-allocated
#: page, far from the image but below the channel window).
COUNTER_OFFSET = 0x0040_0000

#: Private-DRAM offset of the pair bursts' channel window.
WINDOW_OFFSET = 0x0200_0000

#: Channel window size for pair bursts (small: two 8 KB rings).
WINDOW_SIZE = 16 * 1024

#: Scheduler rotations a pair burst tolerates without progress before
#: giving up on its peer for this epoch.
PATIENCE = 200


def _counter_gva(ctx) -> int:
    return ctx.session.layout.dram_base + COUNTER_OFFSET


def _window_gva(ctx) -> int:
    return ctx.session.layout.dram_base + WINDOW_OFFSET


def _bump_counter(ctx, by: int = 1) -> int:
    """Increment the persistent guest-memory op counter; returns it."""
    gva = _counter_gva(ctx)
    value = ctx.load(gva) + by
    ctx.store(gva, value)
    return value


def kv_burst(ops: int, working_set_pages: int = 12,
             compute_cycles: int = 20_000):
    """A redis-like serving burst: touch hot keys, compute, count.

    Each operation strides the CVM's hot working set (stressing the
    stage-2/TLB path the paper measures), burns a request's worth of
    compute, and bumps the persistent counter.  Returns
    ``{"ops", "counter"}``.
    """

    def workload(ctx):
        base = ctx.session.layout.dram_base + 0x0080_0000
        counter = ctx.load(_counter_gva(ctx))
        for op in range(ops):
            page = (counter + op) % working_set_pages
            ctx.touch(base + page * 4096)
            ctx.compute(compute_cycles)
            counter = _bump_counter(ctx)
            yield
        return {"ops": ops, "counter": counter}

    return workload


def file_burst(ops: int, chunk: int = 4096):
    """An iozone-like serving burst: sequential write/read-back stream.

    Each operation writes ``chunk`` bytes to a rolling file offset,
    reads them back (so corruption would surface as a mismatch), and
    bumps the persistent counter.  Returns ``{"ops", "counter",
    "mismatches"}``.
    """

    def workload(ctx):
        base = ctx.session.layout.dram_base + 0x0100_0000
        counter = ctx.load(_counter_gva(ctx))
        mismatches = 0
        for op in range(ops):
            offset = ((counter + op) % 16) * chunk
            payload = bytes((counter + op + i) & 0xFF for i in range(chunk))
            ctx.write_bytes(base + offset, payload)
            if ctx.read_bytes(base + offset, chunk) != payload:
                mismatches += 1
            counter = _bump_counter(ctx)
            yield
        return {"ops": ops, "counter": counter, "mismatches": mismatches}

    return workload


def pair_server_burst(expected_peer_measurement: bytes, rounds: int,
                      channel_box: dict):
    """The pong half of a co-located pair: create, echo, count.

    Creates this epoch's channel (gated on the peer's launch
    measurement), echoes ``rounds`` messages with bounded patience, and
    bumps the counter once per echo.  The *client* closes the channel;
    creating afresh next epoch needs the window unmapped, which either
    the close or a migration teardown guarantees.  Returns ``{"ops",
    "counter", "degraded"}`` -- degraded bursts served fewer (possibly
    zero) echoes because the peer stopped participating.
    """

    def workload(ctx):
        try:
            endpoint = ChannelEndpoint.create(
                ctx, _window_gva(ctx), WINDOW_SIZE, expected_peer_measurement
            )
        except ChannelError:
            return {"ops": 0, "counter": ctx.load(_counter_gva(ctx)),
                    "degraded": True}
        channel_box["channel_id"] = endpoint.channel_id
        yield
        echoed = idle = 0
        counter = ctx.load(_counter_gva(ctx))
        while echoed < rounds and idle < PATIENCE:
            try:
                message = endpoint.recv()
            except (ChannelCorrupt, ChannelError):
                break
            if message is None:
                idle += 1
                ctx.deliver_pending_irqs()
                # Park on the doorbell (the executor's wake-all backstop
                # and the patience bound both keep a dead peer survivable).
                yield WAIT_DOORBELL
                continue
            sent = False
            for _ in range(PATIENCE):
                try:
                    sent = endpoint.send(message)
                except (ChannelCorrupt, ChannelError):
                    break
                if sent:
                    break
                yield
            if not sent:
                break
            idle = 0
            echoed += 1
            counter = _bump_counter(ctx)
            yield
        if echoed < rounds:
            # Degraded epoch: the peer stopped participating, so it will
            # not close the channel -- tear it down unilaterally or next
            # epoch's create finds the window still mapped.
            try:
                endpoint.close()
            except (ChannelCorrupt, ChannelError):
                pass
        return {"ops": echoed, "counter": counter,
                "degraded": echoed < rounds}

    return workload


def pair_client_burst(channel_box: dict, expected_creator_measurement: bytes,
                      rounds: int, message_size: int = 256):
    """The ping half of a co-located pair: connect, ping, close, count."""

    def workload(ctx):
        counter = ctx.load(_counter_gva(ctx))
        waited = 0
        while "channel_id" not in channel_box:
            waited += 1
            if waited >= PATIENCE:
                return {"ops": 0, "counter": counter, "degraded": True}
            yield
        try:
            endpoint = ChannelEndpoint.connect(
                ctx, channel_box["channel_id"], _window_gva(ctx),
                expected_creator_measurement,
            )
        except ChannelError:
            return {"ops": 0, "counter": counter, "degraded": True}
        payload = bytes(i & 0xFF for i in range(message_size))
        completed = idle = 0
        try:
            for _ in range(rounds):
                while not endpoint.send(payload):
                    idle += 1
                    if idle >= PATIENCE:
                        raise TimeoutError
                    yield
                echo = None
                while echo is None:
                    echo = endpoint.recv()
                    if echo is None:
                        idle += 1
                        if idle >= PATIENCE:
                            raise TimeoutError
                        ctx.deliver_pending_irqs()
                        yield WAIT_DOORBELL
                idle = 0
                completed += 1
                counter = _bump_counter(ctx)
                yield
        except (ChannelCorrupt, ChannelError, TimeoutError):
            pass
        # Close even after a timeout or fail-stop: next epoch's create
        # needs the window unmapped, and close is the unilateral teardown.
        try:
            endpoint.close()
        except (ChannelCorrupt, ChannelError):
            pass  # peer or SM already tore the channel down
        return {"ops": completed, "counter": counter,
                "degraded": completed < rounds}

    return workload
