"""The fleet orchestrator: CVM lifecycle + live migration under load.

This is the composition scenario ROADMAP item 4 asks for: N simulated
hosts (each its own :class:`~repro.machine.Machine` with an independent
SM), a mixed fleet of serving CVMs (redis-like, iozone-like, channel
ping-pong pairs from :data:`~repro.workloads.profiles.FLEET_MIX`), and a
rebalancing control loop that live-migrates CVMs between hosts through
:mod:`repro.sm.migration` while the fault injector fires at the
migration, channel and lifecycle seams.

Control loop (per seed)::

    launch fleet          groups placed round-robin over hosts
    epoch 0               serve only -- cold start (demand faulting)
    epoch 1               serve only -- the warm throughput baseline
    epochs 2..E-1         rebalance (`migration_rate` group moves from
                          the most- to the least-loaded host), then serve
    every epoch           containment sweep over every host

One **live migration** is: park (suspend) -> export (SM seals the blob,
source instance destroyed) -> transfer (the untrusted ferry -- where
migration-seam faults strike) -> import (destination SM authenticates,
decrypts, re-instantiates) -> **attest on arrival** (a signed report is
demanded and its measurement compared against the fleet's launch-time
record; mismatch destroys the arrival with a typed
:class:`~repro.errors.MigrationRejected`) -> resume serving.

**Downtime** is charged as the sum of two ledger spans: the source's
suspend+export span plus the destination's import+adopt+attest span.
The two machines keep independent clocks, so this models the serialized
CPU work a migration costs; transfer latency (a network property) is
out of scope, as is the paper's cost model for migration itself.

**Containment invariants**, swept every epoch on every host and once
more at the end: the full :func:`repro.faults.invariants.check_postconditions`
sweep, plus the fleet-level pool-leak rule -- every secure-pool frame is
owned by ``free``/``sm``, a live channel, or a live (non-destroyed) CVM,
so a failed migration can lose *one CVM* (fail-stop, typed error) but
never strand frames or wedge a host.
"""

from __future__ import annotations

import dataclasses
import random

from repro.errors import MigrationRejected, ReproError, SecurityViolation
from repro.faults.injector import FaultInjector
from repro.faults.invariants import check_postconditions
from repro.faults.plan import FaultPlan
from repro.fleet.host import FleetHost
from repro.fleet.workloads import (
    file_burst,
    kv_burst,
    pair_client_burst,
    pair_server_burst,
)
from repro.machine import MachineConfig
from repro.sm.channel import ChannelState
from repro.sm.cvm import CvmState
from repro.sm.migration import derive_migration_key
from repro.sm.secmem import OWNER_FREE, OWNER_SM
from repro.workloads.profiles import FLEET_MIX

#: The fleet provisioning secret both SMs derive migration keys from
#: (deterministic: seeded runs must replay bit-for-bit).
FLEET_SECRET = b"zion-fleet-provisioning-secret"

#: Default fault seams a fleet campaign focuses on.
DEFAULT_SEAMS = ("migration", "channel", "lifecycle")


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet run (all defaults match the CLI's)."""

    hosts: int = 4
    cvms: int = 12
    epochs: int = 6
    #: Rebalancing group-moves per epoch (the migration rate knob;
    #: epochs 0 and 1 never migrate -- cold start and warm baseline).
    migration_rate: int = 4
    seed: int = 0
    #: Fault seams the seed's plan draws from; ``None`` disables
    #: injection entirely (clean-room runs for perf baselines).
    seams: tuple | None = DEFAULT_SEAMS
    #: Secure pool each host boots with (small enough that imports and
    #: serving trigger stage-3 expansions).
    pool_bytes: int = 6 << 20


@dataclasses.dataclass
class FleetCvm:
    """Orchestrator-side record of one fleet CVM."""

    index: int
    kind: str
    weight: int
    ops_per_epoch: int
    group: int
    image: bytes
    host: FleetHost
    session: object
    #: Launch measurement the fleet expects at every arrival attestation.
    measurement: bytes
    alive: bool = True
    #: How this CVM died, when it did (typed error name).
    fate: str = ""
    #: Host-side expectation for the guest-memory op counter.
    expected_counter: int = 0
    migrations: int = 0


@dataclasses.dataclass
class FleetSeedResult:
    """Everything one seeded fleet run produced."""

    seed: int
    hosts: int
    cvms: int
    epochs: int
    plan: str
    #: Successful live migrations (per CVM arrival, resumed serving).
    migrations: int
    #: Failed migrations, each ``(cvm_index, error_type, detail)``.
    failed: list
    #: Arrivals rejected by the attestation gate (impostor blobs).
    attest_rejections: int
    #: Replayed blobs the destination SM refused.
    replay_refused: int
    #: Arrivals that were attestation-checked (must equal successful
    #: imports + rejected impostors: *every* arrival is checked).
    attest_checked: int
    arrivals: int
    #: Per-migration downtime in cycles (source span + destination span).
    downtimes: list
    #: Ops served per epoch (fleet-wide).
    ops_per_epoch: list
    #: Cycles burned per epoch (summed over hosts; includes migrations).
    cycles_per_epoch: list
    #: Containment-invariant violations (must be empty).
    violations: list
    #: Sessions that ended in a typed contained error during serving.
    contained: list
    #: Machine-seam faults the injectors actually applied.
    faults_applied: int
    #: Migration-seam faults the ferry applied.
    ferry_faults: list
    #: Aggregated scheduler park/resume accounting.
    sched: dict

    @property
    def downtime_mean(self) -> float:
        """Mean per-migration downtime in cycles (0.0 when none)."""
        return sum(self.downtimes) / len(self.downtimes) if self.downtimes else 0.0

    @property
    def downtime_max(self) -> int:
        """Worst per-migration downtime in cycles."""
        return max(self.downtimes) if self.downtimes else 0

    @property
    def throughput_dip_pct(self) -> float:
        """Serving-throughput dip of migration epochs vs the warm baseline.

        Epoch 0 is the cold start (demand faults populate every working
        set) and epoch 1 is the *warm* no-migration baseline; epochs 2+
        pay migration downtime out of the same cycle budget.  Positive
        means the rebalancing epochs served fewer ops per cycle than the
        warm baseline.
        """
        if len(self.ops_per_epoch) < 3:
            return 0.0
        if not self.cycles_per_epoch[1] or not self.ops_per_epoch[1]:
            return 0.0
        base = self.ops_per_epoch[1] / self.cycles_per_epoch[1]
        later_ops = sum(self.ops_per_epoch[2:])
        later_cycles = sum(self.cycles_per_epoch[2:])
        if not later_cycles:
            return 0.0
        return (1.0 - (later_ops / later_cycles) / base) * 100.0

    @property
    def ok(self) -> bool:
        """True when containment held and every arrival was checked."""
        return not self.violations and self.attest_checked == self.arrivals

    def summary(self) -> str:
        """One status line for campaign output."""
        status = "ok" if self.ok else "FAIL"
        return (
            f"seed {self.seed:>3}  {status:<4} migrations={self.migrations:<3}"
            f" failed={len(self.failed)} attest_rej={self.attest_rejections}"
            f" replay_ref={self.replay_refused}"
            f" downtime_mean={self.downtime_mean:,.0f}cy"
            f" dip={self.throughput_dip_pct:+.1f}%"
            f" violations={len(self.violations)}"
        )


class FleetOrchestrator:
    """Runs one seeded fleet scenario end to end (see module docstring)."""

    def __init__(self, config: FleetConfig | None = None):
        self.config = config or FleetConfig()
        cfg = self.config
        self.rng = random.Random(cfg.seed)
        self.hosts = [
            FleetHost(i, MachineConfig(initial_pool_bytes=cfg.pool_bytes))
            for i in range(cfg.hosts)
        ]
        for host in self.hosts:
            host.machine.hypervisor.expand_chunk = 2 << 20
        if cfg.seams is not None:
            self.plan = FaultPlan.from_seed(cfg.seed, seams=cfg.seams)
        else:
            self.plan = FaultPlan(cfg.seed, ())
        self._mig_events = self.plan.for_seam("migration")
        self._mig_count = 0
        self.records: list[FleetCvm] = []
        self.groups: list[list[int]] = []
        # Result accumulators.
        self.migrations = 0
        self.failed: list = []
        self.attest_rejections = 0
        self.replay_refused = 0
        self.attest_checked = 0
        self.arrivals = 0
        self.downtimes: list = []
        self.violations: list = []
        self.contained: list = []
        self.ferry_faults: list = []
        self.ops_per_epoch: list = []
        self.cycles_per_epoch: list = []
        self._sched = {"parks": 0, "wakes": 0, "front_wakes": 0,
                       "wake_all_calls": 0}

    # -- fleet construction ------------------------------------------------

    def launch(self) -> None:
        """Launch the mixed fleet, placing groups round-robin over hosts.

        A ping/pong pair is one *group* (channels are SM-local, so the
        pair must co-locate and migrate together); every other CVM is a
        singleton group.
        """
        cfg = self.config
        profiles = [FLEET_MIX[i % len(FLEET_MIX)] for i in range(cfg.cvms)]
        index = 0
        while index < len(profiles):
            profile = profiles[index]
            if profile.kind == "ping" and index + 1 < len(profiles) \
                    and profiles[index + 1].kind == "pong":
                members = [index, index + 1]
            else:
                members = [index]
            group_id = len(self.groups)
            host = self.hosts[group_id % len(self.hosts)]
            for member in members:
                p = profiles[member]
                kind = p.kind if len(members) == 2 else (
                    "kv" if p.kind in ("ping", "pong") else p.kind
                )
                image = f"zion-fleet-cvm-{member:03d}-{kind}".encode() * 8
                session = host.machine.launch_confidential_vm(image=image)
                self.records.append(FleetCvm(
                    index=member,
                    kind=kind,
                    weight=p.weight,
                    ops_per_epoch=p.ops_per_epoch,
                    group=group_id,
                    image=image,
                    host=host,
                    session=session,
                    measurement=session.cvm.measurement,
                ))
            self.groups.append(members)
            index += len(members)

    # -- serving -----------------------------------------------------------

    def _burst_pairs(self, host: FleetHost) -> list:
        """(session, generator) serving pairs for this host, this epoch."""
        residents = [r for r in self.records if r.alive and r.host is host]
        pairs = []
        boxes: dict[int, dict] = {}
        for record in residents:
            kind = record.kind
            partner = self._partner(record)
            if kind in ("ping", "pong") and (
                partner is None or not partner.alive or partner.host is not host
            ):
                kind = "kv"  # widowed pair member keeps serving solo
            if kind == "kv":
                workload = kv_burst(record.ops_per_epoch)
            elif kind == "file":
                workload = file_burst(record.ops_per_epoch)
            elif kind == "pong":
                box = boxes.setdefault(record.group, {})
                workload = pair_server_burst(
                    partner.measurement, record.ops_per_epoch, box
                )
            else:  # ping
                box = boxes.setdefault(record.group, {})
                workload = pair_client_burst(
                    box, partner.measurement, record.ops_per_epoch
                )
            pairs.append((record.session, workload))
        return pairs

    def _partner(self, record: FleetCvm):
        """The other member of a pair group, or None for singletons."""
        members = self.groups[record.group]
        if len(members) != 2:
            return None
        other = members[0] if members[1] == record.index else members[1]
        return self.records[other]

    def serve_epoch(self, epoch: int) -> None:
        """Run every host's serving round; verify counters; record tput."""
        ops = 0
        cycles = 0
        for host in self.hosts:
            pairs = self._burst_pairs(host)
            if not pairs:
                continue
            before = host.cycles
            results = host.machine.run_concurrent(
                pairs, on_error="contain", wake_priority=True
            )
            cycles += host.cycles - before
            sched = results.get("sched", {})
            for key in self._sched:
                self._sched[key] += sched.get(key, 0)
            by_session = {r.session: r for r in self.records if r.alive}
            for session, _workload in pairs:
                record = by_session[session]
                outcome = results.get(session)
                if isinstance(outcome, ReproError):
                    record.alive = False
                    record.fate = f"contained:{type(outcome).__name__}"
                    self.contained.append(
                        (record.index, type(outcome).__name__, str(outcome))
                    )
                    continue
                if outcome is None:
                    continue
                served = outcome.get("ops", 0)
                ops += served
                record.expected_counter += served
                counter = outcome.get("counter")
                if counter is not None and counter != record.expected_counter:
                    self.violations.append(
                        f"epoch {epoch}: CVM {record.index} guest counter "
                        f"{counter} != expected {record.expected_counter} "
                        "(memory integrity lost across migration)"
                    )
                    record.expected_counter = counter  # report once
        self.ops_per_epoch.append(ops)
        self.cycles_per_epoch.append(cycles)

    # -- rebalancing -------------------------------------------------------

    def _host_load(self, host: FleetHost) -> int:
        return sum(r.weight for r in self.records if r.alive and r.host is host)

    def _movable_groups(self, host: FleetHost) -> list:
        """Group ids fully resident on ``host`` with every member alive."""
        out = []
        for group_id, members in enumerate(self.groups):
            records = [self.records[m] for m in members]
            if all(r.alive and r.host is host for r in records):
                out.append(group_id)
        return out

    def rebalance(self) -> None:
        """One epoch's rebalancing: ``migration_rate`` group moves."""
        for _ in range(self.config.migration_rate):
            loads = [(self._host_load(h), h.host_id) for h in self.hosts]
            src = self.hosts[max(loads)[1]]
            dst = self.hosts[min(loads)[1]]
            movable = self._movable_groups(src)
            if not movable or src is dst:
                # Load is flat (or the hot host holds only broken
                # groups): churn anyway -- the knob is a *rate*, and a
                # live fleet rebalances speculatively too.
                candidates = [
                    (h, self._movable_groups(h)) for h in self.hosts
                ]
                candidates = [(h, g) for h, g in candidates if g]
                if not candidates:
                    return
                src, movable = candidates[
                    self.rng.randrange(len(candidates))
                ]
                others = [h for h in self.hosts if h is not src]
                dst = others[self.rng.randrange(len(others))]
            group_id = movable[self.rng.randrange(len(movable))]
            for member in self.groups[group_id]:
                record = self.records[member]
                if record.alive:
                    self.migrate(record, dst)

    # -- migration ---------------------------------------------------------

    def migrate(self, record: FleetCvm, dst: FleetHost) -> bool:
        """Live-migrate one CVM ``record`` to ``dst``; True on success.

        Applies any migration-seam fault planned for this occurrence
        (the untrusted ferry's tampering), measures downtime, and
        enforces fail-stop containment: a failed migration loses at most
        this one CVM, with a typed error recorded in :attr:`failed`.
        """
        self._mig_count += 1
        events = [e for e in self._mig_events if e.at == self._mig_count]
        sites = {e.site for e in events}
        src = record.host
        key = derive_migration_key(FLEET_SECRET, src.nonce, dst.nonce)

        if "mig_impostor" in sites:
            return self._impostor_arrival(record, src, dst, key)

        src_before = src.cycles
        blob = src.machine.export_confidential_vm(record.session, key)
        src_span = src.cycles - src_before
        # The source instance is gone; from here every failure is a
        # fail-stop loss of this one CVM, never a fleet-wide problem.
        import_key = key
        for event in events:
            if event.site == "mig_blob_flip":
                frac, mask = event.params
                pos = 8 + (frac * (len(blob) - 8)) // 4096
                blob = (blob[:pos]
                        + bytes([blob[pos] ^ mask]) + blob[pos + 1:])
                self.ferry_faults.append(event.describe())
            elif event.site == "mig_blob_truncate":
                (frac,) = event.params
                keep = max(8, (frac * len(blob)) // 4096)
                blob = blob[:keep]
                self.ferry_faults.append(event.describe())
            elif event.site == "mig_stale_key":
                import_key = derive_migration_key(
                    FLEET_SECRET, src.nonce, b"stale-nonce-0000"
                )
                self.ferry_faults.append(event.describe())

        dst_before = dst.cycles
        try:
            session = self._import_and_attest(dst, blob, import_key, record)
        except ReproError as error:
            record.alive = False
            record.fate = f"migration:{type(error).__name__}"
            self.failed.append(
                (record.index, type(error).__name__, str(error))
            )
            return False
        downtime = src_span + (dst.cycles - dst_before)
        record.host = dst
        record.session = session
        record.migrations += 1
        self.migrations += 1
        self.downtimes.append(downtime)

        if "mig_replay" in sites:
            # The ferry re-delivers the very blob that just imported;
            # the destination SM must refuse the clone.
            self.ferry_faults.append("mig_replay[@%d]" % self._mig_count)
            try:
                dst.machine.import_confidential_vm(blob, import_key)
            except SecurityViolation:
                self.replay_refused += 1
            else:
                self.violations.append(
                    f"migration {self._mig_count}: replayed blob imported "
                    f"twice -- CVM {record.index} cloned"
                )
        return True

    def _impostor_arrival(self, record: FleetCvm, src: FleetHost,
                          dst: FleetHost, key: bytes) -> bool:
        """Ferry swaps in a validly-sealed decoy instead of migrating.

        The decoy authenticates (it was sealed by a genuine SM under the
        right key) so only the arrival attestation gate can catch it:
        its measurement is not the one the fleet recorded for this CVM.
        The planned CVM is never exported and keeps serving at the
        source.
        """
        decoy_session = src.machine.launch_confidential_vm(
            image=b"zion-fleet-impostor" * 12
        )
        blob = src.machine.export_confidential_vm(decoy_session, key)
        self.ferry_faults.append("mig_impostor[@%d]" % self._mig_count)
        try:
            self._import_and_attest(dst, blob, key, record)
        except MigrationRejected as error:
            self.attest_rejections += 1
            self.failed.append(
                (record.index, type(error).__name__, str(error))
            )
        except ReproError as error:
            # Refused earlier than attestation (e.g. destination pool
            # pressure): still a contained, typed outcome.
            self.failed.append(
                (record.index, type(error).__name__, str(error))
            )
        else:
            self.violations.append(
                f"migration {self._mig_count}: impostor blob passed the "
                f"arrival attestation gate for CVM {record.index}"
            )
        return False  # the planned migration did not happen

    def _import_and_attest(self, dst: FleetHost, blob: bytes, key: bytes,
                           record: FleetCvm):
        """Import on ``dst`` and run the arrival attestation gate."""
        session = dst.machine.import_confidential_vm(blob, key)
        self.arrivals += 1
        cvm_id = session.cvm.cvm_id
        monitor = dst.machine.monitor
        report = monitor.ecall_attestation_report(cvm_id, b"fleet-arrival")
        self.attest_checked += 1
        if not monitor.attestation.verify_report(report):
            monitor.ecall_destroy(cvm_id)
            raise MigrationRejected(
                cvm_id, record.measurement, b"\0" * 32
            )
        if report.measurement != record.measurement:
            monitor.ecall_destroy(cvm_id)
            raise MigrationRejected(
                cvm_id, record.measurement, report.measurement
            )
        return session

    # -- containment -------------------------------------------------------

    def sweep(self, label: str) -> None:
        """Run the containment sweep on every host; record violations."""
        for host in self.hosts:
            for problem in check_postconditions(host.machine):
                self.violations.append(f"{label} {host.describe()}: {problem}")
            for problem in self._pool_leaks(host):
                self.violations.append(f"{label} {host.describe()}: {problem}")

    def _pool_leaks(self, host: FleetHost) -> list:
        """Fleet-level leak rule: every frame's owner must be alive.

        Valid owners are ``free``, ``sm``, a non-closed channel's token,
        a CVM that is not destroyed, or an allocator block-cache tag for
        such a CVM (``(cvm_id, vcpu_id)`` / ``(cvm_id, "global")``).
        Anything else is a frame some failed lifecycle step forgot to
        recycle.
        """
        monitor = host.machine.monitor
        allowed = {OWNER_FREE, OWNER_SM}
        for channel_id, channel in monitor.channels.channels.items():
            if channel.state is not ChannelState.CLOSED:
                allowed.add(monitor.channels.owner_token(channel_id))
        live_cvms = {
            cvm_id for cvm_id, cvm in monitor.cvms.items()
            if cvm.state is not CvmState.DESTROYED
        }
        allowed |= live_cvms
        problems = []
        for page, owner in monitor.pool._page_owner.items():
            if owner in allowed:
                continue
            if isinstance(owner, tuple) and owner and owner[0] in live_cvms:
                continue  # block-cache reservation of a live CVM
            problems.append(
                f"L1: pool frame {page:#x} leaked to defunct owner "
                f"{owner!r}"
            )
        return problems

    # -- the run -----------------------------------------------------------

    def run(self) -> FleetSeedResult:
        """Execute the whole scenario; returns the seed's result."""
        cfg = self.config
        self.launch()
        injectors = [
            FaultInjector(host.machine, self.plan) for host in self.hosts
        ] if cfg.seams is not None else []
        try:
            for epoch in range(cfg.epochs):
                # Epoch 0 is the cold start and epoch 1 the warm
                # baseline; the rebalancer runs from epoch 2 on.
                if epoch > 1:
                    self.rebalance()
                self.serve_epoch(epoch)
                self.sweep(f"epoch {epoch}:")
        finally:
            for injector in injectors:
                injector.detach()
        for injector in injectors:
            self.violations.extend(
                f"injector {i}: {v}" for i, v in enumerate(injector.violations)
            )
        self.sweep("end:")
        return FleetSeedResult(
            seed=cfg.seed,
            hosts=cfg.hosts,
            cvms=cfg.cvms,
            epochs=cfg.epochs,
            plan=self.plan.describe(),
            migrations=self.migrations,
            failed=self.failed,
            attest_rejections=self.attest_rejections,
            replay_refused=self.replay_refused,
            attest_checked=self.attest_checked,
            arrivals=self.arrivals,
            downtimes=self.downtimes,
            ops_per_epoch=self.ops_per_epoch,
            cycles_per_epoch=self.cycles_per_epoch,
            violations=self.violations,
            contained=self.contained,
            faults_applied=sum(len(i.applied) for i in injectors),
            ferry_faults=self.ferry_faults,
            sched=dict(self._sched),
        )


def run_fleet_seed(seed: int, hosts: int = 4, cvms: int = 12,
                   epochs: int = 6, migration_rate: int = 4,
                   seams: tuple | None = DEFAULT_SEAMS) -> FleetSeedResult:
    """Build and run one seeded fleet scenario (the CLI's unit of work)."""
    config = FleetConfig(
        hosts=hosts, cvms=cvms, epochs=epochs,
        migration_rate=migration_rate, seed=seed, seams=seams,
    )
    return FleetOrchestrator(config).run()


def run_fleet_campaign(seeds, hosts: int = 4, cvms: int = 12,
                       epochs: int = 6, migration_rate: int = 4,
                       seams: tuple | None = DEFAULT_SEAMS) -> list:
    """Run :func:`run_fleet_seed` for every seed; returns the results."""
    return [
        run_fleet_seed(seed, hosts=hosts, cvms=cvms, epochs=epochs,
                       migration_rate=migration_rate, seams=seams)
        for seed in seeds
    ]


def run_fleet_ablation(rates=(1, 2, 4), sizes=((2, 6), (4, 12)),
                       epochs: int = 4, seed: int = 0) -> list:
    """Migration-rate x fleet-size grid (clean runs, no injection).

    Each cell runs one seeded fleet without fault injection -- the
    ablation isolates what rebalancing itself costs -- and reports the
    migration count, downtime statistics, and serving throughput dip.
    """
    cells = []
    for hosts, cvms in sizes:
        for rate in rates:
            result = run_fleet_seed(
                seed, hosts=hosts, cvms=cvms, epochs=epochs,
                migration_rate=rate, seams=None,
            )
            cells.append({
                "hosts": hosts,
                "cvms": cvms,
                "migration_rate": rate,
                "migrations": result.migrations,
                "downtime_mean_cycles": result.downtime_mean,
                "downtime_max_cycles": result.downtime_max,
                "throughput_dip_pct": result.throughput_dip_pct,
                "ops": sum(result.ops_per_epoch),
                "violations": len(result.violations),
            })
    return cells
