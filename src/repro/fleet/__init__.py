"""Fleet orchestration: CVM lifecycle + live migration under load.

The composition scenario that exercises three prior subsystems in one
run: SM channels + attested launch, :mod:`repro.sm.migration`
export/import, and the seeded fault campaign -- wired into a multi-host
rebalancing control loop with per-migration downtime measurement and
containment sweeps.  See ``docs/FLEET.md`` for the control loop, the
downtime methodology and the containment invariants; drive it with
``python -m repro fleet``.
"""

from repro.fleet.host import FleetHost
from repro.fleet.orchestrator import (
    DEFAULT_SEAMS,
    FLEET_SECRET,
    FleetConfig,
    FleetCvm,
    FleetOrchestrator,
    FleetSeedResult,
    run_fleet_ablation,
    run_fleet_campaign,
    run_fleet_seed,
)

__all__ = [
    "FleetHost",
    "FleetConfig",
    "FleetCvm",
    "FleetOrchestrator",
    "FleetSeedResult",
    "run_fleet_seed",
    "run_fleet_campaign",
    "run_fleet_ablation",
    "DEFAULT_SEAMS",
    "FLEET_SECRET",
]
