"""Wall-clock performance harness (``python -m repro perf``).

Measures how fast the *simulator itself* runs -- wall seconds and
simulated cycles per wall second -- over a fixed scenario suite that
exercises the guest memory pipeline end to end:

- ``memstress``: the 2000-page ``sequential_write_stress`` profile (one
  stage-2 fault per page through the SM's allocation stages);
- ``pingpong``: inter-CVM channel ping-pong under ``run_concurrent``
  (doorbells, scheduler rotations, ring loads/stores);
- ``redis``: the in-guest RESP server over virtio-net + SWIOTLB (the
  full I/O path: MMIO exits, bounce copies, interrupt delivery);
- ``redis_cluster``: the sharded key-value cluster over SM channels
  (router + N shard CVMs, pipelined clients; see docs/DATA_PLANE.md);
- ``switch_path``: a tight short-path world-switch loop (E2's shape);
- ``fleet``: the multi-host rebalancing control loop (clean run, no
  fault injection): live migrations between simulated hosts, with
  per-migration downtime reported alongside the wall-clock numbers
  (see docs/FLEET.md);
- ``iozone`` / ``redis_batch``: batched-vs-naive virtio data-plane
  ablations (one naive arm, one batched arm, identical payload work);
  their ``extra`` blocks carry per-arm kick/interrupt/MMIO-exit counts
  and the reduction ratios (see docs/DATA_PLANE.md).

The harness enforces the repository's one hard performance invariant:
**optimizations may change how fast Python executes the model, never what
the model charges**.  Every scenario's simulated cycle total is compared
against ``perf_goldens.json`` (recorded from the pre-optimization tree);
any deviation is a model change, not an optimization, and fails the run.

Results land in ``BENCH_PERF.json`` -- wall seconds, simulated cycles and
cycles-per-wall-second per scenario -- which CI uploads as an artifact so
the wall-clock trajectory of the simulator is tracked over time.  See
docs/INTERNALS.md section 11 for how to read it.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

from repro.machine import Machine, MachineConfig

#: Golden simulated-cycle totals per scenario (recorded from the
#: pre-optimization tree; see module docstring).
GOLDEN_PATH = pathlib.Path(__file__).with_name("perf_goldens.json")

#: Committed quick-mode wall-clock baseline for the CI perf gate
#: (re-recorded with ``--quick --update-baseline`` when the expected
#: performance envelope legitimately moves).
BASELINE_PATH = pathlib.Path(__file__).with_name("perf_baseline_quick.json")

#: The perf gate fails when a scenario's median wall time regresses by
#: more than this fraction over the committed baseline.
GATE_THRESHOLD = 0.10

#: Scenario parameters at full scale (the documented profiles) and quick
#: scale (CI smoke: same code paths, ~5x less work).
FULL_PARAMS = {
    "memstress": {"pages": 2000},
    "pingpong": {"rounds": 64, "message_size": 256},
    "redis": {"requests": 400, "op": "GET"},
    "redis_cluster": {"shards": 4, "clients": 4, "requests": 64, "pipeline": 8},
    "switch_path": {"iterations": 400},
    "fleet": {"hosts": 3, "cvms": 8, "epochs": 5, "migration_rate": 3},
    "iozone": {"file_mb": 4, "record_kb": 64, "queue_depth": 8},
    "redis_batch": {"requests": 200, "pipeline": 8, "op": "GET"},
}
QUICK_PARAMS = {
    "memstress": {"pages": 400},
    "pingpong": {"rounds": 16, "message_size": 256},
    "redis": {"requests": 100, "op": "GET"},
    "redis_cluster": {"shards": 2, "clients": 2, "requests": 16, "pipeline": 4},
    "switch_path": {"iterations": 100},
    "fleet": {"hosts": 2, "cvms": 4, "epochs": 3, "migration_rate": 2},
    "iozone": {"file_mb": 2, "record_kb": 64, "queue_depth": 8},
    "redis_batch": {"requests": 64, "pipeline": 8, "op": "GET"},
}


@dataclasses.dataclass(frozen=True)
class ScenarioRun:
    """One measured scenario: the wall/simulated-cycle pair."""

    name: str
    params: dict
    #: Wall-clock seconds of the timed section (workload only; machine
    #: construction and VM launch are setup, not pipeline).
    wall_seconds: float
    #: Simulated cycles charged during the timed section.
    cycles: int
    #: Ledger total at the end of the run (setup included) -- the
    #: golden-checked quantity, so launch-path drift is caught too.
    total_cycles: int
    #: Per-category breakdown of the whole run (category name -> cycles).
    breakdown: dict
    #: Scenario-specific figures merged into the report verbatim (e.g.
    #: the fleet scenario's migration count and downtime statistics).
    extra: dict = dataclasses.field(default_factory=dict)

    @property
    def cycles_per_wall_second(self) -> float:
        """Simulator throughput: simulated cycles per wall second."""
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0


def _measure(name: str, params: dict, machine: Machine, timed) -> ScenarioRun:
    """Run ``timed()`` under the wall clock and package the result."""
    cycles_before = machine.ledger.total
    t0 = time.perf_counter()
    timed()
    wall = time.perf_counter() - t0
    return ScenarioRun(
        name=name,
        params=dict(params),
        wall_seconds=wall,
        cycles=machine.ledger.total - cycles_before,
        total_cycles=machine.ledger.total,
        breakdown={
            cat.name: cycles for cat, cycles in machine.ledger.by_category().items()
        },
    )


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def run_memstress(pages: int = 2000) -> ScenarioRun:
    """Sequential first-touch write sweep: one stage-2 fault per page."""
    from repro.workloads.memstress import sequential_write_stress

    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"perf" * 100)
    workload = sequential_write_stress(pages)
    return _measure(
        "memstress", {"pages": pages}, machine,
        lambda: machine.run(session, workload),
    )


def run_pingpong(rounds: int = 64, message_size: int = 256) -> ScenarioRun:
    """Inter-CVM channel ping-pong (doorbell arm) under run_concurrent."""
    from repro.workloads.pingpong import pingpong_client, pingpong_server

    machine = Machine(MachineConfig())
    image = b"perf-ipc-guest" * 64
    server = machine.launch_confidential_vm(image=image)
    client = machine.launch_confidential_vm(image=image)
    box: dict = {}
    measurement = server.cvm.measurement
    pairs = [
        (server, pingpong_server(rounds=rounds,
                                 expected_peer_measurement=measurement,
                                 channel_box=box)),
        (client, pingpong_client(box, message_size=message_size, rounds=rounds,
                                 expected_creator_measurement=measurement)),
    ]
    return _measure(
        "pingpong", {"rounds": rounds, "message_size": message_size}, machine,
        lambda: machine.run_concurrent(pairs),
    )


def run_redis(requests: int = 400, op: str = "GET") -> ScenarioRun:
    """In-guest RESP server over virtio-net: the full CVM I/O path."""
    from repro.workloads.redis import redis_benchmark

    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"redis" * 200)
    machine.attach_virtio_net(session)
    return _measure(
        "redis", {"requests": requests, "op": op}, machine,
        lambda: redis_benchmark(machine, session, op, requests),
    )


def run_redis_cluster(shards: int = 4, clients: int = 4, requests: int = 64,
                      pipeline: int = 8) -> ScenarioRun:
    """Sharded redis over SM channels: router + N shards, pipelined."""
    from repro.bench.redis_cluster import build_cluster

    machine, pairs, _sessions = build_cluster(
        shards, clients, requests, pipeline
    )
    params = {
        "shards": shards, "clients": clients,
        "requests": requests, "pipeline": pipeline,
    }
    return _measure(
        "redis_cluster", params, machine,
        lambda: machine.run_concurrent(pairs, wake_priority=True),
    )


def _virtio_ablation(name: str, params: dict, naive_arm, batched_arm) -> ScenarioRun:
    """Package a naive-vs-batched virtio pair as one scenario.

    Both arms run identical payload work; cycles and breakdowns are
    summed over the two machines (the fleet pattern), and the per-arm
    exit/kick/interrupt statistics plus their reduction ratios ride in
    :attr:`ScenarioRun.extra` -- the acceptance figure for the batched
    data plane is ``mmio_exit_reduction >= 2``.
    """
    t0 = time.perf_counter()
    naive_machine, naive = naive_arm()
    batched_machine, batched = batched_arm()
    wall = time.perf_counter() - t0
    total = naive_machine.ledger.total + batched_machine.ledger.total
    breakdown: dict = {}
    for machine in (naive_machine, batched_machine):
        for cat, cycles in machine.ledger.by_category().items():
            breakdown[cat.name] = breakdown.get(cat.name, 0) + cycles
    return ScenarioRun(
        name=name,
        params=params,
        wall_seconds=wall,
        cycles=total,
        total_cycles=total,
        breakdown=breakdown,
        extra={
            "naive": naive,
            "batched": batched,
            "mmio_exit_reduction": round(
                naive["mmio_exits"] / batched["mmio_exits"], 2
            ) if batched["mmio_exits"] else 0.0,
            "kick_reduction": round(
                naive["kicks"] / batched["kicks"], 2
            ) if batched["kicks"] else 0.0,
            "irq_reduction": round(
                naive["irqs_raised"] / batched["irqs_raised"], 2
            ) if batched["irqs_raised"] else 0.0,
            "cycle_reduction": round(
                naive["cycles"] / batched["cycles"], 3
            ) if batched["cycles"] else 0.0,
        },
    )


def _virtio_arm_stats(machine: Machine, device) -> dict:
    return {
        "kicks": device.kicks,
        "irqs_raised": device.irqs_raised,
        "completions": device.completions,
        "mmio_exits": machine.hypervisor.mmio_exits,
        "cycles": machine.ledger.total,
    }


def run_iozone(file_mb: int = 4, record_kb: int = 64, queue_depth: int = 8) -> ScenarioRun:
    """Batched-vs-naive virtio-blk ablation on the IOZone streaming path.

    A deliberately small (1 MB) page cache forces writeback/readahead to
    stream every byte through virtio-blk.  The naive arm submits one
    request per kick with per-descriptor interrupts (``event_idx=False``,
    depth 1 -- the pre-batching data plane); the batched arm stages
    ``queue_depth`` requests per doorbell with interrupt suppression.
    Identical file/record work on both arms, so every exit saved is the
    batching's doing.
    """
    from repro.workloads.iozone import iozone_workload

    cache_bytes = 1 << 20
    file_bytes = file_mb << 20
    record_bytes = record_kb << 10

    def arm(depth: int, event_idx: bool):
        machine = Machine(MachineConfig())
        session = machine.launch_confidential_vm(image=b"iozone" * 100)
        machine.attach_virtio_block(session, event_idx=event_idx)
        machine.run(
            session,
            iozone_workload(file_bytes, record_bytes, cache_bytes,
                            queue_depth=depth),
        )
        return machine, _virtio_arm_stats(machine, session.virtio_blk)

    return _virtio_ablation(
        "iozone",
        {"file_mb": file_mb, "record_kb": record_kb, "queue_depth": queue_depth},
        lambda: arm(1, False),
        lambda: arm(queue_depth, True),
    )


def run_redis_batch(requests: int = 200, pipeline: int = 8, op: str = "GET") -> ScenarioRun:
    """Batched-vs-naive virtio-net ablation on the redis request path.

    Same request count and operation on both arms.  The naive arm runs
    unpipelined with per-descriptor interrupts (one TX kick and one IRQ
    per reply); the batched arm pipelines ``pipeline`` requests per
    wake-up, so the server's reply batch rides one kick and one
    suppressed-interrupt drain.
    """
    from repro.workloads.redis import redis_benchmark

    def arm(pl: int, event_idx: bool):
        machine = Machine(MachineConfig())
        session = machine.launch_confidential_vm(image=b"redis" * 200)
        machine.attach_virtio_net(session, event_idx=event_idx)
        redis_benchmark(machine, session, op, requests, pipeline=pl)
        return machine, _virtio_arm_stats(machine, session.virtio_net)

    return _virtio_ablation(
        "redis_batch",
        {"requests": requests, "pipeline": pipeline, "op": op},
        lambda: arm(1, False),
        lambda: arm(pipeline, True),
    )


def run_switch_path(iterations: int = 400) -> ScenarioRun:
    """Tight short-path world-switch loop (timer exits, E2's shape)."""
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=b"bench" * 100)
    cvm, vcpu = session.cvm, session.cvm.vcpu(0)
    ws = machine.monitor.world_switch
    exit_info = {"kind": "timer", "cause": 7}

    def timed():
        ws.enter_cvm(machine.hart, cvm, vcpu)
        for _ in range(iterations):
            ws.exit_to_normal(machine.hart, cvm, vcpu, dict(exit_info))
            ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "halt", "cause": 0})

    return _measure("switch_path", {"iterations": iterations}, machine, timed)


def run_fleet(hosts: int = 3, cvms: int = 8, epochs: int = 5,
              migration_rate: int = 3) -> ScenarioRun:
    """Multi-host fleet rebalancing loop (clean run, no fault injection).

    The only multi-machine scenario: cycles are summed over every host's
    independent ledger, and the fleet's own figures (migration count,
    per-migration downtime, serving-throughput dip) ride along in
    :attr:`ScenarioRun.extra` so ``BENCH_PERF.json`` carries the paper's
    migration-cost story next to the wall-clock one.
    """
    from repro.fleet import FleetConfig, FleetOrchestrator

    config = FleetConfig(hosts=hosts, cvms=cvms, epochs=epochs,
                         migration_rate=migration_rate, seed=0, seams=None)
    orchestrator = FleetOrchestrator(config)
    t0 = time.perf_counter()
    result = orchestrator.run()
    wall = time.perf_counter() - t0
    total = sum(host.cycles for host in orchestrator.hosts)
    breakdown: dict = {}
    for host in orchestrator.hosts:
        for cat, cycles in host.machine.ledger.by_category().items():
            breakdown[cat.name] = breakdown.get(cat.name, 0) + cycles
    return ScenarioRun(
        name="fleet",
        params={"hosts": hosts, "cvms": cvms, "epochs": epochs,
                "migration_rate": migration_rate},
        wall_seconds=wall,
        cycles=total,
        total_cycles=total,
        breakdown=breakdown,
        extra={
            "migrations": result.migrations,
            "downtime_mean_cycles": round(result.downtime_mean, 1),
            "downtime_max_cycles": result.downtime_max,
            "throughput_dip_pct": round(result.throughput_dip_pct, 2),
        },
    )


SCENARIOS = {
    "memstress": run_memstress,
    "pingpong": run_pingpong,
    "redis": run_redis,
    "redis_cluster": run_redis_cluster,
    "switch_path": run_switch_path,
    "fleet": run_fleet,
    "iozone": run_iozone,
    "redis_batch": run_redis_batch,
}


# ---------------------------------------------------------------------------
# Suite driver / report / golden check
# ---------------------------------------------------------------------------


def run_suite(quick: bool = False, only=None) -> list:
    """Run the scenario suite; returns a list of :class:`ScenarioRun`."""
    params = QUICK_PARAMS if quick else FULL_PARAMS
    runs = []
    for name, runner in SCENARIOS.items():
        if only is not None and name not in only:
            continue
        runs.append(runner(**params[name]))
    return runs


def build_report(runs, quick: bool) -> dict:
    """The ``BENCH_PERF.json`` structure."""
    return {
        "schema": 1,
        "mode": "quick" if quick else "full",
        "scenarios": {
            run.name: {
                "params": run.params,
                "wall_seconds": round(run.wall_seconds, 6),
                "cycles": run.cycles,
                "total_cycles": run.total_cycles,
                "cycles_per_wall_second": round(run.cycles_per_wall_second, 1),
                "breakdown": run.breakdown,
                **run.extra,
            }
            for run in runs
        },
    }


def write_report(report: dict, path) -> None:
    """Write the report as pretty-printed JSON to ``path``."""
    pathlib.Path(path).write_text(json.dumps(report, indent=2) + "\n")


def load_goldens(path=GOLDEN_PATH) -> dict:
    """The committed golden cycle totals ({mode: {scenario: total}})."""
    return json.loads(pathlib.Path(path).read_text())


def check_goldens(runs, quick: bool, goldens: dict | None = None) -> list:
    """Compare each run's cycle total to the golden file.

    Returns a list of human-readable mismatch strings (empty == pass).
    A scenario absent from the golden file is a mismatch too: goldens are
    recorded deliberately (``--update-goldens``), never implied.
    """
    if goldens is None:
        goldens = load_goldens()
    mode = "quick" if quick else "full"
    expected = goldens.get(mode, {})
    problems = []
    for run in runs:
        want = expected.get(run.name)
        if want is None:
            problems.append(f"{run.name}: no {mode}-mode golden recorded")
        elif want != run.total_cycles:
            problems.append(
                f"{run.name}: simulated cycle total {run.total_cycles} != "
                f"golden {want} (drift {run.total_cycles - want:+d}); the "
                "model changed -- update perf_goldens.json only if that is "
                "intentional"
            )
    return problems


def median_runs(all_runs) -> list:
    """Collapse repeated suite executions to one run per scenario.

    Picks, independently per scenario, the run with the median wall time
    across the repeats -- the robust center the CI gate compares, immune
    to a single noisy neighbour on the runner.  Cycle totals are
    identical across repeats (the model is deterministic), so medianing
    only ever selects between equal-cycle measurements.
    """
    by_name: dict = {}
    order: list = []
    for runs in all_runs:
        for run in runs:
            if run.name not in by_name:
                order.append(run.name)
            by_name.setdefault(run.name, []).append(run)
    chosen = []
    for name in order:
        candidates = sorted(by_name[name], key=lambda run: run.wall_seconds)
        chosen.append(candidates[len(candidates) // 2])
    return chosen


def compare_reports(previous: dict, current: dict) -> list:
    """Per-scenario wall/cycle deltas between two ``BENCH_PERF`` reports.

    Returns rows of ``(name, prev_wall, cur_wall, prev_cycles,
    cur_cycles)`` in the current report's scenario order; a scenario
    missing from the previous report carries ``None`` for its prev
    fields.  Callers decide presentation (the CLI prints a delta table).
    """
    prev = previous.get("scenarios", {})
    rows = []
    for name, cur in current.get("scenarios", {}).items():
        old = prev.get(name)
        rows.append((
            name,
            old["wall_seconds"] if old else None,
            cur["wall_seconds"],
            old["total_cycles"] if old else None,
            cur["total_cycles"],
        ))
    return rows


def check_gate(runs, baseline: dict, threshold: float = GATE_THRESHOLD) -> list:
    """Wall-clock regression gate against a committed baseline report.

    Returns human-readable failure strings (empty == pass): a scenario
    regressing more than ``threshold`` over its baseline wall time, or
    one with no baseline at all (baselines are recorded deliberately,
    like goldens).  Faster-than-baseline runs pass silently -- the gate
    is one-sided; improvements land by re-recording the baseline.
    """
    scenarios = baseline.get("scenarios", {})
    problems = []
    for run in runs:
        base = scenarios.get(run.name)
        if base is None:
            problems.append(f"{run.name}: no baseline wall time recorded")
            continue
        limit = base["wall_seconds"] * (1.0 + threshold)
        if run.wall_seconds > limit:
            problems.append(
                f"{run.name}: wall {run.wall_seconds:.3f}s exceeds baseline "
                f"{base['wall_seconds']:.3f}s by more than {threshold:.0%} "
                f"(limit {limit:.3f}s)"
            )
    return problems


def update_goldens(runs, quick: bool, path=GOLDEN_PATH) -> dict:
    """Record the runs' cycle totals as the new goldens for this mode."""
    try:
        goldens = load_goldens(path)
    except FileNotFoundError:
        goldens = {}
    mode = "quick" if quick else "full"
    goldens.setdefault(mode, {})
    for run in runs:
        goldens[mode][run.name] = run.total_cycles
    pathlib.Path(path).write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    return goldens
