"""Microbenchmark runners: E1 (shared vCPU), E2 (switch path), E3 (faults).

Each runner repeats the paper's measurement procedure (200 trials) on a
fresh machine and returns mean cycle counts with the relevant structure.
"""

from __future__ import annotations

import statistics

from repro import Machine, MachineConfig
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import AllocStage
from repro.workloads.memstress import sequential_write_stress

DEFAULT_ITERATIONS = 200

_MMIO_EXIT = {
    "kind": "mmio_load",
    "cause": 21,
    "htval": 0x1000_0000,
    "htinst": 0x503,
    "gpr_index": 10,
    "gpr_value": 0,
}
_TIMER_EXIT = {"kind": "timer", "cause": 7}


def _measure_switches(machine: Machine, exit_info: dict, iterations: int) -> dict:
    """Mean entry/exit switching cycles over ``iterations`` round trips."""
    session = machine.launch_confidential_vm(image=b"bench" * 100)
    cvm, vcpu = session.cvm, session.cvm.vcpu(0)
    ws = machine.monitor.world_switch
    ws.enter_cvm(machine.hart, cvm, vcpu)
    entry_samples, exit_samples = [], []
    is_mmio = exit_info["kind"].startswith("mmio")
    for _ in range(iterations):
        with machine.ledger.span() as exit_span:
            ws.exit_to_normal(machine.hart, cvm, vcpu, dict(exit_info))
        if is_mmio:
            # The hypervisor/QEMU services the MMIO exit (untimed: the
            # paper measures the switching time, not device emulation).
            machine.hypervisor.handle_cvm_exit(
                machine.hart, machine.monitor, cvm, 0
            )
        with machine.ledger.span() as entry_span:
            ws.enter_cvm(machine.hart, cvm, vcpu)
        exit_samples.append(exit_span.cycles)
        entry_samples.append(entry_span.cycles)
    return {
        "entry_cycles": statistics.mean(entry_samples),
        "exit_cycles": statistics.mean(exit_samples),
        "iterations": iterations,
    }


def run_vcpu_switch_experiment(iterations: int = DEFAULT_ITERATIONS) -> dict:
    """E1: MMIO-triggered switches with and without the shared vCPU."""
    with_shared = _measure_switches(
        Machine(MachineConfig(use_shared_vcpu=True)), _MMIO_EXIT, iterations
    )
    without_shared = _measure_switches(
        Machine(MachineConfig(use_shared_vcpu=False)), _MMIO_EXIT, iterations
    )

    def improvement(before, after):
        return 100.0 * (before - after) / before

    return {
        "entry_with_shared": with_shared["entry_cycles"],
        "entry_without_shared": without_shared["entry_cycles"],
        "entry_improvement_pct": improvement(
            without_shared["entry_cycles"], with_shared["entry_cycles"]
        ),
        "exit_with_shared": with_shared["exit_cycles"],
        "exit_without_shared": without_shared["exit_cycles"],
        "exit_improvement_pct": improvement(
            without_shared["exit_cycles"], with_shared["exit_cycles"]
        ),
    }


def run_switch_path_experiment(iterations: int = DEFAULT_ITERATIONS) -> dict:
    """E2: timer-triggered switches, ZION short path vs secure-hypervisor
    long path (no vCPU state update involved, as in the paper)."""
    short = _measure_switches(
        Machine(MachineConfig(long_path=False)), _TIMER_EXIT, iterations
    )
    long = _measure_switches(
        Machine(MachineConfig(long_path=True)), _TIMER_EXIT, iterations
    )

    def improvement(before, after):
        return 100.0 * (before - after) / before

    return {
        "entry_short_path": short["entry_cycles"],
        "entry_long_path": long["entry_cycles"],
        "entry_improvement_pct": improvement(
            long["entry_cycles"], short["entry_cycles"]
        ),
        "exit_short_path": short["exit_cycles"],
        "exit_long_path": long["exit_cycles"],
        "exit_improvement_pct": improvement(
            long["exit_cycles"], short["exit_cycles"]
        ),
    }


def run_page_fault_experiment(pages: int = 512, small_pool: bool = True) -> dict:
    """E3: stage-2 fault handling, normal KVM path vs the SM's 3 stages.

    ``pages`` sequential first-touch faults per VM.  With ``small_pool``
    the CVM's pool starts small enough that the sweep triggers stage-3
    expansion, so all three stages appear (as in the paper's Fig. 2
    discussion).
    """
    # Normal VM.
    machine = Machine(MachineConfig())
    kvm_samples = []
    machine.fault_observer = lambda kind, stage, cycles: kvm_samples.append(cycles)
    session = machine.launch_normal_vm()
    machine.run(session, sequential_write_stress(pages))

    # Confidential VM.
    pool = (2 << 20) if small_pool else (64 << 20)
    machine = Machine(MachineConfig(initial_pool_bytes=pool))
    sm_samples: dict = {stage: [] for stage in AllocStage}

    def observe(kind, stage, cycles):
        sm_samples[stage].append(cycles)

    machine.fault_observer = observe
    session = machine.launch_confidential_vm(image=b"pf" * 100)
    machine.run(session, sequential_write_stress(pages))

    all_cvm = [c for samples in sm_samples.values() for c in samples]
    result = {
        "normal_vm": statistics.mean(kvm_samples),
        "cvm_average": statistics.mean(all_cvm),
        "pages": pages,
        "stage_counts": {s.name: len(sm_samples[s]) for s in AllocStage},
    }
    for stage, key in (
        (AllocStage.PAGE_CACHE, "cvm_stage1"),
        (AllocStage.NEW_BLOCK, "cvm_stage2"),
        (AllocStage.POOL_EXPANSION, "cvm_stage3"),
    ):
        result[key] = statistics.mean(sm_samples[stage]) if sm_samples[stage] else None
    return result
