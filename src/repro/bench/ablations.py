"""Ablation runners for ZION's design choices (DESIGN.md section 7).

Each ablation flips one design decision and measures what the paper's
corresponding mechanism buys:

- **secure-block size** (default 256 KB): larger blocks amortise stage-2
  refills over more stage-1 hits but waste memory per vCPU;
- **page cache** (stage 1): disabling it (1-page blocks) sends every
  fault through the block list;
- **shared-window premapping**: demand-faulting the shared region turns
  first-touch I/O setup into extra world switches;
- **TLB-flush policy**: the world-switch ``hfence`` is the dominant term
  of CPU-bound overhead; this quantifies its contribution.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro import Machine, MachineConfig
from repro.cycles import DEFAULT_COSTS
from repro.sm.alloc import AllocStage
from repro.workloads.memstress import sequential_write_stress


def run_block_size_ablation(block_sizes=(64 << 10, 256 << 10, 1 << 20), pages: int = 512) -> dict:
    """Average CVM fault cost and stage mix per secure-block size."""
    rows = {}
    for block_size in block_sizes:
        machine = Machine(MachineConfig(secure_block_size=block_size))
        samples = {stage: [] for stage in AllocStage}
        machine.fault_observer = (
            lambda kind, stage, cycles, s=samples: s[stage].append(cycles)
        )
        session = machine.launch_confidential_vm(image=b"abl" * 100)
        machine.run(session, sequential_write_stress(pages))
        all_faults = [c for stage_samples in samples.values() for c in stage_samples]
        rows[block_size] = {
            "avg_fault_cycles": statistics.mean(all_faults),
            "stage1_share_pct": 100.0 * len(samples[AllocStage.PAGE_CACHE]) / len(all_faults),
            "stage2_count": len(samples[AllocStage.NEW_BLOCK]),
            "pool_bytes_held": sum(
                block.size
                for block in machine.monitor._cvm_blocks[session.cvm.cvm_id]
            ),
        }
    return rows


def run_page_cache_ablation(pages: int = 256) -> dict:
    """With vs. without the per-vCPU page cache (allocator ablation).

    Without it, every fault takes the global pool list under its lock --
    the contention-and-walk cost stage 1 exists to avoid (paper IV-D).
    """
    rows = {}
    for label, use_cache in (("with_cache", True), ("no_cache", False)):
        machine = Machine(MachineConfig(use_page_cache=use_cache))
        samples = []
        machine.fault_observer = lambda kind, stage, cycles, s=samples: s.append(cycles)
        session = machine.launch_confidential_vm(image=b"abl" * 100)
        machine.run(session, sequential_write_stress(pages))
        rows[label] = statistics.mean(samples)
    rows["cache_benefit_pct"] = 100.0 * (rows["no_cache"] - rows["with_cache"]) / rows["no_cache"]
    return rows


def run_shared_premap_ablation(io_requests: int = 32) -> dict:
    """Premapped vs. demand-faulted shared window under virtio traffic."""
    rows = {}
    for label, window in (("premapped", 4 << 20), ("demand_faulted", None)):
        machine = Machine(MachineConfig())
        kwargs = {} if window is None else {"shared_window": window}
        if window is None:
            # Minimal window: just the virtqueue rings + first slots.
            kwargs = {"shared_window": 64 << 10}
        session = machine.launch_confidential_vm(image=b"abl" * 100, **kwargs)
        machine.attach_virtio_block(session)

        def workload(ctx):
            blk = ctx.blk_driver()
            for i in range(io_requests):
                blk.write(i * 64, 16 << 10)

        exits_before = session.cvm.exit_count
        result = machine.run(session, workload)
        rows[label] = {
            "cycles": result["cycles"],
            "cvm_exits": session.cvm.exit_count - exits_before,
        }
    return rows


def run_tlb_flush_ablation(compute_cycles: int = 20_000_000) -> dict:
    """World-switch hfence cost: default vs. a hypothetical free flush.

    Quantifies how much of the CPU-bound overhead the conservative
    PMP-toggle flush policy accounts for (both the flush instruction and
    the guest's TLB re-walks afterward are included by construction).
    """
    from repro.hyp.devices import ConsoleDevice
    from repro.workloads.cpu import CONSOLE_GPA, cpu_bound_workload
    from repro.workloads.profiles import RV8_PROFILES

    profile = RV8_PROFILES["aes"]
    rows = {}
    for label, costs in (
        ("default", DEFAULT_COSTS),
        ("free_hfence", dataclasses.replace(DEFAULT_COSTS, tlb_flush_gvma=0)),
    ):
        cycles = {}
        for kind in ("normal", "cvm"):
            machine = Machine(MachineConfig(costs=costs))
            machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
            if kind == "cvm":
                session = machine.launch_confidential_vm(image=b"abl" * 100)
            else:
                session = machine.launch_normal_vm()
            result = machine.run(session, cpu_bound_workload(profile, compute_cycles))
            cycles[kind] = result["workload_result"]["cycles"]
        rows[label] = 100.0 * (cycles["cvm"] - cycles["normal"]) / cycles["normal"]
    return rows
