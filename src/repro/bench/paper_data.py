"""Every number the paper's evaluation section reports (section V).

These are the reproduction targets.  Units are cycles unless noted.
"""

# --- E1: shared-vCPU optimization (section V-B.1) -------------------------
VCPU_SWITCH = {
    "entry_without_shared": 5_293,
    "entry_with_shared": 4_191,
    "entry_improvement_pct": 20.8,
    "exit_without_shared": 3_267,
    "exit_with_shared": 2_524,
    "exit_improvement_pct": 22.74,
}

# --- E2: short-path vs long-path CVM mode (section V-B.2) ------------------
SWITCH_PATH = {
    "entry_long_path": 7_282,
    "entry_short_path": 4_028,
    "entry_improvement_pct": 44.7,
    "exit_long_path": 5_384,
    "exit_short_path": 2_406,
    "exit_improvement_pct": 55.3,
}

# --- E3: stage-2 page-fault handling (section V-C) --------------------------
PAGE_FAULT = {
    "normal_vm": 39_607,
    "cvm_stage1": 31_103,
    "cvm_stage2": 34_729,
    "cvm_stage3": 57_152,
    "cvm_average": 31_449,
}

# --- E4: RV8 benchmarks (Table I; baseline in 10^9 cycles) ------------------
RV8_TABLE_I = {
    "aes": {"normal_1e9": 6.312, "overhead_pct": 2.95},
    "bigint": {"normal_1e9": 8.965, "overhead_pct": 2.73},
    "dhrystone": {"normal_1e9": 4.144, "overhead_pct": 2.90},
    "miniz": {"normal_1e9": 25.412, "overhead_pct": 1.92},
    "norx": {"normal_1e9": 3.905, "overhead_pct": 2.79},
    "primes": {"normal_1e9": 19.002, "overhead_pct": 1.81},
    "qsort": {"normal_1e9": 2.148, "overhead_pct": 2.65},
    "sha512": {"normal_1e9": 3.947, "overhead_pct": 2.93},
}
RV8_AVERAGE_OVERHEAD_PCT = 2.59

# --- E5: CoreMark (section V-D) ------------------------------------------------
COREMARK = {
    "normal_score": 2_047.6,
    "cvm_score": 1_992.3,
    "overhead_pct": 2.77,
}

# --- E6: Redis benchmark (Fig. 3) ------------------------------------------------
REDIS = {
    "avg_throughput_drop_pct": 5.3,
    "avg_latency_increase_pct": 4.0,
    # The figure plots these operation types (redis-benchmark's set).
    "ops": [
        "SET", "GET", "INCR", "LPUSH", "RPUSH", "LPOP", "RPOP",
        "SADD", "HSET", "SPOP", "LRANGE_100", "MSET",
    ],
    "rounds": 10,
    "requests_per_round": 10_000,
}

# --- E7: IOZone (Fig. 4) -----------------------------------------------------------
IOZONE = {
    "file_sizes": [64 << 10, 512 << 10, 4 << 20, 32 << 20,
                   128 << 20, 256 << 20, 512 << 20],
    "record_sizes": [8 << 10, 128 << 10, 512 << 10],
    "small_file_overhead_pct_max": 5.0,
    "large_file_overhead_pct_max": 20.0,
}

# --- Platform -------------------------------------------------------------------------
PLATFORM = {
    "cores": 4,
    "isa": "RV64 Rocket + H extension",
    "clock_hz": 100_000_000,
    "memory_bytes": 1 << 30,
    "host_kernel": "Linux 5.19.16",
}

# --- Headline claim ---------------------------------------------------------------------
HEADLINE = "ZION incurs less than 5% overhead in most real-world applications"
