"""Table/figure formatting for the experiment harness.

Each benchmark prints the same rows/series the paper reports, side by
side with the paper's values, so EXPERIMENTS.md can be regenerated from
bench output.
"""

from __future__ import annotations


def format_comparison_table(title: str, rows, columns) -> str:
    """Render a fixed-width comparison table.

    ``rows`` is a list of (label, {column: value}); ``columns`` is a list
    of (column_key, header, format_spec).
    """
    header_cells = ["{:<22}".format(title)]
    for _key, header, _fmt in columns:
        header_cells.append("{:>18}".format(header))
    lines = ["".join(header_cells), "-" * (22 + 18 * len(columns))]
    for label, values in rows:
        cells = ["{:<22}".format(label)]
        for key, _header, fmt in columns:
            value = values.get(key)
            if value is None:
                cells.append("{:>18}".format("-"))
            else:
                cells.append("{:>18}".format(format(value, fmt)))
        lines.append("".join(cells))
    return "\n".join(lines)


def ratio(measured, paper) -> float | None:
    """measured / paper, or None when either side is missing."""
    if measured is None or paper in (None, 0):
        return None
    return measured / paper


def human_bytes(n: int) -> str:
    """Compact byte-count rendering (8KB, 4MB, ...)."""
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:g}{unit}"
        n //= 1024
    return f"{n}TB"
