"""Macrobenchmark runners: E4 (RV8), E5 (CoreMark), E6 (Redis), E7 (IOZone).

Every runner executes the identical guest workload on a normal VM and a
confidential VM of the same machine configuration and reports the
emergent overhead.  CPU-bound runs are scaled down from the paper's
multi-billion-cycle runtimes (``scale``): overhead percentages are
scale-invariant because the timer-tick period -- the per-switch cost
driver -- stays at its real value.
"""

from __future__ import annotations

from repro import Machine, MachineConfig
from repro.bench import paper_data
from repro.hyp.devices import ConsoleDevice
from repro.workloads.coremark import coremark_workload, score_from
from repro.workloads.cpu import CONSOLE_GPA, cpu_bound_workload
from repro.workloads.iozone import iozone_run
from repro.workloads.profiles import RV8_PROFILES
from repro.workloads.redis import redis_benchmark

#: Default scale-down of paper runtimes for the CPU-bound suites.
DEFAULT_SCALE = 0.02


def _machine_with_console() -> Machine:
    machine = Machine(MachineConfig())
    machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
    return machine


def _run_cpu_pair(workload_factory) -> dict:
    """Run one CPU-bound workload on a normal and a confidential VM.

    Compares the workloads' steady-state cycle counts (post-warm-up, as
    the workload reports them) -- the scale-invariant view of the paper's
    full-length runs.
    """
    machine = _machine_with_console()
    normal = machine.run(machine.launch_normal_vm(), workload_factory())

    machine = _machine_with_console()
    session = machine.launch_confidential_vm(image=b"rv8" * 400)
    confidential = machine.run(session, workload_factory())

    normal_cycles = normal["workload_result"]["cycles"]
    cvm_cycles = confidential["workload_result"]["cycles"]
    overhead = 100.0 * (cvm_cycles - normal_cycles) / normal_cycles
    return {
        "normal_cycles": normal_cycles,
        "cvm_cycles": cvm_cycles,
        "overhead_pct": overhead,
    }


def run_rv8_experiment(scale: float = DEFAULT_SCALE, benchmarks=None) -> dict:
    """E4 / Table I: the RV8 suite, normal vs confidential."""
    names = benchmarks if benchmarks is not None else list(RV8_PROFILES)
    rows = {}
    for name in names:
        profile = RV8_PROFILES[name]
        target = int(profile.total_cycles * scale)
        pair = _run_cpu_pair(lambda p=profile, t=target: cpu_bound_workload(p, t))
        paper = paper_data.RV8_TABLE_I[name]
        rows[name] = {
            **pair,
            # Extrapolate to the paper's scale for the Table I columns.
            "normal_1e9_extrapolated": paper["normal_1e9"],
            "cvm_1e9_extrapolated": paper["normal_1e9"] * (1 + pair["overhead_pct"] / 100),
            "paper_overhead_pct": paper["overhead_pct"],
        }
    overheads = [row["overhead_pct"] for row in rows.values()]
    return {
        "benchmarks": rows,
        "average_overhead_pct": sum(overheads) / len(overheads),
        "scale": scale,
    }


def run_coremark_experiment(iterations: int = 2_000) -> dict:
    """E5: CoreMark score on both VM kinds."""
    results = {}
    for kind in ("normal", "cvm"):
        machine = _machine_with_console()
        if kind == "cvm":
            session = machine.launch_confidential_vm(image=b"coremark" * 100)
        else:
            session = machine.launch_normal_vm()
        run = machine.run(session, coremark_workload(iterations))
        results[kind] = score_from(run["workload_result"], machine.config.clock_hz)
    drop = 100.0 * (results["normal"] - results["cvm"]) / results["normal"]
    return {
        "normal_score": results["normal"],
        "cvm_score": results["cvm"],
        "overhead_pct": drop,
        "iterations": iterations,
    }


def run_redis_experiment(ops=None, requests: int = 500, rounds: int = 1) -> dict:
    """E6 / Fig. 3: redis-benchmark throughput and latency per op type.

    ``requests``/``rounds`` default far below the paper's 10x10,000 (the
    per-op deltas converge within a few hundred requests; the full load
    is available by passing the paper values).
    """
    op_names = ops if ops is not None else paper_data.REDIS["ops"]
    rows = {}
    for op in op_names:
        samples = {"normal": [], "cvm": []}
        for _ in range(rounds):
            for kind in ("normal", "cvm"):
                machine = Machine(MachineConfig())
                if kind == "cvm":
                    session = machine.launch_confidential_vm(image=b"redis" * 200)
                else:
                    session = machine.launch_normal_vm()
                machine.attach_virtio_net(session)
                samples[kind].append(redis_benchmark(machine, session, op, requests))

        def mean(kind, field):
            values = [s[field] for s in samples[kind]]
            return sum(values) / len(values)

        normal_rps = mean("normal", "throughput_rps")
        cvm_rps = mean("cvm", "throughput_rps")
        normal_lat = mean("normal", "avg_latency_us")
        cvm_lat = mean("cvm", "avg_latency_us")
        rows[op] = {
            "normal_throughput_rps": normal_rps,
            "cvm_throughput_rps": cvm_rps,
            "throughput_drop_pct": 100.0 * (normal_rps - cvm_rps) / normal_rps,
            "normal_latency_us": normal_lat,
            "cvm_latency_us": cvm_lat,
            "latency_increase_pct": 100.0 * (cvm_lat - normal_lat) / normal_lat,
        }
    drops = [row["throughput_drop_pct"] for row in rows.values()]
    lats = [row["latency_increase_pct"] for row in rows.values()]
    return {
        "ops": rows,
        "avg_throughput_drop_pct": sum(drops) / len(drops),
        "avg_latency_increase_pct": sum(lats) / len(lats),
        "requests": requests,
        "rounds": rounds,
    }


def run_iozone_experiment(file_sizes=None, record_sizes=None, size_scale: int = 4) -> dict:
    """E7 / Fig. 4: sequential write/read throughput across the size grid.

    ``size_scale`` divides both the file sizes and the guest page cache
    before simulation: the streamed fraction (file - cache) / file -- the
    quantity the confidential VM's overhead tracks -- is invariant under
    joint scaling, and per-byte/per-record costs are unscaled, so the
    reported throughputs match an unscaled run at a quarter of the
    simulation cost.  Pass ``size_scale=1`` for the full-size grid.
    """
    from repro.workloads.iozone import DEFAULT_CACHE_BYTES

    files = file_sizes if file_sizes is not None else paper_data.IOZONE["file_sizes"]
    records = record_sizes if record_sizes is not None else paper_data.IOZONE["record_sizes"]
    cells = []
    for record_bytes in records:
        for file_bytes in files:
            if record_bytes > file_bytes // size_scale:
                continue
            cell = {"file_bytes": file_bytes, "record_bytes": record_bytes}
            results = {}
            for kind in ("normal", "cvm"):
                machine = Machine(MachineConfig())
                if kind == "cvm":
                    session = machine.launch_confidential_vm(image=b"iozone" * 100)
                else:
                    session = machine.launch_normal_vm()
                machine.attach_virtio_block(session)
                results[kind] = iozone_run(
                    machine, session, file_bytes // size_scale, record_bytes,
                    cache_bytes=DEFAULT_CACHE_BYTES // size_scale,
                )
                clock = machine.config.clock_hz
            for op in ("write", "read"):
                normal_tp = results["normal"].throughput_kb_s(op, clock)
                cvm_tp = results["cvm"].throughput_kb_s(op, clock)
                cell[f"{op}_normal_kb_s"] = normal_tp
                cell[f"{op}_cvm_kb_s"] = cvm_tp
                cell[f"{op}_overhead_pct"] = 100.0 * (normal_tp - cvm_tp) / normal_tp
            cells.append(cell)
    return {"cells": cells, "size_scale": size_scale}
