"""Inter-CVM transport comparison: SM channel vs virtio-net + SWIOTLB.

The experiment the channel subsystem exists to win: move the same
messages between two CVMs on the same machine over

- the **channel** path -- zero-copy shared window, SM doorbells (and a
  polling ablation that skips the doorbell ECALL and spins through the
  scheduler instead), and
- the **virtio** path -- each CVM's virtio-net device, host-forwarded,
  every payload bouncing through the SWIOTLB on both sides (the
  two-bounce-copy host-mediated data path the paper leaves in place).

Both paths run as the same ping-pong shape under ``run_concurrent``, so
world switches, scheduler passes and interrupt plumbing are charged
identically; what differs is exactly the data path.
"""

from __future__ import annotations

from repro.machine import Machine, MachineConfig
from repro.workloads.pingpong import pingpong_client, pingpong_server

_IMAGE = b"ipc-bench-guest" * 64

#: Message sizes swept (bytes); the RX buffer bounds the virtio frame.
DEFAULT_MESSAGE_SIZES = (64, 256, 1024, 2040)


def _round_trip_stats(results, client, rounds: int, message_size: int,
                      clock_hz: int) -> dict:
    cycles = results["cycles"]
    bytes_moved = results[client]["bytes_moved"]
    return {
        "cycles": cycles,
        "cycles_per_round_trip": cycles / rounds,
        "latency_us": 1e6 * cycles / rounds / clock_hz,
        "throughput_mbps": (bytes_moved * clock_hz / cycles) / 1e6,
        "rounds": rounds,
        "message_size": message_size,
    }


def run_channel_pingpong(message_size: int, rounds: int,
                         polling: bool = False) -> dict:
    """Ping-pong ``rounds`` messages over an SM-brokered channel."""
    machine = Machine(MachineConfig())
    server = machine.launch_confidential_vm(image=_IMAGE)
    client = machine.launch_confidential_vm(image=_IMAGE)
    box: dict = {}
    measurement = server.cvm.measurement
    results = machine.run_concurrent([
        (server, pingpong_server(rounds=rounds, polling=polling,
                                 expected_peer_measurement=measurement,
                                 channel_box=box)),
        (client, pingpong_client(box, message_size=message_size, rounds=rounds,
                                 expected_creator_measurement=measurement,
                                 polling=polling)),
    ])
    stats = _round_trip_stats(results, client, rounds, message_size,
                              machine.config.clock_hz)
    stats["doorbells"] = results[client]["doorbells"] + results[server]["doorbells"]
    return stats


def run_virtio_pingpong(message_size: int, rounds: int) -> dict:
    """The same ping-pong over host-forwarded virtio-net + SWIOTLB."""
    machine = Machine(MachineConfig())
    server = machine.launch_confidential_vm(image=_IMAGE)
    client = machine.launch_confidential_vm(image=_IMAGE)
    dev_server = machine.attach_virtio_net(server)
    dev_client = machine.attach_virtio_net(
        client, mmio_base=0x1000_6000, source_id=6
    )
    # The host's software switch: TX frames of one guest are RX frames of
    # the other (this is the untrusted forwarding plane the channel skips).
    dev_server.host_handler = lambda frame, _hdr: (dev_client.host_deliver(frame), ())[1]
    dev_client.host_handler = lambda frame, _hdr: (dev_server.host_deliver(frame), ())[1]

    def server_workload(ctx):
        driver = ctx.net_driver()
        driver.post_rx_buffers(8)
        echoed = 0
        while echoed < rounds:
            frame = driver.recv()
            if frame is None:
                yield
                continue
            driver.send(frame)
            echoed += 1
        return {"echoed": echoed}

    def client_workload(ctx):
        driver = ctx.net_driver()
        driver.post_rx_buffers(8)
        payload = bytes((i & 0xFF for i in range(message_size)))
        yield  # let the server post its RX ring first
        completed = 0
        bytes_moved = 0
        for _seq in range(rounds):
            driver.send(payload)
            echo = None
            while echo is None:
                echo = driver.recv()
                if echo is None:
                    yield
            completed += 1
            bytes_moved += 2 * message_size
        return {"rounds": completed, "bytes_moved": bytes_moved}

    results = machine.run_concurrent([
        (server, server_workload),
        (client, client_workload),
    ])
    assert results[client]["rounds"] == rounds, "virtio ping-pong incomplete"
    return _round_trip_stats(results, client, rounds, message_size,
                             machine.config.clock_hz)


def run_ipc_experiment(message_sizes=DEFAULT_MESSAGE_SIZES,
                       rounds: int = 16) -> dict:
    """Sweep message sizes across all three transports.

    Returns ``{"sizes": {size: {"channel", "polling", "virtio",
    "speedup", "latency_saved_us"}}}`` where ``speedup`` is virtio
    cycles / channel cycles for the same transfer.
    """
    sizes = {}
    for size in message_sizes:
        channel = run_channel_pingpong(size, rounds)
        polling = run_channel_pingpong(size, rounds, polling=True)
        virtio = run_virtio_pingpong(size, rounds)
        sizes[size] = {
            "channel": channel,
            "polling": polling,
            "virtio": virtio,
            "speedup": virtio["cycles"] / channel["cycles"],
            "latency_saved_us": virtio["latency_us"] - channel["latency_us"],
        }
    return {"sizes": sizes, "rounds": rounds}
