"""Inter-CVM transport comparison: SM channel vs virtio-net + SWIOTLB.

The experiment the channel subsystem exists to win: move the same
messages between two CVMs on the same machine over

- the **channel** path -- zero-copy shared window, SM doorbells (and a
  polling ablation that skips the doorbell ECALL and spins through the
  scheduler instead), and
- the **virtio** path -- each CVM's virtio-net device, host-forwarded,
  every payload bouncing through the SWIOTLB on both sides (the
  two-bounce-copy host-mediated data path the paper leaves in place).

Both paths run as the same ping-pong shape under ``run_concurrent``, so
world switches, scheduler passes and interrupt plumbing are charged
identically; what differs is exactly the data path.
"""

from __future__ import annotations

from repro.ipc.endpoint import ChannelEndpoint
from repro.machine import Machine, MachineConfig, WAIT_DOORBELL
from repro.workloads.pingpong import (
    DEFAULT_WINDOW_SIZE,
    _window_gpa,
    pingpong_client,
    pingpong_server,
)

_IMAGE = b"ipc-bench-guest" * 64

#: Message sizes swept (bytes); the RX buffer bounds the virtio frame.
DEFAULT_MESSAGE_SIZES = (64, 256, 1024, 2040)


def _round_trip_stats(results, client, rounds: int, message_size: int,
                      clock_hz: int) -> dict:
    cycles = results["cycles"]
    bytes_moved = results[client]["bytes_moved"]
    return {
        "cycles": cycles,
        "cycles_per_round_trip": cycles / rounds,
        "latency_us": 1e6 * cycles / rounds / clock_hz,
        "throughput_mbps": (bytes_moved * clock_hz / cycles) / 1e6,
        "rounds": rounds,
        "message_size": message_size,
    }


def run_channel_pingpong(message_size: int, rounds: int,
                         polling: bool = False) -> dict:
    """Ping-pong ``rounds`` messages over an SM-brokered channel."""
    machine = Machine(MachineConfig())
    server = machine.launch_confidential_vm(image=_IMAGE)
    client = machine.launch_confidential_vm(image=_IMAGE)
    box: dict = {}
    measurement = server.cvm.measurement
    results = machine.run_concurrent([
        (server, pingpong_server(rounds=rounds, polling=polling,
                                 expected_peer_measurement=measurement,
                                 channel_box=box)),
        (client, pingpong_client(box, message_size=message_size, rounds=rounds,
                                 expected_creator_measurement=measurement,
                                 polling=polling)),
    ])
    stats = _round_trip_stats(results, client, rounds, message_size,
                              machine.config.clock_hz)
    stats["doorbells"] = results[client]["doorbells"] + results[server]["doorbells"]
    return stats


def run_virtio_pingpong(message_size: int, rounds: int) -> dict:
    """The same ping-pong over host-forwarded virtio-net + SWIOTLB."""
    machine = Machine(MachineConfig())
    server = machine.launch_confidential_vm(image=_IMAGE)
    client = machine.launch_confidential_vm(image=_IMAGE)
    dev_server = machine.attach_virtio_net(server)
    dev_client = machine.attach_virtio_net(
        client, mmio_base=0x1000_6000, source_id=6
    )
    # The host's software switch: TX frames of one guest are RX frames of
    # the other (this is the untrusted forwarding plane the channel skips).
    dev_server.host_handler = lambda frame, _hdr: (dev_client.host_deliver(frame), ())[1]
    dev_client.host_handler = lambda frame, _hdr: (dev_server.host_deliver(frame), ())[1]

    def server_workload(ctx):
        driver = ctx.net_driver()
        driver.post_rx_buffers(8)
        echoed = 0
        while echoed < rounds:
            frame = driver.recv()
            if frame is None:
                yield
                continue
            driver.send(frame)
            echoed += 1
        return {"echoed": echoed}

    def client_workload(ctx):
        driver = ctx.net_driver()
        driver.post_rx_buffers(8)
        payload = bytes((i & 0xFF for i in range(message_size)))
        yield  # let the server post its RX ring first
        completed = 0
        bytes_moved = 0
        for _seq in range(rounds):
            driver.send(payload)
            echo = None
            while echo is None:
                echo = driver.recv()
                if echo is None:
                    yield
            completed += 1
            bytes_moved += 2 * message_size
        return {"rounds": completed, "bytes_moved": bytes_moved}

    results = machine.run_concurrent([
        (server, server_workload),
        (client, client_workload),
    ])
    assert results[client]["rounds"] == rounds, "virtio ping-pong incomplete"
    return _round_trip_stats(results, client, rounds, message_size,
                             machine.config.clock_hz)


def run_doorbell_stream(message_size: int = 256, messages: int = 256,
                        burst: int = 128, adaptive: bool = True) -> dict:
    """One-way streaming producer -> consumer; counts doorbell traffic.

    The shape adaptive coalescing exists for: the producer streams
    ``burst`` messages per scheduling turn while the consumer drains in
    batches and parks on :data:`~repro.machine.WAIT_DOORBELL` when the
    ring is empty.  ``burst`` is sized to overflow the ring mid-burst, so
    the credit-return direction (producer parked on a full ring) is
    exercised as well as the data direction.  With ``adaptive=False``
    (the eager arm) every successful send rings the peer; with the
    default EVENT_IDX-style policy a doorbell fires only when an
    operation crosses the peer's published wake point.
    """
    machine = Machine(MachineConfig())
    consumer = machine.launch_confidential_vm(image=_IMAGE)
    producer = machine.launch_confidential_vm(image=_IMAGE)
    box: dict = {}
    measurement = consumer.cvm.measurement

    def consumer_workload(ctx):
        endpoint = ChannelEndpoint.create(
            ctx, _window_gpa(ctx), DEFAULT_WINDOW_SIZE, measurement,
            adaptive=adaptive,
        )
        box["channel_id"] = endpoint.channel_id
        yield  # let the producer connect
        received = 0
        while received < messages:
            batch = endpoint.recv_many()
            if not batch:
                yield WAIT_DOORBELL
                continue
            received += len(batch)
        return {
            "received": received,
            "doorbells": endpoint.doorbells_rung,
            "suppressed": endpoint.doorbells_suppressed,
        }

    def producer_workload(ctx):
        while "channel_id" not in box:
            yield
        endpoint = ChannelEndpoint.connect(
            ctx, box["channel_id"], _window_gpa(ctx), measurement,
            adaptive=adaptive,
        )
        payload = bytes(message_size)
        sent = 0
        in_burst = 0
        while sent < messages:
            if endpoint.send(payload):
                sent += 1
                in_burst += 1
                if in_burst >= burst:
                    in_burst = 0
                    yield  # end of burst: let the consumer drain
            else:
                in_burst = 0
                yield WAIT_DOORBELL  # ring full: wait for credits
        return {
            "sent": sent,
            "doorbells": endpoint.doorbells_rung,
            "suppressed": endpoint.doorbells_suppressed,
        }

    results = machine.run_concurrent([
        (consumer, consumer_workload),
        (producer, producer_workload),
    ])
    assert results[consumer]["received"] == messages, "stream incomplete"
    return {
        "adaptive": adaptive,
        "messages": messages,
        "message_size": message_size,
        "cycles": results["cycles"],
        "doorbells": (
            results[consumer]["doorbells"] + results[producer]["doorbells"]
        ),
        "suppressed": (
            results[consumer]["suppressed"] + results[producer]["suppressed"]
        ),
    }


def run_doorbell_ablation(message_size: int = 256, messages: int = 256,
                          burst: int = 128) -> dict:
    """Eager vs adaptive doorbell policy on the same streaming workload.

    Identical message work on both arms; the figures that differ are the
    notify-ECALL count (each one a trap + SM dispatch + IPI) and the
    cycles they cost.
    """
    eager = run_doorbell_stream(message_size, messages, burst, adaptive=False)
    adaptive = run_doorbell_stream(message_size, messages, burst, adaptive=True)
    return {
        "eager": eager,
        "adaptive": adaptive,
        "doorbell_reduction": (
            eager["doorbells"] / adaptive["doorbells"]
            if adaptive["doorbells"] else float("inf")
        ),
        "cycles_saved": eager["cycles"] - adaptive["cycles"],
    }


def run_ipc_experiment(message_sizes=DEFAULT_MESSAGE_SIZES,
                       rounds: int = 16) -> dict:
    """Sweep message sizes across all three transports.

    Returns ``{"sizes": {size: {"channel", "polling", "virtio",
    "speedup", "latency_saved_us"}}}`` where ``speedup`` is virtio
    cycles / channel cycles for the same transfer.
    """
    sizes = {}
    for size in message_sizes:
        channel = run_channel_pingpong(size, rounds)
        polling = run_channel_pingpong(size, rounds, polling=True)
        virtio = run_virtio_pingpong(size, rounds)
        sizes[size] = {
            "channel": channel,
            "polling": polling,
            "virtio": virtio,
            "speedup": virtio["cycles"] / channel["cycles"],
            "latency_saved_us": virtio["latency_us"] - channel["latency_us"],
        }
    return {"sizes": sizes, "rounds": rounds}
