"""Sharded redis-over-channels cluster benchmark and its virtio baseline.

The tentpole experiment of the data-plane story (docs/DATA_PLANE.md):
the same mixed GET/SET/MGET traffic is served

- by the **cluster** -- N shard CVMs behind a router CVM, every hop an
  SM-brokered channel (zero-copy rings, batched doorbells, no host in
  the data path), pipelined ``pipeline`` deep per client, and
- by the **baseline** -- one monolithic redis CVM behind virtio-net +
  SWIOTLB, the paper's host-mediated device path.

Both run on the same simulated machine model, so the comparison isolates
the data plane: the TRAP/DEVICE/COPY cycles of the virtio path against
the SM_LOGIC/HYP_LOGIC doorbell slow path plus in-guest ring COMPUTE of
the channel path.  ``run_cluster_experiment`` also sweeps a
shards x pipeline-depth ablation so the two effects -- horizontal
sharding and batching -- are separable in BENCH_PERF.json.
"""

from __future__ import annotations

from repro.machine import Machine, MachineConfig
from repro.workloads.redis import redis_benchmark
from repro.workloads.redis_cluster import (
    SlotMap,
    cluster_client,
    cluster_router,
    shard_server,
)

_IMAGE = b"redis-cluster-guest" * 48

#: Ablation grids swept by :func:`run_cluster_experiment`.
DEFAULT_SHARD_SWEEP = (1, 2, 4)
DEFAULT_PIPELINE_SWEEP = (1, 4, 8)


def _percentile(sorted_values, fraction: float):
    if not sorted_values:
        return 0
    index = round(fraction * (len(sorted_values) - 1))
    return sorted_values[min(index, len(sorted_values) - 1)]


def build_cluster(shards: int = 4, clients: int = 2, requests: int = 32,
                  pipeline: int = 8, *, keyspace: int = 128,
                  value_size: int = 16, fail_shard: int | None = None,
                  fail_after: int | None = None, idle_limit: int = 48):
    """Launch the cluster's CVMs and build its ``run_concurrent`` pairs.

    Returns ``(machine, pairs, (shard_sessions, client_sessions,
    router_session))`` so callers (the perf suite, the CLI) can time the
    concurrent run themselves.
    """
    machine = Machine(MachineConfig())
    slot_map = SlotMap(shards)
    shard_sessions = [
        machine.launch_confidential_vm(image=_IMAGE) for _ in range(shards)
    ]
    client_sessions = [
        machine.launch_confidential_vm(image=_IMAGE) for _ in range(clients)
    ]
    router_session = machine.launch_confidential_vm(image=_IMAGE)
    measurement = router_session.cvm.measurement

    boxes: dict = {}
    pairs = []
    for shard_id, session in enumerate(shard_sessions):
        pairs.append((session, shard_server(
            shard_id, boxes, slot_map,
            expected_peer_measurement=measurement,
            keyspace=keyspace, value_size=value_size,
            fail_after=fail_after if shard_id == fail_shard else None,
        )))
    for client_id, session in enumerate(client_sessions):
        pairs.append((session, cluster_client(
            client_id, boxes,
            router_measurement=measurement, requests=requests,
            pipeline=pipeline, keyspace=keyspace, value_size=value_size,
        )))
    pairs.append((router_session, cluster_router(
        boxes, shards, clients,
        shard_measurement=measurement, client_measurement=measurement,
        idle_limit=idle_limit,
    )))
    return machine, pairs, (shard_sessions, client_sessions, router_session)


def run_cluster(shards: int = 4, clients: int = 2, requests: int = 32,
                pipeline: int = 8, *, keyspace: int = 128,
                value_size: int = 16, fail_shard: int | None = None,
                fail_after: int | None = None, wake_priority: bool = True,
                idle_limit: int = 48) -> dict:
    """Run the sharded cluster; returns throughput/latency/balance stats.

    ``requests`` is per client connection.  ``fail_shard``/``fail_after``
    crash that shard after serving that many requests -- used by the
    failure-path tests to show the router fail-stops the shard (typed
    ``-ERR SHARDDOWN`` replies) instead of wedging the run.
    """
    machine, pairs, sessions = build_cluster(
        shards, clients, requests, pipeline, keyspace=keyspace,
        value_size=value_size, fail_shard=fail_shard, fail_after=fail_after,
        idle_limit=idle_limit,
    )
    shard_sessions, client_sessions, router_session = sessions

    before = dict(machine.ledger.by_category())
    total_before = machine.ledger.total
    results = machine.run_concurrent(pairs, wake_priority=wake_priority)
    after = machine.ledger.by_category()
    breakdown = {
        category.name: after[category] - before.get(category, 0)
        for category in after
        if after[category] - before.get(category, 0) > 0
    }

    client_stats = [results[session] for session in client_sessions]
    shard_stats = [results[session] for session in shard_sessions]
    router_stats = results[router_session]
    cycles = results["cycles"]
    # Split bring-up (channel create/attest/connect, shard preloads and
    # working-set faults) from steady-state serving, mirroring
    # redis_benchmark's serving_cycles: the baseline times its serving
    # loop only, so the comparison must too.  Bring-up is still visible
    # as "setup_cycles" and inside the whole-run "cycles".
    setup_cycles = router_stats["setup_done_total"] - total_before
    serving_cycles = cycles - setup_cycles
    completed = sum(stat["completed"] for stat in client_stats)
    latencies = sorted(
        latency for stat in client_stats for latency in stat["latencies"]
    )
    errors = [error for stat in client_stats for error in stat["errors"]]
    clock_hz = machine.config.clock_hz
    busy = [stat["busy_cycles"] for stat in shard_stats]
    max_busy = max(busy) if busy else 0
    return {
        "shards": shards,
        "clients": clients,
        "requests": completed,
        "pipeline": pipeline,
        "cycles": cycles,
        "setup_cycles": setup_cycles,
        "serving_cycles": serving_cycles,
        "cycles_per_request": (
            serving_cycles / completed if completed else float("inf")
        ),
        "throughput_rps": (
            completed * clock_hz / serving_cycles if serving_cycles else 0.0
        ),
        "p50_latency_us": _percentile(latencies, 0.50) / (clock_hz / 1e6),
        "p99_latency_us": _percentile(latencies, 0.99) / (clock_hz / 1e6),
        "p50_latency_cycles": _percentile(latencies, 0.50),
        "p99_latency_cycles": _percentile(latencies, 0.99),
        "errors": len(errors),
        "error_samples": errors[:4],
        "ops": {
            op: sum(stat["ops"].get(op, 0) for stat in client_stats)
            for op in ("GET", "SET", "MGET")
        },
        "doorbells": (
            router_stats["doorbells"]
            + sum(stat["doorbells"] for stat in client_stats)
            + sum(stat["doorbells"] for stat in shard_stats)
        ),
        "mget_splits": router_stats["mget_splits"],
        "per_shard_requests": router_stats["per_shard_requests"],
        "shards_down": router_stats["shards_down"],
        # Typed ShardDown objects (not serialized into BENCH_PERF.json;
        # the failure-path tests assert on them).
        "shard_errors": router_stats["shard_errors"],
        "shard_busy_cycles": busy,
        # How evenly the shard tier shared the serving work: 1.0 means
        # every shard was busy exactly as long as the busiest one (the
        # single-hart analogue of linear multi-shard scaling).
        "shard_balance": (
            sum(busy) / (len(busy) * max_busy) if max_busy else 0.0
        ),
        "breakdown": breakdown,
    }


def run_virtio_baseline(requests: int, pipeline: int = 1) -> dict:
    """The single-CVM virtio-net redis baseline for the same request count."""
    machine = Machine(MachineConfig())
    session = machine.launch_confidential_vm(image=_IMAGE)
    machine.attach_virtio_net(session)
    result = redis_benchmark(machine, session, "GET", requests, pipeline=pipeline)
    result["cycles_per_request"] = result["cycles"] / requests
    # Normalize to category *names* so baseline and cluster breakdowns
    # use the same keys as BENCH_PERF.json (see docs/DATA_PLANE.md).
    result["breakdown"] = {
        category.name: cycles
        for category, cycles in result["breakdown"].items()
    }
    return result


def run_cluster_experiment(clients: int = 2, requests: int = 32,
                           shard_sweep=DEFAULT_SHARD_SWEEP,
                           pipeline_sweep=DEFAULT_PIPELINE_SWEEP,
                           headline_shards: int = 4,
                           headline_pipeline: int = 8) -> dict:
    """Headline cluster-vs-virtio comparison plus the ablation grid.

    Returns the headline cluster run, the virtio baseline at the same
    pipeline depth (and unpipelined), the speedup, and one ablation row
    per (shards, pipeline) combination -- the data behind the scaling
    claims in docs/DATA_PLANE.md.
    """
    cluster = run_cluster(
        shards=headline_shards, clients=clients, requests=requests,
        pipeline=headline_pipeline,
    )
    total = cluster["requests"]
    baseline = run_virtio_baseline(total, pipeline=headline_pipeline)
    baseline_unpipelined = run_virtio_baseline(total, pipeline=1)
    ablation = []
    for shards in shard_sweep:
        for pipeline in pipeline_sweep:
            row = run_cluster(
                shards=shards, clients=clients, requests=requests,
                pipeline=pipeline,
            )
            ablation.append({
                "shards": shards,
                "pipeline": pipeline,
                "cycles_per_request": row["cycles_per_request"],
                "throughput_rps": row["throughput_rps"],
                "p99_latency_us": row["p99_latency_us"],
                "shard_balance": row["shard_balance"],
                "doorbells": row["doorbells"],
                # The shard-tier critical path: what an N-hart machine
                # would wait on for the serving tier (the single-hart sum
                # of switch overheads above is a serialization artifact).
                "max_shard_busy_per_request": (
                    max(row["shard_busy_cycles"]) / row["requests"]
                ),
            })
    wake_policy = {}
    for label, priority in (("front_wake", True), ("tail_wake", False)):
        row = run_cluster(
            shards=headline_shards, clients=clients, requests=requests,
            pipeline=headline_pipeline, wake_priority=priority,
        )
        wake_policy[label] = {
            "cycles_per_request": row["cycles_per_request"],
            "p99_latency_us": row["p99_latency_us"],
            "p50_latency_us": row["p50_latency_us"],
            "doorbells": row["doorbells"],
        }
    return {
        "cluster": cluster,
        "virtio_baseline": {
            "pipelined": {
                "pipeline": baseline["pipeline"],
                "cycles_per_request": baseline["cycles_per_request"],
                "throughput_rps": baseline["throughput_rps"],
            },
            "unpipelined": {
                "pipeline": 1,
                "cycles_per_request": baseline_unpipelined["cycles_per_request"],
                "throughput_rps": baseline_unpipelined["throughput_rps"],
            },
            "breakdown": baseline["breakdown"],
        },
        "speedup_vs_virtio": (
            baseline["cycles_per_request"] / cluster["cycles_per_request"]
        ),
        "speedup_vs_virtio_unpipelined": (
            baseline_unpipelined["cycles_per_request"]
            / cluster["cycles_per_request"]
        ),
        "ablation": ablation,
        # Doorbell wake policy (hyp scheduler): front-wake runs the
        # doorbell target on the next dispatch (lower tail latency, more
        # switches); tail-wake batches naturally (higher throughput).
        "wake_policy": wake_policy,
    }
