"""Experiment harness: runners and paper-reference data for E1-E8.

Each experiment in DESIGN.md's per-experiment index has a runner here
returning structured results, plus the paper's reported numbers
(:mod:`repro.bench.paper_data`) so every benchmark can print a
measured-vs-paper comparison.  The ``benchmarks/`` directory wraps these
in pytest-benchmark targets, one per table/figure.
"""

from repro.bench import paper_data
from repro.bench.microbench import (
    run_page_fault_experiment,
    run_switch_path_experiment,
    run_vcpu_switch_experiment,
)
from repro.bench.macro import (
    run_coremark_experiment,
    run_iozone_experiment,
    run_redis_experiment,
    run_rv8_experiment,
)
from repro.bench.ipc import run_ipc_experiment
from repro.bench.tables import format_comparison_table

__all__ = [
    "paper_data",
    "run_vcpu_switch_experiment",
    "run_switch_path_experiment",
    "run_page_fault_experiment",
    "run_rv8_experiment",
    "run_coremark_experiment",
    "run_redis_experiment",
    "run_iozone_experiment",
    "run_ipc_experiment",
    "format_comparison_table",
]
