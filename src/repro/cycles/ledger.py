"""Cycle ledger: where simulated time accrues.

A :class:`CycleLedger` is the single clock of a simulated machine.  Every
component charges cycles to it, tagged with a :class:`Category` so that
experiments can break a total down (e.g. how much of a world switch was PMP
reprogramming vs. register save).  Scoped spans (:meth:`CycleLedger.span`)
measure the emergent cost of a compound operation without the operation
having to thread counters through its call tree.

The ledger sits on the hottest path in the simulator (every guest access
charges it several times), so the implementation is wall-clock-optimized:
counters live in a flat int list indexed by a precomputed per-category
index (no enum hashing), and spans track only the categories actually
charged inside them (a dirty set per open span, propagated to the parent
on close) instead of snapshotting and diffing whole category dicts.  None
of this changes what is charged -- the cycle model is identical.
"""

from __future__ import annotations

import enum


class Category(enum.Enum):
    """What a charge of cycles was spent on."""

    COMPUTE = "compute"  # guest useful work
    TRAP = "trap"  # hardware trap entry/exit
    REG_SAVE = "reg_save"  # GPR/CSR save+restore
    VALIDATE = "validate"  # check-after-load / sanitising copies
    PMP = "pmp"  # PMP / IOPMP reprogramming + fences
    TLB = "tlb"  # TLB flushes and refills
    PAGE_WALK = "page_walk"  # page-table walks
    SM_LOGIC = "sm_logic"  # secure monitor bookkeeping
    HYP_LOGIC = "hyp_logic"  # hypervisor / KVM / QEMU bookkeeping
    ALLOC = "alloc"  # memory allocation paths
    COPY = "copy"  # bulk data movement (bounce buffers, DMA)
    DEVICE = "device"  # device model processing
    GUEST_KERNEL = "guest_kernel"  # guest kernel trap/syscall handling
    IDLE = "idle"  # time waiting (e.g. device latency)


#: Categories in definition order; ``Category.index`` maps back.
_CATEGORIES: tuple = tuple(Category)
for _index, _category in enumerate(_CATEGORIES):
    _category.index = _index
del _index, _category


class CycleLedger:
    """Accumulates simulated cycles, tagged by category.

    The ledger is deliberately append-only: nothing ever subtracts cycles,
    mirroring a hardware cycle counter.
    """

    __slots__ = ("_total", "_counts", "_charged_mask", "_span_stack")

    def __init__(self):
        self._total = 0
        self._counts = [0] * len(_CATEGORIES)
        #: Bitmask of category indices ever charged (zero charges
        #: included), preserving ``by_category``'s historical contract of
        #: listing every category that has been touched.
        self._charged_mask = 0
        #: Dirty sets of the currently-open spans, innermost last.
        self._span_stack: list = []

    @property
    def total(self) -> int:
        """All cycles charged so far (the simulated ``mcycle``)."""
        return self._total

    def by_category(self) -> dict:
        """A snapshot of per-category totals."""
        counts = self._counts
        mask = self._charged_mask
        return {
            cat: counts[i]
            for i, cat in enumerate(_CATEGORIES)
            if mask >> i & 1
        }

    def charge(self, category: Category, cycles) -> None:
        """Charge ``cycles`` (int or float, floored at >=0) to ``category``."""
        if type(cycles) is not int:
            cycles = int(cycles)
        if cycles < 0:
            raise ValueError(f"cannot charge negative cycles: {cycles}")
        index = category.index
        self._total += cycles
        self._counts[index] += cycles
        self._charged_mask |= 1 << index
        stack = self._span_stack
        if stack:
            stack[-1].add(index)

    def charger(self, category: Category, cycles):
        """Precompile a zero-argument charge of fixed ``(category, cycles)``.

        Hot paths that charge the same cost on every call (the page
        walker's per-PTE cost, the TLB-hit cost, the per-access compute
        cycle) validate and resolve the charge once and get back a
        closure that only performs the counter updates.  Calling the
        closure is exactly ``charge(category, cycles)``.
        """
        cycles = int(cycles)
        if cycles < 0:
            raise ValueError(f"cannot charge negative cycles: {cycles}")
        index = category.index
        bit = 1 << index

        def fire(self=self, cycles=cycles, index=index, bit=bit):
            self._total += cycles
            self._counts[index] += cycles
            self._charged_mask |= bit
            stack = self._span_stack
            if stack:
                stack[-1].add(index)

        return fire

    def span(self):
        """Measure the cycles charged inside a ``with`` block.

        Returns a :class:`Span` usable as a context manager; its
        ``cycles`` and ``breakdown`` are valid after the block exits (or
        after an explicit :meth:`Span.close`).
        """
        return Span(self)


class Span:
    """A window over a ledger measuring one compound operation.

    Spans nest LIFO (the ``with`` discipline): closing a span folds its
    dirty-category set into the enclosing span so that parents observe
    everything charged inside children.
    """

    __slots__ = (
        "_ledger", "_start_total", "_start_counts", "_end_counts",
        "_dirty", "_closed", "_breakdown", "cycles",
    )

    def __init__(self, ledger: CycleLedger):
        self._ledger = ledger
        self._start_total = ledger._total
        self._start_counts = tuple(ledger._counts)
        self._end_counts = None
        self._dirty: set = set()
        self._closed = False
        self._breakdown = None
        ledger._span_stack.append(self._dirty)
        self.cycles = 0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Finalize the span's cycle count and category breakdown."""
        if self._closed:
            return
        self._closed = True
        ledger = self._ledger
        stack = ledger._span_stack
        stack.pop()
        if stack:
            # Propagate to the parent: charges inside this span happened
            # inside the enclosing span too.
            stack[-1].update(self._dirty)
        self.cycles = ledger._total - self._start_total
        self._end_counts = tuple(ledger._counts)

    @property
    def breakdown(self) -> dict:
        """Per-category cycles charged inside the span (lazily built).

        Most spans (one per SM-handled stage-2 fault) are measured only
        for ``cycles``; building the dict eagerly on every close was pure
        overhead, so it materialises on first access.
        """
        if not self._closed:
            return {}
        if self._breakdown is None:
            start = self._start_counts
            ends = self._end_counts
            self._breakdown = {
                _CATEGORIES[i]: ends[i] - start[i]
                for i in sorted(self._dirty)
                if ends[i] != start[i]
            }
        return self._breakdown
