"""Cycle ledger: where simulated time accrues.

A :class:`CycleLedger` is the single clock of a simulated machine.  Every
component charges cycles to it, tagged with a :class:`Category` so that
experiments can break a total down (e.g. how much of a world switch was PMP
reprogramming vs. register save).  Scoped spans (:meth:`CycleLedger.span`)
measure the emergent cost of a compound operation without the operation
having to thread counters through its call tree.
"""

from __future__ import annotations

import contextlib
import enum
from collections import defaultdict


class Category(enum.Enum):
    """What a charge of cycles was spent on."""

    COMPUTE = "compute"  # guest useful work
    TRAP = "trap"  # hardware trap entry/exit
    REG_SAVE = "reg_save"  # GPR/CSR save+restore
    VALIDATE = "validate"  # check-after-load / sanitising copies
    PMP = "pmp"  # PMP / IOPMP reprogramming + fences
    TLB = "tlb"  # TLB flushes and refills
    PAGE_WALK = "page_walk"  # page-table walks
    SM_LOGIC = "sm_logic"  # secure monitor bookkeeping
    HYP_LOGIC = "hyp_logic"  # hypervisor / KVM / QEMU bookkeeping
    ALLOC = "alloc"  # memory allocation paths
    COPY = "copy"  # bulk data movement (bounce buffers, DMA)
    DEVICE = "device"  # device model processing
    GUEST_KERNEL = "guest_kernel"  # guest kernel trap/syscall handling
    IDLE = "idle"  # time waiting (e.g. device latency)


class CycleLedger:
    """Accumulates simulated cycles, tagged by category.

    The ledger is deliberately append-only: nothing ever subtracts cycles,
    mirroring a hardware cycle counter.
    """

    def __init__(self):
        self._total = 0
        self._by_category = defaultdict(int)

    @property
    def total(self) -> int:
        """All cycles charged so far (the simulated ``mcycle``)."""
        return self._total

    def by_category(self) -> dict:
        """A snapshot of per-category totals."""
        return dict(self._by_category)

    def charge(self, category: Category, cycles) -> None:
        """Charge ``cycles`` (int or float, floored at >=0) to ``category``."""
        cycles = int(cycles)
        if cycles < 0:
            raise ValueError(f"cannot charge negative cycles: {cycles}")
        self._total += cycles
        self._by_category[category] += cycles

    @contextlib.contextmanager
    def span(self):
        """Measure the cycles charged inside a ``with`` block.

        Yields a :class:`Span` whose ``cycles`` and ``breakdown`` are valid
        after the block exits.
        """
        span = Span(self)
        try:
            yield span
        finally:
            span.close()


class Span:
    """A window over a ledger measuring one compound operation."""

    def __init__(self, ledger: CycleLedger):
        self._ledger = ledger
        self._start_total = ledger.total
        self._start_by_cat = ledger.by_category()
        self.cycles = 0
        self.breakdown = {}

    def close(self) -> None:
        """Finalize the span's cycle count and category breakdown."""
        self.cycles = self._ledger.total - self._start_total
        end = self._ledger.by_category()
        self.breakdown = {
            cat: end[cat] - self._start_by_cat.get(cat, 0)
            for cat in end
            if end[cat] != self._start_by_cat.get(cat, 0)
        }
