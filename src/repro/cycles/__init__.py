"""Cycle-accounting model.

The reproduction does not execute RV64 instructions; instead every
architectural action performed by the simulated software stack (saving a
register, walking a page table, reprogramming a PMP entry, ...) charges a
calibrated number of cycles to a :class:`~repro.cycles.ledger.CycleLedger`.
Totals for complex operations -- a CVM world switch, a stage-2 page fault --
*emerge* from the sequence of primitive actions the code actually performs,
which is what lets the paper's performance shape reproduce.

Costs are calibrated against the paper's microbenchmarks (see
``DESIGN.md`` section 5); the calibration constants live in
:mod:`repro.cycles.costs`.
"""

from repro.cycles.costs import CycleCosts, DEFAULT_COSTS
from repro.cycles.ledger import Category, CycleLedger

__all__ = ["CycleCosts", "DEFAULT_COSTS", "Category", "CycleLedger"]
