"""Calibrated primitive cycle costs.

Every constant is the cost, in cycles on the paper's platform (4x Rocket @
100 MHz on a Genesys2 FPGA), of one primitive architectural action.  Complex
operation costs -- a CVM world switch, a stage-2 page fault -- are *not*
constants anywhere in this package: they emerge from the sequence of
primitives the simulated software actually executes, so a change to e.g. the
world-switch code path changes the measured numbers the way it would on
hardware.

Calibration: the primitives were fit so that the paper's four
microbenchmarks (shared-vCPU switch, short-vs-long path switch, and the
three stage-2 fault paths; DESIGN.md section 4, experiments E1-E3) land
close to the reported absolute cycle counts.  The macrobenchmarks (E4-E7)
are then emergent.  Constants whose absolute value is dominated by platform
effects we cannot model (cold M-mode instruction caches, Linux
get_user_pages) are marked "measurement-calibrated" below.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CycleCosts:
    """Primitive action costs in cycles.

    Instances are immutable; experiments that vary a cost (ablations) build
    a modified copy with :func:`dataclasses.replace`.
    """

    # --- privilege / trap plumbing -------------------------------------
    #: Hardware trap entry into M mode (pipeline flush, mepc/mcause update).
    trap_to_m: int = 250
    #: Hardware trap entry into HS mode.
    trap_to_hs: int = 220
    #: Hardware trap entry into VS mode (delegated to the guest kernel).
    trap_to_vs: int = 160
    #: mret / sret back to a lower privilege level.
    xret: int = 120
    #: SM ECALL dispatch overhead (argument decode, function table jump).
    ecall_dispatch: int = 90

    # --- register state movement ---------------------------------------
    #: Save or restore one general-purpose register (store/load + addr gen).
    gpr_save: int = 4
    #: Read one CSR.
    csr_read: int = 8
    #: Write one CSR.
    csr_write: int = 10
    #: Copy one 64-bit field between in-memory structures.
    field_copy: int = 6
    #: Check-after-Load validation of one shared-vCPU field (range check,
    #: bounds check against the vCPU's declared exit cause).
    validate_field: int = 23
    #: Sanitising copy of one field of the *full* vCPU state (the
    #: unoptimised, no-shared-vCPU marshalling path).
    sanitize_field: int = 16

    # --- memory isolation hardware -------------------------------------
    #: Reprogram one PMP entry (pmpaddr + pmpcfg writes, internal sync).
    pmp_entry_write: int = 45
    #: Reprogram one IOPMP entry via its MMIO programming interface.
    iopmp_entry_write: int = 60
    #: Fence after a PMP/IOPMP change (sfence + pipeline drain).
    pmp_fence: int = 200
    #: hfence.gvma -- flush guest-physical translations.
    tlb_flush_gvma: int = 600
    #: sfence.vma for a single page.
    tlb_flush_page: int = 150

    # --- address translation --------------------------------------------
    #: One level of a page-table walk (one memory read + PTE decode).
    page_walk_level: int = 60
    #: TLB hit (effectively free; charged to keep the model honest).
    tlb_hit: int = 1

    # --- memory movement -------------------------------------------------
    #: Bulk copy cost per byte (SWIOTLB bounce buffers, DMA; ~3 B/cycle
    #: sustained on the FPGA memory system).
    copy_per_byte: float = 0.35
    #: Zeroing cost per byte (store-only streaming; faster than copy).
    zero_per_byte: float = 0.125

    # --- Secure Monitor internals ----------------------------------------
    #: Fixed SM bookkeeping on the CVM *exit* path (exit-reason record,
    #: vCPU state-machine update, interrupt sync).
    sm_exit_logic: int = 420
    #: Fixed SM bookkeeping on the CVM *entry* path (run-state checks,
    #: pending-interrupt scan, time compensation, measurement-log touch).
    #: Measurement-calibrated: dominated by cold-icache M-mode execution.
    sm_entry_logic: int = 2019
    #: SM-side decode of a trapped MMIO instruction (htinst parse, GPR
    #: index extraction) on an MMIO exit.
    sm_mmio_decode: int = 112
    #: Pop one page from a vCPU's page cache (stage-1 allocation).
    page_cache_pop: int = 120
    #: Unlink one secure memory block from the circular list head (stage 2).
    block_unlink: int = 240
    #: Initialise one page-cache slot when a block becomes a vCPU cache.
    cache_slot_init: int = 53
    #: Per-block cost of registering/dividing new pool memory (stage 3).
    block_register: int = 150
    #: Acquire/release of the global pool lock (only the shared-list
    #: paths pay it; the per-vCPU page cache is lock-free -- the paper's
    #: stage-1 rationale).
    pool_lock_cost: int = 420
    #: Frame-ownership security check on every SM-side map operation.
    ownership_check: int = 300
    #: Fixed SM fault-path cost common to all three allocation stages.
    #: Measurement-calibrated: M-mode handler with cold caches at 100 MHz.
    sm_fault_fixed: int = 29470
    #: Per-ECALL SM bookkeeping on the inter-CVM channel paths (channel
    #: table lookup, endpoint/state validation, measurement compare).
    channel_bookkeeping: int = 700
    #: Posting one channel doorbell inside the SM (peer hvip update plus
    #: the CLINT MMIO store that raises the IPI).
    channel_doorbell: int = 450

    # --- hypervisor (Normal mode) internals ------------------------------
    #: Number of hypervisor-context CSRs swapped on a world switch.
    hyp_csr_context: int = 18
    #: Number of guest-context CSRs held in the secure vCPU.
    guest_csr_context: int = 16
    #: Hypervisor scheduler pass on a timer tick.
    hyp_sched_pass: int = 800
    #: KVM VM-exit handler fixed cost (exit-reason decode, vcpu put).
    kvm_exit_logic: int = 380
    #: KVM VM-entry fixed cost (vcpu load, interrupt window checks).
    kvm_entry_logic: int = 520
    #: Number of CSRs KVM swaps on a normal-VM world switch (smaller than
    #: the SM's set: KVM trusts itself and lazily switches several).
    kvm_csr_context: int = 12
    #: KVM fixed stage-2 fault cost (memslot lookup, gfn_to_pfn /
    #: get_user_pages, mmu lock).  Measurement-calibrated: dominated by the
    #: Linux gup path at 100 MHz.
    kvm_fault_fixed: int = 36541
    #: KVM stage-2 PTE install (mmu cache, dirty log).
    kvm_pte_install: int = 700
    #: Hypervisor-side cost of allocating + registering a contiguous region
    #: during secure-pool expansion (stage-3 allocation).
    hyp_expand_cost: int = 6438
    #: QEMU MMIO emulation dispatch (address decode, device model call).
    qemu_mmio_dispatch: int = 900
    #: PLIC claim + complete round trip (two device-register accesses).
    plic_claim_cost: int = 260
    #: Send one CLINT IPI (MMIO write) plus the target hart's handler
    #: running the requested fence (cross-hart TLB shootdown).
    ipi_shootdown_cost: int = 950
    #: virtio device queue processing per request (descriptor walk, used
    #: ring update), excluding data movement.
    virtio_request_fixed: int = 1400
    #: Guest-side virtio driver per-request cost (descriptor setup).
    virtio_driver_fixed: int = 900

    # --- baseline long-path secure hypervisor (E2 comparison) ------------
    #: Secure-hypervisor bookkeeping on CVM entry (its scheduler / state
    #: tracking), excluding the extra privilege switches which are charged
    #: from primitives.
    sec_hyp_entry_logic: int = 2098
    #: Secure-hypervisor bookkeeping on CVM exit.
    sec_hyp_exit_logic: int = 1791

    # --- guest kernel ------------------------------------------------------
    #: Guest kernel handling of a delegated trap entirely inside VS mode.
    guest_trap_handler: int = 350
    #: Per-request guest syscall overhead (read()/write() entry/exit).
    guest_syscall: int = 2000

    @property
    def gpr_file_save(self) -> int:
        """Save (or restore) the full 31-register GPR file."""
        return 31 * self.gpr_save

    @property
    def csr_swap(self) -> int:
        """Swap one CSR (read old + write new)."""
        return self.csr_read + self.csr_write

    def copy_bytes(self, n: int) -> int:
        """Cycles to bulk-copy ``n`` bytes."""
        return int(n * self.copy_per_byte)

    def zero_bytes(self, n: int) -> int:
        """Cycles to zero ``n`` bytes."""
        return int(n * self.zero_per_byte)


#: The default, paper-calibrated cost table.
DEFAULT_COSTS = CycleCosts()
