"""The Secure Monitor: ZION's trusted computing base (paper section III-A).

The :class:`SecureMonitor` owns everything security-relevant: the secure
memory pool and its PMP/IOPMP coverage, every CVM's stage-2 page table,
the secure vCPU structures, the ECALL interface used by the hypervisor to
drive CVM lifecycles and by confidential VMs to obtain attestation
services, and the stage-2 guest-page-fault path with its three-stage
hierarchical allocation.
"""

from __future__ import annotations

import itertools

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import EcallError, SecurityViolation, TrapRaised
from repro.isa.traps import AccessType
from repro.mem.pagetable import PTE_D, PTE_R, PTE_U, PTE_V, PTE_W, PTE_X, pte_pack
from repro.mem.physmem import PAGE_SIZE
from repro.sm.abi import CvmDescriptor
from repro.sm.alloc import AllocStage, HierarchicalAllocator, PoolExhausted
from repro.sm.attestation import AttestationReport, AttestationService
from repro.sm.channel import ChannelManager
from repro.sm.cvm import ConfidentialVm, CvmState, GpaLayout
from repro.sm.secmem import OWNER_SM, SecureMemoryPool
from repro.sm.share import SplitTableManager
from repro.sm.vcpu import SHARED_VCPU_SIZE, SharedVcpu
from repro.sm.world_switch import WorldSwitch


#: Leaf flags map_private installs for a demand-faulted private page
#: (writable + executable defaults); fault_fix_fast writes the same PTE.
_PRIVATE_LEAF_FLAGS = PTE_V | PTE_R | PTE_W | PTE_X | PTE_U | PTE_D


class _MetadataAllocator:
    """SM-internal allocator for page tables and CVM roots.

    Draws whole blocks from the pool (tagged ``OWNER_SM``) and
    bump-allocates aligned runs of pages from them, so all SM metadata --
    in particular every CVM page table -- physically lives inside the
    PMP-protected pool (the paper's controlled-channel defence).
    """

    def __init__(self, pool: SecureMemoryPool):
        self._pool = pool
        self._cursor = 0
        self._block_end = 0

    def alloc(self, size: int = PAGE_SIZE, align: int = PAGE_SIZE) -> int:
        if size % PAGE_SIZE:
            raise ValueError("metadata allocations are page-granular")
        aligned = (self._cursor + align - 1) & ~(align - 1)
        if aligned + size > self._block_end:
            block = self._pool.alloc_block(owner=OWNER_SM)
            if block is None:
                raise PoolExhausted("no pool space for SM metadata")
            self._cursor = block.base
            self._block_end = block.end
            aligned = (self._cursor + align - 1) & ~(align - 1)
            if aligned + size > self._block_end:
                raise ValueError(f"metadata allocation {size:#x} exceeds a block")
        self._cursor = aligned + size
        return aligned


class SecureMonitor:
    """The M-mode security monitor."""

    def __init__(
        self,
        bus,
        translator,
        pmp_controller,
        ledger: CycleLedger,
        costs: CycleCosts,
        device_secret: bytes = b"zion-device-secret",
        entropy_seed: bytes = b"zion-entropy",
        use_shared_vcpu: bool = True,
        long_path: bool = False,
        block_size: int | None = None,
        use_page_cache: bool = True,
    ):
        self.bus = bus
        self.dram = bus.dram
        self.translator = translator
        self.pmp = pmp_controller
        self.ledger = ledger
        self.costs = costs
        self.pool = SecureMemoryPool(**({"block_size": block_size} if block_size else {}))
        #: Ablation switch forwarded to every CVM's allocator.
        self.use_page_cache = use_page_cache
        self.metadata = _MetadataAllocator(self.pool)
        self.split = SplitTableManager(self.pool, self.dram, ledger, costs)
        # Precompiled fixed-cost charges for the stage-2 fault path (the
        # hottest SM code): identical charges, no per-call dispatch.
        self._charge_trap_to_m = ledger.charger(Category.TRAP, costs.trap_to_m)
        self._charge_fault_fixed = ledger.charger(Category.SM_LOGIC, costs.sm_fault_fixed)
        self._charge_zero_page = ledger.charger(Category.SM_LOGIC, costs.zero_bytes(PAGE_SIZE))
        self._charge_xret = ledger.charger(Category.TRAP, costs.xret)
        # Fused variants for fault_fix_fast: a stage-1 fault fix spans no
        # timer checkpoint and no exception seam past the point of no
        # return, so its fixed costs fuse per category (trap entry+exit;
        # fault fixed cost + page zero + map ownership check) with totals
        # and breakdowns identical to the piecewise handler above.
        self._charge_fault_fast_trap = ledger.charger(
            Category.TRAP, costs.trap_to_m + costs.xret
        )
        self._charge_fault_fast_sm = ledger.charger(
            Category.SM_LOGIC,
            costs.sm_fault_fixed
            + costs.zero_bytes(PAGE_SIZE)
            + costs.ownership_check,
        )
        self.attestation = AttestationService(device_secret, entropy_seed)
        self.world_switch = WorldSwitch(
            ledger,
            costs,
            translator,
            pmp_controller,
            use_shared_vcpu=use_shared_vcpu,
            long_path=long_path,
        )
        self.channels = ChannelManager(self)
        self.cvms: dict[int, ConfidentialVm] = {}
        self._allocators: dict[int, HierarchicalAllocator] = {}
        self._cvm_blocks: dict[int, list] = {}
        self._ids = itertools.count(1)
        self._vmids = itertools.count(1)
        #: MAC tags of migration blobs already imported on this host; the
        #: SM refuses a second import of the same sealed instance so the
        #: untrusted hypervisor cannot clone a CVM by replaying its blob.
        self.migration_imports: set = set()
        #: Monotonic export freshness counter, mixed into every sealed
        #: blob so two exports are never byte-identical -- without it, a
        #: CVM bounced back and forth unchanged would reseal to the same
        #: blob and trip the peer's replay registry on a *legitimate*
        #: second arrival.
        self.migration_export_seq = 0
        #: Set by :meth:`connect_hypervisor`; required for stage-3 expansion.
        self.hypervisor = None
        #: Platform CLINT for cross-hart shootdowns; installed by the machine.
        self.clint = None
        #: Per-stage fault-handling statistics for the E3 experiment.
        self.fault_stage_counts = {stage: 0 for stage in AllocStage}

    def connect_hypervisor(self, hypervisor) -> None:
        """Install the Normal-mode callback target (stage-3 expansion)."""
        self.hypervisor = hypervisor

    # ------------------------------------------------------------------
    # ECALLs from the hypervisor (Normal mode)
    # ------------------------------------------------------------------

    def ecall_register_pool_memory(self, base: int, size: int) -> int:
        """Donate contiguous physical memory to the secure pool.

        Divides the region into blocks (charged per block), covers it with
        PMP + IOPMP, and scrubs it.  Returns the number of blocks created.
        """
        self._charge_ecall()
        count = self.pool.register_region(base, size)
        self.ledger.charge(Category.ALLOC, count * self.costs.block_register)
        self.pmp.add_pool_region(base, size)
        # Donated memory is dropped, not synchronously scrubbed: pages are
        # zeroed lazily when first handed to a CVM (the fault path), so
        # stage-3 expansion stays bounded no matter the chunk size.
        self.dram.zero_range(base, size)
        self.translator.hfence_gvma()
        # PMP coverage changed on every hart: the other harts must fence
        # too before they can observe the new configuration (cross-hart
        # shootdown via CLINT IPIs).
        self._cross_hart_shootdown()
        return count

    def _cross_hart_shootdown(self, initiator: int = 0) -> None:
        """IPI every other hart to run a local fence (PMP/TLB sync)."""
        if self.clint is None:
            return
        self.clint.broadcast_ipi(exclude=initiator)
        for hart_id in range(self.clint.hart_count):
            if hart_id == initiator:
                continue
            # The target hart takes the IPI, fences, and acks.
            self.ledger.charge(Category.TLB, self.costs.ipi_shootdown_cost)
            self.clint.clear_ipi(hart_id)

    def ecall_create_cvm(self, layout: GpaLayout | None = None, vcpu_count: int = 1) -> int:
        """Create a CVM: allocate and zero its 16 KB stage-2 root."""
        self._charge_ecall()
        if vcpu_count < 1:
            raise EcallError("a CVM needs at least one vCPU")
        layout = layout or GpaLayout()
        cvm = ConfidentialVm(next(self._ids), next(self._vmids), layout, vcpu_count)
        root = self.metadata.alloc(size=16 * 1024, align=16 * 1024)
        self.dram.zero_range(root, 16 * 1024)
        self.ledger.charge(Category.SM_LOGIC, self.costs.zero_bytes(16 * 1024))
        cvm.hgatp_root = root
        self.cvms[cvm.cvm_id] = cvm
        self._allocators[cvm.cvm_id] = HierarchicalAllocator(
            self.pool, self.ledger, self.costs, use_page_cache=self.use_page_cache
        )
        self._cvm_blocks[cvm.cvm_id] = []
        cvm.measurement_log.extend(
            "layout",
            repr((layout.dram_base, layout.dram_size, layout.shared_base)).encode(),
        )
        return cvm.cvm_id

    def ecall_assign_shared_vcpu(self, cvm_id: int, vcpu_id: int, base_pa: int) -> None:
        """The hypervisor donates a normal page as the shared vCPU area."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.CREATED)
        # Check-after-Load: vcpu_id arrives in a hypervisor register; an
        # unvalidated value would wrap negatively or raise IndexError
        # straight through the ABI's error mapping (simulator crash).
        if not 0 <= vcpu_id < len(cvm.shared_vcpus):
            raise EcallError(f"CVM {cvm_id} has no vCPU {vcpu_id}")
        if self.pool.contains(base_pa, SHARED_VCPU_SIZE):
            raise SecurityViolation("shared vCPU area must be normal memory")
        cvm.shared_vcpus[vcpu_id] = SharedVcpu(base_pa, self.bus)

    def ecall_load_image(self, cvm_id: int, gpa: int, data: bytes) -> None:
        """Copy guest image bytes into newly allocated private pages."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.CREATED)
        if gpa % PAGE_SIZE:
            raise EcallError("image load GPA must be page-aligned")
        offset = 0
        while offset < len(data):
            page_gpa = gpa + offset
            chunk = data[offset : offset + PAGE_SIZE]
            pa = self._alloc_and_map(cvm, 0, page_gpa)
            self.dram.write(pa, chunk)
            self.ledger.charge(Category.COPY, self.costs.copy_bytes(len(chunk)))
            offset += PAGE_SIZE
        cvm.measurement_log.extend(f"image@{gpa:#x}", data)

    def ecall_set_entry_point(self, cvm_id: int, vcpu_id: int, pc: int) -> None:
        """Set a vCPU's boot PC (measured into the launch digest)."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.CREATED)
        vcpu = cvm.vcpu(vcpu_id)
        vcpu.pc = pc
        vcpu.csrs["sepc"] = pc
        cvm.measurement_log.extend(f"entry@{vcpu_id}", pc.to_bytes(8, "little"))

    def ecall_finalize(self, cvm_id: int) -> bytes:
        """Seal the launch measurement; the CVM becomes runnable."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.CREATED)
        for vcpu in cvm.vcpus:
            if cvm.shared_vcpus[vcpu.vcpu_id] is None:
                raise EcallError(
                    f"vCPU {vcpu.vcpu_id} has no shared vCPU area assigned"
                )
        digest = cvm.measurement_log.finalize()
        if cvm.measurement is None:
            cvm.measurement = digest
        # (A migrated-in CVM keeps its original launch measurement; the
        # local log still records the migration event.)
        cvm.state = CvmState.FINALIZED
        return cvm.measurement

    def ecall_link_shared_subtree(self, cvm_id: int, root_index: int, table_pa: int) -> None:
        """Link a hypervisor-managed shared-region subtree (section IV-E)."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.CREATED, CvmState.FINALIZED, CvmState.RUNNING)
        # A first link installs into an empty shared root slot (the SM
        # never maps the shared half), so nothing stale can be cached.
        # A *re*-link swaps out a live subtree, and any translation the
        # hart walked through the old table may still sit in the TLB --
        # exactly the stale-translation window ZL4 exists for -- so the
        # swap is fenced by VMID.
        relink = root_index in cvm.shared_subtrees
        self.split.link_shared_subtree(cvm, root_index, table_pa)
        if relink:
            self.translator.hfence_gvma(cvm.vmid)

    def ecall_suspend(self, cvm_id: int) -> None:
        """Park a runnable CVM (required before migration export)."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.FINALIZED, CvmState.RUNNING)
        cvm.state = CvmState.SUSPENDED

    def ecall_resume(self, cvm_id: int) -> None:
        """Return a suspended CVM to the runnable state."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.SUSPENDED)
        cvm.state = CvmState.FINALIZED

    def ecall_describe_cvm(self, cvm_id: int) -> CvmDescriptor:
        """Host-visible summary of a CVM (the DESCRIBE_CVM ECALL).

        The sanctioned way for the hypervisor to learn a CVM's shape --
        vCPU count and GPA layout -- when provisioning host resources
        for a CVM it did not create (migration adopt path).  Exposes
        nothing the host could not already observe at creation time.
        """
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        return CvmDescriptor(
            cvm_id=cvm.cvm_id,
            vcpu_count=len(cvm.vcpus),
            layout=cvm.layout,
            state=cvm.state.value,
        )

    def ecall_destroy(self, cvm_id: int) -> None:
        """Destroy a CVM: scrub every owned frame, recycle its blocks."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(
            CvmState.CREATED, CvmState.FINALIZED, CvmState.RUNNING, CvmState.SUSPENDED
        )
        # Channels die with either endpoint: unmap from both sides and
        # scrub the windows *before* the CVM's own frames are recycled.
        self.channels.on_cvm_destroyed(cvm_id)
        for page in self.pool.pages_owned_by(cvm.cvm_id):
            self.dram.zero_range(page, PAGE_SIZE)
            self.ledger.charge(Category.SM_LOGIC, self.costs.zero_bytes(PAGE_SIZE))
            self.pool.set_page_owner(page, "free")
        allocator = self._allocators[cvm.cvm_id]
        for block in allocator.release_all(cvm.cvm_id) + self._cvm_blocks[cvm.cvm_id]:
            if block.owner is not None:
                self.pool.free_block(block)
        self._cvm_blocks[cvm.cvm_id] = []
        self.translator.hfence_gvma(cvm.vmid)
        cvm.state = CvmState.DESTROYED

    # ------------------------------------------------------------------
    # ECALLs from confidential VMs (CVM mode)
    # ------------------------------------------------------------------

    def ecall_attestation_report(self, cvm_id: int, report_data: bytes = b"") -> AttestationReport:
        """Sign a report over the launch measurement, RTMRs and user data."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        if cvm.measurement is None:
            raise EcallError("CVM is not finalized; no measurement exists")
        self.ledger.charge(Category.SM_LOGIC, 4000)  # HMAC over the report
        import hashlib

        rtmr_digest = hashlib.sha256(b"".join(cvm.rtmrs)).digest()
        return self.attestation.sign_report(
            cvm.cvm_id, cvm.measurement, report_data, rtmr_digest=rtmr_digest
        )

    def ecall_extend_rtmr(self, cvm_id: int, index: int, data: bytes) -> bytes:
        """Guest-side runtime measurement extension (RTMR-style).

        ``rtmr[index] = SHA-256(rtmr[index] || SHA-256(data))`` -- the
        standard extend operation, so a verifier can replay an event log.
        Returns the new register value.
        """
        import hashlib

        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        if not 0 <= index < len(cvm.rtmrs):
            raise EcallError(f"no such RTMR: {index}")
        if len(data) > 4096:
            raise EcallError("extend data too large")
        self.ledger.charge(Category.SM_LOGIC, 2_500)  # two hash blocks
        digest = hashlib.sha256(data).digest()
        cvm.rtmrs[index] = hashlib.sha256(cvm.rtmrs[index] + digest).digest()
        return cvm.rtmrs[index]

    def ecall_get_random(self, cvm_id: int, count: int) -> bytes:
        """Platform random bytes from the SM's DRBG (1..512)."""
        self._charge_ecall()
        if not 0 < count <= 512:
            raise EcallError("random request must be 1..512 bytes")
        self._cvm(cvm_id)
        self.ledger.charge(Category.SM_LOGIC, 50 * count)
        return self.attestation.random_bytes(count)

    def ecall_guest_share_request(self, hart, cvm_id: int, vcpu_id: int, size: int) -> int:
        """Guest-initiated shared-memory growth (paper V-A: the CVM kernel
        issues shared-memory requests, e.g. to enlarge its SWIOTLB).

        The SM validates the request and relays it to the hypervisor via a
        world switch (only Normal mode can allocate normal memory); the
        hypervisor extends the premapped shared window.  Returns the GPA
        of the newly shared range.
        """
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        if size <= 0 or size % PAGE_SIZE:
            raise EcallError("share request must be a positive page multiple")
        if self.hypervisor is None:
            raise EcallError("no hypervisor connected")
        handle = self.hypervisor.cvm_handles[cvm_id]
        if handle.shared_window_size + size > cvm.layout.shared_size:
            raise EcallError("share request exceeds the shared GPA region")
        vcpu = cvm.vcpu(vcpu_id)
        self.world_switch.exit_to_normal(
            hart, cvm, vcpu, {"kind": "share_request", "cause": 0}
        )
        new_base_gpa = self.hypervisor.on_share_request(self, cvm_id, size)
        self.world_switch.enter_cvm(hart, cvm, vcpu)
        return new_base_gpa

    def ecall_reclaim_pages(self, cvm_id: int, vcpu_id: int, gpa: int, count: int) -> int:
        """Guest returns private pages it no longer needs (ballooning).

        The SM unmaps each page from the stage-2 table, scrubs it, and
        pushes it back onto the vCPU's page cache so subsequent faults
        reuse it at stage-1 cost.  Returns the number of pages reclaimed.
        """
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        if gpa % PAGE_SIZE:
            raise EcallError("reclaim GPA must be page-aligned")
        # Check-after-Load: the count register bounds SM work below; an
        # unvalidated value lets a guest pin the monitor in this loop
        # (one stage-2 walk per iteration) for arbitrarily long.
        if not 0 <= count <= cvm.layout.dram_size // PAGE_SIZE:
            raise EcallError(f"reclaim count {count} exceeds the private region")
        allocator = self._allocators[cvm_id]
        cache = allocator.cache_for(vcpu_id)
        reclaimed = 0
        for i in range(count):
            page_gpa = gpa + i * PAGE_SIZE
            if not cvm.layout.in_private_dram(page_gpa):
                raise SecurityViolation(
                    f"reclaim of non-private GPA {page_gpa:#x} refused"
                )
            try:
                mapped_pa, _flags = self.translator.gpa_to_pa(
                    cvm.hgatp_root, page_gpa, AccessType.LOAD
                )
            except TrapRaised:
                continue  # not mapped: nothing to reclaim
            # A guest must not reclaim frames it does not own -- in
            # particular channel-window frames mapped at one of its GPAs,
            # which would steal the window into its private page cache.
            if self.pool.owner_of(mapped_pa & ~(PAGE_SIZE - 1)) != cvm.cvm_id:
                raise SecurityViolation(
                    f"reclaim of GPA {page_gpa:#x} refused: frame not owned "
                    f"by CVM {cvm.cvm_id}"
                )
            pa = self.split.unmap_private(cvm, page_gpa)
            self.dram.zero_range(pa, PAGE_SIZE)
            self.ledger.charge(Category.SM_LOGIC, self.costs.zero_bytes(PAGE_SIZE))
            cache._pages.append(pa)
            self.translator.sfence_page(cvm.vmid, page_gpa)
            reclaimed += 1
        return reclaimed

    # ------------------------------------------------------------------
    # Inter-CVM secure channels (extension beyond the paper)
    # ------------------------------------------------------------------

    def ecall_channel_create(
        self, cvm_id: int, window_gpa: int, size: int, expected_peer_measurement: bytes
    ) -> int:
        """Create a channel endpoint; returns the new channel ID."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.FINALIZED, CvmState.RUNNING)
        return self.channels.create(cvm, window_gpa, size, expected_peer_measurement)

    def ecall_channel_connect(
        self, cvm_id: int, channel_id: int, window_gpa: int,
        expected_creator_measurement: bytes,
    ) -> int:
        """Join an existing channel; returns the window size in bytes."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        cvm.require_state(CvmState.FINALIZED, CvmState.RUNNING)
        return self.channels.connect(
            cvm, channel_id, window_gpa, expected_creator_measurement
        )

    def ecall_channel_notify(self, cvm_id: int, channel_id: int) -> int:
        """Ring the peer's doorbell; returns its pending doorbell count."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        return self.channels.notify(cvm, channel_id)

    def ecall_channel_close(self, cvm_id: int, channel_id: int) -> None:
        """Close a channel from either endpoint (unmap, scrub, recycle)."""
        self._charge_ecall()
        cvm = self._cvm(cvm_id)
        self.channels.close(cvm, channel_id)

    # ------------------------------------------------------------------
    # Stage-2 guest-page fault handling (paper IV-C/IV-D)
    # ------------------------------------------------------------------

    def handle_guest_page_fault(self, hart, cvm: ConfidentialVm, vcpu_id: int, gpa: int) -> AllocStage:
        """Resolve a private-DRAM stage-2 fault with hierarchical allocation.

        Returns the allocation stage that satisfied it.  MMIO and
        shared-region faults never reach here (the dispatcher exits to the
        hypervisor for those); a fault outside every known region is a
        security violation and kills the access.
        """
        self._charge_trap_to_m()
        self._charge_fault_fixed()
        if not cvm.layout.in_private_dram(gpa):
            raise SecurityViolation(
                f"unresolvable stage-2 fault at GPA {gpa:#x} for CVM {cvm.cvm_id}"
            )
        page_gpa = gpa & ~(PAGE_SIZE - 1)
        pa, stage = self._alloc_page_with_expansion(hart, cvm, vcpu_id)
        self.dram.zero_range(pa, PAGE_SIZE)
        self._charge_zero_page()
        self.split.map_private(cvm, page_gpa, pa, self._alloc_table_page)
        self.translator.sfence_page(cvm.vmid, page_gpa)
        self.fault_stage_counts[stage] += 1
        self._charge_xret()
        return stage

    def fault_fix_fast(self, cvm: ConfidentialVm, vcpu_id: int, gpa: int, leaf_slot: int) -> bool:
        """Fused stage-1 fault fix for the machine's access engine.

        The caller has already raw-walked the stage-2 table, verified the
        GPA is in the CVM's private DRAM, and found the full-depth leaf
        slot invalid with every intermediate table present -- the stage-1
        common case.  This performs the identical state mutations and
        charges the identical cycle totals as
        :meth:`handle_guest_page_fault`, with the fixed costs fused per
        category (see the charger comments in ``__init__``).  Returns
        ``False`` -- before charging or mutating anything -- whenever a
        rarer stage would be involved, so the caller falls back to the
        piecewise handler.
        """
        allocator = self._allocators.get(cvm.cvm_id)
        if allocator is None:
            return False
        pa = allocator.alloc_page_fast(cvm.cvm_id, vcpu_id)
        if pa is None:
            return False
        # Point of no return: the allocator charged and handed out a page.
        self._charge_fault_fast_trap()
        self._charge_fault_fast_sm()
        owner = self.pool.owner_of(pa)
        if owner != cvm.cvm_id:
            raise SecurityViolation(
                f"frame {pa:#x} is owned by {owner!r}, not CVM {cvm.cvm_id}"
            )
        self.dram.zero_range(pa, PAGE_SIZE)
        page_gpa = gpa & ~(PAGE_SIZE - 1)
        self.dram.write_u64(leaf_slot, pte_pack(pa, _PRIVATE_LEAF_FLAGS))
        self.split.note_external_leaf_install()
        self.translator.sfence_page(cvm.vmid, page_gpa)
        self.fault_stage_counts[AllocStage.PAGE_CACHE] += 1
        return True

    def _alloc_and_map(self, cvm: ConfidentialVm, vcpu_id: int, gpa: int) -> int:
        """Allocation + mapping used by image loading (no fault framing)."""
        pa, _stage = self._alloc_page_with_expansion(None, cvm, vcpu_id)
        self.split.map_private(cvm, gpa, pa, self._alloc_table_page)  # zionlint: disable=ZL4 pre-finalize image load: the CVM has never executed, so no translation is cached
        return pa

    #: Pool-expansion attempts per allocation before the SM gives up.  The
    #: hypervisor is untrusted: it may donate nothing (or a short chunk),
    #: so a single stage-3 round trip is not guaranteed to produce a page.
    EXPANSION_ATTEMPTS = 3

    def _alloc_page_with_expansion(self, hart, cvm: ConfidentialVm, vcpu_id: int):
        """The three-stage path, escalating to the hypervisor when needed.

        Raises :class:`PoolExhausted` (a contained, typed refusal -- not a
        crash) if the hypervisor fails to donate usable memory after
        :data:`EXPANSION_ATTEMPTS` rounds.
        """
        allocator = self._allocators[cvm.cvm_id]
        try:
            pa, stage = allocator.alloc_page(cvm.cvm_id, vcpu_id)
        except PoolExhausted:
            pa = None
            for _ in range(self.EXPANSION_ATTEMPTS):
                self._request_pool_expansion(hart, cvm, vcpu_id)
                try:
                    pa, _ = allocator.alloc_page(cvm.cvm_id, vcpu_id)
                except PoolExhausted:
                    continue  # hypervisor donated nothing usable; re-ask
                break
            if pa is None:
                raise PoolExhausted(
                    f"hypervisor failed to expand the secure pool after "
                    f"{self.EXPANSION_ATTEMPTS} requests (CVM {cvm.cvm_id})"
                )
            allocator.note_expansion()
            stage = AllocStage.POOL_EXPANSION
        cache = allocator.cache_for(vcpu_id)
        if cache.block is not None and cache.block not in self._cvm_blocks[cvm.cvm_id]:
            self._cvm_blocks[cvm.cvm_id].append(cache.block)
        return pa, stage

    def _request_pool_expansion(self, hart, cvm: ConfidentialVm, vcpu_id: int) -> None:
        """Stage 3: leave CVM mode so the hypervisor can donate memory.

        When called outside guest execution (image loading), the expansion
        request is a plain call without the world switch.
        """
        if self.hypervisor is None:
            raise PoolExhausted("secure pool exhausted and no hypervisor connected")
        if hart is not None:
            vcpu = cvm.vcpu(vcpu_id)
            self.world_switch.exit_to_normal(
                hart, cvm, vcpu, {"kind": "pool_expand", "cause": 0}
            )
            self.hypervisor.on_pool_expand_request(self)
            self.world_switch.enter_cvm(hart, cvm, vcpu)
        else:
            self.hypervisor.on_pool_expand_request(self)

    def _alloc_table_page(self) -> int:
        """Fresh zeroed secure page for a stage-2 table level."""
        pa = self.metadata.alloc()
        self.dram.zero_range(pa, PAGE_SIZE)
        self.ledger.charge(Category.SM_LOGIC, self.costs.zero_bytes(PAGE_SIZE))
        return pa

    # ------------------------------------------------------------------

    def _cvm(self, cvm_id: int) -> ConfidentialVm:
        cvm = self.cvms.get(cvm_id)
        if cvm is None:
            raise EcallError(f"no such CVM: {cvm_id}")
        return cvm

    def _charge_ecall(self) -> None:
        self.ledger.charge(Category.TRAP, self.costs.trap_to_m)
        self.ledger.charge(Category.SM_LOGIC, self.costs.ecall_dispatch)
        self.ledger.charge(Category.TRAP, self.costs.xret)
