"""The SM's PMP/IOPMP layout and world-switch toggling (paper IV-C).

Layout on every hart:

- entry 0: the SM's own firmware/metadata region -- locked, no access for
  lower modes (standard OpenSBI-style self-protection);
- entries 1..N: one TOR region per registered secure-pool region, whose
  permissions the SM *toggles on every world switch* -- open (RWX below M)
  while a CVM runs, closed while Normal mode runs;
- the final entry: a background TOR region covering all of DRAM, RWX, so
  normal memory stays accessible in both worlds.

The same pool regions are mirrored into the IOPMP as deny rules for all
DMA masters, which do not participate in world switching: devices never
get to touch the pool, in either mode.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import ConfigurationError
from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.isa.pmp import PmpAddressMode, PmpEntry

#: PMP entry indexes.
_FIRMWARE_ENTRY = 0
_FIRST_POOL_ENTRY = 1
_BACKGROUND_ENTRY = 15

#: Maximum pool regions a 16-entry PMP can carve (entry 0 and 15 reserved).
MAX_POOL_REGIONS = _BACKGROUND_ENTRY - _FIRST_POOL_ENTRY


class PmpController:
    """Programs the harts' PMP units and the platform IOPMP for ZION."""

    def __init__(
        self,
        harts,
        iopmp: IopmpUnit,
        firmware_base: int,
        firmware_size: int,
        dram_base: int,
        dram_size: int,
        ledger: CycleLedger,
        costs: CycleCosts,
    ):
        self._harts = list(harts)
        self._iopmp = iopmp
        self._firmware = (firmware_base, firmware_size)
        self._dram = (dram_base, dram_size)
        self._ledger = ledger
        self._costs = costs
        self._pool_regions: list[tuple[int, int]] = []
        #: Pool state per hart id: True when open (CVM mode).
        self._pool_open: dict[int, bool] = {}
        self._install_static_entries()

    # -- static configuration ---------------------------------------------

    def _install_static_entries(self) -> None:
        firmware_base, firmware_size = self._firmware
        dram_base, dram_size = self._dram
        for hart in self._harts:
            hart.pmp.set_entry(
                _FIRMWARE_ENTRY,
                PmpEntry(
                    mode=PmpAddressMode.TOR,
                    base=firmware_base,
                    size=firmware_size,
                    locked=True,
                ),
            )
            hart.pmp.set_entry(
                _BACKGROUND_ENTRY,
                PmpEntry(
                    mode=PmpAddressMode.TOR,
                    base=dram_base,
                    size=dram_size,
                    readable=True,
                    writable=True,
                    executable=True,
                ),
            )
            self._pool_open[hart.hart_id] = False
        # Devices may DMA anywhere in DRAM *except* pool regions; pool deny
        # rules are inserted ahead of this allow rule as regions register.
        self._iopmp.add_entry(
            IopmpEntry(base=dram_base, size=dram_size, readable=True, writable=True)
        )

    # -- pool region registration -----------------------------------------------

    def add_pool_region(self, base: int, size: int) -> None:
        """Cover a newly registered pool region on every hart + the IOPMP.

        Charged as reprogramming one PMP entry per hart plus one IOPMP
        deny rule; callers follow with the required fence.
        """
        if len(self._pool_regions) >= MAX_POOL_REGIONS:
            raise ConfigurationError(
                f"PMP can only carve {MAX_POOL_REGIONS} pool regions"
            )
        self._pool_regions.append((base, size))
        index = _FIRST_POOL_ENTRY + len(self._pool_regions) - 1
        for hart in self._harts:
            open_now = self._pool_open[hart.hart_id]
            hart.pmp.set_entry(index, self._pool_entry(base, size, open_now))
            self._ledger.charge(Category.PMP, self._costs.pmp_entry_write)
        self._iopmp.insert_entry(0, IopmpEntry(base=base, size=size))
        self._ledger.charge(Category.PMP, self._costs.iopmp_entry_write)
        self._ledger.charge(Category.PMP, self._costs.pmp_fence)

    @staticmethod
    def _pool_entry(base: int, size: int, open_: bool) -> PmpEntry:
        return PmpEntry(
            mode=PmpAddressMode.TOR,
            base=base,
            size=size,
            readable=open_,
            writable=open_,
            executable=open_,
        )

    # -- world-switch toggling ----------------------------------------------------

    def open_pool(self, hart, charge: bool = True) -> None:
        """Grant CVM-mode access to every pool region on this hart.

        ``charge=False`` performs the same PMP reprogramming but leaves
        the cycle accounting to the caller: the world switch's memoized
        plan pre-fires the fused ``pool_region_count * pmp_entry_write +
        pmp_fence`` cost (same total, same category, same checkpoint
        window -- see world_switch.py).
        """
        self._set_pool(hart, open_=True, charge=charge)

    def close_pool(self, hart, charge: bool = True) -> None:
        """Revoke pool access before returning to Normal mode.

        See :meth:`open_pool` for the ``charge`` contract.
        """
        self._set_pool(hart, open_=False, charge=charge)

    def _set_pool(self, hart, open_: bool, charge: bool = True) -> None:
        for i, (base, size) in enumerate(self._pool_regions):
            hart.pmp.set_entry(
                _FIRST_POOL_ENTRY + i, self._pool_entry(base, size, open_)
            )
            if charge:
                self._ledger.charge(Category.PMP, self._costs.pmp_entry_write)
        if charge:
            self._ledger.charge(Category.PMP, self._costs.pmp_fence)
        self._pool_open[hart.hart_id] = open_

    def pool_is_open(self, hart) -> bool:
        """Whether this hart currently has CVM-mode pool access."""
        return self._pool_open[hart.hart_id]

    @property
    def pool_regions(self):
        return list(self._pool_regions)

    @property
    def pool_region_count(self) -> int:
        """Registered pool regions (the world-switch plan key)."""
        return len(self._pool_regions)

    @property
    def pmp_entries_used(self) -> int:
        """Occupied PMP entries (firmware + pool regions + background)."""
        return 2 + len(self._pool_regions)
