"""Hierarchical three-stage memory allocation (paper section IV-D, Fig. 2).

Stage 1: pop a page from the faulting vCPU's private page cache -- the
common case, lock-free because the cache is per-vCPU.
Stage 2: the cache is empty; unlink a fresh 256 KB block from the head of
the pool's circular list (O(1)) and turn it into the vCPU's new cache.
Stage 3: the pool itself is (nearly) exhausted; the SM must ask the
hypervisor to register more contiguous physical memory.  This is the only
stage that leaves the SM, and it is raised to the caller as
:class:`PoolExhausted` so the monitor can drive the world switch.
"""

from __future__ import annotations

import enum

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import ReproError
from repro.mem.physmem import PAGE_SIZE
from repro.sm.secmem import SecureMemoryPool


class AllocStage(enum.IntEnum):
    """Which stage of Fig. 2 satisfied an allocation."""

    PAGE_CACHE = 1
    NEW_BLOCK = 2
    POOL_EXPANSION = 3


class PoolExhausted(ReproError):
    """Stage 3 is required: the monitor must request pool expansion."""


class VcpuPageCache:
    """A vCPU's private page cache: the pages of its current block."""

    def __init__(self):
        self._pages: list[int] = []
        self.block = None

    def __len__(self):
        return len(self._pages)

    def pop(self) -> int | None:
        """Take one cached page, or ``None`` when empty."""
        if not self._pages:
            return None
        return self._pages.pop()

    def refill(self, block) -> None:
        """Make ``block`` the cache's backing store (all pages free)."""
        self.block = block
        self._pages = list(block.pages())


class HierarchicalAllocator:
    """Per-CVM allocator implementing the three-stage strategy.

    One instance per confidential VM; it holds one
    :class:`VcpuPageCache` per vCPU, all drawing on the shared
    :class:`SecureMemoryPool`.
    """

    def __init__(
        self,
        pool: SecureMemoryPool,
        ledger: CycleLedger,
        costs: CycleCosts,
        use_page_cache: bool = True,
    ):
        self._pool = pool
        self._ledger = ledger
        self._costs = costs
        #: Ablation switch: with the cache off, every allocation takes the
        #: global pool list under its lock (the naive design stage 1 avoids).
        self.use_page_cache = use_page_cache
        self._caches: dict[int, VcpuPageCache] = {}
        # Precompiled stage-1 charge: paid on every allocation attempt.
        self._charge_cache_pop = ledger.charger(
            Category.ALLOC, costs.page_cache_pop
        )
        self._global_block = None
        self._global_pages: list[int] = []
        #: Allocation counts per stage, for the experiment harness.
        self.stage_counts = {stage: 0 for stage in AllocStage}

    def cache_for(self, vcpu_id: int) -> VcpuPageCache:
        """The vCPU's page cache, created on first use."""
        if vcpu_id not in self._caches:
            self._caches[vcpu_id] = VcpuPageCache()
        return self._caches[vcpu_id]

    def alloc_page(self, cvm_id: int, vcpu_id: int) -> tuple[int, AllocStage]:
        """Allocate one secure page for ``(cvm, vcpu)``.

        Returns ``(page_pa, stage)``; raises :class:`PoolExhausted` when
        stage 3 is needed (the caller expands the pool and retries).
        """
        if not self.use_page_cache:
            return self._alloc_uncached(cvm_id)
        cache = self.cache_for(vcpu_id)

        # Stage 1: per-vCPU page cache.
        page = cache.pop()
        self._charge_cache_pop()
        if page is not None:
            self.stage_counts[AllocStage.PAGE_CACHE] += 1
            self._pool.set_page_owner(page, cvm_id)
            return page, AllocStage.PAGE_CACHE

        # Stage 2: grab a block from the list head, make it the cache.
        block = self._pool.alloc_block(owner=(cvm_id, vcpu_id))
        self._ledger.charge(Category.ALLOC, self._costs.block_unlink)
        if block is None:
            raise PoolExhausted(
                f"secure pool exhausted allocating for CVM {cvm_id} vCPU {vcpu_id}"
            )
        cache.refill(block)
        self._ledger.charge(
            Category.ALLOC, self._costs.cache_slot_init * block.page_count
        )
        page = cache.pop()
        self.stage_counts[AllocStage.NEW_BLOCK] += 1
        self._pool.set_page_owner(page, cvm_id)
        return page, AllocStage.NEW_BLOCK

    def alloc_page_fast(self, cvm_id: int, vcpu_id: int) -> int | None:
        """Stage-1-only allocation for the monitor's fused fault path.

        Succeeds exactly when :meth:`alloc_page` would be satisfied by the
        vCPU's page cache, with the identical charge (one
        ``page_cache_pop``) and identical state updates.  Returns ``None``
        -- before charging or mutating anything -- whenever stage 2/3
        would be involved (cache missing or empty) or the page-cache
        ablation is off, so the caller can take the full path instead.

        Skipping the monitor's per-CVM block-list membership scan is safe
        here: a cache only ever holds pages because a prior stage-2
        refill went through the full path, which registered the block.
        """
        if not self.use_page_cache:
            return None
        cache = self._caches.get(vcpu_id)
        if cache is None or not cache._pages:
            return None
        page = cache._pages.pop()
        self._charge_cache_pop()
        self.stage_counts[AllocStage.PAGE_CACHE] += 1
        self._pool.set_page_owner(page, cvm_id)
        return page

    def _alloc_uncached(self, cvm_id: int) -> tuple[int, AllocStage]:
        """The no-page-cache baseline: every fault takes the global list.

        Each allocation pays the pool lock plus list manipulation, which
        is exactly what the per-vCPU cache exists to avoid (paper IV-D).
        """
        self._ledger.charge(Category.ALLOC, self._costs.pool_lock_cost)
        if not self._global_pages:
            block = self._pool.alloc_block(owner=(cvm_id, "global"))
            self._ledger.charge(Category.ALLOC, self._costs.block_unlink)
            if block is None:
                raise PoolExhausted("secure pool exhausted (uncached path)")
            self._global_block = block
            self._global_pages = list(block.pages())
        # Page hand-out still walks the shared structure under the lock.
        self._ledger.charge(Category.ALLOC, self._costs.block_unlink)
        page = self._global_pages.pop()
        self.stage_counts[AllocStage.NEW_BLOCK] += 1
        self._pool.set_page_owner(page, cvm_id)
        return page, AllocStage.NEW_BLOCK

    def note_expansion(self) -> None:
        """Record that an allocation required stage-3 pool expansion."""
        self.stage_counts[AllocStage.POOL_EXPANSION] += 1
        # The expansion replaced what would have been a stage-2 count.
        self.stage_counts[AllocStage.NEW_BLOCK] -= 1

    def release_all(self, cvm_id: int) -> list:
        """Drop every cache held for ``cvm_id`` (CVM teardown).

        Returns the backing blocks so the caller can recycle them into
        the pool.  Covers both the per-vCPU caches and the uncached
        ablation's global block -- a block whose pages were only partly
        handed out is still owned by the CVM and must come back.
        """
        blocks = []
        for cache in self._caches.values():
            block = cache.block
            if block is not None and block.owner is not None \
                    and block.owner[0] == cvm_id:
                blocks.append(block)
        self._caches.clear()
        if self._global_block is not None:
            owner = self._global_block.owner
            if owner is not None and owner[0] == cvm_id:
                blocks.append(self._global_block)
            self._global_block = None
            self._global_pages = []
        return blocks
