"""The secure memory pool (paper section IV-C/IV-D).

When a privileged user registers contiguous physical memory with the SM,
the SM divides it into 256 KB *secure memory blocks* linked on a
bidirectional circular list ordered by address, with allocation from the
head.  Frame ownership (which CVM a page belongs to, or whether it holds
SM metadata such as page tables) is tracked per page, which is what lets
the SM guarantee stage-2 disjointness between CVMs.
"""

from __future__ import annotations

from repro.errors import SecurityViolation
from repro.mem.physmem import PAGE_SIZE

#: Default secure memory block size (paper: "default size of 256KB").
SECURE_BLOCK_SIZE = 256 * 1024

#: Ownership tag for pages holding SM metadata (page tables, secure vCPUs).
OWNER_SM = "sm"
#: Ownership tag for pages sitting free in the pool.
OWNER_FREE = "free"


class SecureMemoryBlock:
    """One block of the pool: contiguous pages plus the list links."""

    def __init__(self, base: int, size: int):
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise ValueError("block must be page-aligned")
        self.base = base
        self.size = size
        self.prev: SecureMemoryBlock | None = None
        self.next: SecureMemoryBlock | None = None
        #: vCPU (or other owner) this block currently serves as cache for.
        self.owner = None

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def page_count(self) -> int:
        return self.size // PAGE_SIZE

    def pages(self):
        """Base addresses of every page in the block."""
        return range(self.base, self.end, PAGE_SIZE)

    def __repr__(self):
        return f"<SecureMemoryBlock [{self.base:#x}, {self.end:#x}) owner={self.owner}>"


class SecureMemoryPool:
    """The SM's pool of PMP-protected memory.

    The free list is a circular doubly-linked list of blocks ordered by
    address; :meth:`alloc_block` unlinks the head in O(1) (paper IV-D
    stage 2).  Registered regions are remembered so the PMP/IOPMP
    configuration can cover them.
    """

    def __init__(self, block_size: int = SECURE_BLOCK_SIZE):
        if block_size % PAGE_SIZE:
            raise ValueError("block size must be page-aligned")
        self.block_size = block_size
        self._head: SecureMemoryBlock | None = None
        self._free_blocks = 0
        #: Registered (base, size) regions, in registration order.
        self.regions: list[tuple[int, int]] = []
        #: page base -> ownership tag (OWNER_FREE / OWNER_SM / cvm id).
        self._page_owner: dict[int, str | int] = {}

    # -- region registration -------------------------------------------------

    def register_region(self, base: int, size: int) -> int:
        """Divide ``[base, base+size)`` into blocks; returns the block count.

        The region must be block-aligned in size (the SM rejects ragged
        registrations; the hypervisor allocates whole blocks anyway).
        """
        if base % PAGE_SIZE:
            raise ValueError("region base must be page-aligned")
        if size <= 0 or size % self.block_size:
            raise ValueError(
                f"region size must be a positive multiple of {self.block_size:#x}"
            )
        for existing_base, existing_size in self.regions:
            if base < existing_base + existing_size and existing_base < base + size:
                raise SecurityViolation(
                    f"region [{base:#x}, {base + size:#x}) overlaps an "
                    "already-registered secure region"
                )
        self.regions.append((base, size))
        count = 0
        for block_base in range(base, base + size, self.block_size):
            block = SecureMemoryBlock(block_base, self.block_size)
            self._insert_ordered(block)
            for page in block.pages():
                self._page_owner[page] = OWNER_FREE
            count += 1
        return count

    def contains(self, addr: int, size: int = 1) -> bool:
        """Whether ``[addr, addr+size)`` lies inside registered pool memory."""
        for base, region_size in self.regions:
            if base <= addr and addr + size <= base + region_size:
                return True
        return False

    # -- circular list maintenance ---------------------------------------------

    def _insert_ordered(self, block: SecureMemoryBlock) -> None:
        if self._head is None:
            block.prev = block.next = block
            self._head = block
        elif block.base < self._head.base:
            self._link_before(self._head, block)
            self._head = block
        else:
            node = self._head
            while node.next is not self._head and node.next.base < block.base:
                node = node.next
            self._link_before(node.next, block)
        self._free_blocks += 1

    @staticmethod
    def _link_before(node: SecureMemoryBlock, new: SecureMemoryBlock) -> None:
        new.prev = node.prev
        new.next = node
        node.prev.next = new
        node.prev = new

    def _unlink(self, block: SecureMemoryBlock) -> None:
        if block.next is block:
            self._head = None
        else:
            block.prev.next = block.next
            block.next.prev = block.prev
            if self._head is block:
                self._head = block.next
        block.prev = block.next = None
        self._free_blocks -= 1

    # -- allocation ----------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self._free_blocks

    def alloc_block(self, owner) -> SecureMemoryBlock | None:
        """Unlink the head block (lowest address) and assign it to ``owner``.

        Returns ``None`` when the pool is exhausted (the caller escalates
        to stage-3 expansion).  O(1) by construction.
        """
        if self._head is None:
            return None
        block = self._head
        self._unlink(block)
        block.owner = owner
        for page in block.pages():
            self._page_owner[page] = owner
        return block

    def free_block(self, block: SecureMemoryBlock) -> None:
        """Return a block to the free list (address-ordered reinsertion)."""
        block.owner = None
        for page in block.pages():
            self._page_owner[page] = OWNER_FREE
        self._insert_ordered(block)

    def free_list_blocks(self):
        """The free blocks in list order (head first), for introspection."""
        blocks = []
        node = self._head
        while node is not None:
            blocks.append(node)
            node = node.next
            if node is self._head:
                break
        return blocks

    # -- ownership tracking -----------------------------------------------------

    def owner_of(self, page_base: int):
        """Ownership tag of a pool page (``None`` for non-pool addresses)."""
        return self._page_owner.get(page_base)

    def set_page_owner(self, page_base: int, owner) -> None:
        """Retag a pool page's owner (SM bookkeeping)."""
        if page_base not in self._page_owner:
            raise SecurityViolation(f"{page_base:#x} is not secure-pool memory")
        self._page_owner[page_base] = owner

    def pages_owned_by(self, owner):
        """All page bases currently tagged with ``owner``."""
        return [page for page, tag in self._page_owner.items() if tag == owner]
