"""Confidential VM migration (extension; cf. VirTEE's native live migration).

The paper positions ZION against VirTEE, whose headline extra is live
migration.  This module adds SM-mediated migration to ZION's design: the
source SM serialises a *suspended* CVM -- layout, measurement, full vCPU
register state, and every private page -- into a blob encrypted and
authenticated under a migration key the two SMs share (modelled as being
derived from a fleet provisioning secret plus both parties' nonces; a
production design would run attestation-based key agreement).  The
untrusted hypervisors ferry the blob; they can neither read nor undetectably
modify it.

Crypto is stdlib-only: an HMAC-SHA256 keystream cipher (CTR construction)
with encrypt-then-MAC.  The construction is standard; the primitive
choice is a simulation stand-in for the AES-GCM a real SM would use.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import struct

from repro.cycles import Category
from repro.errors import SecurityViolation
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.sm.cvm import CvmState, GpaLayout

_MAGIC = b"ZIONMIG1"


def derive_migration_key(fleet_secret: bytes, src_nonce: bytes, dst_nonce: bytes) -> bytes:
    """Both SMs derive the same key from the fleet secret + fresh nonces."""
    return hmac.new(fleet_secret, b"migrate" + src_nonce + dst_nonce, hashlib.sha256).digest()


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    enc_key = hmac.new(key, b"enc", hashlib.sha256).digest()
    while len(out) < length:
        out += hmac.new(enc_key, struct.pack("<Q", counter), hashlib.sha256).digest()
        counter += 1
    return bytes(out[:length])


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


def _mac(key: bytes, data: bytes) -> bytes:
    mac_key = hmac.new(key, b"mac", hashlib.sha256).digest()
    return hmac.new(mac_key, data, hashlib.sha256).digest()


def export_cvm(monitor, cvm_id: int, key: bytes) -> bytes:
    """Serialise + seal a suspended CVM; the CVM is destroyed afterwards.

    Only the SM can do this (it reads pool pages with M-mode access); the
    returned blob is what the hypervisor gets to see and transport.
    """
    cvm = monitor._cvm(cvm_id)
    cvm.require_state(CvmState.SUSPENDED)
    monitor.migration_export_seq += 1

    class Raw:
        def read_u64(self, addr):
            return monitor.dram.read_u64(addr)

    pages = []
    for gpa, pa, _flags, _level in Sv39x4().iter_leaves(Raw(), cvm.hgatp_root):
        if cvm.layout.in_private_dram(gpa):
            pages.append((gpa, monitor.dram.read(pa, PAGE_SIZE)))
    pages.sort()

    header = {
        "layout": {
            "dram_base": cvm.layout.dram_base,
            "dram_size": cvm.layout.dram_size,
            "mmio_base": cvm.layout.mmio_base,
            "mmio_size": cvm.layout.mmio_size,
            "shared_base": cvm.layout.shared_base,
            "shared_size": cvm.layout.shared_size,
        },
        "measurement": cvm.measurement.hex() if cvm.measurement else None,
        "rtmrs": [r.hex() for r in cvm.rtmrs],
        "vcpus": [
            {
                "gprs": vcpu.gprs,
                "csrs": vcpu.csrs,
                "pc": vcpu.pc,
            }
            for vcpu in cvm.vcpus
        ],
        "page_count": len(pages),
        # Freshness: no two exports (even of an unchanged CVM) seal to
        # the same blob, so the destination's replay registry only ever
        # refuses genuine re-deliveries of one sealed instance.
        "export_seq": monitor.migration_export_seq,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    body = bytearray()
    body += struct.pack("<I", len(header_bytes))
    body += header_bytes
    for gpa, data in pages:
        body += struct.pack("<Q", gpa)
        body += data
    plaintext = bytes(body)

    monitor.ledger.charge(Category.COPY, monitor.costs.copy_bytes(len(plaintext)))
    monitor.ledger.charge(Category.SM_LOGIC, 12_000)  # key schedule + bookkeeping
    ciphertext = _xor(plaintext, _keystream(key, len(plaintext)))
    blob = _MAGIC + ciphertext + _mac(key, ciphertext)

    # The source instance is gone: scrub and recycle, like destroy.
    monitor.ecall_resume(cvm_id)  # destroy requires a non-suspended state
    monitor.ecall_destroy(cvm_id)
    return blob


def _parse_header(plaintext: bytes) -> tuple:
    """Validate blob framing and return ``(header, pages_offset)``.

    The MAC already proved the plaintext came from a peer SM, but a
    production monitor still refuses to index past buffer ends on a
    malformed (e.g. stale-format) blob: every length field is
    bounds-checked before use and any inconsistency is a typed
    :class:`SecurityViolation`, never an IndexError unwinding M mode.
    """
    if len(plaintext) < 4:
        raise SecurityViolation("migration blob framing invalid: no header length")
    (header_len,) = struct.unpack_from("<I", plaintext, 0)
    if header_len <= 0 or 4 + header_len > len(plaintext):
        raise SecurityViolation(
            f"migration blob framing invalid: header length {header_len} "
            f"exceeds payload ({len(plaintext)} bytes)"
        )
    try:
        header = json.loads(plaintext[4 : 4 + header_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SecurityViolation(
            f"migration blob header is not valid JSON: {error}"
        ) from error
    for field in ("layout", "vcpus", "page_count", "measurement"):
        if field not in header:
            raise SecurityViolation(f"migration blob header missing {field!r}")
    if not header["vcpus"]:
        raise SecurityViolation("migration blob describes a CVM with no vCPUs")
    page_count = header["page_count"]
    offset = 4 + header_len
    body = len(plaintext) - offset
    if page_count < 0 or page_count * (8 + PAGE_SIZE) != body:
        raise SecurityViolation(
            f"migration blob page section inconsistent: header says "
            f"{page_count} pages, body holds {body} bytes"
        )
    return header, offset


def import_cvm(monitor, blob: bytes, key: bytes, vcpu_count: int | None = None) -> int:
    """Verify, decrypt and re-instantiate a migrated CVM.

    Returns the new ``cvm_id`` (CREATED, ready to run once the host
    provisions shared vCPU pages and the shared subtree and finalizes).
    Raises :class:`SecurityViolation` for any authenticity failure:
    a tampered or truncated blob (MAC/framing), a mismatched migration
    key, or a *replayed* blob -- each sealed instance may be imported at
    most once per destination SM, so a hypervisor cannot clone a CVM by
    re-delivering its blob.  If instantiation fails partway (e.g. the
    pool runs dry mid-copy), the partial CVM is destroyed -- scrubbed
    and its frames recycled -- before the error propagates, so a failed
    arrival can never leak secure memory.
    """
    if len(blob) < len(_MAGIC) + 32 or not blob.startswith(_MAGIC):
        raise SecurityViolation("migration blob framing invalid")
    ciphertext, tag = blob[len(_MAGIC):-32], blob[-32:]
    if not hmac.compare_digest(_mac(key, ciphertext), tag):
        raise SecurityViolation("migration blob failed authentication")
    if tag in monitor.migration_imports:
        raise SecurityViolation(
            "migration blob replayed: this sealed instance was already "
            "imported on this host"
        )
    monitor.ledger.charge(Category.COPY, monitor.costs.copy_bytes(len(ciphertext)))
    monitor.ledger.charge(Category.SM_LOGIC, 12_000)
    plaintext = _xor(ciphertext, _keystream(key, len(ciphertext)))

    header, offset = _parse_header(plaintext)
    layout = GpaLayout(**header["layout"])
    vcpus = header["vcpus"]

    cvm_id = monitor.ecall_create_cvm(layout, vcpu_count or len(vcpus))
    cvm = monitor.cvms[cvm_id]

    try:
        for _ in range(header["page_count"]):
            (gpa,) = struct.unpack_from("<Q", plaintext, offset)
            offset += 8
            data = plaintext[offset : offset + PAGE_SIZE]
            offset += PAGE_SIZE
            if not cvm.layout.in_private_dram(gpa):
                raise SecurityViolation(
                    f"migration blob maps GPA {gpa:#x} outside the "
                    "CVM's private DRAM window"
                )
            pa = monitor._alloc_and_map(cvm, 0, gpa)
            monitor.dram.write(pa, data)
            monitor.ledger.charge(Category.COPY, monitor.costs.copy_bytes(PAGE_SIZE))

        for vcpu, state in zip(cvm.vcpus, vcpus):
            vcpu.gprs = dict(state["gprs"])
            vcpu.csrs = dict(state["csrs"])
            vcpu.pc = state["pc"]

        if header["measurement"] is not None:
            cvm.measurement = bytes.fromhex(header["measurement"])
        cvm.rtmrs = [bytes.fromhex(r) for r in header.get("rtmrs", [])] or cvm.rtmrs
        cvm.measurement_log.extend("migrated-in", blob[-32:])
        cvm.measurement_log.finalize()
    except Exception:
        # Fail-stop without a leak: scrub and recycle whatever the
        # partial import already mapped, then surface the typed error.
        monitor.ecall_destroy(cvm_id)
        raise
    monitor.migration_imports.add(tag)
    cvm.state = CvmState.CREATED  # still needs shared vCPUs from the host
    return cvm_id
