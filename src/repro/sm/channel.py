"""SM-brokered inter-CVM secure channels (zero-copy shared-memory IPC).

Two CVMs on the same machine can otherwise only talk through the
hypervisor: virtio-net plus SWIOTLB, paying two bounce copies and a world
switch per doorbell kick.  This module reuses ZION's split-page-table
machinery (paper IV-E) for the opposite trust direction: the SM allocates
a *channel window* from the secure pool, maps it into **both** endpoint
CVMs' private stage-2 regions, and never exposes it to the hypervisor --
the window pages sit inside the PMP-protected pool, so a host access
faults exactly like any other pool touch, and no DMA master can reach
them through the IOPMP.

Security properties the manager enforces:

- **Attestation-bound connect**: the creator declares the launch
  measurement it will accept as a peer; the connector declares the
  measurement it expects of the creator.  Either mismatch refuses the
  connection (``SBI_DENIED`` at the ABI).
- **Endpoint exclusivity**: exactly two CVMs; a third CVM can neither
  connect (the channel leaves the CREATED state) nor translate to the
  window (its stage-2 simply never maps those frames).
- **Channel-scoped ownership**: window frames are owned by the channel
  token, not by either CVM, so every other SM map/reclaim path refuses
  them; only :meth:`SplitTableManager.map_channel` may install them.
- **Scrub on teardown**: close -- or the destruction of either endpoint
  -- unmaps the window from both CVMs, zeroes every byte, and returns
  the block to the pool.

Notification rides the platform's existing doorbell path: the SM updates
the peer's pending-interrupt state (a validated VSEI through the secure
vCPU), kicks the peer's hart via the CLINT, and lets the hypervisor's
scheduler wake the blocked vCPU -- the host learns *that* a doorbell rang,
never what moved through the window.
"""

from __future__ import annotations

import enum
import itertools

from repro.cycles import Category
from repro.errors import EcallError, SecurityViolation, TrapRaised
from repro.mem.physmem import PAGE_SIZE

#: VS-level external interrupt bit used for channel doorbells (the same
#: line device completions use; the guest demultiplexes by ring state).
DOORBELL_IRQ_BIT = 1 << 10


class ChannelState(enum.Enum):
    """Lifecycle of one inter-CVM channel."""

    CREATED = "created"  # window mapped into the creator; awaiting the peer
    CONNECTED = "connected"  # both endpoints mapped; data may flow
    CLOSED = "closed"  # unmapped, scrubbed, block returned


class Channel:
    """SM-side record of one channel."""

    def __init__(self, channel_id: int, creator_id: int, window_pa: int,
                 window_size: int, expected_peer_measurement: bytes, block):
        self.channel_id = channel_id
        self.creator_id = creator_id
        self.peer_id: int | None = None
        self.window_pa = window_pa
        self.window_size = window_size
        self.expected_peer_measurement = expected_peer_measurement
        self.block = block
        self.state = ChannelState.CREATED
        #: Where each endpoint mapped the window (cvm_id -> GPA).
        self.gpas: dict[int, int] = {}
        #: Doorbells rung and not yet consumed, per endpoint.
        self.doorbells: dict[int, int] = {}
        #: Lifetime doorbell count (statistics).
        self.notify_count = 0

    def endpoints(self) -> tuple:
        """CVM ids currently attached (creator first)."""
        return tuple(self.gpas)

    def other_end(self, cvm_id: int) -> int:
        """The opposite endpoint's CVM id."""
        for endpoint in self.gpas:
            if endpoint != cvm_id:
                return endpoint
        raise EcallError(f"channel {self.channel_id} has no peer yet")

    def __repr__(self):
        return (
            f"<Channel {self.channel_id} {self.state.value} "
            f"creator={self.creator_id} peer={self.peer_id} "
            f"window={self.window_size:#x}@{self.window_pa:#x}>"
        )


class ChannelManager:
    """Creates, connects, rings and tears down inter-CVM channels."""

    def __init__(self, monitor):
        self.monitor = monitor
        self.channels: dict[int, Channel] = {}
        #: Fan-out index: cvm_id -> ids of channels it is an endpoint of.
        #: A router CVM legitimately holds one channel per shard plus one
        #: per client, so destroy-path teardown and per-CVM accounting
        #: must not scan the whole channel table.
        self._by_cvm: dict[int, set] = {}
        self._ids = itertools.count(1)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def owner_token(channel_id: int) -> str:
        """Pool-ownership tag for a channel's window frames."""
        return f"chan:{channel_id}"

    def _charge(self) -> None:
        self.monitor.ledger.charge(
            Category.SM_LOGIC, self.monitor.costs.channel_bookkeeping
        )

    def _channel(self, channel_id: int) -> Channel:
        channel = self.channels.get(channel_id)
        if channel is None:
            raise EcallError(f"no such channel: {channel_id}")
        return channel

    def _endpoint_channel(self, cvm_id: int, channel_id: int) -> Channel:
        channel = self._channel(channel_id)
        if cvm_id not in channel.gpas:
            raise SecurityViolation(
                f"CVM {cvm_id} is not an endpoint of channel {channel_id}"
            )
        return channel

    def _validate_window_gpa(self, cvm, gpa: int, size: int) -> None:
        """The window GPA range must be page-aligned private DRAM that the
        CVM has not populated -- the channel never shadows guest memory."""
        if gpa % PAGE_SIZE or size <= 0 or size % PAGE_SIZE:
            raise EcallError("channel window must be page-aligned pages")
        if size > self.monitor.pool.block_size:
            raise EcallError(
                f"channel window exceeds one secure block "
                f"({self.monitor.pool.block_size:#x} bytes)"
            )
        layout = cvm.layout
        if not (layout.in_private_dram(gpa) and layout.in_private_dram(gpa + size - 1)):
            raise EcallError("channel window must lie in private DRAM")
        from repro.isa.traps import AccessType

        for page_gpa in range(gpa, gpa + size, PAGE_SIZE):
            try:
                self.monitor.translator.gpa_to_pa(
                    cvm.hgatp_root, page_gpa, AccessType.LOAD
                )
            except TrapRaised:
                continue  # unmapped, as required
            raise EcallError(
                f"channel window GPA {page_gpa:#x} is already mapped"
            )

    def _alloc_window_block(self, owner: str):
        """One secure block for the window, expanding the pool if needed."""
        block = self.monitor.pool.alloc_block(owner=owner)
        if block is None and self.monitor.hypervisor is not None:
            self.monitor.hypervisor.on_pool_expand_request(self.monitor)
            block = self.monitor.pool.alloc_block(owner=owner)
        if block is None:
            raise EcallError("secure pool exhausted; no space for a channel")
        return block

    def _map_window(self, cvm, channel: Channel, gpa: int) -> None:
        token = self.owner_token(channel.channel_id)
        for offset in range(0, channel.window_size, PAGE_SIZE):
            self.monitor.split.map_channel(
                cvm,
                gpa + offset,
                channel.window_pa + offset,
                self.monitor._alloc_table_page,
                token,
            )
            self.monitor.translator.sfence_page(cvm.vmid, gpa + offset)
        channel.gpas[cvm.cvm_id] = gpa
        channel.doorbells[cvm.cvm_id] = 0
        self._by_cvm.setdefault(cvm.cvm_id, set()).add(channel.channel_id)

    # -- lifecycle ---------------------------------------------------------

    def create(self, cvm, window_gpa: int, size: int,
               expected_peer_measurement: bytes) -> int:
        """Allocate a window, map it into the creator, await the peer.

        ``window_gpa``/``size`` are guest-supplied (untrusted even from
        a CVM -- a compromised guest kernel must not steer SM mappings):
        both are clamped to page-aligned, block-bounded, *unmapped*
        private DRAM before any pool state changes.  The window block is
        zeroed before mapping so the creator never sees a prior owner's
        bytes.
        """
        self._charge()
        if cvm.measurement is None:
            raise EcallError("creator CVM is not finalized")
        if len(expected_peer_measurement) != 32:
            raise EcallError("expected peer measurement must be 32 bytes")
        self._validate_window_gpa(cvm, window_gpa, size)
        channel_id = next(self._ids)
        block = self._alloc_window_block(self.owner_token(channel_id))
        self.monitor.dram.zero_range(block.base, size)
        self.monitor.ledger.charge(
            Category.SM_LOGIC, self.monitor.costs.zero_bytes(size)
        )
        channel = Channel(
            channel_id, cvm.cvm_id, block.base, size,
            bytes(expected_peer_measurement), block,
        )
        self.channels[channel_id] = channel
        self._map_window(cvm, channel, window_gpa)
        return channel_id

    def connect(self, cvm, channel_id: int, window_gpa: int,
                expected_creator_measurement: bytes) -> int:
        """Attach the second endpoint; gated on both measurements.

        ``channel_id`` is untrusted (it travelled over some guest side
        channel): it is looked up, never indexed; the state machine
        refuses anything but a once-only CREATED->CONNECTED transition,
        so a third CVM can never join.  The mutual attestation gate
        compares SM-held launch measurements -- the only inputs the
        connecting guest controls are which channel and where in its own
        space the window lands (validated like :meth:`create`).
        """
        self._charge()
        channel = self._channel(channel_id)
        if channel.state is not ChannelState.CREATED:
            raise SecurityViolation(
                f"channel {channel_id} is {channel.state.value}; "
                "not accepting connections"
            )
        if cvm.cvm_id == channel.creator_id:
            raise SecurityViolation("a CVM cannot connect to its own channel")
        if cvm.measurement is None:
            raise EcallError("connecting CVM is not finalized")
        if cvm.measurement != channel.expected_peer_measurement:
            raise SecurityViolation(
                f"CVM {cvm.cvm_id}'s measurement does not match the "
                f"measurement channel {channel_id} was created for"
            )
        creator = self.monitor.cvms.get(channel.creator_id)
        if creator is None or creator.measurement != bytes(expected_creator_measurement):
            raise SecurityViolation(
                "creator measurement does not match the connector's expectation"
            )
        self._validate_window_gpa(cvm, window_gpa, channel.window_size)
        self._map_window(cvm, channel, window_gpa)
        channel.peer_id = cvm.cvm_id
        channel.state = ChannelState.CONNECTED
        return channel.window_size

    def notify(self, cvm, channel_id: int) -> int:
        """Ring the peer's doorbell; returns its pending doorbell count.

        Endpoint membership is checked before anything else (an
        unrelated CVM probing channel ids gets a refusal, not a timing
        oracle on peer state).  What leaks to the untrusted host is one
        bit -- *some* doorbell rang for that CVM -- via the scheduler
        wake; payload bytes never leave the PMP-protected window.
        """
        self._charge()
        channel = self._endpoint_channel(cvm.cvm_id, channel_id)
        if channel.state is not ChannelState.CONNECTED:
            raise EcallError(f"channel {channel_id} is {channel.state.value}")
        peer_id = channel.other_end(cvm.cvm_id)
        channel.doorbells[peer_id] += 1
        channel.notify_count += 1
        monitor = self.monitor
        monitor.ledger.charge(Category.SM_LOGIC, monitor.costs.channel_doorbell)
        # The doorbell is a validated VSEI on the peer's vCPU 0 -- the same
        # injection slot device interrupts use -- plus a CLINT kick so a
        # sleeping hart re-evaluates its run queue.
        peer = monitor.cvms[peer_id]
        peer.vcpus[0].csrs["hvip"] = (
            peer.vcpus[0].csrs.get("hvip", 0) | DOORBELL_IRQ_BIT
        )
        if monitor.clint is not None:
            monitor.clint.send_ipi(0)
            monitor.ledger.charge(
                Category.TLB, monitor.costs.ipi_shootdown_cost
            )
            monitor.clint.clear_ipi(0)
        if monitor.hypervisor is not None:
            monitor.hypervisor.on_channel_doorbell(peer_id)
        return channel.doorbells[peer_id]

    def consume_doorbell(self, cvm_id: int, channel_id: int) -> int:
        """Take (and clear) the endpoint's pending doorbell count.

        Membership-checked like :meth:`notify`; the count itself is
        SM-maintained (trusted) state, so no clamping is needed.
        """
        channel = self._endpoint_channel(cvm_id, channel_id)
        pending = channel.doorbells.get(cvm_id, 0)
        channel.doorbells[cvm_id] = 0
        return pending

    def close(self, cvm, channel_id: int) -> None:
        """Tear the channel down from either end: unmap, scrub, recycle.

        Only an endpoint may close (membership-checked); the teardown
        unmaps the window from *both* CVMs and zeroes every byte before
        the block re-enters the pool, so neither the peer nor the next
        block owner can read conversation residue.
        """
        self._charge()
        channel = self._endpoint_channel(cvm.cvm_id, channel_id)
        if channel.state is ChannelState.CLOSED:
            raise EcallError(f"channel {channel_id} is already closed")
        self._teardown(channel)

    def channels_of(self, cvm_id: int) -> tuple:
        """Ids of the open channels this CVM is an endpoint of.

        SM-internal bookkeeping (reads only trusted state); the
        hypervisor learns per-CVM channel membership only through the
        DESCRIBE_CVM-style surfaces that deliberately expose it, never
        by reaching into this table.
        """
        return tuple(sorted(self._by_cvm.get(cvm_id, ())))

    def on_cvm_destroyed(self, cvm_id: int) -> int:
        """Destroy-path hook: close every channel the CVM participates in.

        Driven by the fan-out index so a router CVM with dozens of
        channels tears them all down without scanning unrelated ones;
        each teardown scrubs the window before its block is reusable.
        """
        closed = 0
        for channel_id in self.channels_of(cvm_id):
            channel = self.channels[channel_id]
            if channel.state is not ChannelState.CLOSED:
                self._teardown(channel)
                closed += 1
        return closed

    def _teardown(self, channel: Channel) -> None:
        monitor = self.monitor
        token = self.owner_token(channel.channel_id)
        for cvm_id in channel.gpas:
            members = self._by_cvm.get(cvm_id)
            if members is not None:
                members.discard(channel.channel_id)
                if not members:
                    del self._by_cvm[cvm_id]
        for cvm_id, gpa in channel.gpas.items():
            cvm = monitor.cvms.get(cvm_id)
            if cvm is None:
                continue
            for offset in range(0, channel.window_size, PAGE_SIZE):
                monitor.split.unmap_channel(cvm, gpa + offset, token)
                monitor.translator.sfence_page(cvm.vmid, gpa + offset)
        # Scrub exactly the bytes the endpoints could reach: only the
        # window was ever mapped, so the block's tail holds nothing new.
        monitor.dram.zero_range(channel.window_pa, channel.window_size)
        monitor.ledger.charge(
            Category.SM_LOGIC, monitor.costs.zero_bytes(channel.window_size)
        )
        monitor.pool.free_block(channel.block)
        channel.state = ChannelState.CLOSED
