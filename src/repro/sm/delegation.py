"""Trap delegation control (paper section IV-A).

ZION's short-path design removes the secure hypervisor, so the SM must
guarantee that no CVM trap is ever captured by the untrusted hypervisor.
It does this with the standard delegation CSRs, swapped on every world
switch:

- **CVM mode**: traps the confidential VM can handle itself (its own page
  faults, syscalls from VU, guest timer) are delegated all the way to VS
  mode; everything else -- guest-page faults, ECALLs from VS, machine
  interrupts -- is left *undelegated* so it lands in the SM (M mode), never
  in HS.
- **Normal mode**: the conventional Linux/KVM delegation set, where HS
  handles guest-page faults and supervisor traps for normal VMs.
"""

from __future__ import annotations

import dataclasses

from repro.isa.traps import ExceptionCause, InterruptCause


@dataclasses.dataclass(frozen=True)
class DelegationProfile:
    """One configuration of the four delegation CSRs."""

    medeleg: frozenset
    mideleg: frozenset
    hedeleg: frozenset
    hideleg: frozenset

    def apply(self, hart) -> None:
        """Write the four delegation CSRs onto the hart."""
        hart.medeleg = self.medeleg
        hart.mideleg = self.mideleg
        hart.hedeleg = self.hedeleg
        hart.hideleg = self.hideleg


#: Exceptions a confidential VM's kernel can resolve internally.
_CVM_SELF_HANDLED = frozenset(
    {
        ExceptionCause.INSTRUCTION_ADDRESS_MISALIGNED,
        ExceptionCause.LOAD_ADDRESS_MISALIGNED,
        ExceptionCause.STORE_ADDRESS_MISALIGNED,
        ExceptionCause.ILLEGAL_INSTRUCTION,
        ExceptionCause.BREAKPOINT,
        ExceptionCause.ECALL_FROM_U,
        ExceptionCause.INSTRUCTION_PAGE_FAULT,
        ExceptionCause.LOAD_PAGE_FAULT,
        ExceptionCause.STORE_PAGE_FAULT,
    }
)

#: CVM mode: self-handleable traps reach VS directly; guest-page faults,
#: VS ECALLs and machine interrupts land in M (the SM).  Note that nothing
#: is routed to HS: medeleg forwards only what hedeleg then forwards to VS.
CVM_MODE = DelegationProfile(
    medeleg=_CVM_SELF_HANDLED,
    mideleg=frozenset(
        {
            InterruptCause.VIRTUAL_SUPERVISOR_SOFTWARE,
            InterruptCause.VIRTUAL_SUPERVISOR_TIMER,
            InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL,
        }
    ),
    hedeleg=_CVM_SELF_HANDLED,
    hideleg=frozenset(
        {
            InterruptCause.VIRTUAL_SUPERVISOR_SOFTWARE,
            InterruptCause.VIRTUAL_SUPERVISOR_TIMER,
            InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL,
        }
    ),
)

#: Normal mode: the conventional hosted configuration -- supervisor traps
#: and guest-page faults are delegated to HS (Linux/KVM), guest-internal
#: traps onward to VS.
NORMAL_MODE = DelegationProfile(
    medeleg=_CVM_SELF_HANDLED
    | frozenset(
        {
            ExceptionCause.ECALL_FROM_VS,
            ExceptionCause.INSTRUCTION_GUEST_PAGE_FAULT,
            ExceptionCause.LOAD_GUEST_PAGE_FAULT,
            ExceptionCause.STORE_GUEST_PAGE_FAULT,
            ExceptionCause.VIRTUAL_INSTRUCTION,
        }
    ),
    mideleg=frozenset(
        {
            InterruptCause.SUPERVISOR_SOFTWARE,
            InterruptCause.SUPERVISOR_TIMER,
            InterruptCause.SUPERVISOR_EXTERNAL,
            InterruptCause.VIRTUAL_SUPERVISOR_SOFTWARE,
            InterruptCause.VIRTUAL_SUPERVISOR_TIMER,
            InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL,
        }
    ),
    hedeleg=_CVM_SELF_HANDLED,
    hideleg=frozenset(
        {
            InterruptCause.VIRTUAL_SUPERVISOR_SOFTWARE,
            InterruptCause.VIRTUAL_SUPERVISOR_TIMER,
            InterruptCause.VIRTUAL_SUPERVISOR_EXTERNAL,
        }
    ),
)
