"""Confidential VM objects: lifecycle state and GPA layout.

The SM tracks each CVM's state machine, its secure vCPUs, its stage-2 root
(which physically lives inside the secure pool), and its guest-physical
address layout.  Per the split-page-table design (paper section IV-E), the
GPA space is partitioned into a **private** region (SM-managed mappings
into secure memory) and a **shared** region (hypervisor-managed mappings
into normal memory), plus an MMIO window that is never mapped and whose
guest-page faults become device emulation exits.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import EcallError
from repro.sm.attestation import MeasurementLog
from repro.sm.vcpu import SecureVcpu, SharedVcpu


@dataclasses.dataclass(frozen=True)
class GpaLayout:
    """Guest-physical address map of a confidential VM.

    Defaults mirror the conventional RISC-V ``virt`` machine: DRAM at
    2 GiB, an MMIO window below it.  The shared region sits high in the
    41-bit Sv39x4 space so that the root-table split is a clean index
    boundary (everything at or above ``shared_base`` belongs to the
    hypervisor-managed shared subtree).
    """

    dram_base: int = 0x8000_0000
    dram_size: int = 256 << 20
    mmio_base: int = 0x1000_0000
    mmio_size: int = 0x3000_0000
    shared_base: int = 1 << 38
    shared_size: int = 64 << 20

    def __post_init__(self):
        if self.dram_base % 4096 or self.dram_size % 4096:
            raise ValueError("DRAM window must be page-aligned")
        if self.shared_base % (1 << 30):
            raise ValueError(
                "shared_base must be 1 GiB-aligned (a stage-2 root-index boundary)"
            )
        if self.dram_base + self.dram_size > self.shared_base:
            raise ValueError("private DRAM overlaps the shared region")

    def in_private_dram(self, gpa: int) -> bool:
        """Whether the GPA lies in the SM-managed private DRAM window."""
        return self.dram_base <= gpa < self.dram_base + self.dram_size

    def in_mmio(self, gpa: int) -> bool:
        """Whether the GPA lies in the emulated-device window."""
        return self.mmio_base <= gpa < self.mmio_base + self.mmio_size

    def in_shared(self, gpa: int) -> bool:
        """Whether the GPA lies in the hypervisor-managed shared region."""
        return self.shared_base <= gpa < self.shared_base + self.shared_size


class CvmState(enum.Enum):
    """Lifecycle of a confidential VM."""

    CREATED = "created"  # accepting image loads and configuration
    FINALIZED = "finalized"  # measured; runnable
    RUNNING = "running"  # at least one vCPU in CVM mode
    SUSPENDED = "suspended"
    DESTROYED = "destroyed"


class ConfidentialVm:
    """SM-side record of one confidential VM."""

    def __init__(self, cvm_id: int, vmid: int, layout: GpaLayout, vcpu_count: int = 1):
        self.cvm_id = cvm_id
        self.vmid = vmid
        self.layout = layout
        self.state = CvmState.CREATED
        self.vcpus = [SecureVcpu(i) for i in range(vcpu_count)]
        #: Shared vCPU structures; populated by the monitor once the
        #: hypervisor donates normal memory for them.
        self.shared_vcpus: list[SharedVcpu | None] = [None] * vcpu_count
        #: Physical address of the 16 KB stage-2 root, inside the pool.
        self.hgatp_root: int | None = None
        self.measurement_log = MeasurementLog()
        self.measurement: bytes | None = None
        #: Runtime measurement registers (TDX-RTMR-style): the guest
        #: extends these after launch (boot stages, loaded modules); they
        #: are reported alongside the launch measurement.
        self.rtmrs: list[bytes] = [bytes(32) for _ in range(4)]
        #: Hypervisor-owned level-1 tables linked under the shared split
        #: (root index -> table PA in normal memory).
        self.shared_subtrees: dict[int, int] = {}
        #: Statistics for the experiment harness.
        self.exit_count = 0
        self.entry_count = 0
        #: Exit-reason histogram (kind string -> count).
        self.exit_reasons: dict[str, int] = {}

    def vcpu(self, vcpu_id: int) -> SecureVcpu:
        """The secure vCPU record with the given id (bounds-checked).

        Callers frequently pass register-supplied ids; rejecting here
        keeps a bad id an ``INVALID_PARAM`` at the ABI instead of a
        negative-index wrap or an IndexError unwinding the simulator.
        """
        if not 0 <= vcpu_id < len(self.vcpus):
            raise EcallError(f"CVM {self.cvm_id} has no vCPU {vcpu_id}")
        return self.vcpus[vcpu_id]

    def require_state(self, *allowed: CvmState) -> None:
        """Raise unless the CVM is in one of the allowed states."""
        if self.state not in allowed:
            raise ValueError(
                f"CVM {self.cvm_id} is {self.state.value}; "
                f"operation requires {[s.value for s in allowed]}"
            )

    def __repr__(self):
        return (
            f"<ConfidentialVm id={self.cvm_id} vmid={self.vmid} "
            f"state={self.state.value} vcpus={len(self.vcpus)}>"
        )
