"""Split-page-table memory sharing (paper section IV-E).

The CVM's stage-2 root (16 KB, in secure memory, writable only by the SM)
is split at a root-index boundary:

- indexes covering the **private** region point at SM-managed subtrees
  whose table pages live inside the secure pool;
- indexes covering the **shared** region point at **hypervisor-provided**
  level-1 tables in normal memory.  The hypervisor edits those subtrees
  directly -- no SM synchronisation -- which is the whole point of the
  design: shared-memory updates (virtio rings, SWIOTLB bounce buffers)
  bypass the SM entirely.

Security comes from two facts this module enforces/validates:

1. the SM only links a shared subtree after checking the donated table
   does *not* live in secure memory (else the hypervisor couldn't edit it,
   and worse, linking would let it leak pool contents);
2. a shared-subtree leaf must never target secure-pool memory.  The SM
   validates donated mappings, and the walk-time check in the machine
   models the PMP backstop for the hypervisor's own accesses.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import SecurityViolation
from repro.mem.pagetable import PTE_D, PTE_R, PTE_U, PTE_W, PTE_X, Sv39x4, pte_is_leaf, pte_target
from repro.mem.physmem import PAGE_SIZE
from repro.sm.cvm import ConfidentialVm
from repro.sm.secmem import SecureMemoryPool


class SplitTableManager:
    """SM-side management of the private/shared stage-2 split."""

    def __init__(self, pool: SecureMemoryPool, dram, ledger: CycleLedger, costs: CycleCosts):
        self._pool = pool
        self._dram = dram
        self._ledger = ledger
        self._costs = costs
        self._sv39x4 = Sv39x4()
        # One raw accessor for every table edit: stateless, so building a
        # fresh one per map/unmap (stage-2 fault path!) was pure overhead.
        self._accessor = _RawAccessor(dram)
        # Precompiled fixed-cost charges (map/unmap run once per stage-2
        # fault; the charges themselves are unchanged).
        self._charge_ownership = ledger.charger(
            Category.SM_LOGIC, costs.ownership_check
        )
        self._charge_map_walk = ledger.charger(
            Category.PAGE_WALK, costs.page_walk_level * self._sv39x4.levels
        )
        #: Monotonic epoch bumped on every SM-side stage-2 table mutation
        #: (map/unmap/subtree link).  Together with the hypervisor's own
        #: epoch it proves to the access trace cache that no mapping a
        #: recorded trace depends on can have changed.  Flush counters are
        #: NOT a substitute: subtree links and hypervisor shared-window
        #: extensions mutate tables without a fence.
        self.map_generation = 0

    def shared_root_index_base(self, cvm: ConfidentialVm) -> int:
        """First stage-2 root index belonging to the shared region."""
        return cvm.layout.shared_base >> 30  # each root entry spans 1 GiB

    def root_index_of(self, gpa: int) -> int:
        """The stage-2 root slot covering this GPA (1 GiB per slot)."""
        return gpa >> 30

    # -- linking hypervisor-provided subtrees ------------------------------

    def link_shared_subtree(self, cvm: ConfidentialVm, root_index: int, table_pa: int) -> None:
        """Install a hypervisor-donated level-1 table under the shared split.

        Validates: the index is in the shared half; the table lives in
        normal memory; the table is page-aligned and currently holds no
        mapping that reaches secure memory.
        """
        if cvm.hgatp_root is None:
            raise SecurityViolation("CVM has no stage-2 root yet")
        if root_index < self.shared_root_index_base(cvm):
            raise SecurityViolation(
                f"root index {root_index} is in the private half; the "
                "hypervisor may only provide shared-region subtrees"
            )
        if table_pa % PAGE_SIZE:
            raise SecurityViolation("shared subtree table must be page-aligned")
        if self._pool.contains(table_pa, PAGE_SIZE):
            raise SecurityViolation(
                "shared subtree table lies inside the secure pool"
            )
        self._validate_subtree(table_pa, depth=1)
        self._charge_ownership()
        slot = cvm.hgatp_root + 8 * root_index
        self._dram.write_u64(slot, (table_pa >> 12) << 10 | 1)  # non-leaf PTE
        cvm.shared_subtrees[root_index] = table_pa
        self.map_generation += 1

    def note_external_leaf_install(self) -> None:
        """Seam for PTE installs performed outside this manager.

        The monitor's fused fault path writes the leaf PTE itself (it
        already holds the probed slot address), but the map epoch and
        the walk charge belong to the split-table manager: every writer
        of ``map_generation`` must be a method of its owner, or the SMP
        refactor cannot wrap the epoch in a lock (ZL5).
        """
        self.map_generation += 1
        self._charge_map_walk()

    def _validate_subtree(self, table_pa: int, depth: int) -> None:
        """Reject any existing PTE in a donated subtree that reaches the pool.

        The sweep reads all 512 PTEs of the donated table; that is real
        modelled DRAM traffic, charged in bulk up front (per-PTE charger
        calls were measurable on the link path, and the loop never exits
        early without raising).
        """
        self._ledger.charge(
            Category.PAGE_WALK, 512 * self._costs.page_walk_level
        )
        for index in range(512):
            pte = self._dram.read_u64(table_pa + 8 * index)
            if not pte & 1:
                continue
            target = pte_target(pte)
            if pte_is_leaf(pte):
                if self._pool.contains(target, PAGE_SIZE):
                    raise SecurityViolation(
                        f"donated shared subtree maps secure memory at {target:#x}"
                    )
            elif depth < 2:
                if self._pool.contains(target, PAGE_SIZE):
                    raise SecurityViolation(
                        "donated shared subtree points into the secure pool"
                    )
                self._validate_subtree(target, depth + 1)

    # -- walk-time backstop -------------------------------------------------

    def shared_leaf_is_safe(self, pa: int) -> bool:
        """Whether a shared-region leaf target is acceptable (normal memory)."""
        return not self._pool.contains(pa, PAGE_SIZE)

    # -- SM-side private mapping ----------------------------------------------

    def map_private(
        self,
        cvm: ConfidentialVm,
        gpa: int,
        pa: int,
        alloc_table,
        writable: bool = True,
        executable: bool = True,
    ) -> None:
        """Map a private-region GPA to a secure frame (SM raw access).

        ``alloc_table`` must return zeroed secure-pool pages (the paper's
        controlled-channel defence: CVM page tables never leave the pool).
        Enforces CVM-disjointness: the frame must be owned by this CVM.
        """
        if not cvm.layout.in_private_dram(gpa):
            raise SecurityViolation(
                f"GPA {gpa:#x} is not in CVM {cvm.cvm_id}'s private DRAM"
            )
        owner = self._pool.owner_of(pa & ~(PAGE_SIZE - 1))
        self._charge_ownership()
        if owner != cvm.cvm_id:
            raise SecurityViolation(
                f"frame {pa:#x} is owned by {owner!r}, not CVM {cvm.cvm_id}"
            )
        flags = PTE_R | PTE_U | PTE_D | (PTE_W if writable else 0) | (PTE_X if executable else 0)
        tables = self._sv39x4.map(
            self._accessor, cvm.hgatp_root, gpa, pa, flags, alloc_table
        )
        self.map_generation += 1
        for table in tables:
            if not self._pool.contains(table, PAGE_SIZE):
                raise SecurityViolation(
                    "private page-table page allocated outside the secure pool"
                )
        self._charge_map_walk()

    # -- SM-side channel mapping -------------------------------------------

    def map_channel(
        self,
        cvm: ConfidentialVm,
        gpa: int,
        pa: int,
        alloc_table,
        owner_token,
    ) -> None:
        """Map one page of an SM-brokered channel window into a CVM.

        Channel windows live in the secure pool but are owned by the
        *channel* (``owner_token``), not by either endpoint CVM -- the one
        deliberate exception to per-CVM frame disjointness, and it is
        SM-arbitrated: only this path may map a channel-owned frame, only
        into the private region, and never executable.
        """
        if not cvm.layout.in_private_dram(gpa):
            raise SecurityViolation(
                f"channel GPA {gpa:#x} is not in CVM {cvm.cvm_id}'s private DRAM"
            )
        owner = self._pool.owner_of(pa & ~(PAGE_SIZE - 1))
        self._charge_ownership()
        if owner != owner_token:
            raise SecurityViolation(
                f"frame {pa:#x} is owned by {owner!r}, not channel {owner_token!r}"
            )
        flags = PTE_R | PTE_W | PTE_U | PTE_D  # data window: never executable
        tables = self._sv39x4.map(
            self._accessor, cvm.hgatp_root, gpa, pa, flags, alloc_table
        )
        self.map_generation += 1
        for table in tables:
            if not self._pool.contains(table, PAGE_SIZE):
                raise SecurityViolation(
                    "private page-table page allocated outside the secure pool"
                )
        self._charge_map_walk()

    def unmap_channel(self, cvm: ConfidentialVm, gpa: int, owner_token) -> int:
        """Remove one channel-window mapping; returns the frame.

        Validates the frame really belongs to the channel being torn down
        so a confused teardown can never unmap (and later scrub) a frame
        the CVM owns privately.
        """
        pa = self._sv39x4.unmap(self._accessor, cvm.hgatp_root, gpa)
        self.map_generation += 1
        owner = self._pool.owner_of(pa & ~(PAGE_SIZE - 1))
        self._charge_ownership()
        if owner != owner_token:
            raise SecurityViolation(
                f"channel teardown of frame {pa:#x} owned by {owner!r}"
            )
        self._charge_map_walk()
        return pa

    def unmap_private(self, cvm: ConfidentialVm, gpa: int) -> int:
        """Remove a private mapping; returns the frame for scrubbing."""
        pa = self._sv39x4.unmap(self._accessor, cvm.hgatp_root, gpa)
        self.map_generation += 1
        self._charge_map_walk()
        return pa


class _RawAccessor:
    """M-mode (unchecked) PTE accessor for the SM's own table edits."""

    def __init__(self, dram):
        self._dram = dram

    def read_u64(self, addr: int) -> int:
        return self._dram.read_u64(addr)

    def write_u64(self, addr: int, value: int) -> None:
        self._dram.write_u64(addr, value)
