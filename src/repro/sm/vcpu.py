"""Secure and shared vCPU structures (paper section IV-B).

The **secure vCPU** lives in SM-private memory and holds the complete
register state of a confidential VM's vCPU; the hypervisor can never read
or write it.  The **shared vCPU** is a small structure in normal
(hypervisor-accessible) memory carrying only the registers a particular
exit legitimately exposes -- e.g. ``htinst``/``htval`` for an MMIO exit so
the hypervisor can emulate the access -- plus the hypervisor's reply.

Because the hypervisor is untrusted, every value the SM reads back from
the shared vCPU passes **Check-after-Load** validation (the TwinVisor
TOCTOU defence the paper adopts): the SM re-derives what the field is
*allowed* to contain from its own secure copy of the exit context and
rejects mismatches.
"""

from __future__ import annotations

import enum

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.errors import SecurityViolation
from repro.isa.hart import GPR_NAMES

#: CSRs preserved in the secure vCPU across world switches.
GUEST_CSRS = (
    "vsstatus",
    "vsepc",
    "vscause",
    "vstval",
    "vstvec",
    "vsscratch",
    "vsatp",
    "vsie",
    "vsip",
    "sepc",
    "scause",
    "stval",
    "hstatus",
    "htval",
    "htinst",
    "hvip",
)

#: Shared vCPU layout: field name -> slot index (8 bytes per slot).
SHARED_VCPU_FIELDS = {
    "exit_cause": 0,
    "htval": 1,
    "htinst": 2,
    "gpr_index": 3,
    "gpr_value": 4,
    "sepc_advance": 5,
    "a0": 6,
    "a1": 7,
    "pending_irq": 8,
}

SHARED_VCPU_SIZE = len(SHARED_VCPU_FIELDS) * 8


class VcpuState(enum.Enum):
    """Secure vCPU run-state machine."""

    READY = "ready"
    RUNNING = "running"
    WAITING_HYP = "waiting_hyp"  # exited to Normal mode, awaiting service
    STOPPED = "stopped"


class SecureVcpu:
    """A CVM vCPU's protected register state, stored inside the SM."""

    def __init__(self, vcpu_id: int):
        self.vcpu_id = vcpu_id
        self.state = VcpuState.READY
        self.gprs = {name: 0 for name in GPR_NAMES}
        self.csrs = {name: 0 for name in GUEST_CSRS}
        self.pc = 0
        #: Exit context the SM recorded at the last CVM exit; the reference
        #: that Check-after-Load validates the hypervisor's reply against.
        self.exit_context: dict | None = None

    def save_from(self, hart) -> None:
        """Capture the hart's guest state (charged by the caller)."""
        self.gprs = hart.gpr_snapshot()
        self.csrs = hart.csrs.snapshot(GUEST_CSRS)

    def restore_to(self, hart) -> None:
        """Load this vCPU's state onto the hart (charged by the caller)."""
        hart.load_gprs(self.gprs)
        hart.csrs.load_snapshot(self.csrs)


class SharedVcpu:
    """The hypervisor-visible exchange structure, backed by real memory.

    The SM writes it with raw stores (M mode); the hypervisor accesses it
    through the PMP-checked bus like any other normal memory.
    """

    def __init__(self, base_pa: int, bus):
        self.base_pa = base_pa
        self._bus = bus
        # Per-field physical slot addresses, resolved once: the world
        # switch reads/writes these on every entry/exit, so the per-call
        # dict hash + multiply was measurable.
        self._slots = {
            field: base_pa + 8 * index for field, index in SHARED_VCPU_FIELDS.items()
        }
        self._dram_write = bus.dram.write_u64
        self._dram_read = bus.dram.read_u64

    def _slot(self, field: str) -> int:
        return self._slots[field]

    # -- SM side (M mode, unchecked) --------------------------------------

    def sm_write(self, field: str, value: int) -> None:
        """SM-side (M-mode, unchecked) field write."""
        self._dram_write(self._slots[field], value)  # zionlint: disable=ZL3 exit-plan writes: the world switch's precompiled plans carry a fused field_copy charge in their fire() closures, which caller-side analysis cannot name-match

    def sm_read(self, field: str) -> int:
        """SM-side (M-mode, unchecked) field read."""
        return self._dram_read(self._slots[field])

    # -- hypervisor side (PMP-checked) -------------------------------------

    def hyp_write(self, hart, field: str, value: int) -> None:
        """Hypervisor-side field write through the PMP-checked bus."""
        self._bus.cpu_write_u64(hart, self._slot(field), value)

    def hyp_read(self, hart, field: str) -> int:
        """Hypervisor-side field read through the PMP-checked bus."""
        return self._bus.cpu_read_u64(hart, self._slot(field))


class CheckAfterLoad:
    """Validator for values loaded back from the shared vCPU.

    Each rule charges :attr:`CycleCosts.validate_field`; a failed check is
    a :class:`SecurityViolation` -- the SM refuses to resume the vCPU with
    tampered state (on hardware it would kill the CVM session).
    """

    def __init__(self, ledger: CycleLedger, costs: CycleCosts):
        self._ledger = ledger
        self._costs = costs
        # The reply validation always loads + checks the same four fields;
        # all four charges land before the first refusal check, in one
        # timer checkpoint window, so they fuse into a single precompiled
        # fire (identical total and VALIDATE breakdown, even on refusals).
        self._charge_reply_fields = ledger.charger(
            Category.VALIDATE, 4 * costs.validate_field
        )

    def _charge(self) -> None:
        self._ledger.charge(Category.VALIDATE, self._costs.validate_field)

    def validate_reply(self, secure: SecureVcpu, shared: SharedVcpu) -> dict:
        """Load + validate the hypervisor's reply fields.

        Returns the sanitized reply dict.  The reference is the exit
        context the SM itself recorded in the secure vCPU at exit time;
        nothing read from shared memory is trusted before it is checked.
        """
        context = secure.exit_context or {}
        reply = {}

        gpr_index = shared.sm_read("gpr_index")
        gpr_value = shared.sm_read("gpr_value")
        sepc_advance = shared.sm_read("sepc_advance")
        pending_irq = shared.sm_read("pending_irq")
        self._charge_reply_fields()

        if context.get("kind") == "mmio_load":
            if gpr_index != context["gpr_index"]:
                raise SecurityViolation(
                    "check-after-load: hypervisor redirected MMIO load "
                    f"result to GPR {gpr_index} (expected {context['gpr_index']})"
                )
            reply["gpr_index"] = gpr_index
            reply["gpr_value"] = gpr_value
        elif context.get("kind") == "mmio_store":
            # The slots carry the SM's own outbound store value; nothing
            # the hypervisor writes there flows back into the vCPU.
            pass
        elif gpr_value or gpr_index:
            raise SecurityViolation(
                "check-after-load: hypervisor supplied a GPR result for a "
                f"{context.get('kind', 'non-MMIO')} exit"
            )

        if context.get("kind") in ("mmio_load", "mmio_store"):
            if sepc_advance not in (2, 4):
                raise SecurityViolation(
                    f"check-after-load: invalid sepc advance {sepc_advance}"
                )
            reply["sepc_advance"] = sepc_advance
        elif sepc_advance:
            raise SecurityViolation(
                "check-after-load: sepc advance on a non-MMIO exit"
            )

        # Only VS-level interrupt bits (VSSI=2, VSTI=6, VSEI=10) may be
        # injected by the hypervisor.
        allowed_irq_mask = 1 << 2 | 1 << 6 | 1 << 10
        if pending_irq & ~allowed_irq_mask:
            raise SecurityViolation(
                f"check-after-load: illegal interrupt injection {pending_irq:#x}"
            )
        reply["pending_irq"] = pending_irq
        return reply
