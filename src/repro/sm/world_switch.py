"""World switching between Normal mode and CVM mode (paper sections IV-A/B).

The **short path** is ZION's isolation-mode contribution: the SM alone
performs the execution-state switch, so entering or leaving CVM mode costs
a single privilege-level transition.  The **long path**, implemented here
as the experimental baseline for the paper's section V-B.2 comparison,
routes every switch through a thin secure hypervisor the way
CoVE/TwinVisor/CCA-style designs do: host -> SM -> secure hypervisor ->
CVM on entry and the reverse on exit, each leg paying trap entry, context
save/restore, and the secure hypervisor's own bookkeeping.

Every cost in these paths is charged from primitives as the corresponding
code would execute; the totals the benchmarks report are emergent.

Wall-clock optimisation (INTERNALS section 16): the *charges* of a switch
are memoized into per-shape plans.  A switch's fixed costs depend only on
(exit kind class, long_path, use_shared_vcpu, PMP pool-region count), all
known ahead of time, so the per-category sums are precomputed once and
fired through bound chargers instead of ~17 individual ``ledger.charge``
calls.  Fusing only ever merges charges of the *same* category that land
inside the *same* timer checkpoint window (a world switch performs no
timer checks), and conditional charges -- Check-after-Load, reply
application, full-state validation -- stay at their original call sites,
so totals and per-category breakdowns are bit-identical to the unfused
sequence, including on reply-refusal paths (entry charges are split into
a pre-validation and a post-validation plan around the only exception
seam).  The goldens in ``tests/goldens/cycle_exact.json`` pin this.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.isa import status
from repro.isa.privilege import PrivilegeMode
from repro.sm import delegation
from repro.sm.cvm import ConfidentialVm
from repro.sm.vcpu import GUEST_CSRS, CheckAfterLoad, SecureVcpu, SharedVcpu

#: Shared-vCPU fields written on an MMIO-style exit.
_MMIO_EXIT_FIELDS = ("exit_cause", "htval", "htinst", "gpr_index", "gpr_value")

#: Every publishable shared-vCPU slot except ``exit_cause`` (always written).
_CLEARABLE_FIELDS = ("htval", "htinst", "gpr_index", "gpr_value", "sepc_advance", "pending_irq")


class WorldSwitch:
    """Executes (and charges) CVM entry/exit transitions on a hart."""

    #: Consecutive Check-after-Load refusals tolerated for one pending exit
    #: before the vCPU fail-stops (a hypervisor endlessly replaying corrupt
    #: replies must not livelock the entry path).
    MAX_REPLY_REFUSALS = 8

    def __init__(
        self,
        ledger: CycleLedger,
        costs: CycleCosts,
        translator,
        pmp_controller,
        use_shared_vcpu: bool = True,
        long_path: bool = False,
    ):
        self.ledger = ledger
        self.costs = costs
        self.translator = translator
        self.pmp = pmp_controller
        self.use_shared_vcpu = use_shared_vcpu
        self.long_path = long_path
        self.check_after_load = CheckAfterLoad(ledger, costs)
        # Charge plans are a function of the PMP pool-region count (the
        # open/close toggle reprograms one entry per region); rebuilt
        # whenever a region is registered (pool expansion).
        self._plan_region_count = -1
        self._rebuild_plans()

    # -- charge plans ----------------------------------------------------------

    def _rebuild_plans(self) -> None:
        """Precompute the fused fixed-cost chargers for every switch shape.

        The arithmetic below is the category-by-category sum of exactly
        the ``ledger.charge`` calls the unfused path performed, in
        checkpoint-safe groups; see the module docstring for the fusing
        rules and docs/INTERNALS.md section 16 for the derivation.
        """
        costs = self.costs
        charger = self.ledger.charger
        regions = self.pmp.pool_region_count
        self._plan_region_count = regions
        pmp_toggle = regions * costs.pmp_entry_write + costs.pmp_fence
        guest_save = costs.gpr_file_save + len(GUEST_CSRS) * costs.csr_read
        guest_restore = costs.gpr_file_save + len(GUEST_CSRS) * costs.csr_write
        hyp_save = costs.hyp_csr_context * costs.csr_read + costs.gpr_file_save
        hyp_swap = costs.hyp_csr_context * costs.csr_swap + costs.gpr_file_save
        delegation_swap = 4 * costs.csr_write
        publish = len(SharedVcpuFieldsPublished) * costs.field_copy

        # -- exit: no exception seam, one fused fire per category --------
        exit_trap = costs.trap_to_m + costs.xret
        exit_sm = costs.sm_exit_logic
        exit_reg = guest_save + publish + delegation_swap + hyp_swap
        exit_fires = []
        if self.long_path:
            exit_reg += hyp_swap + hyp_save
            exit_trap += costs.xret + costs.trap_to_m
            exit_sm += costs.ecall_dispatch
            exit_fires.append(charger(Category.HYP_LOGIC, costs.sec_hyp_exit_logic))
        if not self.use_shared_vcpu:
            field_count = len(GUEST_CSRS) + 31  # full GPR file + guest CSRs
            exit_fires.append(
                charger(Category.VALIDATE, field_count * costs.sanitize_field)
            )
        exit_fires += [
            charger(Category.TRAP, exit_trap),
            charger(Category.REG_SAVE, exit_reg),
            charger(Category.PMP, pmp_toggle),
            charger(Category.TLB, costs.tlb_flush_gvma),
        ]
        self._exit_fires = tuple(
            exit_fires + [charger(Category.SM_LOGIC, exit_sm)]
        )
        self._exit_fires_mmio = tuple(
            exit_fires + [charger(Category.SM_LOGIC, exit_sm + costs.sm_mmio_decode)]
        )

        # -- entry: split around the Check-after-Load exception seam ------
        self._entry_pre_fires = (
            charger(Category.TRAP, costs.trap_to_m),
            charger(Category.SM_LOGIC, costs.ecall_dispatch + costs.sm_entry_logic),
            charger(Category.REG_SAVE, hyp_save),
        )
        entry_trap = costs.xret
        entry_reg = guest_restore + delegation_swap
        entry_post = []
        if self.long_path:
            entry_reg += hyp_swap + hyp_save
            entry_trap += costs.xret + costs.trap_to_m
            entry_post.append(charger(Category.HYP_LOGIC, costs.sec_hyp_entry_logic))
            entry_post.append(charger(Category.SM_LOGIC, costs.ecall_dispatch))
        entry_post += [
            charger(Category.TRAP, entry_trap),
            charger(Category.REG_SAVE, entry_reg),
            charger(Category.PMP, pmp_toggle),
            charger(Category.TLB, costs.tlb_flush_gvma),
        ]
        self._entry_post_fires = tuple(entry_post)

    # -- CVM exit ------------------------------------------------------------

    def exit_to_normal(self, hart, cvm: ConfidentialVm, vcpu: SecureVcpu, exit_info: dict) -> None:
        """Leave CVM mode for Normal mode.

        ``exit_info`` describes why (``kind`` plus cause-specific fields);
        it becomes the secure vCPU's exit context (the Check-after-Load
        reference) and, for MMIO exits, the shared-vCPU payload.
        """
        if self._plan_region_count != self.pmp.pool_region_count:
            self._rebuild_plans()
        kind = exit_info.get("kind", "unknown")
        fires = self._exit_fires_mmio if kind.startswith("mmio") else self._exit_fires
        for fire in fires:
            fire()

        # Hardware trap into M mode (the SM's trap vector): mstatus
        # records the interrupted guest mode, mepc/mcause the context.
        mstatus = status.encode_trap_entry(hart.csrs.read_raw("mstatus"), hart.mode)
        hart.csrs.write_raw("mstatus", mstatus)
        hart.csrs.write_raw("mepc", vcpu.pc)
        hart.csrs.write_raw("mcause", exit_info.get("cause", 0))
        hart.mode = PrivilegeMode.M

        vcpu.save_from(hart)
        vcpu.exit_context = dict(exit_info)
        cvm.exit_count += 1
        cvm.exit_reasons[kind] = cvm.exit_reasons.get(kind, 0) + 1

        shared = cvm.shared_vcpus[vcpu.vcpu_id]
        self._publish_exit_fields(shared, exit_info)

        # Close the secure pool and drop translations that reach it (the
        # plan fired the PMP toggle + hfence.gvma charges above).
        self.pmp.close_pool(hart, charge=False)
        self.translator.tlb.flush_all()

        delegation.NORMAL_MODE.apply(hart)

        # mret to the hypervisor: MPP=S, MPV=0.
        mstatus = status.with_mpp(hart.csrs.read_raw("mstatus"), PrivilegeMode.HS.level)
        mstatus &= ~status.MSTATUS_MPV
        hart.csrs.write_raw("mstatus", mstatus)
        hart.mode = status.mret_target(mstatus)
        hart.csrs.write_raw("mstatus", status.encode_mret(mstatus))
        vcpu.state = vcpu.state.__class__.WAITING_HYP

    def _publish_exit_fields(self, shared: SharedVcpu, exit_info: dict) -> None:
        """Shared-vCPU publish: only the cause-specific registers cross.

        Every exit writes exactly ``len(SharedVcpuFieldsPublished)`` slots
        (cause-specific fields plus zero-clears of the rest), which is how
        the exit plan can carry the ``field_copy`` charges.  In the
        no-shared-vCPU baseline the *entire* sanitised state additionally
        crosses; the plan carries that as a VALIDATE fire (the
        sanitising pass), and the slot traffic below still happens -- the
        exchange page is a strict superset carrier in both designs.
        """
        kind = exit_info.get("kind", "")
        if kind.startswith("mmio"):
            written = _MMIO_EXIT_FIELDS
            shared.sm_write("htval", exit_info.get("htval", 0))
            shared.sm_write("htinst", exit_info.get("htinst", 0))
            shared.sm_write("gpr_index", exit_info.get("gpr_index", 0))
            shared.sm_write("gpr_value", exit_info.get("gpr_value", 0))
        elif kind == "shared_fault":
            written = ("exit_cause", "htval")
            shared.sm_write("htval", exit_info.get("htval", 0))
        else:
            written = ("exit_cause",)
        shared.sm_write("exit_cause", exit_info.get("cause", 0))
        # Clear every slot not owned by this exit so stale hypervisor data
        # (or a previous exit's payload) cannot echo back through
        # Check-after-Load.
        for name in _CLEARABLE_FIELDS:
            if name not in written:
                shared.sm_write(name, 0)

    # -- CVM entry ------------------------------------------------------------

    def enter_cvm(self, hart, cvm: ConfidentialVm, vcpu: SecureVcpu) -> dict:
        """Enter CVM mode from Normal mode (the hypervisor's run ECALL).

        Returns the validated hypervisor reply (empty when there was no
        exit to reply to, e.g. first entry).
        """
        if self._plan_region_count != self.pmp.pool_region_count:
            self._rebuild_plans()
        # The hypervisor's ECALL traps into M mode.  Only the charges up
        # to the Check-after-Load seam fire here: a refused reply must
        # leave the ledger exactly where the unfused path would.
        for fire in self._entry_pre_fires:
            fire()
        mstatus = status.encode_trap_entry(hart.csrs.read_raw("mstatus"), hart.mode)
        hart.csrs.write_raw("mstatus", mstatus)
        hart.mode = PrivilegeMode.M

        shared = cvm.shared_vcpus[vcpu.vcpu_id]
        reply: dict = {}
        if vcpu.exit_context is not None:
            try:
                if self.use_shared_vcpu:
                    reply = self.check_after_load.validate_reply(vcpu, shared)
                else:
                    reply = self._validate_full_state(vcpu, shared)
            except Exception:
                # Check-after-Load rejected the reply.  A refusal is
                # retryable (the hypervisor may resubmit honest values),
                # but a host replaying corrupt replies forever must not
                # livelock the SM: after MAX_REPLY_REFUSALS consecutive
                # rejections the vCPU fail-stops.
                refusals = getattr(vcpu, "reply_refusals", 0) + 1
                vcpu.reply_refusals = refusals
                if refusals >= self.MAX_REPLY_REFUSALS:
                    vcpu.exit_context = None
                    vcpu.state = vcpu.state.__class__.STOPPED
                raise
            vcpu.reply_refusals = 0
            self._apply_reply(vcpu, reply)
            vcpu.exit_context = None

        for fire in self._entry_post_fires:
            fire()
        vcpu.restore_to(hart)
        delegation.CVM_MODE.apply(hart)

        # Open the secure pool for CVM mode and flush stale translations
        # (PMP toggle + hfence.gvma charges fired by the entry plan).
        self.pmp.open_pool(hart, charge=False)
        self.translator.tlb.flush_all()

        # mret into the guest: MPP=S with MPV=1 selects VS mode.
        mstatus = status.with_mpp(hart.csrs.read_raw("mstatus"), PrivilegeMode.VS.level)
        mstatus |= status.MSTATUS_MPV
        hart.csrs.write_raw("mstatus", mstatus)
        hart.mode = status.mret_target(mstatus)
        hart.csrs.write_raw("mstatus", status.encode_mret(mstatus))
        vcpu.state = vcpu.state.__class__.RUNNING
        cvm.entry_count += 1
        return reply

    def _validate_full_state(self, vcpu: SecureVcpu, shared: SharedVcpu) -> dict:
        """Unoptimised baseline: validate every field of the returned state."""
        field_count = len(vcpu.gprs) + len(GUEST_CSRS)
        self.ledger.charge(Category.VALIDATE, field_count * self.costs.validate_field)
        # The usable reply content is the same as the fast path's.
        return self.check_after_load.validate_reply(vcpu, shared)

    def _apply_reply(self, vcpu: SecureVcpu, reply: dict) -> None:
        if "gpr_value" in reply:
            from repro.isa.hart import GPR_NAMES

            index = reply["gpr_index"]
            if 1 <= index <= len(GPR_NAMES):
                vcpu.gprs[GPR_NAMES[index - 1]] = reply["gpr_value"]
            # Injecting the result re-derives the target register from the
            # trapped instruction (htinst decode on the entry side too).
            self.ledger.charge(Category.SM_LOGIC, self.costs.sm_mmio_decode)
            self.ledger.charge(Category.REG_SAVE, self.costs.field_copy)
        if reply.get("sepc_advance"):
            vcpu.pc += reply["sepc_advance"]
            vcpu.csrs["sepc"] = vcpu.pc
            self.ledger.charge(Category.REG_SAVE, self.costs.field_copy)
        if reply.get("pending_irq"):
            vcpu.csrs["hvip"] |= reply["pending_irq"]
            self.ledger.charge(Category.REG_SAVE, self.costs.field_copy)


#: Slots every exit publishes (cause-specific writes + zero-clears): the
#: union is always ``exit_cause`` plus the six clearable fields' worth of
#: traffic, i.e. 7 ``field_copy`` charges, which lets the exit plan fuse
#: them.  Kept as a tuple (not a bare constant) so the invariant is
#: auditable against ``SHARED_VCPU_FIELDS``.
SharedVcpuFieldsPublished = ("exit_cause",) + _CLEARABLE_FIELDS
