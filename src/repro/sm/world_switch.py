"""World switching between Normal mode and CVM mode (paper sections IV-A/B).

The **short path** is ZION's isolation-mode contribution: the SM alone
performs the execution-state switch, so entering or leaving CVM mode costs
a single privilege-level transition.  The **long path**, implemented here
as the experimental baseline for the paper's section V-B.2 comparison,
routes every switch through a thin secure hypervisor the way
CoVE/TwinVisor/CCA-style designs do: host -> SM -> secure hypervisor ->
CVM on entry and the reverse on exit, each leg paying trap entry, context
save/restore, and the secure hypervisor's own bookkeeping.

Every cost in these paths is charged from primitives as the corresponding
code would execute; the totals the benchmarks report are emergent.
"""

from __future__ import annotations

from repro.cycles import Category, CycleCosts, CycleLedger
from repro.isa import status
from repro.isa.privilege import PrivilegeMode
from repro.sm import delegation
from repro.sm.cvm import ConfidentialVm
from repro.sm.vcpu import GUEST_CSRS, CheckAfterLoad, SecureVcpu, SharedVcpu

#: Shared-vCPU fields written on an MMIO-style exit.
_MMIO_EXIT_FIELDS = ("exit_cause", "htval", "htinst", "gpr_index", "gpr_value")


class WorldSwitch:
    """Executes (and charges) CVM entry/exit transitions on a hart."""

    #: Consecutive Check-after-Load refusals tolerated for one pending exit
    #: before the vCPU fail-stops (a hypervisor endlessly replaying corrupt
    #: replies must not livelock the entry path).
    MAX_REPLY_REFUSALS = 8

    def __init__(
        self,
        ledger: CycleLedger,
        costs: CycleCosts,
        translator,
        pmp_controller,
        use_shared_vcpu: bool = True,
        long_path: bool = False,
    ):
        self.ledger = ledger
        self.costs = costs
        self.translator = translator
        self.pmp = pmp_controller
        self.use_shared_vcpu = use_shared_vcpu
        self.long_path = long_path
        self.check_after_load = CheckAfterLoad(ledger, costs)

    # -- helpers ---------------------------------------------------------------

    def _charge(self, category: Category, cycles) -> None:
        self.ledger.charge(category, cycles)

    def _save_guest_state(self, hart, vcpu: SecureVcpu) -> None:
        vcpu.save_from(hart)
        self._charge(Category.REG_SAVE, self.costs.gpr_file_save)
        self._charge(Category.REG_SAVE, len(GUEST_CSRS) * self.costs.csr_read)

    def _restore_guest_state(self, hart, vcpu: SecureVcpu) -> None:
        vcpu.restore_to(hart)
        self._charge(Category.REG_SAVE, self.costs.gpr_file_save)
        self._charge(Category.REG_SAVE, len(GUEST_CSRS) * self.costs.csr_write)

    def _swap_to_hyp_context(self, hart) -> None:
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_swap + self.costs.gpr_file_save,
        )

    def _save_hyp_context(self, hart) -> None:
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_read + self.costs.gpr_file_save,
        )

    def _apply_delegation(self, hart, profile) -> None:
        profile.apply(hart)
        self._charge(Category.REG_SAVE, 4 * self.costs.csr_write)

    # -- CVM exit ------------------------------------------------------------

    def exit_to_normal(self, hart, cvm: ConfidentialVm, vcpu: SecureVcpu, exit_info: dict) -> None:
        """Leave CVM mode for Normal mode.

        ``exit_info`` describes why (``kind`` plus cause-specific fields);
        it becomes the secure vCPU's exit context (the Check-after-Load
        reference) and, for MMIO exits, the shared-vCPU payload.
        """
        # Hardware trap into M mode (the SM's trap vector): mstatus
        # records the interrupted guest mode, mepc/mcause the context.
        self._charge(Category.TRAP, self.costs.trap_to_m)
        mstatus = status.encode_trap_entry(hart.csrs.read_raw("mstatus"), hart.mode)
        hart.csrs.write_raw("mstatus", mstatus)
        hart.csrs.write_raw("mepc", vcpu.pc)
        hart.csrs.write_raw("mcause", exit_info.get("cause", 0))
        hart.mode = PrivilegeMode.M
        self._charge(Category.SM_LOGIC, self.costs.sm_exit_logic)

        self._save_guest_state(hart, vcpu)
        vcpu.exit_context = dict(exit_info)
        cvm.exit_count += 1
        kind = exit_info.get("kind", "unknown")
        cvm.exit_reasons[kind] = cvm.exit_reasons.get(kind, 0) + 1
        if exit_info.get("kind", "").startswith("mmio"):
            self._charge(Category.SM_LOGIC, self.costs.sm_mmio_decode)

        shared = cvm.shared_vcpus[vcpu.vcpu_id]
        if self.use_shared_vcpu:
            self._publish_exit_fields(shared, exit_info)
        else:
            self._publish_full_state(shared, vcpu, exit_info)

        if self.long_path:
            self._long_path_leg_exit()

        # Close the secure pool and drop translations that reach it.
        self.pmp.close_pool(hart)
        self.translator.hfence_gvma()

        self._apply_delegation(hart, delegation.NORMAL_MODE)
        self._swap_to_hyp_context(hart)

        # mret to the hypervisor: MPP=S, MPV=0.
        mstatus = status.with_mpp(hart.csrs.read_raw("mstatus"), PrivilegeMode.HS.level)
        mstatus &= ~status.MSTATUS_MPV
        hart.csrs.write_raw("mstatus", mstatus)
        self._charge(Category.TRAP, self.costs.xret)
        hart.mode = status.mret_target(mstatus)
        hart.csrs.write_raw("mstatus", status.encode_mret(mstatus))
        vcpu.state = vcpu.state.__class__.WAITING_HYP

    def _publish_exit_fields(self, shared: SharedVcpu, exit_info: dict) -> None:
        """Shared-vCPU fast path: only the cause-specific registers cross."""
        fields = {
            "exit_cause": exit_info.get("cause", 0),
            "htval": exit_info.get("htval", 0),
            "htinst": exit_info.get("htinst", 0),
            "gpr_index": exit_info.get("gpr_index", 0),
            "gpr_value": exit_info.get("gpr_value", 0),
        }
        kind = exit_info.get("kind", "")
        if kind.startswith("mmio"):
            written = _MMIO_EXIT_FIELDS
        elif kind == "shared_fault":
            written = ("exit_cause", "htval")
        else:
            written = ("exit_cause",)
        for name in written:
            shared.sm_write(name, fields[name])
            self._charge(Category.REG_SAVE, self.costs.field_copy)
        # Clear every slot not owned by this exit so stale hypervisor data
        # (or a previous exit's payload) cannot echo back through
        # Check-after-Load.
        for name in ("htval", "htinst", "gpr_index", "gpr_value", "sepc_advance", "pending_irq"):
            if name not in written:
                shared.sm_write(name, 0)
                self._charge(Category.REG_SAVE, self.costs.field_copy)

    def _publish_full_state(self, shared: SharedVcpu, vcpu: SecureVcpu, exit_info: dict) -> None:
        """Unoptimised baseline: sanitise and copy the *entire* vCPU state.

        This is the no-shared-vCPU design the paper's section V-B.1
        measures against: every GPR and guest CSR is scrubbed of
        SM-internal bits and copied into the exchange page -- a strict
        superset of what the fast path publishes, so the exit-specific
        fields still cross (the hypervisor needs them to emulate).
        """
        field_count = len(vcpu.gprs) + len(GUEST_CSRS)
        self._charge(Category.VALIDATE, field_count * self.costs.sanitize_field)
        self._publish_exit_fields(shared, exit_info)

    # -- CVM entry ------------------------------------------------------------

    def enter_cvm(self, hart, cvm: ConfidentialVm, vcpu: SecureVcpu) -> dict:
        """Enter CVM mode from Normal mode (the hypervisor's run ECALL).

        Returns the validated hypervisor reply (empty when there was no
        exit to reply to, e.g. first entry).
        """
        # The hypervisor's ECALL traps into M mode.
        self._charge(Category.TRAP, self.costs.trap_to_m)
        mstatus = status.encode_trap_entry(hart.csrs.read_raw("mstatus"), hart.mode)
        hart.csrs.write_raw("mstatus", mstatus)
        hart.mode = PrivilegeMode.M
        self._charge(Category.SM_LOGIC, self.costs.ecall_dispatch)
        self._save_hyp_context(hart)
        self._charge(Category.SM_LOGIC, self.costs.sm_entry_logic)

        shared = cvm.shared_vcpus[vcpu.vcpu_id]
        reply: dict = {}
        if vcpu.exit_context is not None:
            try:
                if self.use_shared_vcpu:
                    reply = self.check_after_load.validate_reply(vcpu, shared)
                else:
                    reply = self._validate_full_state(vcpu, shared)
            except Exception:
                # Check-after-Load rejected the reply.  A refusal is
                # retryable (the hypervisor may resubmit honest values),
                # but a host replaying corrupt replies forever must not
                # livelock the SM: after MAX_REPLY_REFUSALS consecutive
                # rejections the vCPU fail-stops.
                refusals = getattr(vcpu, "reply_refusals", 0) + 1
                vcpu.reply_refusals = refusals
                if refusals >= self.MAX_REPLY_REFUSALS:
                    vcpu.exit_context = None
                    vcpu.state = vcpu.state.__class__.STOPPED
                raise
            vcpu.reply_refusals = 0
            self._apply_reply(vcpu, reply)
            vcpu.exit_context = None

        if self.long_path:
            self._long_path_leg_entry()

        self._restore_guest_state(hart, vcpu)
        self._apply_delegation(hart, delegation.CVM_MODE)

        # Open the secure pool for CVM mode and flush stale translations.
        self.pmp.open_pool(hart)
        self.translator.hfence_gvma()

        # mret into the guest: MPP=S with MPV=1 selects VS mode.
        mstatus = status.with_mpp(hart.csrs.read_raw("mstatus"), PrivilegeMode.VS.level)
        mstatus |= status.MSTATUS_MPV
        hart.csrs.write_raw("mstatus", mstatus)
        self._charge(Category.TRAP, self.costs.xret)
        hart.mode = status.mret_target(mstatus)
        hart.csrs.write_raw("mstatus", status.encode_mret(mstatus))
        vcpu.state = vcpu.state.__class__.RUNNING
        cvm.entry_count += 1
        return reply

    def _validate_full_state(self, vcpu: SecureVcpu, shared: SharedVcpu) -> dict:
        """Unoptimised baseline: validate every field of the returned state."""
        field_count = len(vcpu.gprs) + len(GUEST_CSRS)
        self._charge(Category.VALIDATE, field_count * self.costs.validate_field)
        # The usable reply content is the same as the fast path's.
        return self.check_after_load.validate_reply(vcpu, shared)

    def _apply_reply(self, vcpu: SecureVcpu, reply: dict) -> None:
        if "gpr_value" in reply:
            from repro.isa.hart import GPR_NAMES

            index = reply["gpr_index"]
            if 1 <= index <= len(GPR_NAMES):
                vcpu.gprs[GPR_NAMES[index - 1]] = reply["gpr_value"]
            # Injecting the result re-derives the target register from the
            # trapped instruction (htinst decode on the entry side too).
            self._charge(Category.SM_LOGIC, self.costs.sm_mmio_decode)
            self._charge(Category.REG_SAVE, self.costs.field_copy)
        if reply.get("sepc_advance"):
            vcpu.pc += reply["sepc_advance"]
            vcpu.csrs["sepc"] = vcpu.pc
            self._charge(Category.REG_SAVE, self.costs.field_copy)
        if reply.get("pending_irq"):
            vcpu.csrs["hvip"] |= reply["pending_irq"]
            self._charge(Category.REG_SAVE, self.costs.field_copy)

    # -- long-path baseline legs ----------------------------------------------

    def _long_path_leg_exit(self) -> None:
        """CVM -> secure hypervisor -> SM (two extra transitions).

        Models the CoVE/TwinVisor-style route: the SM first resumes the
        secure hypervisor (context restore + mret), the secure hypervisor
        does its own vCPU bookkeeping, then ECALLs back into the SM, which
        saves the secure hypervisor's context again before continuing the
        exit toward the host.
        """
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_swap + self.costs.gpr_file_save,
        )
        self._charge(Category.TRAP, self.costs.xret)
        self._charge(Category.HYP_LOGIC, self.costs.sec_hyp_exit_logic)
        self._charge(Category.TRAP, self.costs.trap_to_m)
        self._charge(Category.SM_LOGIC, self.costs.ecall_dispatch)
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_read + self.costs.gpr_file_save,
        )

    def _long_path_leg_entry(self) -> None:
        """SM -> secure hypervisor -> SM on the way into the CVM."""
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_swap + self.costs.gpr_file_save,
        )
        self._charge(Category.TRAP, self.costs.xret)
        self._charge(Category.HYP_LOGIC, self.costs.sec_hyp_entry_logic)
        self._charge(Category.TRAP, self.costs.trap_to_m)
        self._charge(Category.SM_LOGIC, self.costs.ecall_dispatch)
        self._charge(
            Category.REG_SAVE,
            self.costs.hyp_csr_context * self.costs.csr_read + self.costs.gpr_file_save,
        )
