"""The ZION Secure Monitor (SM) -- the paper's core contribution.

The SM runs in M mode and is the system's only trusted software.  It
implements (paper section IV):

- the **short-path CVM mode**: world switches between Normal mode and CVM
  mode take a single privilege-level transition through the SM
  (:mod:`repro.sm.world_switch`);
- **secure + shared vCPU** state protection with Check-after-Load TOCTOU
  defence (:mod:`repro.sm.vcpu`);
- **PMP + paging memory isolation**: a PMP-guarded secure memory pool,
  with stage-2 page tables (stored inside the pool, SM-owned) isolating
  CVMs from each other (:mod:`repro.sm.secmem`, :mod:`repro.sm.monitor`);
- **hierarchical memory management**: 256 KB secure blocks on a circular
  doubly-linked list, per-vCPU page caches, three-stage allocation
  (:mod:`repro.sm.alloc`);
- **split-page-table memory sharing** for virtio (:mod:`repro.sm.share`);
- the **trap-delegation policy** that keeps CVM traps away from the
  untrusted hypervisor (:mod:`repro.sm.delegation`);
- **attestation**: boot measurement, signed reports, platform randomness
  (:mod:`repro.sm.attestation`).
"""

from repro.sm.secmem import SECURE_BLOCK_SIZE, SecureMemoryBlock, SecureMemoryPool
from repro.sm.alloc import AllocStage, HierarchicalAllocator, PoolExhausted
from repro.sm.vcpu import SHARED_VCPU_FIELDS, SecureVcpu, SharedVcpu, VcpuState
from repro.sm.cvm import ConfidentialVm, CvmState, GpaLayout
from repro.sm.monitor import SecureMonitor
from repro.sm.attestation import AttestationReport
from repro.sm.abi import EcallInterface, GuestFunction, HostFunction, SbiError
from repro.sm.migration import derive_migration_key, export_cvm, import_cvm

__all__ = [
    "SECURE_BLOCK_SIZE",
    "SecureMemoryBlock",
    "SecureMemoryPool",
    "AllocStage",
    "HierarchicalAllocator",
    "PoolExhausted",
    "SecureVcpu",
    "SharedVcpu",
    "SHARED_VCPU_FIELDS",
    "VcpuState",
    "ConfidentialVm",
    "CvmState",
    "GpaLayout",
    "SecureMonitor",
    "AttestationReport",
    "EcallInterface",
    "HostFunction",
    "GuestFunction",
    "SbiError",
    "derive_migration_key",
    "export_cvm",
    "import_cvm",
]
