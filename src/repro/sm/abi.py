"""The SM's ECALL ABI: a numbered, register-based calling convention.

The monitor's Python methods are the implementation; this module is the
*architectural* boundary: callers place an extension ID in ``a7``, a
function ID in ``a6`` and arguments in ``a0..a5``, execute ``ecall``, and
receive an SBI-style ``(error, value)`` pair in ``a0``/``a1``.  Two
extensions are defined, mirroring how CoVE splits its interface:

- ``ZION_HOST`` (0x5A4E_0001): hypervisor-facing lifecycle calls, only
  accepted from HS mode;
- ``ZION_GUEST`` (0x5A4E_0002): CVM-facing services, only accepted from
  VS mode (the SM derives *which* CVM from the running vCPU, never from
  an argument -- a guest cannot name another guest).

Byte-buffer arguments cross as (address, length) pairs in the caller's
address space, like real SBI: guest buffers are GPAs the SM translates
and bound-checks against the caller's own memory.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.cycles import Category
from repro.errors import EcallError, SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.mem.physmem import PAGE_SIZE
from repro.sm.alloc import PoolExhausted


class SbiError(enum.IntEnum):
    """SBI-standard error codes (returned in a0)."""

    SUCCESS = 0
    FAILED = -1
    NOT_SUPPORTED = -2
    INVALID_PARAM = -3
    DENIED = -4
    INVALID_ADDRESS = -5


EXT_ZION_HOST = 0x5A4E_0001
EXT_ZION_GUEST = 0x5A4E_0002


class HostFunction(enum.IntEnum):
    """ZION_HOST function IDs (a6)."""

    CREATE_CVM = 0
    ASSIGN_SHARED_VCPU = 1
    LOAD_IMAGE_PAGE = 2
    SET_ENTRY_POINT = 3
    FINALIZE = 4
    LINK_SHARED_SUBTREE = 5
    REGISTER_POOL_MEMORY = 6
    SUSPEND = 7
    RESUME = 8
    DESTROY = 9
    DESCRIBE_CVM = 10


@dataclasses.dataclass(frozen=True)
class CvmDescriptor:
    """DESCRIBE_CVM reply: what the host may learn about a CVM.

    This is the *entire* host-visible summary -- id, vCPU count, GPA
    layout, lifecycle state name.  Secure vCPU contents, table roots and
    pool geometry are deliberately absent: the descriptor exists so the
    hypervisor can provision host-side resources for a CVM it did not
    create (the migration adopt path) without reaching into SM state.
    In the register convention the vCPU count rides in ``a1``; a real
    firmware would marshal the rest through a host-supplied buffer.
    """

    cvm_id: int
    vcpu_count: int
    layout: "GpaLayout"  # noqa: F821 -- repro.sm.cvm; annotation only
    state: str


class GuestFunction(enum.IntEnum):
    """ZION_GUEST function IDs (a6)."""

    GET_MEASUREMENT = 0
    GET_ATTESTATION_REPORT = 1
    GET_RANDOM = 2
    RECLAIM_PAGES = 3
    SHARE_REQUEST = 4
    CHANNEL_CREATE = 5
    CHANNEL_CONNECT = 6
    CHANNEL_NOTIFY = 7
    CHANNEL_CLOSE = 8


class EcallInterface:
    """Decodes register-convention ECALLs onto the monitor.

    ``dispatch`` is what the machine's trap path invokes when an ECALL
    lands in M mode; it reads the arguments out of the *hart's* GPRs and
    writes the result back, exactly as firmware does.
    """

    def __init__(self, monitor, running_cvm_of=None):
        self.monitor = monitor
        #: Resolves (hart) -> (cvm, vcpu_id) for guest calls; installed by
        #: the machine, which knows what is running where.
        self.running_cvm_of = running_cvm_of

    # -- entry point ------------------------------------------------------

    def dispatch(self, hart) -> None:
        """Handle the ECALL encoded in the hart's registers (a7/a6/a0-a5)."""
        eid = hart.read_gpr("a7")
        fid = hart.read_gpr("a6")
        args = [hart.read_gpr(f"a{i}") for i in range(6)]
        error, value = self.call(hart, eid, fid, args)
        hart.write_gpr("a0", error & (1 << 64) - 1)
        hart.write_gpr("a1", value & (1 << 64) - 1)

    def call(self, hart, eid: int, fid: int, args) -> tuple:
        """Dispatch and catch: architectural errors become error codes."""
        try:
            if eid == EXT_ZION_HOST:
                return self._host_call(hart, fid, args)
            if eid == EXT_ZION_GUEST:
                return self._guest_call(hart, fid, args)
            return SbiError.NOT_SUPPORTED, 0
        except EcallError:
            return SbiError.INVALID_PARAM, 0
        except SecurityViolation:
            return SbiError.DENIED, 0
        except PoolExhausted:
            # The hypervisor could not (or would not) donate memory; the
            # call fails cleanly instead of unwinding the simulator.
            return SbiError.FAILED, 0
        except (KeyError, ValueError):
            return SbiError.INVALID_PARAM, 0

    # -- host extension ------------------------------------------------------

    def _host_call(self, hart, fid: int, args) -> tuple:
        if hart.mode is not PrivilegeMode.HS:
            return SbiError.DENIED, 0
        monitor = self.monitor
        if fid == HostFunction.CREATE_CVM:
            vcpu_count = args[0] or 1
            return SbiError.SUCCESS, monitor.ecall_create_cvm(vcpu_count=vcpu_count)
        if fid == HostFunction.ASSIGN_SHARED_VCPU:
            monitor.ecall_assign_shared_vcpu(args[0], args[1], args[2])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.LOAD_IMAGE_PAGE:
            cvm_id, gpa, src_pa = args[0], args[1], args[2]
            # The image page is read from *normal* memory through the
            # hypervisor's own PMP view -- it cannot feed the SM secure
            # bytes it could not read itself.
            data = monitor.bus.cpu_read(hart, src_pa, PAGE_SIZE)
            monitor.ecall_load_image(cvm_id, gpa, data)
            return SbiError.SUCCESS, 0
        if fid == HostFunction.SET_ENTRY_POINT:
            monitor.ecall_set_entry_point(args[0], args[1], args[2])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.FINALIZE:
            monitor.ecall_finalize(args[0])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.LINK_SHARED_SUBTREE:
            monitor.ecall_link_shared_subtree(args[0], args[1], args[2])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.REGISTER_POOL_MEMORY:
            return SbiError.SUCCESS, monitor.ecall_register_pool_memory(args[0], args[1])
        if fid == HostFunction.SUSPEND:
            monitor.ecall_suspend(args[0])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.RESUME:
            monitor.ecall_resume(args[0])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.DESTROY:
            monitor.ecall_destroy(args[0])
            return SbiError.SUCCESS, 0
        if fid == HostFunction.DESCRIBE_CVM:
            descriptor = monitor.ecall_describe_cvm(args[0])
            return SbiError.SUCCESS, descriptor.vcpu_count
        return SbiError.NOT_SUPPORTED, 0

    # -- guest extension ------------------------------------------------------

    def _guest_call(self, hart, fid: int, args) -> tuple:
        if hart.mode is not PrivilegeMode.VS:
            return SbiError.DENIED, 0
        if self.running_cvm_of is None:
            return SbiError.FAILED, 0
        resolved = self.running_cvm_of(hart)
        if resolved is None:
            return SbiError.DENIED, 0
        cvm, vcpu_id = resolved
        monitor = self.monitor
        if fid == GuestFunction.GET_MEASUREMENT:
            if cvm.measurement is None:
                return SbiError.FAILED, 0
            out_gpa = args[0]
            self._write_guest_buffer(cvm, out_gpa, cvm.measurement)
            return SbiError.SUCCESS, len(cvm.measurement)
        if fid == GuestFunction.GET_ATTESTATION_REPORT:
            data_gpa, data_len, out_gpa = args[0], args[1], args[2]
            if data_len > 64:
                return SbiError.INVALID_PARAM, 0
            report_data = self._read_guest_buffer(cvm, data_gpa, data_len)
            report = monitor.ecall_attestation_report(cvm.cvm_id, report_data)
            blob = report.measurement + report.nonce + report.signature
            self._write_guest_buffer(cvm, out_gpa, blob)
            return SbiError.SUCCESS, len(blob)
        if fid == GuestFunction.GET_RANDOM:
            out_gpa, count = args[0], args[1]
            random = monitor.ecall_get_random(cvm.cvm_id, count)
            self._write_guest_buffer(cvm, out_gpa, random)
            return SbiError.SUCCESS, count
        if fid == GuestFunction.RECLAIM_PAGES:
            freed = monitor.ecall_reclaim_pages(cvm.cvm_id, vcpu_id, args[0], args[1])
            return SbiError.SUCCESS, freed
        if fid == GuestFunction.SHARE_REQUEST:
            gpa = monitor.ecall_guest_share_request(hart, cvm.cvm_id, vcpu_id, args[0])
            return SbiError.SUCCESS, gpa
        if fid == GuestFunction.CHANNEL_CREATE:
            window_gpa, size, meas_gpa = args[0], args[1], args[2]
            expected_peer = self._read_guest_buffer(cvm, meas_gpa, 32)
            channel_id = monitor.ecall_channel_create(
                cvm.cvm_id, window_gpa, size, expected_peer
            )
            return SbiError.SUCCESS, channel_id
        if fid == GuestFunction.CHANNEL_CONNECT:
            channel_id, window_gpa, meas_gpa = args[0], args[1], args[2]
            expected_creator = self._read_guest_buffer(cvm, meas_gpa, 32)
            window_size = monitor.ecall_channel_connect(
                cvm.cvm_id, channel_id, window_gpa, expected_creator
            )
            return SbiError.SUCCESS, window_size
        if fid == GuestFunction.CHANNEL_NOTIFY:
            pending = monitor.ecall_channel_notify(cvm.cvm_id, args[0])
            return SbiError.SUCCESS, pending
        if fid == GuestFunction.CHANNEL_CLOSE:
            monitor.ecall_channel_close(cvm.cvm_id, args[0])
            return SbiError.SUCCESS, 0
        return SbiError.NOT_SUPPORTED, 0

    # -- guest buffer plumbing ---------------------------------------------------

    def _guest_pa(self, cvm, gpa: int, length: int) -> int:
        """Translate a guest buffer GPA through the CVM's own stage-2 root.

        The SM refuses buffers that are unmapped, misaligned, or that
        cross a page boundary (like real SBI implementations, callers
        pass 8-byte-aligned, page-local buffers).
        """
        if gpa % 8:
            raise EcallError("guest buffer address must be 8-byte aligned")
        if length < 0:
            raise EcallError("guest buffer length must be non-negative")
        if gpa // PAGE_SIZE != (gpa + max(length, 1) - 1) // PAGE_SIZE:
            raise EcallError("guest buffer crosses a page boundary")
        try:
            from repro.isa.traps import AccessType

            pa, _flags = self.monitor.translator.gpa_to_pa(
                cvm.hgatp_root, gpa, AccessType.LOAD
            )
        except TrapRaised as trap:
            raise EcallError(f"guest buffer not mapped: {trap}") from trap
        return pa

    def _read_guest_buffer(self, cvm, gpa: int, length: int) -> bytes:
        if length == 0:
            return b""
        monitor = self.monitor
        pa = self._guest_pa(cvm, gpa, length)
        monitor.ledger.charge(Category.COPY, monitor.costs.copy_bytes(length))
        return monitor.dram.read(pa, length)

    def _write_guest_buffer(self, cvm, gpa: int, data: bytes) -> None:
        monitor = self.monitor
        pa = self._guest_pa(cvm, gpa, len(data))
        monitor.ledger.charge(Category.COPY, monitor.costs.copy_bytes(len(data)))
        monitor.dram.write(pa, data)
