"""Measurement and attestation services.

ZION's SM exposes ECALLs for confidential VMs to retrieve measurement
reports and platform random numbers (paper section III-A).  The SM
measures the guest image and launch configuration at finalisation
(SHA-256), and reports are authenticated with a platform key -- modelled
as HMAC-SHA256 with a per-machine device secret, standing in for the
hardware-fused attestation key of a production part.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac


@dataclasses.dataclass(frozen=True)
class AttestationReport:
    """A signed launch-measurement report.

    ``rtmr_digest`` summarises the runtime measurement registers at
    signing time (SHA-256 over their concatenation); a verifier replays
    the guest's event log against it.
    """

    cvm_id: int
    measurement: bytes
    nonce: bytes
    report_data: bytes
    signature: bytes
    rtmr_digest: bytes = bytes(32)

    def as_dict(self) -> dict:
        """JSON-friendly rendering (hex-encoded byte fields)."""
        return {
            "cvm_id": self.cvm_id,
            "measurement": self.measurement.hex(),
            "nonce": self.nonce.hex(),
            "report_data": self.report_data.hex(),
            "rtmr_digest": self.rtmr_digest.hex(),
            "signature": self.signature.hex(),
        }


class MeasurementLog:
    """Accumulates launch-time measurements for one CVM."""

    def __init__(self):
        self._hash = hashlib.sha256()
        self._finalized = False
        self.digest: bytes | None = None

    def extend(self, label: str, data: bytes) -> None:
        """Append one labelled measurement to the running hash."""
        if self._finalized:
            raise ValueError("measurement already finalized")
        self._hash.update(len(label).to_bytes(4, "little"))
        self._hash.update(label.encode())
        self._hash.update(len(data).to_bytes(8, "little"))
        self._hash.update(data)

    def finalize(self) -> bytes:
        """Seal the log and return (or re-return) its digest."""
        if not self._finalized:
            self.digest = self._hash.digest()
            self._finalized = True
        return self.digest


class AttestationService:
    """The SM's attestation backend.

    ``device_secret`` models the hardware root key; ``entropy_seed``
    drives a deterministic DRBG for platform random numbers (the
    simulation must be reproducible, so there is no OS entropy here).
    """

    def __init__(self, device_secret: bytes, entropy_seed: bytes):
        self._device_secret = device_secret
        self._drbg_state = hashlib.sha256(entropy_seed).digest()
        self._counter = 0

    def random_bytes(self, count: int) -> bytes:
        """Platform random numbers (hash-DRBG)."""
        out = b""
        while len(out) < count:
            self._counter += 1
            block = hmac.new(
                self._drbg_state,
                self._counter.to_bytes(8, "little"),
                hashlib.sha256,
            ).digest()
            out += block
        self._drbg_state = hashlib.sha256(self._drbg_state + out[:32]).digest()
        return out[:count]

    def sign_report(self, cvm_id: int, measurement: bytes, report_data: bytes,
                    rtmr_digest: bytes = bytes(32)) -> AttestationReport:
        """Produce a signed report binding measurement, RTMRs, user data."""
        nonce = self.random_bytes(16)
        payload = (
            cvm_id.to_bytes(8, "little") + measurement + nonce
            + rtmr_digest + report_data
        )
        signature = hmac.new(self._device_secret, payload, hashlib.sha256).digest()
        return AttestationReport(
            cvm_id=cvm_id,
            measurement=measurement,
            nonce=nonce,
            report_data=report_data,
            signature=signature,
            rtmr_digest=rtmr_digest,
        )

    def verify_report(self, report: AttestationReport) -> bool:
        """Verifier-side check (a relying party with the platform key)."""
        payload = (
            report.cvm_id.to_bytes(8, "little")
            + report.measurement
            + report.nonce
            + report.rtmr_digest
            + report.report_data
        )
        expected = hmac.new(self._device_secret, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, report.signature)
