"""Guest-side virtio drivers staging DMA through SWIOTLB.

These drivers perform the guest half of every virtio transaction: stage
the payload into a bounce slot (one copy), build a descriptor naming the
bounce GPA, kick the device's doorbell (an MMIO store -- which is exactly
the VM exit the paper's I/O overhead comes from), then field the
completion interrupt and copy results back out of the bounce slot.
"""

from __future__ import annotations

from repro.cycles import Category
from repro.hyp.virtio import Descriptor, Virtqueue, payload_len


class _DriverBase:
    def __init__(self, ctx, device, swiotlb):
        self.ctx = ctx
        self.device = device
        self.swiotlb = swiotlb

    def _charge_driver_fixed(self) -> None:
        self.ctx.ledger.charge(
            Category.GUEST_KERNEL, self.ctx.costs.virtio_driver_fixed
        )

    def _kick(self, queue_index: int) -> None:
        self.ctx.mmio_write(
            self.device.mmio_base + self.device.QUEUE_NOTIFY, queue_index
        )
        # Completion raised an interrupt; the guest kernel services it.
        self.ctx.deliver_pending_irqs()


class VirtioBlkDriver(_DriverBase):
    """Block I/O through virtio-blk, one request per call.

    Block requests are *blocking*: after the doorbell kick the caller
    sleeps until the completion interrupt (``blocking=True``, the
    default), which costs a second VM exit per request -- the "frequent
    I/O exits" the paper's IOZone discussion attributes the confidential
    VM's large-file overhead to.
    """

    def __init__(self, ctx, device, swiotlb, queue: Virtqueue, blocking: bool = True):
        super().__init__(ctx, device, swiotlb)
        self.queue = queue
        self.blocking = blocking
        device.attach_queue(0, queue)

    def _wait_completion(self) -> None:
        # The simulation's device completes during the kick exit itself,
        # but the real guest cannot know that: it blocks on the request
        # and is woken by the completion interrupt -- one more VM exit.
        if self.blocking:
            self.ctx.wfi()
            self.ctx.deliver_pending_irqs()

    def write(self, sector: int, payload) -> None:
        """Write ``payload`` (bytes or symbolic length) at ``sector``."""
        length = payload_len(payload)
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)  # the copy touches each page
        self.swiotlb.bounce(length)  # private -> bounce copy
        self.queue.post(
            Descriptor(
                gpa=bounce_gpa,
                length=length,
                payload=payload,
                header={"type": "write", "sector": sector},
            )
        )
        self._kick(0)
        self._wait_completion()
        done = self.queue.pop_used()
        if done is None:
            raise RuntimeError("virtio-blk write did not complete")
        self.swiotlb.unmap_single(bounce_gpa)

    def read(self, sector: int, length: int):
        """Read ``length`` bytes at ``sector``; returns the payload."""
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)  # driver maps before DMA
        self.queue.post(
            Descriptor(
                gpa=bounce_gpa,
                length=length,
                device_writes=True,
                header={"type": "read", "sector": sector},
            )
        )
        self._kick(0)
        self._wait_completion()
        done = self.queue.pop_used()
        if done is None:
            raise RuntimeError("virtio-blk read did not complete")
        self.swiotlb.bounce(length)  # bounce -> private copy
        self.swiotlb.unmap_single(bounce_gpa)
        return done.payload


class VirtioRngDriver(_DriverBase):
    """Guest entropy driver with defensive mixing.

    virtio-rng entropy comes from the untrusted host, so for a
    confidential VM the driver never uses it directly: each read is mixed
    (SHA-256) with SM-attested platform randomness.  A malicious host can
    thus bias nothing -- at worst it contributes zero entropy.
    """

    def __init__(self, ctx, device, swiotlb, queue: Virtqueue):
        super().__init__(ctx, device, swiotlb)
        self.queue = queue
        device.attach_queue(0, queue)

    def read(self, count: int) -> bytes:
        """``count`` mixed-entropy bytes (one device round trip)."""
        import hashlib

        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(count)
        self.ctx.touch_range(bounce_gpa, count)
        self.queue.post(
            Descriptor(gpa=bounce_gpa, length=count, device_writes=True)
        )
        self._kick(0)
        done = self.queue.pop_used()
        if done is None:
            raise RuntimeError("virtio-rng request did not complete")
        self.swiotlb.bounce(count)
        self.swiotlb.unmap_single(bounce_gpa)
        host_entropy = bytes(done.payload)
        sm_entropy = self.ctx.get_random(min(count, 64))
        out = b""
        block = 0
        while len(out) < count:
            out += hashlib.sha256(
                host_entropy + sm_entropy + block.to_bytes(4, "little")
            ).digest()
            block += 1
        return out[:count]


class VirtioNetDriver(_DriverBase):
    """Network I/O through virtio-net (TX ring + pre-posted RX ring)."""

    RX_BUFFER_SIZE = 2048

    def __init__(self, ctx, device, swiotlb, tx_queue: Virtqueue, rx_queue: Virtqueue):
        super().__init__(ctx, device, swiotlb)
        self.tx_queue = tx_queue
        self.rx_queue = rx_queue
        device.attach_queue(device.TX_QUEUE, tx_queue)
        device.attach_queue(device.RX_QUEUE, rx_queue)

    def post_rx_buffers(self, count: int) -> None:
        """Pre-post RX bounce buffers for the device to fill."""
        for _ in range(count):
            gpa = self.swiotlb.map_single(self.RX_BUFFER_SIZE)
            self.ctx.touch_range(gpa, self.RX_BUFFER_SIZE)
            self.rx_queue.post(
                Descriptor(gpa=gpa, length=self.RX_BUFFER_SIZE, device_writes=True)
            )

    def send(self, frame, header: dict | None = None) -> None:
        """Transmit a frame (kicks the device; one VM exit)."""
        length = payload_len(frame)
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)
        self.swiotlb.bounce(length)
        self.tx_queue.post(
            Descriptor(gpa=bounce_gpa, length=length, payload=frame, header=header or {})
        )
        self._kick(self.device.TX_QUEUE)
        done = self.tx_queue.pop_used()
        if done is None:
            raise RuntimeError("virtio-net TX did not complete")
        self.swiotlb.unmap_single(bounce_gpa)

    def send_many(self, frames, header: dict | None = None) -> None:
        """Transmit several frames with a single doorbell kick.

        The batching a pipelined protocol gets from TCP: descriptor setup
        per frame, but one exit for the whole batch.
        """
        staged = []
        for frame in frames:
            length = payload_len(frame)
            self._charge_driver_fixed()
            bounce_gpa = self.swiotlb.map_single(length)
            self.ctx.touch_range(bounce_gpa, length)
            self.swiotlb.bounce(length)
            self.tx_queue.post(
                Descriptor(gpa=bounce_gpa, length=length, payload=frame, header=header or {})
            )
            staged.append(bounce_gpa)
        self._kick(self.device.TX_QUEUE)
        for _ in staged:
            done = self.tx_queue.pop_used()
            if done is None:
                raise RuntimeError("virtio-net TX batch did not complete")
        for bounce_gpa in staged:
            self.swiotlb.unmap_single(bounce_gpa)

    def recv(self):
        """Pop one received frame, or ``None`` when the ring is empty.

        Re-posts the consumed buffer so the ring never starves.
        """
        done = self.rx_queue.pop_used()
        if done is None:
            return None
        self._charge_driver_fixed()
        frame = done.payload
        self.ctx.touch_range(done.gpa, payload_len(frame))
        self.swiotlb.bounce(payload_len(frame))  # bounce -> private copy
        self.rx_queue.post(
            Descriptor(gpa=done.gpa, length=done.length, device_writes=True)
        )
        return frame
