"""Guest-side virtio drivers staging DMA through SWIOTLB.

These drivers perform the guest half of every virtio transaction: stage
the payload into a bounce slot (one copy), build a descriptor naming the
bounce GPA, kick the device's doorbell (an MMIO store -- which is exactly
the VM exit the paper's I/O overhead comes from), then field the
completion interrupt and copy results back out of the bounce slot.

Batching (docs/DATA_PLANE.md): the ``*_many`` entry points stage N
descriptors, cross the SWIOTLB once per direction for the whole batch,
and ring the doorbell once -- one MMIO exit and one completion wait
amortised over N requests, which is where the batched data plane's exit
reduction comes from.  Every completion's status byte is checked: a
request the device refused surfaces as a typed
:class:`~repro.errors.VirtioIoError` after the bounce slots are released,
never as a silent success or a leaked mapping.
"""

from __future__ import annotations

from repro.cycles import Category
from repro.errors import VirtioError, VirtioIoError
from repro.hyp.virtio import STATUS_OK, Descriptor, Virtqueue, payload_len


class _DriverBase:
    def __init__(self, ctx, device, swiotlb):
        self.ctx = ctx
        self.device = device
        self.swiotlb = swiotlb

    def _charge_driver_fixed(self) -> None:
        self.ctx.ledger.charge(
            Category.GUEST_KERNEL, self.ctx.costs.virtio_driver_fixed
        )

    def _kick(self, queue_index: int) -> None:
        self.ctx.mmio_write(
            self.device.mmio_base + self.device.QUEUE_NOTIFY, queue_index
        )
        # Completion raised an interrupt; the guest kernel services it.
        self.ctx.deliver_pending_irqs()

    @staticmethod
    def _completion(queue: Virtqueue, what: str) -> Descriptor:
        """Pop one completion; typed errors for missing or refused ones."""
        done = queue.pop_used()
        if done is None:
            raise VirtioError(f"{what} did not complete")
        if done.status != STATUS_OK:
            raise VirtioIoError(
                f"{what} failed with device status {done.status}",
                status=done.status,
            )
        return done


class VirtioBlkDriver(_DriverBase):
    """Block I/O through virtio-blk.

    Block requests are *blocking*: after the doorbell kick the caller
    sleeps until the completion interrupt (``blocking=True``, the
    default), which costs a second VM exit per request -- the "frequent
    I/O exits" the paper's IOZone discussion attributes the confidential
    VM's large-file overhead to.  :meth:`write_many`/:meth:`read_many`
    amortise both exits across a whole batch.
    """

    def __init__(self, ctx, device, swiotlb, queue: Virtqueue, blocking: bool = True):
        super().__init__(ctx, device, swiotlb)
        self.queue = queue
        self.blocking = blocking
        device.attach_queue(0, queue)

    def _wait_completion(self) -> None:
        # The simulation's device completes during the kick exit itself,
        # but the real guest cannot know that: it blocks on the request
        # and is woken by the completion interrupt -- one more VM exit.
        if self.blocking:
            self.ctx.wfi()
            self.ctx.deliver_pending_irqs()

    def write(self, sector: int, payload) -> None:
        """Write ``payload`` (bytes or symbolic length) at ``sector``."""
        length = payload_len(payload)
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)  # the copy touches each page
        self.swiotlb.bounce(length)  # private -> bounce copy
        self.queue.post(
            Descriptor(
                gpa=bounce_gpa,
                length=length,
                payload=payload,
                header={"type": "write", "sector": sector},
            )
        )
        self._kick(0)
        self._wait_completion()
        try:
            self._completion(self.queue, "virtio-blk write")
        finally:
            self.swiotlb.unmap_single(bounce_gpa)

    def read(self, sector: int, length: int):
        """Read ``length`` bytes at ``sector``; returns the payload."""
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)  # driver maps before DMA
        self.queue.post(
            Descriptor(
                gpa=bounce_gpa,
                length=length,
                device_writes=True,
                header={"type": "read", "sector": sector},
            )
        )
        self._kick(0)
        self._wait_completion()
        try:
            done = self._completion(self.queue, "virtio-blk read")
            self.swiotlb.bounce(length)  # bounce -> private copy
            return done.payload
        finally:
            self.swiotlb.unmap_single(bounce_gpa)

    # -- batched block I/O -------------------------------------------------

    def write_many(self, requests) -> None:
        """Write a batch of ``(sector, payload)`` with one kick/wait.

        Stages every descriptor, crosses the SWIOTLB once for the whole
        batch, rings the doorbell once, then checks every completion
        status.  Refused requests surface as one
        :class:`~repro.errors.VirtioIoError` after all bounce slots are
        released (the successful requests in the batch stay written).
        """
        requests = list(requests)
        if not requests:
            return
        lengths = [payload_len(payload) for _sector, payload in requests]
        gpas = self.swiotlb.map_many(lengths)
        failed: list[Descriptor] = []
        try:
            for (sector, payload), gpa, length in zip(requests, gpas, lengths):
                self._charge_driver_fixed()
                self.ctx.touch_range(gpa, length)
                self.queue.post(
                    Descriptor(
                        gpa=gpa,
                        length=length,
                        payload=payload,
                        header={"type": "write", "sector": sector},
                    )
                )
            self.swiotlb.bounce_many(lengths)  # private -> bounce, one pass
            self._kick(0)
            self._wait_completion()
            for _ in requests:
                done = self.queue.pop_used()
                if done is None:
                    raise VirtioError("virtio-blk batch write did not complete")
                if done.status != STATUS_OK:
                    failed.append(done)
        finally:
            self.swiotlb.unmap_many(gpas)
        if failed:
            raise VirtioIoError(
                f"virtio-blk batch write: {len(failed)} of {len(requests)} "
                f"requests refused (first status {failed[0].status})",
                status=failed[0].status,
            )

    def read_many(self, requests) -> list:
        """Read a batch of ``(sector, length)`` with one kick/wait.

        Returns the payloads in request order.  Any refused request
        raises :class:`~repro.errors.VirtioIoError` (after releasing the
        batch's bounce slots); the bounce-back copy is charged only for
        a fully successful batch.
        """
        requests = list(requests)
        if not requests:
            return []
        lengths = [length for _sector, length in requests]
        gpas = self.swiotlb.map_many(lengths)
        failed: list[Descriptor] = []
        payloads: list = []
        try:
            for (sector, length), gpa in zip(requests, gpas):
                self._charge_driver_fixed()
                self.ctx.touch_range(gpa, length)
                self.queue.post(
                    Descriptor(
                        gpa=gpa,
                        length=length,
                        device_writes=True,
                        header={"type": "read", "sector": sector},
                    )
                )
            self._kick(0)
            self._wait_completion()
            for _ in requests:
                done = self.queue.pop_used()
                if done is None:
                    raise VirtioError("virtio-blk batch read did not complete")
                if done.status != STATUS_OK:
                    failed.append(done)
                payloads.append(done.payload)
            if not failed:
                self.swiotlb.bounce_many(lengths)  # bounce -> private copies
        finally:
            self.swiotlb.unmap_many(gpas)
        if failed:
            raise VirtioIoError(
                f"virtio-blk batch read: {len(failed)} of {len(requests)} "
                f"requests refused (first status {failed[0].status})",
                status=failed[0].status,
            )
        return payloads


class VirtioRngDriver(_DriverBase):
    """Guest entropy driver with defensive mixing.

    virtio-rng entropy comes from the untrusted host, so for a
    confidential VM the driver never uses it directly: each read is mixed
    (SHA-256) with SM-attested platform randomness.  A malicious host can
    thus bias nothing -- at worst it contributes zero entropy.
    """

    def __init__(self, ctx, device, swiotlb, queue: Virtqueue):
        super().__init__(ctx, device, swiotlb)
        self.queue = queue
        device.attach_queue(0, queue)

    def read(self, count: int) -> bytes:
        """``count`` mixed-entropy bytes (one device round trip)."""
        import hashlib

        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(count)
        self.ctx.touch_range(bounce_gpa, count)
        self.queue.post(
            Descriptor(gpa=bounce_gpa, length=count, device_writes=True)
        )
        self._kick(0)
        try:
            done = self._completion(self.queue, "virtio-rng request")
            self.swiotlb.bounce(count)
        finally:
            self.swiotlb.unmap_single(bounce_gpa)
        host_entropy = bytes(done.payload)
        sm_entropy = self.ctx.get_random(min(count, 64))
        out = b""
        block = 0
        while len(out) < count:
            out += hashlib.sha256(
                host_entropy + sm_entropy + block.to_bytes(4, "little")
            ).digest()
            block += 1
        return out[:count]


class VirtioNetDriver(_DriverBase):
    """Network I/O through virtio-net (TX ring + pre-posted RX ring)."""

    RX_BUFFER_SIZE = 2048

    def __init__(self, ctx, device, swiotlb, tx_queue: Virtqueue, rx_queue: Virtqueue):
        super().__init__(ctx, device, swiotlb)
        self.tx_queue = tx_queue
        self.rx_queue = rx_queue
        device.attach_queue(device.TX_QUEUE, tx_queue)
        device.attach_queue(device.RX_QUEUE, rx_queue)

    def post_rx_buffers(self, count: int) -> None:
        """Pre-post RX bounce buffers for the device to fill."""
        for _ in range(count):
            gpa = self.swiotlb.map_single(self.RX_BUFFER_SIZE)
            self.ctx.touch_range(gpa, self.RX_BUFFER_SIZE)
            self.rx_queue.post(
                Descriptor(gpa=gpa, length=self.RX_BUFFER_SIZE, device_writes=True)
            )

    def send(self, frame, header: dict | None = None) -> None:
        """Transmit a frame (kicks the device; one VM exit)."""
        length = payload_len(frame)
        self._charge_driver_fixed()
        bounce_gpa = self.swiotlb.map_single(length)
        self.ctx.touch_range(bounce_gpa, length)
        self.swiotlb.bounce(length)
        self.tx_queue.post(
            Descriptor(gpa=bounce_gpa, length=length, payload=frame, header=header or {})
        )
        self._kick(self.device.TX_QUEUE)
        try:
            self._completion(self.tx_queue, "virtio-net TX")
        finally:
            self.swiotlb.unmap_single(bounce_gpa)

    def send_many(self, frames, header: dict | None = None) -> None:
        """Transmit several frames with a single doorbell kick.

        The batching a pipelined protocol gets from TCP: descriptor setup
        per frame, but one exit for the whole batch.
        """
        frames = list(frames)
        if not frames:
            return
        lengths = [payload_len(frame) for frame in frames]
        gpas = self.swiotlb.map_many(lengths)
        failed: list[Descriptor] = []
        try:
            for frame, gpa, length in zip(frames, gpas, lengths):
                self._charge_driver_fixed()
                self.ctx.touch_range(gpa, length)
                self.tx_queue.post(
                    Descriptor(gpa=gpa, length=length, payload=frame, header=header or {})
                )
            self.swiotlb.bounce_many(lengths)
            self._kick(self.device.TX_QUEUE)
            for _ in frames:
                done = self.tx_queue.pop_used()
                if done is None:
                    raise VirtioError("virtio-net TX batch did not complete")
                if done.status != STATUS_OK:
                    failed.append(done)
        finally:
            self.swiotlb.unmap_many(gpas)
        if failed:
            raise VirtioIoError(
                f"virtio-net TX batch: {len(failed)} of {len(frames)} frames "
                f"refused (first status {failed[0].status})",
                status=failed[0].status,
            )

    def recv(self):
        """Pop one received frame, or ``None`` when the ring is empty.

        Re-posts the consumed buffer so the ring never starves.
        """
        done = self.rx_queue.pop_used()
        if done is None:
            return None
        self._charge_driver_fixed()
        frame = done.payload
        self.ctx.touch_range(done.gpa, payload_len(frame))
        self.swiotlb.bounce(payload_len(frame))  # bounce -> private copy
        self.rx_queue.post(
            Descriptor(gpa=done.gpa, length=done.length, device_writes=True)
        )
        return frame

    def recv_many(self, limit: int | None = None) -> list:
        """Drain completed RX frames; batch the bounce-back and re-post.

        Charges exactly what ``limit``-many :meth:`recv` calls would
        (per-frame driver cost, one summed bounce charge), but re-posts
        the consumed buffers as a batch -- the receive half of the
        batched data plane.
        """
        consumed: list[Descriptor] = []
        while limit is None or len(consumed) < limit:
            done = self.rx_queue.pop_used()
            if done is None:
                break
            self._charge_driver_fixed()
            consumed.append(done)
        if not consumed:
            return []
        frames = [done.payload for done in consumed]
        lengths = [payload_len(frame) for frame in frames]
        for done, length in zip(consumed, lengths):
            self.ctx.touch_range(done.gpa, length)
        self.swiotlb.bounce_many(lengths)  # bounce -> private copies
        for done in consumed:
            self.rx_queue.post(
                Descriptor(gpa=done.gpa, length=done.length, device_writes=True)
            )
        return frames
