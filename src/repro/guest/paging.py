"""Guest-side stage-1 (Sv39) page-table management.

Models the guest kernel building its own virtual address space: table
pages are ordinary guest memory, PTE words are written with ordinary
guest stores (faulting in pages, going through stage-2 translation like
anything else the guest does), and the targets of guest PTEs are GPAs --
the hypervisor-extension semantics the translator implements.

ZION never sees or cares about these tables; they demonstrate that a
confidential guest's paging works unmodified, which is the
compatibility claim VM-based TEEs make against process-based ones.
"""

from __future__ import annotations

from repro.cycles import Category
from repro.mem.physmem import PAGE_SIZE

PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
PTE_A = 1 << 6
PTE_D = 1 << 7


class GuestPageTableBuilder:
    """Builds an Sv39 table inside guest memory and enables vsatp."""

    def __init__(self, ctx, table_region_gpa: int):
        self.ctx = ctx
        self._cursor = table_region_gpa
        self.root_gpa = self._alloc_table()

    def _alloc_table(self) -> int:
        gpa = self._cursor
        self._cursor += PAGE_SIZE
        # Touching the fresh table page faults it in (zeroed by the SM).
        self.ctx.touch(gpa)
        return gpa

    def map(self, gva: int, gpa: int, writable: bool = True, executable: bool = False, user: bool = False) -> None:
        """Install a 4 KB mapping ``gva -> gpa`` with guest stores."""
        if gva % PAGE_SIZE or gpa % PAGE_SIZE:
            raise ValueError("guest mappings are page-granular")
        table = self.root_gpa
        for depth in range(2):
            shift = 12 + 9 * (2 - depth)
            slot = table + 8 * ((gva >> shift) & 0x1FF)
            pte = self.ctx.load(slot)
            if not pte & PTE_V:
                child = self._alloc_table()
                self.ctx.store(slot, (child >> 12) << 10 | PTE_V)
                table = child
            else:
                table = ((pte >> 10) << 12) & ~(PAGE_SIZE - 1)
        flags = PTE_V | PTE_R | PTE_A | PTE_D
        if writable:
            flags |= PTE_W
        if executable:
            flags |= PTE_X
        if user:
            flags |= PTE_U
        leaf_slot = table + 8 * ((gva >> 12) & 0x1FF)
        self.ctx.store(leaf_slot, (gpa >> 12) << 10 | flags)

    def enable(self) -> None:
        """Write vsatp and fence: the guest runs with paging from here."""
        ctx = self.ctx
        ctx.ledger.charge(Category.GUEST_KERNEL, ctx.costs.csr_write)
        ctx.ledger.charge(Category.TLB, ctx.costs.tlb_flush_gvma)
        ctx.machine.translator.tlb.flush_vmid(ctx.session.vmid)
        ctx.session.vsatp_root = self.root_gpa

    def disable(self) -> None:
        """Back to Bare (e.g. before kexec)."""
        self.ctx.ledger.charge(Category.GUEST_KERNEL, self.ctx.costs.csr_write)
        self.ctx.machine.translator.tlb.flush_vmid(self.ctx.session.vmid)
        self.ctx.session.vsatp_root = None
