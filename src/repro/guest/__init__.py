"""Guest-side software: the confidential VM's kernel-level components.

The paper's guests run Linux with minor patches; here the corresponding
guest-kernel behaviour is modelled directly: a SWIOTLB bounce-buffer
allocator placed in the shared GPA region (:mod:`repro.guest.swiotlb`) and
a virtio driver that stages all DMA through it
(:mod:`repro.guest.virtio_driver`).  Both charge the same work a real
driver performs (bounce copies, descriptor setup, interrupt handling).
"""

from repro.guest.swiotlb import Swiotlb
from repro.guest.virtio_driver import VirtioBlkDriver, VirtioNetDriver

__all__ = ["Swiotlb", "VirtioBlkDriver", "VirtioNetDriver"]
