"""SWIOTLB: the guest's bounce-buffer pool in shared memory.

A confidential VM cannot let devices DMA into its private memory (the
IOPMP forbids it), so its kernel routes all virtio buffers through a
bounce pool placed in the shared GPA region.  The paper's setup enables
SWIOTLB on *both* the normal and the confidential VM ("Both normal and
confidential VMs were configured with one vCPU, 256MB memory, and SWIOTLB
enabled"), so bounce-copy costs appear on both sides of every comparison;
what differs is only where the pool lives and the exit path around it.
"""

from __future__ import annotations

from repro.cycles import Category
from repro.errors import MemoryError_

#: Linux's default maximum single SWIOTLB mapping (128 slots x 2 KB).
MAX_MAPPING = 256 * 1024


class Swiotlb:
    """Slot allocator over a contiguous bounce window in GPA space."""

    def __init__(self, base_gpa: int, size: int, ledger, costs, slot_size: int = 2048):
        self.base_gpa = base_gpa
        self.size = size
        self.slot_size = slot_size
        self._ledger = ledger
        self._costs = costs
        self._slots = size // slot_size
        self._free = list(range(self._slots - 1, -1, -1))
        self._allocated: dict[int, int] = {}  # gpa -> slot count

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def map_single(self, length: int) -> int:
        """Allocate a bounce region for one mapping; returns its GPA."""
        if length > MAX_MAPPING:
            raise MemoryError_(
                f"SWIOTLB mapping of {length} exceeds the {MAX_MAPPING} limit"
            )
        needed = -(-length // self.slot_size)
        if needed > len(self._free):
            raise MemoryError_("SWIOTLB exhausted")
        # Contiguous slots: take from the low end of the free stack.
        taken = sorted(self._free[-needed:])
        run_ok = all(b - a == 1 for a, b in zip(taken, taken[1:]))
        if not run_ok:
            # Fall back: linear scan for a contiguous run.
            taken = self._find_run(needed)
        for slot in taken:
            self._free.remove(slot)
        gpa = self.base_gpa + taken[0] * self.slot_size
        self._allocated[gpa] = needed
        return gpa

    def _find_run(self, needed: int) -> list[int]:
        free_sorted = sorted(self._free)
        run: list[int] = []
        for slot in free_sorted:
            if run and slot != run[-1] + 1:
                run = []
            run.append(slot)
            if len(run) == needed:
                return run
        raise MemoryError_("SWIOTLB fragmented: no contiguous run")

    def unmap_single(self, gpa: int) -> None:
        """Release a mapping's slots back to the pool."""
        needed = self._allocated.pop(gpa, None)
        if needed is None:
            raise MemoryError_(f"SWIOTLB unmap of unmapped GPA {gpa:#x}")
        first = (gpa - self.base_gpa) // self.slot_size
        self._free.extend(range(first, first + needed))

    def bounce(self, length: int) -> None:
        """Charge one direction of a bounce copy (private <-> shared)."""
        self._ledger.charge(Category.COPY, self._costs.copy_bytes(length))

    # -- batched mappings (one pass over the pool per batch) ---------------

    def map_many(self, lengths) -> list[int]:
        """Allocate bounce regions for a whole batch; returns their GPAs.

        All-or-nothing: if the pool runs out (or fragments) partway
        through, every mapping already made for this batch is released
        before the :class:`~repro.errors.MemoryError_` propagates, so a
        failed batch never leaks slots.
        """
        gpas: list[int] = []
        try:
            for length in lengths:
                gpas.append(self.map_single(length))
        except MemoryError_:
            for gpa in gpas:
                self.unmap_single(gpa)
            raise
        return gpas

    def unmap_many(self, gpas) -> None:
        """Release a batch of mappings back to the pool."""
        for gpa in gpas:
            self.unmap_single(gpa)

    def bounce_many(self, lengths) -> None:
        """Charge one direction of the bounce copies for a whole batch.

        One ledger charge for the summed per-buffer copy costs --
        bit-identical to charging each buffer separately, so batched and
        naive drivers account the same bytes at the same price.
        """
        self._ledger.charge(
            Category.COPY,
            sum(self._costs.copy_bytes(length) for length in lengths),
        )
