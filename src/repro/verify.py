"""Machine-wide security-invariant checker.

:func:`check_invariants` sweeps a machine and verifies, from first
principles (raw memory and PMP state, not bookkeeping), every structural
property ZION's security argument rests on.  Integration tests call it
after complex scenarios; embedders can call it anywhere as a tripwire.

Checked invariants:

I1. every CVM's stage-2 root and private table pages lie inside the pool;
I2. every private leaf's frame is pool memory owned by exactly that CVM
    (frames of a live SM-brokered channel window are the one sanctioned
    exception: token-owned and mapped into both endpoints by design --
    :mod:`repro.faults.invariants` checks their ownership separately);
I3. no two CVMs' private frames intersect (channel windows excepted);
I4. shared-subtree tables and shared leaves lie outside the pool;
I5. the PMP pool entries of every hart match its recorded world state
    (open only while that hart executes a CVM);
I6. the IOPMP denies DMA into every pool region, for any source id;
I7. free pool pages are zero (scrubbing actually happened);
I8. SM metadata pages (page tables) are never mapped into any CVM.

Each violation is reported as a string; an empty list means the machine
is consistent.  :func:`assert_invariants` raises on the first report.
"""

from __future__ import annotations

from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.sm.channel import ChannelState
from repro.sm.cvm import CvmState
from repro.sm.secmem import OWNER_FREE, OWNER_SM


class _Raw:
    def __init__(self, dram):
        self._dram = dram

    def read_u64(self, addr):
        return self._dram.read_u64(addr)


def check_invariants(machine) -> list:
    """Sweep the machine; returns a list of violation descriptions."""
    violations: list[str] = []
    monitor = machine.monitor
    pool = monitor.pool
    walker = Sv39x4()
    raw = _Raw(machine.dram)

    live_cvms = [
        cvm for cvm in monitor.cvms.values() if cvm.state is not CvmState.DESTROYED
    ]

    # Frames legitimately shared between endpoint CVMs via a live
    # SM-brokered channel: owned by the channel token (not either CVM)
    # and mapped into both endpoints' private ranges by design.
    channel_frames: dict[int, set] = {}
    for channel in monitor.channels.channels.values():
        if channel.state is ChannelState.CLOSED:
            continue
        frames = {
            channel.window_pa + offset
            for offset in range(0, channel.window_size, PAGE_SIZE)
        }
        for endpoint_id in channel.gpas:
            channel_frames.setdefault(endpoint_id, set()).update(frames)

    # --- I1/I2/I4: per-CVM table and leaf placement ----------------------
    frames_by_cvm: dict[int, set] = {}
    all_table_pages: set = set()
    for cvm in live_cvms:
        if cvm.hgatp_root is None:
            continue
        if not pool.contains(cvm.hgatp_root, 16 * 1024):
            violations.append(
                f"I1: CVM {cvm.cvm_id} root {cvm.hgatp_root:#x} outside the pool"
            )
        shared_split = monitor.split.shared_root_index_base(cvm)
        for table in walker.iter_tables(raw, cvm.hgatp_root):
            all_table_pages.add(table)
        frames = set()
        for gpa, pa, _flags, _level in walker.iter_leaves(raw, cvm.hgatp_root):
            if cvm.layout.in_private_dram(gpa):
                page = pa & ~(PAGE_SIZE - 1)
                if page in channel_frames.get(cvm.cvm_id, ()):
                    continue  # live channel window: token-owned by design
                frames.add(page)
                if not pool.contains(pa, 1):
                    violations.append(
                        f"I2: CVM {cvm.cvm_id} private GPA {gpa:#x} maps "
                        f"non-pool PA {pa:#x}"
                    )
                elif pool.owner_of(page) != cvm.cvm_id:
                    violations.append(
                        f"I2: CVM {cvm.cvm_id} private frame {pa:#x} owned by "
                        f"{pool.owner_of(page)!r}"
                    )
            elif cvm.layout.in_shared(gpa):
                if pool.contains(pa, 1):
                    violations.append(
                        f"I4: CVM {cvm.cvm_id} shared GPA {gpa:#x} aliases "
                        f"pool PA {pa:#x}"
                    )
        frames_by_cvm[cvm.cvm_id] = frames
        # Shared subtrees (hypervisor-owned) must live in normal memory.
        for index, table in cvm.shared_subtrees.items():
            if index < shared_split:
                violations.append(
                    f"I4: CVM {cvm.cvm_id} shared subtree at private index {index}"
                )
            if pool.contains(table, PAGE_SIZE):
                violations.append(
                    f"I4: CVM {cvm.cvm_id} shared subtree table {table:#x} in pool"
                )

    # --- I3: pairwise disjointness ------------------------------------------
    ids = sorted(frames_by_cvm)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            overlap = frames_by_cvm[a] & frames_by_cvm[b]
            if overlap:
                violations.append(
                    f"I3: CVMs {a} and {b} share frames {sorted(overlap)[:3]}"
                )

    # --- I5: PMP state vs world state -----------------------------------------
    for hart in machine.harts:
        is_open = machine.pmp_controller.pool_is_open(hart)
        for base, size in pool.regions:
            readable = hart.pmp.check(base, 8, AccessType.LOAD, PrivilegeMode.HS)
            if readable != is_open:
                violations.append(
                    f"I5: hart {hart.hart_id} pool PMP state "
                    f"({'open' if readable else 'closed'}) disagrees with "
                    f"recorded world ({'open' if is_open else 'closed'})"
                )
        session = machine._active_session
        cvm_running_here = (
            session is not None
            and session.active
            and getattr(session, "cvm", None) is not None
            and session.hart is hart
        )
        if is_open and not cvm_running_here and hart.mode is not PrivilegeMode.M:
            violations.append(
                f"I5: hart {hart.hart_id} has the pool open with no CVM running"
            )

    # --- I6: IOPMP coverage -------------------------------------------------------
    for base, size in pool.regions:
        for source_id in (0, 1, 7):
            for access in (AccessType.LOAD, AccessType.STORE):
                if machine.iopmp.check(source_id, base, 64, access):
                    violations.append(
                        f"I6: IOPMP allows device {source_id} {access.value} "
                        f"into pool region {base:#x}"
                    )

    # --- I7: free pages are scrubbed ----------------------------------------------
    free_pages = pool.pages_owned_by(OWNER_FREE)
    for page in free_pages[:: max(1, len(free_pages) // 32)]:  # sampled
        if machine.dram.read(page, 64) != bytes(64):
            violations.append(f"I7: free pool page {page:#x} holds residual data")

    # --- I8: metadata pages never guest-mapped --------------------------------------
    for cvm_id, frames in frames_by_cvm.items():
        mapped_tables = frames & all_table_pages
        if mapped_tables:
            violations.append(
                f"I8: CVM {cvm_id} maps page-table pages {sorted(mapped_tables)[:3]}"
            )
        for frame in frames:
            if pool.owner_of(frame) == OWNER_SM:
                violations.append(
                    f"I8: CVM {cvm_id} maps SM metadata page {frame:#x}"
                )

    return violations


def assert_invariants(machine) -> None:
    """Raise ``AssertionError`` listing violations, if any."""
    violations = check_invariants(machine)
    if violations:
        raise AssertionError(
            "security invariants violated:\n  " + "\n  ".join(violations)
        )
