"""The fault campaign: a hostile run per seed, judged on containment.

Each seed builds a fresh machine with a deliberately small secure pool
(so stage-3 expansions happen), launches three CVMs -- a channel
ping-pong server/client pair plus a page-stress guest that forces pool
pressure -- derives the seed's :class:`FaultPlan`, attaches the
injector, and drives everything through
:meth:`Machine.run_concurrent(..., on_error="contain")`.

Verdict per seed:

- **contained**: a session ended in a typed :class:`ReproError` (the
  architecture refused the faulty input) or rode the fault out;
- **crash**: any other exception escaped -- a simulator bug the
  campaign exists to find;
- **violation**: a post-condition sweep (during the run or at the end)
  reported a broken security invariant.

The campaign passes only with zero crashes and zero violations.  The
workloads are *tolerant* variants of the ping-pong pair: under injected
corruption a payload mismatch is counted, not asserted, and bounded
patience counters let a guest give up gracefully when its peer died --
a hung partner must not be misreported as a containment failure.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ChannelCorrupt, ReproError
from repro.faults.injector import FaultInjector
from repro.faults.invariants import check_postconditions
from repro.faults.plan import FaultPlan
from repro.ipc.endpoint import ChannelEndpoint
from repro.machine import Machine, MachineConfig
from repro.mem.physmem import PAGE_SIZE

#: Guest images (distinct so the two channel endpoints attest distinct
#: measurements is NOT required -- same image keeps the handshake simple).
_IMAGE = b"fault-campaign-guest" * 52

#: Channel window geometry (one quarter of the default, keeping rings
#: small enough that seeded corruption lands on live bytes often).
_WINDOW_SIZE = 16 * 1024
_WINDOW_OFFSET = 0x0200_0000

#: Rotations a guest tolerates without progress before giving up.
_PATIENCE = 300


def _window_gpa(ctx) -> int:
    return ctx.session.layout.dram_base + _WINDOW_OFFSET


def tolerant_server(measurement: bytes, rounds: int, channel_box: dict):
    """Echo server that survives corruption: fail-stop, never assert."""

    def workload(ctx):
        endpoint = ChannelEndpoint.create(
            ctx, _window_gpa(ctx), _WINDOW_SIZE, measurement
        )
        channel_box["channel_id"] = endpoint.channel_id
        yield
        echoed = idle = 0
        while echoed < rounds and idle < _PATIENCE:
            try:
                message = endpoint.recv()
            except ChannelCorrupt:
                return {"echoed": echoed, "corrupt_detected": True}
            if message is None:
                idle += 1
                ctx.deliver_pending_irqs()
                yield
                continue
            sent = False
            for _ in range(_PATIENCE):
                try:
                    sent = endpoint.send(message)
                except ChannelCorrupt:
                    return {"echoed": echoed, "corrupt_detected": True}
                if sent:
                    break
                yield
            if not sent:
                break  # peer stopped draining; give up gracefully
            idle = 0
            echoed += 1
            yield
        return {"echoed": echoed, "corrupt_detected": False}

    return workload


def tolerant_client(channel_box: dict, measurement: bytes, rounds: int,
                    message_size: int = 512):
    """Ping-pong client that counts corrupted echoes instead of asserting."""

    def workload(ctx):
        waited = 0
        while "channel_id" not in channel_box:
            waited += 1
            if waited >= _PATIENCE:
                return {"rounds": 0, "corrupted": 0, "corrupt_detected": False}
            yield
        endpoint = ChannelEndpoint.connect(
            ctx, channel_box["channel_id"], _window_gpa(ctx), measurement
        )
        payload = bytes(i & 0xFF for i in range(message_size))
        completed = corrupted = idle = 0
        detected = False
        try:
            for _ in range(rounds):
                while not endpoint.send(payload):
                    idle += 1
                    if idle >= _PATIENCE:
                        return {"rounds": completed, "corrupted": corrupted,
                                "corrupt_detected": detected}
                    yield
                echo = None
                while echo is None:
                    echo = endpoint.recv()
                    if echo is None:
                        idle += 1
                        if idle >= _PATIENCE:
                            return {"rounds": completed,
                                    "corrupted": corrupted,
                                    "corrupt_detected": detected}
                        ctx.deliver_pending_irqs()
                        yield
                idle = 0
                if echo != payload:
                    corrupted += 1  # bit flips in flight: counted, not fatal
                completed += 1
                yield
        except ChannelCorrupt:
            detected = True
        return {"rounds": completed, "corrupted": corrupted,
                "corrupt_detected": detected}

    return workload


def page_stress(pages: int = 160, chunk: int = 8):
    """Touch fresh private pages to keep the three-stage allocator hot."""

    def workload(ctx):
        base = ctx.session.layout.dram_base + 0x0100_0000
        touched = 0
        for index in range(pages):
            ctx.touch(base + index * PAGE_SIZE)
            touched += 1
            if touched % chunk == 0:
                yield
        return {"touched": touched}

    return workload


@dataclasses.dataclass
class SeedResult:
    """Everything the campaign learned from one seed."""

    seed: int
    plan: str
    injected: int
    contained: list
    crashes: list
    violations: list
    outcomes: dict

    @property
    def ok(self) -> bool:
        """True when every fault was contained and no invariant broke."""
        return not self.crashes and not self.violations

    def summary(self) -> str:
        """One status line for campaign output."""
        status = "ok" if self.ok else "FAIL"
        return (
            f"seed {self.seed:>4}  {status:<4} injected={self.injected:<2} "
            f"contained={len(self.contained)} crashes={len(self.crashes)} "
            f"violations={len(self.violations)}"
        )


def run_seed(seed: int, rounds: int = 8, seams=None) -> SeedResult:
    """Run the concurrent hostile scenario under one seed's plan.

    ``seams`` (e.g. ``["channel", "lifecycle"]``) restricts the plan to
    the named seam subset via :meth:`FaultPlan.from_seed`; ``None`` keeps
    the full historical machine-seam pool.  Migration-seam events have no
    machine-level hook and are ignored here -- the fleet orchestrator is
    the driver that consumes those (see :mod:`repro.fleet`).
    """
    machine = Machine(MachineConfig(initial_pool_bytes=2 << 20))
    machine.hypervisor.expand_chunk = 1 << 20

    server = machine.launch_confidential_vm(image=_IMAGE)
    client = machine.launch_confidential_vm(image=_IMAGE)
    stress = machine.launch_confidential_vm(image=_IMAGE)
    measurement = server.cvm.measurement

    box: dict = {}
    pairs = [
        (server, tolerant_server(measurement, rounds, box)),
        (client, tolerant_client(box, measurement, rounds)),
        (stress, page_stress()),
    ]

    plan = FaultPlan.from_seed(seed, seams=seams)
    contained: list = []
    crashes: list = []
    outcomes: dict = {}
    # The injector attaches only now: creation-time allocations above ran
    # clean, so every injected fault lands mid-run, as planned.
    with FaultInjector(machine, plan) as injector:
        try:
            results = machine.run_concurrent(pairs, on_error="contain")
        except Exception as error:  # noqa: BLE001 -- the verdict itself
            crashes.append(f"run aborted: {type(error).__name__}: {error}")
            results = {}
    for name, session in (("server", server), ("client", client),
                          ("stress", stress)):
        outcome = results.get(session)
        if isinstance(outcome, ReproError):
            contained.append(f"{name}: {type(outcome).__name__}: {outcome}")
            outcomes[name] = f"contained:{type(outcome).__name__}"
        else:
            outcomes[name] = outcome
    violations = list(injector.violations)
    # End-state sweep: whatever the faults did, the quiesced machine must
    # still satisfy every invariant.
    violations.extend(
        f"end-state: {problem}" for problem in check_postconditions(machine)
    )
    return SeedResult(
        seed=seed,
        plan=plan.describe(),
        injected=len(injector.applied),
        contained=contained,
        crashes=crashes,
        violations=violations,
        outcomes=outcomes,
    )


def run_campaign(seeds, rounds: int = 8, seams=None) -> list:
    """Run :func:`run_seed` for each seed; returns the result list."""
    return [run_seed(seed, rounds=rounds, seams=seams) for seed in seeds]
