"""Seeded, deterministic fault injection for the ZION reproduction.

The paper's threat model (PAPER section III) assumes the hypervisor is
*actively malicious on every interface* -- not merely buggy.  This
package turns that assumption into a repeatable campaign: a
:class:`FaultPlan` is derived from an integer seed, a
:class:`FaultInjector` applies it by wrapping the existing SM /
hypervisor / IPC seams (the same non-invasive method-wrapping pattern
:mod:`repro.trace` uses), and after every injected event a
post-condition checker re-asserts the design's security invariants.

A fault is *contained* when it surfaces as a typed
:class:`~repro.errors.ReproError` (the SM refusing a corrupt reply, a
ring detecting a poisoned length prefix, an allocation failing cleanly)
or is absorbed entirely; it is a *crash* when any other exception
escapes, and a *violation* when the invariant sweep reports a breach.
The campaign (:func:`run_campaign`, ``python -m repro faults``) demands
zero crashes and zero violations for every seed.
"""

from repro.faults.campaign import SeedResult, run_campaign, run_seed
from repro.faults.injector import FaultInjector
from repro.faults.invariants import check_postconditions
from repro.faults.plan import FAULT_SITES, FaultEvent, FaultPlan

__all__ = [
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "SeedResult",
    "check_postconditions",
    "run_campaign",
    "run_seed",
]
