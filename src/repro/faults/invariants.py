"""Post-condition checks the injector re-asserts after every fault.

Builds on :func:`repro.verify.check_invariants` (the DESIGN section 6
sweep: PMP coverage, stage-2 disjointness, pool ownership, scrub state,
metadata never guest-mapped) and adds the two properties the channel and
hypervisor layers introduced:

- **channel-frame ownership**: every page of a live channel's window is
  owned by that channel's token (``chan:<id>``), so no CVM- or SM-owned
  path can hand the frames out while endpoints may still touch them;
- **no secure PTE under hypervisor roots**: a walk of every normal VM's
  stage-2 tree must never resolve into the secure pool -- the
  hypervisor-visible address space stays disjoint from CVM memory no
  matter what was corrupted mid-run.
"""

from __future__ import annotations

from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.sm.channel import ChannelState
from repro.verify import check_invariants


class _Raw:
    """Raw (M-mode view) PTE accessor for invariant walks."""

    def __init__(self, dram):
        self._dram = dram

    def read_u64(self, addr: int) -> int:
        return self._dram.read_u64(addr)


def _check_channel_ownership(machine) -> list:
    violations = []
    pool = machine.monitor.pool
    manager = machine.monitor.channels
    for channel in manager.channels.values():
        if channel.state is ChannelState.CLOSED:
            continue
        token = manager.owner_token(channel.channel_id)
        for offset in range(0, channel.window_size, PAGE_SIZE):
            page = channel.window_pa + offset
            owner = pool.owner_of(page)
            if owner != token:
                violations.append(
                    f"C1: channel {channel.channel_id} window page "
                    f"{page:#x} owned by {owner!r}, expected {token!r}"
                )
    return violations


def _check_hypervisor_roots(machine) -> list:
    violations = []
    pool = machine.monitor.pool
    walker = Sv39x4()
    raw = _Raw(machine.dram)
    for vm in machine.hypervisor.normal_vms:
        if vm.hgatp_root is None:
            continue
        for gpa, pa, _flags, _level in walker.iter_leaves(raw, vm.hgatp_root):
            if pool.contains(pa, 1):
                violations.append(
                    f"H1: normal VM {vm.name!r} maps GPA {gpa:#x} to "
                    f"secure pool PA {pa:#x}"
                )
    return violations


def check_postconditions(machine) -> list:
    """Full post-fault sweep; returns a list of violation strings."""
    violations = list(check_invariants(machine))
    violations.extend(_check_channel_ownership(machine))
    violations.extend(_check_hypervisor_roots(machine))
    return violations
