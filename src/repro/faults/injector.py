"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live machine.

Hooks the same seams the tracer does -- non-invasive method wrapping
with an ``_unhook`` list, attachable to any built machine without a
rebuild -- and perturbs them when their seam counter reaches a planned
event's trigger:

- ``enter`` (``WorldSwitch.enter_cvm`` with a pending exit context):
  overwrite a shared-vCPU field *before* Check-after-Load reads it;
- ``notify`` (``ChannelManager.notify``): drop or duplicate the doorbell
  wakeup, clear the injected VSEI, flip window bytes, poison a length
  prefix, tear a ring counter;
- ``expand`` (``Hypervisor.on_pool_expand_request``): donate nothing, or
  a single block instead of the configured chunk;
- ``timer`` (``Machine.check_timer``): inject a spurious timer
  exit/entry cycle.

After every injected event the injector runs
:func:`~repro.faults.invariants.check_postconditions` at the next point
where the machine's world state is consistent (immediately for most
seams; at the following CVM exit for a successful corrupted entry) and
accumulates any violations.  Injection uses **no randomness**: every
parameter was drawn at plan time, preserving seed determinism.
"""

from __future__ import annotations

from repro.faults.invariants import check_postconditions
from repro.faults.plan import FaultPlan
from repro.hyp.vm import VmKind
from repro.ipc.ring import HEADER_SIZE
from repro.sm.channel import DOORBELL_IRQ_BIT, ChannelState
from repro.sm.secmem import SECURE_BLOCK_SIZE

#: The value a poisoned length prefix advertises (absurd but in-range
#: for a 64-bit read -- the consumer must clamp, not copy).
POISON_LENGTH = 0x00FF_FFFF_FFFF


class FaultInjector:
    """Installs a plan's hooks; records injections and violations."""

    def __init__(self, machine, plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        #: One dict per fault actually injected (site, seam occurrence,
        #: ledger cycle, params) -- the campaign's evidence trail.
        self.applied: list[dict] = []
        #: Invariant violations observed by any post-condition sweep.
        self.violations: list[str] = []
        self._counters = {"enter": 0, "notify": 0, "expand": 0, "timer": 0}
        self._events = {
            seam: plan.for_seam(seam)
            for seam in ("enter", "notify", "expand", "timer")
        }
        #: Sites whose post-check is deferred to the next safe point
        #: (the following CVM exit).
        self._deferred_checks: list[str] = []
        self._unhook: list = []
        self._attach()

    # -- bookkeeping -------------------------------------------------------

    def _due(self, seam: str) -> list:
        """Advance the seam counter; events firing at this occurrence."""
        self._counters[seam] += 1
        occurrence = self._counters[seam]
        return [e for e in self._events[seam] if e.at == occurrence]

    def _record(self, event, **detail) -> None:
        self.applied.append(
            {
                "site": event.site,
                "at": event.at,
                "cycle": self.machine.ledger.total,
                "params": event.params,
                **detail,
            }
        )

    def _postcheck(self, site: str) -> None:
        """Immediate invariant sweep, attributed to ``site``."""
        for problem in check_postconditions(self.machine):
            self.violations.append(f"after {site}: {problem}")

    # -- channel helpers ---------------------------------------------------

    def _live_channel(self):
        """The lowest-id non-closed channel, or None."""
        manager = self.machine.monitor.channels
        for channel_id in sorted(manager.channels):
            channel = manager.channels[channel_id]
            if channel.state is not ChannelState.CLOSED:
                return channel
        return None

    def _ring_geometry(self, channel, ring_index: int):
        """(base_pa, capacity) of one ring half of the channel window."""
        half = channel.window_size // 2
        base = channel.window_pa + ring_index * half
        return base, half - HEADER_SIZE

    # -- perturbations (notify seam) ---------------------------------------

    def _flip_window_byte(self, event) -> None:
        channel = self._live_channel()
        if channel is None:
            return
        ring_index, frac, mask = event.params
        base, capacity = self._ring_geometry(channel, ring_index)
        offset = HEADER_SIZE + (frac * capacity) // 4096
        addr = base + min(offset, channel.window_size // 2 - 1)
        dram = self.machine.dram
        dram.write(addr, bytes([dram.read(addr, 1)[0] ^ mask]))
        self._record(event, addr=addr)

    def _poison_length_prefix(self, event) -> None:
        channel = self._live_channel()
        if channel is None:
            return
        (ring_index,) = event.params
        base, capacity = self._ring_geometry(channel, ring_index)
        dram = self.machine.dram
        cons = dram.read_u64(base + 8)
        pos = cons % capacity
        if pos + 8 > capacity:
            return  # prefix would wrap; skip rather than half-poison
        dram.write_u64(base + HEADER_SIZE + pos, POISON_LENGTH)
        self._record(event, ring=ring_index)

    def _tear_ring_counter(self, event) -> None:
        channel = self._live_channel()
        if channel is None:
            return
        ring_index, delta = event.params
        base, _capacity = self._ring_geometry(channel, ring_index)
        dram = self.machine.dram
        prod = dram.read_u64(base)
        # A torn 64-bit store: only the low word of (prod + delta) lands.
        torn = (prod & ~0xFFFF_FFFF) | ((prod + delta) & 0xFFFF_FFFF)
        dram.write_u64(base, torn)
        self._record(event, before=prod, after=torn)

    # -- hooks -------------------------------------------------------------

    def _attach(self) -> None:
        machine = self.machine
        ws = machine.monitor.world_switch
        manager = machine.monitor.channels
        hypervisor = machine.hypervisor

        # --- enter seam: corrupt shared-vCPU fields pre-validation -------
        original_enter = ws.enter_cvm

        def faulted_enter(hart, cvm, vcpu):
            if vcpu.exit_context is None:
                return original_enter(hart, cvm, vcpu)
            due = self._due("enter")
            for event in due:
                if event.site == "vcpu_corrupt":
                    field, value = event.params
                    cvm.shared_vcpus[vcpu.vcpu_id].sm_write(field, value)
                    self._record(event, cvm=cvm.cvm_id, field=field)
                    # The machine is consistent right now (pool closed,
                    # pre-entry); a successful entry ends inside the
                    # guest, so the post-entry sweep waits for the exit.
                    self._postcheck(event.site)
                    self._deferred_checks.append(event.site)
            try:
                return original_enter(hart, cvm, vcpu)
            except Exception:
                if due:
                    # Entry refused: the world state is back to pre-entry
                    # (pool closed) and may be swept immediately.
                    self._deferred_checks.clear()
                    self._postcheck("vcpu_corrupt(refused)")
                raise

        ws.enter_cvm = faulted_enter
        self._unhook.append(lambda: setattr(ws, "enter_cvm", original_enter))

        # --- exit flushes deferred post-checks ---------------------------
        original_exit = ws.exit_to_normal

        def checked_exit(hart, cvm, vcpu, exit_info):
            result = original_exit(hart, cvm, vcpu, exit_info)
            if self._deferred_checks:
                pending, self._deferred_checks = self._deferred_checks, []
                for site in pending:
                    self._postcheck(site)
            return result

        ws.exit_to_normal = checked_exit
        self._unhook.append(lambda: setattr(ws, "exit_to_normal", original_exit))

        # --- notify seam: doorbell / VSEI / window / ring faults ----------
        original_notify = manager.notify

        def faulted_notify(cvm, channel_id):
            due = self._due("notify")
            drop = any(e.site == "doorbell_drop" for e in due)
            saved_wake = hypervisor.on_channel_doorbell
            if drop:
                hypervisor.on_channel_doorbell = lambda cvm_id: None
            try:
                result = original_notify(cvm, channel_id)
            finally:
                if drop:
                    hypervisor.on_channel_doorbell = saved_wake
            peer_id = None
            channel = manager.channels.get(channel_id)
            if channel is not None and len(channel.gpas) == 2:
                peer_id = channel.other_end(cvm.cvm_id)
            for event in due:
                if event.site == "doorbell_drop":
                    self._record(event, channel=channel_id)
                elif event.site == "doorbell_dup" and peer_id is not None:
                    hypervisor.on_channel_doorbell(peer_id)
                    self._record(event, channel=channel_id, peer=peer_id)
                elif event.site == "vsei_drop" and peer_id is not None:
                    peer = self.machine.monitor.cvms[peer_id]
                    peer.vcpus[0].csrs["hvip"] &= ~DOORBELL_IRQ_BIT
                    self._record(event, channel=channel_id, peer=peer_id)
                elif event.site == "window_flip":
                    self._flip_window_byte(event)
                elif event.site == "window_length":
                    self._poison_length_prefix(event)
                elif event.site == "ring_tear":
                    self._tear_ring_counter(event)
            if due:
                self._postcheck("/".join(e.site for e in due))
            return result

        manager.notify = faulted_notify
        self._unhook.append(lambda: setattr(manager, "notify", original_notify))

        # --- expand seam: failed / short stage-3 donations ----------------
        original_expand = hypervisor.on_pool_expand_request

        def faulted_expand(monitor):
            due = self._due("expand")
            fail = any(e.site == "expand_fail" for e in due)
            short = any(e.site == "expand_short" for e in due)
            if fail:
                for event in due:
                    if event.site == "expand_fail":
                        self._record(event)
                self._postcheck("expand_fail")
                return  # the hypervisor "forgets" to donate anything
            if short:
                saved_chunk = hypervisor.expand_chunk
                hypervisor.expand_chunk = SECURE_BLOCK_SIZE
                try:
                    original_expand(monitor)
                finally:
                    hypervisor.expand_chunk = saved_chunk
                for event in due:
                    if event.site == "expand_short":
                        self._record(event)
                self._postcheck("expand_short")
                return
            original_expand(monitor)

        hypervisor.on_pool_expand_request = faulted_expand
        self._unhook.append(
            lambda: setattr(hypervisor, "on_pool_expand_request", original_expand)
        )

        # --- timer seam: spurious timer exits -----------------------------
        original_timer = machine.check_timer

        def faulted_timer(session):
            due = self._due("timer")
            spurious = [e for e in due if e.site == "timer_spurious"]
            if spurious and session.kind is VmKind.CONFIDENTIAL and session.active:
                vcpu = session.cvm.vcpu(session.vcpu_id)
                ws.exit_to_normal(
                    session.hart, session.cvm, vcpu,
                    {"kind": "timer", "cause": 7},
                )
                hypervisor.sched_tick()
                ws.enter_cvm(session.hart, session.cvm, vcpu)
                machine._collect_injected_irqs(session)
                for event in spurious:
                    self._record(event, cvm=session.cvm.cvm_id)
                self._postcheck("timer_spurious")
            return original_timer(session)

        machine.check_timer = faulted_timer
        self._unhook.append(lambda: setattr(machine, "check_timer", original_timer))

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Remove every hook (records stay available)."""
        for undo in self._unhook:
            undo()
        self._unhook.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False
