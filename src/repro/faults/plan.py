"""Fault plans: what to inject, where, and when -- fixed by a seed.

The determinism contract: **all** randomness is consumed here, at plan
build time, by a private ``random.Random(seed)`` instance.  The injector
applies the plan using only the pre-drawn parameters, so a given seed
produces the identical injection sequence on every run -- which is what
makes ``python -m repro faults --seed K`` a faithful replay of any
failure the campaign finds.

Each :class:`FaultEvent` names a *site* (the fault class), the 1-based
*occurrence* of its underlying seam at which it fires, and a tuple of
site-specific parameters.  Several sites share one seam (every channel
fault triggers on the Nth doorbell ECALL, both expansion faults on the
Nth pool-expand request); the injector keys its occurrence counters by
seam, so events on sibling sites compose predictably.
"""

from __future__ import annotations

import dataclasses
import random

from repro.sm.vcpu import SHARED_VCPU_FIELDS

#: Every fault class the machine-level injector implements.
FAULT_SITES = (
    "vcpu_corrupt",     # overwrite a shared-vCPU field before Check-after-Load
    "doorbell_drop",    # swallow the hypervisor-side doorbell wakeup
    "doorbell_dup",     # deliver the doorbell wakeup twice
    "vsei_drop",        # clear the injected VSEI after the SM raised it
    "window_flip",      # flip one byte inside the channel window
    "window_length",    # poison a message length prefix in the ring
    "ring_tear",        # torn (half-word) update of a ring prod counter
    "expand_fail",      # pool-expansion request donates nothing
    "expand_short",     # pool-expansion donates a single block only
    "timer_spurious",   # extra timer exit/entry cycle the guest never asked for
)

#: Fault classes the fleet orchestrator's untrusted blob ferry applies on
#: the Nth migration (the ``migration`` seam).  The machine-level
#: :class:`~repro.faults.injector.FaultInjector` hooks no migration seam
#: -- a migration crosses two machines -- so these events only fire when
#: a migration-aware driver (``repro.fleet``) consumes them.
MIGRATION_SITES = (
    "mig_blob_flip",      # ferry flips one ciphertext byte in transit
    "mig_blob_truncate",  # ferry truncates the blob mid-flight
    "mig_stale_key",      # destination derives the key from a stale nonce
    "mig_replay",         # ferry re-delivers an already-imported blob
    "mig_impostor",       # ferry swaps in a validly-sealed decoy CVM's blob
)

#: Every drawable site, machine seams first (order is part of the seeded
#: sampling contract for seam-scoped plans).
ALL_SITES = FAULT_SITES + MIGRATION_SITES

#: Seam each site's trigger counter is keyed on (see module docstring).
SITE_SEAMS = {
    "vcpu_corrupt": "enter",
    "doorbell_drop": "notify",
    "doorbell_dup": "notify",
    "vsei_drop": "notify",
    "window_flip": "notify",
    "window_length": "notify",
    "ring_tear": "notify",
    "expand_fail": "expand",
    "expand_short": "expand",
    "timer_spurious": "timer",
    "mig_blob_flip": "migration",
    "mig_blob_truncate": "migration",
    "mig_stale_key": "migration",
    "mig_replay": "migration",
    "mig_impostor": "migration",
}

#: Friendly seam vocabulary -> canonical seam names.  Campaign callers
#: say ``seams=["migration", "channel"]``; the plan resolves the alias to
#: whatever internal seam counters implement it.
SEAM_ALIASES = {
    "enter": ("enter",),
    "notify": ("notify",),
    "expand": ("expand",),
    "timer": ("timer",),
    "migration": ("migration",),
    "channel": ("notify",),
    "lifecycle": ("enter", "expand", "timer"),
}


def resolve_seams(seams) -> tuple:
    """Normalize a seam-name iterable through :data:`SEAM_ALIASES`.

    Returns the canonical seam tuple (deduplicated, in first-mention
    order); raises ``ValueError`` for an unknown name so a typo'd
    ``--seams`` dies loudly instead of silently drawing no events.
    """
    canonical: list = []
    for name in seams:
        expansion = SEAM_ALIASES.get(name)
        if expansion is None:
            raise ValueError(
                f"unknown fault seam {name!r}; known: {sorted(SEAM_ALIASES)}"
            )
        for seam in expansion:
            if seam not in canonical:
                canonical.append(seam)
    return tuple(canonical)


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One planned injection: fire ``site`` at seam occurrence ``at``."""

    site: str
    at: int
    params: tuple = ()

    def describe(self) -> str:
        """Compact human-readable form for reports and logs."""
        inner = f"@{self.at}"
        if self.params:
            inner += " " + ",".join(repr(p) for p in self.params)
        return f"{self.site}[{inner}]"


def _draw_event(rng: random.Random, site: str) -> FaultEvent:
    """Draw one event's trigger point and parameters for ``site``."""
    if site == "vcpu_corrupt":
        field = rng.choice(tuple(SHARED_VCPU_FIELDS))
        value = rng.getrandbits(64)
        return FaultEvent(site, rng.randint(1, 40), (field, value))
    if site in ("doorbell_drop", "doorbell_dup", "vsei_drop"):
        return FaultEvent(site, rng.randint(1, 16))
    if site == "window_flip":
        # (ring half, position as a fraction of 4096, xor mask)
        return FaultEvent(
            site,
            rng.randint(1, 16),
            (rng.randint(0, 1), rng.randint(0, 4095), rng.randint(1, 255)),
        )
    if site == "window_length":
        return FaultEvent(site, rng.randint(1, 16), (rng.randint(0, 1),))
    if site == "ring_tear":
        return FaultEvent(
            site,
            rng.randint(1, 16),
            (rng.randint(0, 1), rng.randint(1, 1 << 20)),
        )
    if site in ("expand_fail", "expand_short"):
        return FaultEvent(site, rng.randint(1, 3))
    if site == "timer_spurious":
        return FaultEvent(site, rng.randint(2, 24))
    if site == "mig_blob_flip":
        # (position as a fraction of 4096, xor mask) -- resolved against
        # the actual blob length at apply time.
        return FaultEvent(site, rng.randint(1, 8),
                          (rng.randint(0, 4095), rng.randint(1, 255)))
    if site == "mig_blob_truncate":
        # Keep this fraction of the blob (always cuts at least the MAC).
        return FaultEvent(site, rng.randint(1, 8), (rng.randint(0, 4000),))
    if site in ("mig_stale_key", "mig_replay", "mig_impostor"):
        return FaultEvent(site, rng.randint(1, 8))
    raise ValueError(f"unknown fault site: {site}")


class FaultPlan:
    """An ordered set of :class:`FaultEvent` derived from one seed."""

    def __init__(self, seed: int, events: tuple):
        self.seed = seed
        self.events = tuple(events)

    @classmethod
    def from_seed(cls, seed: int, min_events: int = 3,
                  max_events: int = 6, seams=None) -> "FaultPlan":
        """Build the plan for ``seed`` (the only randomness sink).

        Draws between ``min_events`` and ``max_events`` faults over
        distinct sites, so every campaign seed stresses a different
        cross-section of the fault space while single-site coverage is
        guaranteed across a modest number of seeds.

        ``seams`` restricts the drawable sites to the named seam subset
        (alias-friendly: ``["migration", "channel"]``); ``None`` keeps
        the historical machine-seam pool, so existing seeds replay the
        exact plans they always produced.
        """
        rng = random.Random(seed)
        if seams is None:
            pool = FAULT_SITES
        else:
            wanted = set(resolve_seams(seams))
            pool = tuple(s for s in ALL_SITES if SITE_SEAMS[s] in wanted)
            if not pool:
                raise ValueError(f"no fault sites on seams {tuple(seams)!r}")
        count = rng.randint(min_events, max_events)
        sites = rng.sample(pool, min(count, len(pool)))
        events = tuple(_draw_event(rng, site) for site in sites)
        return cls(seed, events)

    @classmethod
    def single(cls, site: str, at: int = 1, params: tuple = (),
               seed: int = -1) -> "FaultPlan":
        """A one-event plan -- the unit tests' forced-injection helper."""
        return cls(seed, (FaultEvent(site, at, tuple(params)),))

    def for_seam(self, seam: str) -> list:
        """Events whose site triggers on ``seam``, in plan order."""
        return [e for e in self.events if SITE_SEAMS[e.site] == seam]

    def describe(self) -> str:
        """One-line summary of the whole plan."""
        body = " ".join(event.describe() for event in self.events)
        return f"seed={self.seed}: {body}"

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
