"""Machine configuration variants: knobs change behaviour coherently."""

import pytest

from repro import Machine, MachineConfig
from repro.errors import ConfigurationError


class TestTimerPeriod:
    def test_shorter_ticks_mean_more_switches(self):
        counts = {}
        for period in (250_000, 1_000_000):
            machine = Machine(MachineConfig(timer_tick_cycles=period))
            session = machine.launch_confidential_vm(image=b"x")
            machine.run(session, lambda ctx: ctx.compute(4_000_000))
            counts[period] = session.cvm.exit_reasons.get("timer", 0)
        assert counts[250_000] > counts[1_000_000] * 2

    def test_shorter_ticks_raise_cvm_overhead(self):
        """The overhead driver is switch frequency: shorter slices mean
        more per-switch cost per unit of work (sub-linear in the period
        because fewer hot pages get re-touched between closer flushes)."""
        from repro.hyp.devices import ConsoleDevice
        from repro.workloads.cpu import CONSOLE_GPA, cpu_bound_workload
        from repro.workloads.profiles import RV8_PROFILES

        profile = RV8_PROFILES["qsort"]

        def overhead(period):
            cycles = {}
            for kind in ("normal", "cvm"):
                machine = Machine(MachineConfig(timer_tick_cycles=period))
                machine.hypervisor.devices.add(ConsoleDevice(CONSOLE_GPA))
                session = (
                    machine.launch_confidential_vm(image=b"x")
                    if kind == "cvm"
                    else machine.launch_normal_vm()
                )
                run = machine.run(session, cpu_bound_workload(profile, 10_000_000))
                cycles[kind] = run["workload_result"]["cycles"]
            return (cycles["cvm"] - cycles["normal"]) / cycles["normal"]

        assert overhead(250_000) > overhead(1_000_000) * 1.4


class TestPlatformShape:
    def test_hart_count_respected(self):
        machine = Machine(MachineConfig(hart_count=2))
        assert len(machine.harts) == 2
        assert machine.clint.hart_count == 2

    def test_dram_size_bounds_everything(self):
        machine = Machine(MachineConfig(dram_size=256 << 20, initial_pool_bytes=8 << 20))
        assert machine.dram.size == 256 << 20
        session = machine.launch_confidential_vm(image=b"small" * 100)
        machine.run(session, lambda ctx: ctx.compute(1000))

    def test_tlb_capacity_plumbed(self):
        machine = Machine(MachineConfig(tlb_capacity=16))
        assert machine.translator.tlb.capacity == 16

    def test_zero_initial_pool_defers_to_first_expansion(self):
        machine = Machine(MachineConfig(initial_pool_bytes=0))
        assert machine.monitor.pool.regions == []
        # The first CVM creation needs metadata -> stage-3-style expansion
        # must happen via the connected hypervisor.
        from repro.sm.alloc import PoolExhausted

        with pytest.raises(PoolExhausted):
            machine.monitor.ecall_create_cvm()

    def test_config_is_frozen(self):
        import dataclasses

        config = MachineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.hart_count = 8


class TestCostOverrides:
    def test_custom_cost_table_changes_measurements(self):
        import dataclasses

        from repro.cycles import DEFAULT_COSTS

        slow = dataclasses.replace(DEFAULT_COSTS, trap_to_m=10_000)
        machine = Machine(MachineConfig(costs=slow))
        session = machine.launch_confidential_vm(image=b"x")
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        with machine.ledger.span() as span:
            ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        assert span.cycles > 10_000
