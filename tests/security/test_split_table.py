"""Split-page-table attacks (paper IV-E).

The hypervisor legitimately owns the shared subtree; these tests check
that ownership of the *shared* half never becomes a lever over the
*private* half or the pool.
"""

import pytest

from repro.errors import SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"PRIVATE!" * 512)
    machine.hart.mode = PrivilegeMode.HS
    return machine, session


def _pool_page(machine):
    return machine.monitor.pool.regions[0][0]


class TestHypervisorSharedSubtreePowers:
    def test_hyp_can_edit_shared_subtree(self, env):
        """The legitimate power: remapping shared pages with no SM call."""
        machine, session = env
        handle = session.handle
        subtree = next(iter(handle.shared_subtrees.values()))
        # Remap shared page 0 to a fresh frame, directly.
        new_frame = machine.host_allocator.alloc()
        machine.dram.zero_range(new_frame, PAGE_SIZE)
        level1 = (machine.bus.cpu_read_u64(machine.hart, subtree) >> 10) << 12
        sm_calls_before = machine.ledger.by_category()
        machine.bus.cpu_write_u64(machine.hart, level1, (new_frame >> 12) << 10 | 0b10111 | 0x80)

        class Raw:
            def read_u64(self, a):
                return machine.dram.read_u64(a)

        result = Sv39x4().walk(Raw(), session.cvm.hgatp_root, session.layout.shared_base)
        assert result.pa == new_frame  # visible through the CVM's root too

    def test_hyp_cannot_edit_private_subtree(self, env):
        machine, session = env
        root = session.cvm.hgatp_root
        private_index = session.layout.dram_base >> 30
        slot = root + 8 * private_index
        with pytest.raises(TrapRaised):
            machine.bus.cpu_write_u64(machine.hart, slot, 0)

    def test_aliasing_pool_into_shared_region_is_refused_at_walk(self, env):
        """Hyp remaps a shared GPA onto the pool; the guest access fails."""
        machine, session = env
        handle = session.handle
        subtree = next(iter(handle.shared_subtrees.values()))
        level1 = (machine.bus.cpu_read_u64(machine.hart, subtree) >> 10) << 12
        evil_pte = (_pool_page(machine) >> 12) << 10 | 0b10111 | 0x80
        machine.bus.cpu_write_u64(machine.hart, level1, evil_pte)
        machine.translator.tlb.flush_all()

        def workload(ctx):
            return ctx.load(session.layout.shared_base)

        with pytest.raises(SecurityViolation):
            machine.run(session, workload)

    def test_hyp_access_to_pool_through_its_own_view_faults(self, env):
        """Even with the alias installed, the hypervisor's own loads of
        the pool still PMP-fault: its root only reaches normal memory."""
        machine, session = env
        with pytest.raises(TrapRaised):
            machine.bus.cpu_read(machine.hart, _pool_page(machine), 8)


class TestSmLinkValidation:
    def test_relink_requires_normal_memory_table(self, env):
        machine, session = env
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_link_shared_subtree(
                session.cvm.cvm_id, 300, _pool_page(machine)
            )

    def test_link_cannot_cover_private_half(self, env):
        machine, session = env
        table = machine.host_allocator.alloc()
        machine.dram.zero_range(table, PAGE_SIZE)
        private_index = session.layout.dram_base >> 30
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_link_shared_subtree(
                session.cvm.cvm_id, private_index, table
            )

    def test_shared_window_io_still_works_after_attack_checks(self, env):
        """The defences must not break the legitimate virtio path."""
        machine, session = env
        machine.attach_virtio_block(session)

        def workload(ctx):
            blk = ctx.blk_driver()
            blk.write(0, b"legit" + bytes(507))
            return blk.read(0, 512)

        result = machine.run(session, workload)
        assert result["workload_result"][:5] == b"legit"
