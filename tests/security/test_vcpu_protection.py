"""vCPU state confidentiality and TOCTOU attacks (paper IV-B)."""

import pytest

from repro.errors import SecurityViolation, TrapRaised
from repro.hyp.devices import ConsoleDevice
from repro.isa.privilege import PrivilegeMode
from repro.sm.vcpu import SHARED_VCPU_FIELDS


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"guest" * 1000)
    return machine, session


class TestRegisterConfidentiality:
    def test_hypervisor_sees_only_exit_specific_registers(self, env):
        """After a timer exit, the shared page holds no guest GPR values."""
        machine, session = env
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        # The guest computes with secret values in registers.
        secret = 0x5EC12E7_0000_1234
        machine.hart.write_gpr("a5", secret)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        # The hypervisor reads every shared-vCPU field it can see.
        shared = cvm.shared_vcpus[0]
        visible = {
            field: shared.hyp_read(machine.hart, field) for field in SHARED_VCPU_FIELDS
        }
        assert secret not in visible.values()
        # And the hart's own registers were scrubbed... the secure copy
        # holds the value, inside SM memory.
        assert vcpu.gprs["a5"] == secret

    def test_mmio_exit_exposes_only_the_trapped_access(self, env):
        machine, session = env
        console = ConsoleDevice(0x1000_0000)
        machine.hypervisor.devices.add(console)

        def workload(ctx):
            ctx.compute(100)
            machine.hart.write_gpr("s4", 0xDEAD_0001)  # a guest secret
            ctx.mmio_write(0x1000_0000, 0x41)  # exposes only the store value

        machine.run(session, workload)
        # The device (host side) legitimately saw the store operand...
        assert bytes(console.output) == b"\x41"
        # ...but nothing else ever crossed, and the final exit scrubbed
        # even that slot from the shared page.
        shared = session.cvm.shared_vcpus[0]
        machine.hart.mode = PrivilegeMode.HS
        visible = {
            field: shared.hyp_read(machine.hart, field) for field in SHARED_VCPU_FIELDS
        }
        assert 0xDEAD_0001 not in visible.values()
        assert visible["gpr_value"] == 0  # scrubbed after the halt exit

    def test_secure_vcpu_lives_outside_hypervisor_reach(self, env):
        """The secure vCPU is an SM data structure, not host memory.

        In the simulation it is a Python object inside the monitor; the
        architectural property to check is that *no* hypervisor-readable
        memory holds the state: the shared page is the only exchange
        area, and its size bounds what can ever cross.
        """
        machine, session = env
        assert len(SHARED_VCPU_FIELDS) * 8 == 72  # nine 64-bit slots, fixed


class TestToctouAttacks:
    def _mmio_exit(self, machine, session):
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(
            machine.hart, cvm, vcpu,
            {"kind": "mmio_load", "cause": 21, "htval": 0x1000_0000,
             "htinst": 0x503, "gpr_index": 10, "gpr_value": 0},
        )
        return cvm, vcpu, cvm.shared_vcpus[0], ws

    def test_gpr_redirect_to_stack_pointer_blocked(self, env):
        machine, session = env
        cvm, vcpu, shared, ws = self._mmio_exit(machine, session)
        shared.hyp_write(machine.hart, "gpr_index", 2)  # sp
        shared.hyp_write(machine.hart, "gpr_value", 0x6666_6666)
        shared.hyp_write(machine.hart, "sepc_advance", 4)
        with pytest.raises(SecurityViolation):
            ws.enter_cvm(machine.hart, cvm, vcpu)

    def test_pc_hijack_via_sepc_advance_blocked(self, env):
        machine, session = env
        cvm, vcpu, shared, ws = self._mmio_exit(machine, session)
        shared.hyp_write(machine.hart, "gpr_index", 10)
        shared.hyp_write(machine.hart, "sepc_advance", 0x1000)  # jump!
        with pytest.raises(SecurityViolation):
            ws.enter_cvm(machine.hart, cvm, vcpu)

    def test_machine_interrupt_injection_blocked(self, env):
        machine, session = env
        cvm, vcpu, shared, ws = self._mmio_exit(machine, session)
        shared.hyp_write(machine.hart, "gpr_index", 10)
        shared.hyp_write(machine.hart, "sepc_advance", 4)
        shared.hyp_write(machine.hart, "pending_irq", 1 << 3)  # MSI
        with pytest.raises(SecurityViolation):
            ws.enter_cvm(machine.hart, cvm, vcpu)

    def test_hypervisor_cannot_forge_guest_csrs(self, env):
        """Scribbling over the whole shared page corrupts nothing secure."""
        machine, session = env
        cvm, vcpu, shared, ws = self._mmio_exit(machine, session)
        saved_csrs = dict(vcpu.csrs)
        machine.bus.cpu_write(
            machine.hart, shared.base_pa, b"\xff" * (len(SHARED_VCPU_FIELDS) * 8)
        )
        with pytest.raises(SecurityViolation):
            ws.enter_cvm(machine.hart, cvm, vcpu)
        assert vcpu.csrs == saved_csrs  # secure copy untouched

    def test_valid_reply_still_accepted_after_attack_attempt(self, env):
        """A refused resume doesn't wedge the vCPU state machine."""
        machine, session = env
        cvm, vcpu, shared, ws = self._mmio_exit(machine, session)
        shared.hyp_write(machine.hart, "gpr_index", 7)
        with pytest.raises(SecurityViolation):
            ws.enter_cvm(machine.hart, cvm, vcpu)
        shared.hyp_write(machine.hart, "gpr_index", 10)
        shared.hyp_write(machine.hart, "gpr_value", 5)
        shared.hyp_write(machine.hart, "sepc_advance", 4)
        reply = ws.enter_cvm(machine.hart, cvm, vcpu)
        assert reply["gpr_value"] == 5


class TestDelegationSecurity:
    def test_cvm_traps_never_reach_hypervisor(self, env):
        """With CVM-mode delegation live, no exception routes to HS."""
        from repro.isa.traps import ExceptionCause, route_exception

        machine, session = env
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        machine.monitor.world_switch.enter_cvm(machine.hart, cvm, vcpu)
        for cause in ExceptionCause:
            for mode in (PrivilegeMode.VS, PrivilegeMode.VU):
                dest = route_exception(
                    cause, mode, machine.hart.medeleg, machine.hart.hedeleg
                )
                assert dest is not PrivilegeMode.HS, (cause, mode)

    def test_delegation_restored_for_normal_mode(self, env):
        from repro.isa.traps import ExceptionCause, route_exception

        machine, session = env
        cvm, vcpu = session.cvm, session.cvm.vcpu(0)
        ws = machine.monitor.world_switch
        ws.enter_cvm(machine.hart, cvm, vcpu)
        ws.exit_to_normal(machine.hart, cvm, vcpu, {"kind": "timer", "cause": 7})
        dest = route_exception(
            ExceptionCause.LOAD_GUEST_PAGE_FAULT, PrivilegeMode.VS,
            machine.hart.medeleg, machine.hart.hedeleg,
        )
        assert dest is PrivilegeMode.HS  # KVM serves normal VMs again
