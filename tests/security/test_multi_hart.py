"""Multi-hart security: PMP world state is per-hart.

The PMP toggle is the crux of ZION's isolation; with multiple harts, the
pool being open on the hart *running the CVM* must not open anything for
the other harts, where the hypervisor keeps executing concurrently.
"""

import pytest

from repro.errors import TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import AccessType


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"smp-victim" * 100)
    session.hart = machine.harts[1]  # the CVM runs on hart 1
    return machine, session


def test_pool_open_only_on_the_cvm_hart(env):
    machine, session = env
    vcpu = session.cvm.vcpu(0)
    machine.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
    pool_base = machine.monitor.pool.regions[0][0]
    # Hart 1 (running the CVM) may access the pool...
    assert machine.harts[1].pmp.check(pool_base, 8, AccessType.LOAD, PrivilegeMode.VS)
    # ...every other hart (where the host runs) may not.
    for hart in (machine.harts[0], machine.harts[2], machine.harts[3]):
        assert not hart.pmp.check(pool_base, 8, AccessType.LOAD, PrivilegeMode.HS)
        assert not hart.pmp.check(pool_base, 8, AccessType.STORE, PrivilegeMode.HS)


def test_cross_hart_read_faults_while_cvm_runs(env):
    machine, session = env
    vcpu = session.cvm.vcpu(0)
    machine.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
    machine.harts[0].mode = PrivilegeMode.HS  # the host on hart 0
    with pytest.raises(TrapRaised):
        machine.bus.cpu_read(machine.harts[0], machine.monitor.pool.regions[0][0], 8)


def test_workload_on_secondary_hart(env):
    machine, session = env
    base = session.layout.dram_base + (8 << 20)

    def workload(ctx):
        ctx.store(base, 0x1234)
        return ctx.load(base)

    result = machine.run(session, workload)
    assert result["workload_result"] == 0x1234
    # The run left hart 1 back in Normal-mode configuration...
    assert not machine.pmp_controller.pool_is_open(machine.harts[1])
    # ...and never touched hart 0's delegation or PMP state.
    assert not machine.pmp_controller.pool_is_open(machine.harts[0])


def test_two_cvms_on_two_harts_alternating(machine):
    a = machine.launch_confidential_vm(image=b"a" * 4096)
    b = machine.launch_confidential_vm(image=b"b" * 4096)
    a.hart = machine.harts[1]
    b.hart = machine.harts[2]
    base = a.layout.dram_base + (8 << 20)
    machine.run(a, lambda ctx: ctx.store(base, 0xA))
    machine.run(b, lambda ctx: ctx.store(base, 0xB))
    assert machine.run(a, lambda ctx: ctx.load(base))["workload_result"] == 0xA
    assert machine.run(b, lambda ctx: ctx.load(base))["workload_result"] == 0xB


def test_delegation_swap_is_per_hart(env):
    """CVM delegation on hart 1 never bleeds into hart 0's CSRs."""
    from repro.isa.traps import ExceptionCause

    machine, session = env
    vcpu = session.cvm.vcpu(0)
    machine.monitor.world_switch.enter_cvm(session.hart, session.cvm, vcpu)
    assert ExceptionCause.LOAD_GUEST_PAGE_FAULT not in machine.harts[1].medeleg
    assert ExceptionCause.LOAD_GUEST_PAGE_FAULT in machine.harts[0].medeleg
