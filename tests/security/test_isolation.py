"""Memory-isolation attacks from the untrusted host (paper IV-C).

Every test here plays the adversary the threat model names: a fully
compromised hypervisor (and its devices).  The attacks are executed
through the same PMP/IOPMP-checked paths real software would use, and
must fail with the architecturally-correct fault.
"""

import pytest

from repro.errors import SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE


@pytest.fixture
def env(machine):
    session = machine.launch_confidential_vm(image=b"TOP-SECRET-GUEST" * 256)
    # The hypervisor is "running": Normal mode, pool closed.
    machine.hart.mode = PrivilegeMode.HS
    return machine, session


def _secret_pa(machine, session):
    """Host-physical address of the CVM's first image page."""

    class Raw:
        def read_u64(self, a):
            return machine.dram.read_u64(a)

    return Sv39x4().walk(Raw(), session.cvm.hgatp_root, session.layout.dram_base).pa


class TestHypervisorCannotTouchSecureMemory:
    def test_read_of_cvm_data_faults(self, env):
        machine, session = env
        pa = _secret_pa(machine, session)
        with pytest.raises(TrapRaised) as excinfo:
            machine.bus.cpu_read(machine.hart, pa, 16)
        assert excinfo.value.cause == ExceptionCause.LOAD_ACCESS_FAULT

    def test_write_of_cvm_data_faults(self, env):
        machine, session = env
        pa = _secret_pa(machine, session)
        with pytest.raises(TrapRaised) as excinfo:
            machine.bus.cpu_write(machine.hart, pa, b"corrupted")
        assert excinfo.value.cause == ExceptionCause.STORE_ACCESS_FAULT

    def test_fetch_from_pool_faults(self, env):
        machine, session = env
        pa = _secret_pa(machine, session)
        with pytest.raises(TrapRaised):
            machine.bus.cpu_fetch_check(machine.hart, pa)

    def test_page_table_tampering_faults(self, env):
        """Controlled-channel defence: the CVM's tables are in the pool."""
        machine, session = env
        root = session.cvm.hgatp_root
        assert machine.monitor.pool.contains(root, 16 * 1024)
        with pytest.raises(TrapRaised):
            machine.bus.cpu_write_u64(machine.hart, root, 0)
        with pytest.raises(TrapRaised):
            machine.bus.cpu_read_u64(machine.hart, root)  # even reading it

    def test_every_pool_page_inaccessible(self, env):
        machine, session = env
        base, size = machine.monitor.pool.regions[0]
        for offset in range(0, size, size // 8):
            with pytest.raises(TrapRaised):
                machine.bus.cpu_read(machine.hart, base + offset, 8)

    def test_normal_memory_remains_accessible(self, env):
        machine, session = env
        page = machine.host_allocator.alloc()
        machine.bus.cpu_write(machine.hart, page, b"host data")
        assert machine.bus.cpu_read(machine.hart, page, 9) == b"host data"

    def test_pool_open_only_during_cvm_execution(self, env):
        """The window of accessibility is exactly CVM mode."""
        machine, session = env
        pa = _secret_pa(machine, session)
        vcpu = session.cvm.vcpu(0)
        machine.monitor.world_switch.enter_cvm(machine.hart, session.cvm, vcpu)
        # In CVM mode the guest's effective privilege may read its memory.
        assert machine.bus.cpu_read(machine.hart, pa, 10) == b"TOP-SECRET"
        machine.monitor.world_switch.exit_to_normal(
            machine.hart, session.cvm, vcpu, {"kind": "timer", "cause": 7}
        )
        with pytest.raises(TrapRaised):
            machine.bus.cpu_read(machine.hart, pa, 10)


class TestCvmToCvmIsolation:
    def test_stage2_frames_disjoint(self, machine):
        a = machine.launch_confidential_vm(image=b"A" * 8192)
        b = machine.launch_confidential_vm(image=b"B" * 8192)

        class Raw:
            def read_u64(self, addr):
                return machine.dram.read_u64(addr)

        frames = {}
        for session in (a, b):
            frames[session.cvm.cvm_id] = {
                pa for _va, pa, _f, _l in Sv39x4().iter_leaves(
                    Raw(), session.cvm.hgatp_root
                )
            }
        ids = list(frames)
        assert not frames[ids[0]] & frames[ids[1]]

    def test_sm_refuses_cross_cvm_mapping(self, machine):
        a = machine.launch_confidential_vm(image=b"A" * 4096)
        b = machine.launch_confidential_vm(image=b"B" * 4096)

        class Raw:
            def read_u64(self, addr):
                return machine.dram.read_u64(addr)

        b_frame = Sv39x4().walk(Raw(), b.cvm.hgatp_root, b.layout.dram_base).pa
        with pytest.raises(SecurityViolation):
            machine.monitor.split.map_private(
                a.cvm, a.layout.dram_base + (32 << 20), b_frame,
                machine.monitor._alloc_table_page,
            )

    def test_page_tables_not_mapped_into_any_cvm(self, machine):
        """No CVM GPA resolves to any CVM's page-table page."""
        a = machine.launch_confidential_vm(image=b"A" * 16384)
        b = machine.launch_confidential_vm(image=b"B" * 16384)

        class Raw:
            def read_u64(self, addr):
                return machine.dram.read_u64(addr)

        table_pages = set()
        for session in (a, b):
            for table in Sv39x4().iter_tables(Raw(), session.cvm.hgatp_root):
                for offset in range(0, 16 * 1024 if table == session.cvm.hgatp_root else PAGE_SIZE, PAGE_SIZE):
                    table_pages.add(table + offset)
        for session in (a, b):
            for _va, pa, _f, _l in Sv39x4().iter_leaves(Raw(), session.cvm.hgatp_root):
                assert pa not in table_pages

    def test_destroyed_cvm_leaves_nothing_readable(self, machine):
        session = machine.launch_confidential_vm(image=b"EPHEMERAL-SECRET" * 250)
        pa = _secret_pa(machine, session)
        machine.monitor.ecall_destroy(session.cvm.cvm_id)
        # Even the SM's own (M-mode) view sees only zeros now.
        assert machine.dram.read(pa, 16) == bytes(16)


class TestDmaAttacks:
    def test_device_dma_read_of_pool_faults(self, env):
        machine, session = env
        pa = _secret_pa(machine, session)
        with pytest.raises(TrapRaised):
            machine.bus.dma_read(source_id=5, addr=pa, size=64)

    def test_device_dma_write_of_pool_faults(self, env):
        machine, session = env
        pa = _secret_pa(machine, session)
        with pytest.raises(TrapRaised):
            machine.bus.dma_write(source_id=5, addr=pa, data=b"\x00" * 64)

    def test_dma_blocked_even_while_cvm_runs(self, env):
        """PMP opens for the CPU in CVM mode; the IOPMP never opens."""
        machine, session = env
        pa = _secret_pa(machine, session)
        vcpu = session.cvm.vcpu(0)
        machine.monitor.world_switch.enter_cvm(machine.hart, session.cvm, vcpu)
        with pytest.raises(TrapRaised):
            machine.bus.dma_read(source_id=1, addr=pa, size=8)

    def test_dma_to_shared_window_allowed(self, env):
        """virtio must still work: the shared window is normal memory."""
        machine, session = env
        hpa = session.handle.shared_window_base
        machine.bus.dma_write(source_id=1, addr=hpa, data=b"frame")
        assert machine.bus.dma_read(source_id=1, addr=hpa, size=5) == b"frame"

    def test_virtio_descriptor_aimed_at_pool_faults(self, env):
        """A malicious device/hyp pointing a descriptor at secure memory."""
        machine, session = env
        from repro.hyp.virtio import Descriptor, Virtqueue

        device = machine.attach_virtio_block(session)
        device.dma_translate = lambda gpa: _secret_pa(machine, session)  # evil
        queue = Virtqueue(ring_gpa=session.layout.shared_base)
        device.attach_queue(0, queue)
        queue.post(Descriptor(gpa=0, length=512, device_writes=True,
                              header={"type": "read", "sector": 0}))
        with pytest.raises(TrapRaised):
            device.process_queue(0)
