"""Attacks against inter-CVM channel windows (extension of paper IV-C).

The adversaries: the compromised hypervisor and its DMA devices, plus a
*third* CVM trying to worm into a channel between two others.  The window
lives in the secure pool, so host/DMA paths must PMP/IOPMP-fault on it,
and stage-2 disjointness must hold for every non-endpoint.
"""

import pytest

from repro.errors import SecurityViolation, TrapRaised
from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import ExceptionCause
from repro.mem.pagetable import Sv39x4
from repro.mem.physmem import PAGE_SIZE
from repro.sm.abi import EXT_ZION_GUEST, GuestFunction, SbiError

IMAGE = b"channel-isolation-guest" * 32
WINDOW = 4 * PAGE_SIZE
OFFSET = 0x200_0000


@pytest.fixture
def channel_env(machine):
    a = machine.launch_confidential_vm(image=IMAGE)
    b = machine.launch_confidential_vm(image=IMAGE)
    channel_id = machine.monitor.ecall_channel_create(
        a.cvm.cvm_id, a.layout.dram_base + OFFSET, WINDOW, b.cvm.measurement
    )
    machine.monitor.ecall_channel_connect(
        b.cvm.cvm_id, channel_id, b.layout.dram_base + OFFSET, a.cvm.measurement
    )
    channel = machine.monitor.channels.channels[channel_id]
    # The hypervisor is "running": Normal mode, pool closed.
    machine.hart.mode = PrivilegeMode.HS
    return machine, a, b, channel


class TestHostCannotReachTheWindow:
    def test_hypervisor_read_of_window_faults(self, channel_env):
        machine, _a, _b, channel = channel_env
        with pytest.raises(TrapRaised) as excinfo:
            machine.bus.cpu_read(machine.hart, channel.window_pa, 16)
        assert excinfo.value.cause == ExceptionCause.LOAD_ACCESS_FAULT

    def test_hypervisor_write_of_window_faults(self, channel_env):
        machine, _a, _b, channel = channel_env
        with pytest.raises(TrapRaised) as excinfo:
            machine.bus.cpu_write(machine.hart, channel.window_pa, b"inject")
        assert excinfo.value.cause == ExceptionCause.STORE_ACCESS_FAULT

    def test_every_window_page_host_inaccessible(self, channel_env):
        machine, _a, _b, channel = channel_env
        for offset in range(0, channel.window_size, PAGE_SIZE):
            with pytest.raises(TrapRaised):
                machine.bus.cpu_read(machine.hart, channel.window_pa + offset, 8)

    def test_dma_to_window_faults(self, channel_env):
        machine, _a, _b, channel = channel_env
        with pytest.raises(TrapRaised):
            machine.bus.dma_read(source_id=3, addr=channel.window_pa, size=64)
        with pytest.raises(TrapRaised):
            machine.bus.dma_write(
                source_id=3, addr=channel.window_pa, data=b"\xff" * 64
            )


class TestThirdCvmExclusion:
    def test_third_cvm_stage2_never_reaches_window(self, channel_env):
        machine, _a, _b, channel = channel_env
        third = machine.launch_confidential_vm(image=IMAGE)
        # Touch lots of its memory so its tables are fully populated.
        window_pages = {
            channel.window_pa + off for off in range(0, channel.window_size, PAGE_SIZE)
        }

        class Raw:
            def read_u64(self, addr):
                return machine.dram.read_u64(addr)

        mapped = {
            pa for _va, pa, _f, _l in Sv39x4().iter_leaves(Raw(), third.cvm.hgatp_root)
        }
        assert not mapped & window_pages

    def test_third_cvm_connect_denied_via_abi(self, channel_env):
        """A CONNECTED channel refuses any further join, DENIED on the wire."""
        machine, a, _b, channel = channel_env
        third = machine.launch_confidential_vm(image=IMAGE)
        meas_gpa = third.layout.dram_base + 0x5000

        def workload(ctx):
            ctx.write_bytes(meas_gpa, a.cvm.measurement)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CONNECT),
                channel.channel_id, third.layout.dram_base + OFFSET, meas_gpa,
            )

        error, _ = machine.run(third, workload)["workload_result"]
        assert error == SbiError.DENIED

    def test_third_cvm_close_denied(self, channel_env):
        machine, _a, _b, channel = channel_env
        third = machine.launch_confidential_vm(image=IMAGE)
        with pytest.raises(SecurityViolation):
            machine.monitor.ecall_channel_close(third.cvm.cvm_id, channel.channel_id)

    def test_sm_refuses_mapping_window_privately(self, channel_env):
        """map_private can never hand a channel frame to a single CVM."""
        machine, a, _b, channel = channel_env
        with pytest.raises(SecurityViolation):
            machine.monitor.split.map_private(
                a.cvm, a.layout.dram_base + (64 << 20), channel.window_pa,
                machine.monitor._alloc_table_page,
            )


class TestMeasurementGating:
    def test_mismatched_measurement_denied_on_the_wire(self, machine):
        creator = machine.launch_confidential_vm(image=IMAGE)
        imposter = machine.launch_confidential_vm(image=b"imposter-image" * 40)
        channel_id = machine.monitor.ecall_channel_create(
            creator.cvm.cvm_id, creator.layout.dram_base + OFFSET, WINDOW,
            b"\x42" * 32,  # nobody's measurement
        )
        meas_gpa = imposter.layout.dram_base + 0x5000

        def workload(ctx):
            ctx.write_bytes(meas_gpa, creator.cvm.measurement)
            return ctx.sbi_ecall(
                EXT_ZION_GUEST, int(GuestFunction.CHANNEL_CONNECT),
                channel_id, imposter.layout.dram_base + OFFSET, meas_gpa,
            )

        error, _ = machine.run(imposter, workload)["workload_result"]
        assert error == SbiError.DENIED


class TestScrubOnTeardown:
    def test_no_plaintext_survives_close(self, machine):
        a = machine.launch_confidential_vm(image=IMAGE)
        b = machine.launch_confidential_vm(image=IMAGE)
        secret = b"CHANNEL-SECRET-0123456789ABCDEF!"
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, a.layout.dram_base + OFFSET, WINDOW, b.cvm.measurement
        )
        machine.monitor.ecall_channel_connect(
            b.cvm.cvm_id, channel_id, b.layout.dram_base + OFFSET, a.cvm.measurement
        )
        channel = machine.monitor.channels.channels[channel_id]
        for offset in range(0, WINDOW, len(secret) * 4):
            machine.dram.write(channel.window_pa + offset, secret)
        window_pa = channel.window_pa
        block = channel.block
        machine.monitor.ecall_channel_close(a.cvm.cvm_id, channel_id)
        # Not one secret byte anywhere in the (whole) recycled block.
        assert secret not in machine.dram.read(block.base, block.size)
        assert machine.dram.read(window_pa, WINDOW) == bytes(WINDOW)

    def test_no_plaintext_survives_destroy(self, machine):
        a = machine.launch_confidential_vm(image=IMAGE)
        b = machine.launch_confidential_vm(image=IMAGE)
        secret = b"DESTROY-PATH-SECRET-abcdefgh1234"
        channel_id = machine.monitor.ecall_channel_create(
            a.cvm.cvm_id, a.layout.dram_base + OFFSET, WINDOW, b.cvm.measurement
        )
        machine.monitor.ecall_channel_connect(
            b.cvm.cvm_id, channel_id, b.layout.dram_base + OFFSET, a.cvm.measurement
        )
        channel = machine.monitor.channels.channels[channel_id]
        machine.dram.write(channel.window_pa, secret)
        machine.monitor.ecall_destroy(b.cvm.cvm_id)
        assert machine.dram.read(channel.window_pa, WINDOW) == bytes(WINDOW)
