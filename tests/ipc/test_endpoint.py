"""End-to-end inter-CVM IPC through the full ABI (repro.ipc.endpoint)."""

import pytest

from repro.ipc.endpoint import ChannelError, ChannelEndpoint
from repro.sm.channel import ChannelState
from repro.workloads.pingpong import pingpong_client, pingpong_server

IMAGE = b"ipc-e2e-guest" * 64


def _pair(machine):
    a = machine.launch_confidential_vm(image=IMAGE)
    b = machine.launch_confidential_vm(image=IMAGE)
    return a, b


def _run_pingpong(machine, rounds=8, message_size=256, polling=False):
    server, client = _pair(machine)
    box = {}
    meas = server.cvm.measurement
    results = machine.run_concurrent([
        (server, pingpong_server(rounds=rounds, expected_peer_measurement=meas,
                                 polling=polling, channel_box=box)),
        (client, pingpong_client(box, message_size=message_size, rounds=rounds,
                                 expected_creator_measurement=meas,
                                 polling=polling)),
    ])
    return results, server, client


class TestPingPong:
    def test_all_rounds_complete(self, machine):
        results, server, client = _run_pingpong(machine, rounds=8)
        assert results[client]["rounds"] == 8
        assert results[server]["echoed"] == 8
        assert results[client]["bytes_moved"] == 8 * 2 * 256

    def test_doorbells_ring_and_wake(self, machine):
        results, server, client = _run_pingpong(machine, rounds=4)
        assert results[client]["doorbells"] > 0
        assert results[server]["doorbells"] > 0
        assert machine.hypervisor.doorbell_wakeups > 0

    def test_channel_closed_after_run(self, machine):
        _run_pingpong(machine, rounds=2)
        channels = machine.monitor.channels.channels
        assert channels and all(
            c.state is ChannelState.CLOSED for c in channels.values()
        )

    def test_polling_mode_also_completes(self, machine):
        results, server, client = _run_pingpong(machine, rounds=4, polling=True)
        assert results[client]["rounds"] == 4

    def test_polling_ablation_trades_doorbells_for_spins(self, machine):
        """The polling arm must never touch the doorbell path, and in this
        lockstep ping-pong (no idle waits to park through) its only delta
        versus doorbell mode is exactly the saved notify ECALLs."""
        blocked, bsrv, bcli = _run_pingpong(machine, rounds=8)
        fresh = type(machine)(machine.config)
        polled, psrv, pcli = _run_pingpong(fresh, rounds=8, polling=True)
        assert blocked[bsrv]["doorbells"] + blocked[bcli]["doorbells"] > 0
        assert polled[psrv]["doorbells"] + polled[pcli]["doorbells"] == 0
        assert fresh.hypervisor.doorbell_wakeups == 0
        assert polled["cycles"] <= blocked["cycles"]


class TestEndpointErrors:
    def test_connect_to_unknown_channel_fails(self, machine):
        _, b = _pair(machine)

        def workload(ctx):
            with pytest.raises(ChannelError):
                ChannelEndpoint.connect(
                    ctx, 777, b.layout.dram_base + 0x200_0000, b"\0" * 32
                )
            return True

        assert machine.run(b, workload)["workload_result"]

    def test_send_after_close_raises(self, machine):
        results, server, client = _run_pingpong(machine, rounds=1)
        # Re-driving the client endpoint after close must refuse locally.
        a, _ = _pair(machine)

        def workload(ctx):
            endpoint = ChannelEndpoint(ctx, channel_id=1, window_gpa=0,
                                       size=4096, is_creator=True)
            endpoint.closed = True
            with pytest.raises(ChannelError):
                endpoint.send(b"late")
            return True

        assert machine.run(a, workload)["workload_result"]

    def test_corrupt_endpoint_fail_stops(self, machine):
        from repro.errors import ChannelCorrupt

        a, _ = _pair(machine)

        def workload(ctx):
            endpoint = ChannelEndpoint.create(
                ctx, a.layout.dram_base + 0x200_0000, 4 * 4096, b"\0" * 32
            )
            # Adversarial peer: smash the rx ring's prod counter.
            ctx.store(endpoint.rx.base, 1 << 40)
            with pytest.raises(ChannelCorrupt):
                endpoint.recv()
            assert endpoint.corrupt
            # Fail-stop: every later data-path call refuses up front.
            with pytest.raises(ChannelCorrupt):
                endpoint.send(b"late")
            with pytest.raises(ChannelCorrupt):
                endpoint.recv()
            return True

        assert machine.run(a, workload)["workload_result"]

    def test_measurement_must_be_32_bytes(self, machine):
        a, _ = _pair(machine)

        def workload(ctx):
            with pytest.raises(ValueError):
                ChannelEndpoint.create(
                    ctx, a.layout.dram_base + 0x200_0000, 4 * 4096, b"short"
                )
            return True

        assert machine.run(a, workload)["workload_result"]


class TestDoorbellCoalescing:
    """Adaptive (EVENT_IDX-style) vs eager doorbell policy."""

    def _stream(self, machine, adaptive: bool, messages: int = 24):
        from repro.machine import WAIT_DOORBELL
        from repro.workloads.pingpong import DEFAULT_WINDOW_SIZE, _window_gpa

        consumer, producer = _pair(machine)
        box = {}
        meas = consumer.cvm.measurement

        def consumer_workload(ctx):
            endpoint = ChannelEndpoint.create(
                ctx, _window_gpa(ctx), DEFAULT_WINDOW_SIZE, meas,
                adaptive=adaptive)
            box["channel_id"] = endpoint.channel_id
            yield
            got = 0
            while got < messages:
                batch = endpoint.recv_many()
                if not batch:
                    yield WAIT_DOORBELL
                    continue
                got += len(batch)
            return {"rung": endpoint.doorbells_rung,
                    "suppressed": endpoint.doorbells_suppressed,
                    "received": got}

        def producer_workload(ctx):
            while "channel_id" not in box:
                yield
            endpoint = ChannelEndpoint.connect(
                ctx, box["channel_id"], _window_gpa(ctx), meas,
                adaptive=adaptive)
            for seq in range(messages):
                while not endpoint.send(b"m%03d" % seq):
                    yield WAIT_DOORBELL
                if (seq + 1) % 8 == 0:
                    yield  # let the consumer drain mid-stream
            return {"rung": endpoint.doorbells_rung,
                    "suppressed": endpoint.doorbells_suppressed}

        results = machine.run_concurrent([
            (consumer, consumer_workload),
            (producer, producer_workload),
        ])
        assert results[consumer]["received"] == messages
        return results[consumer], results[producer]

    def test_eager_rings_every_send(self, machine):
        consumer, producer = self._stream(machine, adaptive=False)
        assert producer["rung"] == 24  # one notify ECALL per message
        assert producer["suppressed"] == 0
        assert consumer["suppressed"] == 0

    def test_adaptive_suppresses_most_doorbells(self, machine):
        consumer, producer = self._stream(machine, adaptive=True)
        assert producer["rung"] + producer["suppressed"] == 24
        assert producer["suppressed"] > 0
        # Every ring was a genuine park/unpark edge, far below one per send.
        assert producer["rung"] < 24 / 2

    def test_adaptive_and_eager_deliver_identical_payload_work(self, machine):
        adaptive = self._stream(machine, adaptive=True)
        eager = self._stream(machine, adaptive=False)
        assert adaptive[0]["received"] == eager[0]["received"]
