"""Guest-side SPSC ring over private memory (repro.ipc.ring)."""

import pytest

from repro.errors import ChannelCorrupt
from repro.ipc.ring import HEADER_SIZE, LENGTH_PREFIX, SpscRing

BASE_OFFSET = 0x300_0000
REGION = 2 * 4096


def _run_ring(machine, session, body):
    """Run ``body(ctx, ring)`` with a ring over demand-paged private DRAM."""

    def workload(ctx):
        base = session.layout.dram_base + BASE_OFFSET
        ctx.touch_range(base, REGION)  # fault the region in
        return body(ctx, SpscRing(ctx, base, REGION))

    return machine.run(session, workload)["workload_result"]


class TestSpscRing:
    def test_roundtrip_preserves_payload(self, machine, cvm_session):
        def body(ctx, ring):
            assert ring.try_send(b"hello-ring")
            return ring.try_recv()

        assert _run_ring(machine, cvm_session, body) == b"hello-ring"

    def test_empty_ring_returns_none(self, machine, cvm_session):
        assert _run_ring(machine, cvm_session, lambda ctx, ring: ring.try_recv()) is None

    def test_fifo_order(self, machine, cvm_session):
        def body(ctx, ring):
            for i in range(5):
                assert ring.try_send(bytes([i]) * 16)
            return [ring.try_recv() for _ in range(5)]

        out = _run_ring(machine, cvm_session, body)
        assert out == [bytes([i]) * 16 for i in range(5)]

    def test_backpressure_refuses_when_out_of_credits(self, machine, cvm_session):
        def body(ctx, ring):
            big = bytes(ring.capacity - LENGTH_PREFIX - 8)
            assert ring.try_send(big)
            refused = ring.try_send(b"x" * 64)  # no credits left
            ring.try_recv()  # consumer drains, credits return
            accepted = ring.try_send(b"x" * 64)
            return refused, accepted

        refused, accepted = _run_ring(machine, cvm_session, body)
        assert refused is False
        assert accepted is True

    def test_wraparound_preserves_data(self, machine, cvm_session):
        def body(ctx, ring):
            msg = bytes(range(256)) * 8  # 2 KB messages force wrapping
            out = []
            for round_ in range(8):
                assert ring.try_send(msg)
                out.append(ring.try_recv() == msg)
            return out

        assert all(_run_ring(machine, cvm_session, body))

    def test_oversized_message_raises(self, machine, cvm_session):
        def body(ctx, ring):
            with pytest.raises(ValueError):
                ring.try_send(bytes(ring.capacity))
            return True

        assert _run_ring(machine, cvm_session, body)

    def test_credits_account_for_prefix(self, machine, cvm_session):
        def body(ctx, ring):
            before = ring.credits()
            ring.try_send(b"y" * 100)
            return before, ring.credits()

        before, after = _run_ring(machine, cvm_session, body)
        assert before - after == 100 + LENGTH_PREFIX

    def test_ring_charges_cycles(self, machine, cvm_session):
        """The ring is not free: header loads, stores and payload copies."""

        def body(ctx, ring):
            start = machine.ledger.total
            ring.try_send(b"z" * 512)
            ring.try_recv()
            return machine.ledger.total - start

        assert _run_ring(machine, cvm_session, body) > 0

    def test_region_too_small_rejected(self, machine, cvm_session):
        def body(ctx, ring):
            with pytest.raises(ValueError):
                SpscRing(ctx, ring.base, HEADER_SIZE)
            return True

        assert _run_ring(machine, cvm_session, body)


class TestAdversarialPeer:
    """The counters and prefixes live in the shared window: a malicious
    peer can write anything there.  The consumer must clamp before any
    copy and raise the typed :class:`ChannelCorrupt`, never overrun."""

    def test_prod_beyond_capacity_detected_on_recv(self, machine, cvm_session):
        def body(ctx, ring):
            assert ring.try_send(b"honest" * 4)
            ctx.store(ring.base, 1 << 40)  # peer smashes prod
            with pytest.raises(ChannelCorrupt):
                ring.try_recv()
            return True

        assert _run_ring(machine, cvm_session, body)

    def test_cons_beyond_prod_detected_on_send(self, machine, cvm_session):
        def body(ctx, ring):
            ctx.store(ring.base + 8, 4096)  # cons > prod: used negative
            with pytest.raises(ChannelCorrupt):
                ring.try_send(b"x")
            return True

        assert _run_ring(machine, cvm_session, body)

    def test_huge_length_prefix_detected(self, machine, cvm_session):
        def body(ctx, ring):
            assert ring.try_send(b"p" * 16)
            ctx.write_bytes(ring.data_base,
                            (1 << 40).to_bytes(LENGTH_PREFIX, "little"))
            with pytest.raises(ChannelCorrupt):
                ring.try_recv()
            return True

        assert _run_ring(machine, cvm_session, body)

    def test_length_exceeding_published_bytes_detected(self, machine,
                                                       cvm_session):
        """A prefix that fits the capacity but not the *published* byte
        count must still be refused: the clamp is against ``used``."""

        def body(ctx, ring):
            assert ring.try_send(b"q" * 16)
            ctx.write_bytes(ring.data_base,
                            (100).to_bytes(LENGTH_PREFIX, "little"))
            with pytest.raises(ChannelCorrupt):
                ring.try_recv()
            return True

        assert _run_ring(machine, cvm_session, body)

    def test_torn_counter_never_copies_a_payload(self, machine, cvm_session):
        def body(ctx, ring):
            assert ring.try_send(b"r" * 32)
            prod = ring.prod
            # Torn 64-bit store: only the low word of a huge update lands.
            ctx.store(ring.base, (prod & ~0xFFFF_FFFF)
                      | ((prod + (1 << 20)) & 0xFFFF_FFFF))
            with pytest.raises(ChannelCorrupt):
                ring.try_recv()
            return ring.received

        assert _run_ring(machine, cvm_session, body) == 0


class TestAdaptiveEventWords:
    """EVENT_IDX-style doorbell-suppression hints (adaptive mode)."""

    def _adaptive_ring(self, ctx, session):
        base = session.layout.dram_base + BASE_OFFSET
        ctx.touch_range(base, REGION)
        return SpscRing(ctx, base, REGION, adaptive=True)

    def test_send_crossing_published_event_sets_data_hint(self, machine, cvm_session):
        def workload(ctx):
            ring = self._adaptive_ring(ctx, cvm_session)
            assert ring.try_recv() is None  # empty poll publishes data_event
            assert ring.try_send(b"wake me")
            first = ring.take_data_hint()
            second = ring.take_data_hint()  # consumed: must not re-arm
            assert ring.try_send(b"no republish")  # event is now stale
            third = ring.take_data_hint()
            return first, second, third

        out = machine.run(cvm_session, workload)["workload_result"]
        assert out == (True, False, False)

    def test_refused_send_publishes_credit_event(self, machine, cvm_session):
        def workload(ctx):
            ring = self._adaptive_ring(ctx, cvm_session)
            big = bytes(ring.capacity - LENGTH_PREFIX - 32)
            assert ring.try_send(big)
            assert not ring.try_send(b"x" * 64)  # refused: publishes the event
            assert ring.try_recv() == big  # crossing it arms the credit hint
            return ring.take_credit_hint(), ring.take_credit_hint()

        assert machine.run(cvm_session, workload)["workload_result"] == (True, False)

    def test_non_adaptive_ring_never_hints(self, machine, cvm_session):
        def workload(ctx):
            base = cvm_session.layout.dram_base + BASE_OFFSET
            ctx.touch_range(base, REGION)
            ring = SpscRing(ctx, base, REGION)  # adaptive off (the default)
            assert ring.try_recv() is None
            assert ring.try_send(b"data")
            assert ring.try_recv() == b"data"
            return ring.take_data_hint(), ring.take_credit_hint()

        assert machine.run(cvm_session, workload)["workload_result"] == (False, False)

    def test_event_words_do_not_disturb_payload(self, machine, cvm_session):
        """The event words live in the header pad, clear of the data area."""
        def workload(ctx):
            ring = self._adaptive_ring(ctx, cvm_session)
            assert ring.try_recv() is None  # writes data_event
            filler = bytes(ring.capacity - LENGTH_PREFIX - 32)
            assert ring.try_send(filler)
            assert not ring.try_send(b"x" * 64)  # refused: writes credit_event
            assert ring.try_recv() == filler
            payload = bytes(range(64))
            assert ring.try_send(payload)
            return ring.try_recv()

        assert machine.run(cvm_session, workload)["workload_result"] == bytes(range(64))
