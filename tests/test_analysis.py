"""Analysis module: stats snapshots and overhead reports."""

import pytest

from repro.analysis import machine_stats, overhead_report, render_stats
from repro.cycles import Category


@pytest.fixture
def run_machine(machine):
    session = machine.launch_confidential_vm(image=b"stats" * 100)
    machine.run(session, lambda ctx: ctx.compute(2_000_000))
    return machine, session


class TestMachineStats:
    def test_snapshot_structure(self, run_machine):
        machine, session = run_machine
        stats = machine_stats(machine)
        assert stats["cycles"]["total"] == machine.ledger.total
        assert stats["pool"]["regions"] == 1
        assert stats["pmp_entries_used"] == 3
        cvm_stats = stats["cvms"][session.cvm.cvm_id]
        assert cvm_stats["exits"] >= 1
        assert "halt" in cvm_stats["exit_reasons"]

    def test_exit_reasons_track_timer_ticks(self, run_machine):
        machine, session = run_machine
        stats = machine_stats(machine)
        reasons = stats["cvms"][session.cvm.cvm_id]["exit_reasons"]
        assert reasons.get("timer", 0) >= 1  # 2M cycles = at least 1 tick

    def test_tlb_hit_rate_none_when_unused(self, machine):
        stats = machine_stats(machine)
        assert stats["tlb"]["hit_rate"] is None

    def test_render_is_plain_text(self, run_machine):
        machine, _ = run_machine
        text = render_stats(machine_stats(machine))
        assert "total cycles" in text
        assert "PMP entries 3/16" in text


class TestOverheadReport:
    def test_delta_ordering(self):
        normal = {Category.COMPUTE: 1000, Category.TRAP: 100}
        cvm = {Category.COMPUTE: 1000, Category.TRAP: 400, Category.PMP: 50}
        rows = overhead_report(normal, cvm)
        assert rows[0]["category"] == "trap"
        assert rows[0]["delta"] == 300
        assert {row["category"] for row in rows} == {"compute", "trap", "pmp"}

    def test_real_runs_show_switch_costs(self, machine):
        from repro import Machine, MachineConfig

        results = {}
        for kind in ("normal", "cvm"):
            m = Machine(MachineConfig())
            if kind == "cvm":
                s = m.launch_confidential_vm(image=b"x")
            else:
                s = m.launch_normal_vm()
            results[kind] = m.run(s, lambda ctx: ctx.compute(3_000_000))
        rows = overhead_report(results["normal"]["breakdown"], results["cvm"]["breakdown"])
        by_cat = {row["category"]: row["delta"] for row in rows}
        # The CVM's extra cycles are in SM logic, PMP toggles, and TLB.
        assert by_cat.get("sm_logic", 0) > 0
        assert by_cat.get("pmp", 0) > 0
        assert by_cat["compute"] == 0
