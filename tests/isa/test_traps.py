"""Trap cause encodings and the delegation routing algorithm."""

import pytest

from repro.isa.privilege import PrivilegeMode
from repro.isa.traps import (
    AccessType,
    ExceptionCause,
    InterruptCause,
    access_fault_for,
    guest_page_fault_for,
    page_fault_for,
    route_exception,
    route_interrupt,
)

E = ExceptionCause
I = InterruptCause
NONE = frozenset()


class TestCauseEncodings:
    def test_spec_exception_codes(self):
        assert E.ECALL_FROM_U == 8
        assert E.ECALL_FROM_VS == 10
        assert E.STORE_PAGE_FAULT == 15
        assert E.LOAD_GUEST_PAGE_FAULT == 21
        assert E.VIRTUAL_INSTRUCTION == 22
        assert E.STORE_GUEST_PAGE_FAULT == 23

    def test_spec_interrupt_codes(self):
        assert I.VIRTUAL_SUPERVISOR_TIMER == 6
        assert I.MACHINE_TIMER == 7
        assert I.VIRTUAL_SUPERVISOR_EXTERNAL == 10

    def test_page_fault_mapping(self):
        assert page_fault_for(AccessType.LOAD) == E.LOAD_PAGE_FAULT
        assert page_fault_for(AccessType.STORE) == E.STORE_PAGE_FAULT
        assert page_fault_for(AccessType.FETCH) == E.INSTRUCTION_PAGE_FAULT

    def test_guest_page_fault_mapping(self):
        assert guest_page_fault_for(AccessType.LOAD) == E.LOAD_GUEST_PAGE_FAULT
        assert guest_page_fault_for(AccessType.STORE) == E.STORE_GUEST_PAGE_FAULT
        assert guest_page_fault_for(AccessType.FETCH) == E.INSTRUCTION_GUEST_PAGE_FAULT

    def test_access_fault_mapping(self):
        assert access_fault_for(AccessType.LOAD) == E.LOAD_ACCESS_FAULT
        assert access_fault_for(AccessType.STORE) == E.STORE_ACCESS_FAULT
        assert access_fault_for(AccessType.FETCH) == E.INSTRUCTION_ACCESS_FAULT


class TestExceptionRouting:
    def test_undelegated_lands_in_m(self):
        dest = route_exception(E.LOAD_GUEST_PAGE_FAULT, PrivilegeMode.VS, NONE, NONE)
        assert dest is PrivilegeMode.M

    def test_medeleg_sends_to_hs(self):
        medeleg = frozenset({E.LOAD_GUEST_PAGE_FAULT})
        dest = route_exception(E.LOAD_GUEST_PAGE_FAULT, PrivilegeMode.VS, medeleg, NONE)
        assert dest is PrivilegeMode.HS

    def test_hedeleg_sends_to_vs(self):
        causes = frozenset({E.ECALL_FROM_U})
        dest = route_exception(E.ECALL_FROM_U, PrivilegeMode.VU, causes, causes)
        assert dest is PrivilegeMode.VS

    def test_guest_page_fault_never_reaches_vs(self):
        causes = frozenset({E.STORE_GUEST_PAGE_FAULT})
        dest = route_exception(E.STORE_GUEST_PAGE_FAULT, PrivilegeMode.VS, causes, causes)
        assert dest is PrivilegeMode.HS

    def test_virtual_instruction_never_reaches_vs(self):
        causes = frozenset({E.VIRTUAL_INSTRUCTION})
        dest = route_exception(E.VIRTUAL_INSTRUCTION, PrivilegeMode.VS, causes, causes)
        assert dest is PrivilegeMode.HS

    def test_ecall_from_vs_never_reaches_vs(self):
        causes = frozenset({E.ECALL_FROM_VS})
        dest = route_exception(E.ECALL_FROM_VS, PrivilegeMode.VS, causes, causes)
        assert dest is PrivilegeMode.HS

    def test_ecall_from_m_always_lands_in_m(self):
        everything = frozenset(E)
        dest = route_exception(E.ECALL_FROM_M, PrivilegeMode.M, everything, everything)
        assert dest is PrivilegeMode.M

    def test_trap_from_m_never_delegated(self):
        everything = frozenset(E)
        dest = route_exception(E.ILLEGAL_INSTRUCTION, PrivilegeMode.M, everything, everything)
        assert dest is PrivilegeMode.M

    def test_trap_from_hs_stops_at_hs(self):
        everything = frozenset(E)
        dest = route_exception(E.LOAD_PAGE_FAULT, PrivilegeMode.HS, everything, everything)
        assert dest is PrivilegeMode.HS

    def test_trap_from_u_stops_at_hs(self):
        everything = frozenset(E)
        dest = route_exception(E.ECALL_FROM_U, PrivilegeMode.U, everything, everything)
        assert dest is PrivilegeMode.HS

    @pytest.mark.parametrize("cause", [E.LOAD_PAGE_FAULT, E.ILLEGAL_INSTRUCTION, E.BREAKPOINT])
    def test_vu_traps_fully_delegated(self, cause):
        causes = frozenset({cause})
        assert route_exception(cause, PrivilegeMode.VU, causes, causes) is PrivilegeMode.VS


class TestInterruptRouting:
    def test_machine_timer_never_delegated(self):
        everything = frozenset(I)
        dest = route_interrupt(I.MACHINE_TIMER, PrivilegeMode.VS, everything, everything)
        assert dest is PrivilegeMode.M

    def test_machine_external_never_delegated(self):
        everything = frozenset(I)
        dest = route_interrupt(I.MACHINE_EXTERNAL, PrivilegeMode.VU, everything, everything)
        assert dest is PrivilegeMode.M

    def test_vs_timer_delegated_to_guest(self):
        everything = frozenset(I)
        dest = route_interrupt(
            I.VIRTUAL_SUPERVISOR_TIMER, PrivilegeMode.VS, everything, everything
        )
        assert dest is PrivilegeMode.VS

    def test_vs_interrupt_while_in_host_goes_to_hs(self):
        everything = frozenset(I)
        dest = route_interrupt(
            I.VIRTUAL_SUPERVISOR_TIMER, PrivilegeMode.HS, everything, everything
        )
        assert dest is PrivilegeMode.HS

    def test_undelegated_supervisor_interrupt_lands_in_m(self):
        dest = route_interrupt(I.SUPERVISOR_TIMER, PrivilegeMode.HS, NONE, NONE)
        assert dest is PrivilegeMode.M

    def test_supervisor_interrupt_delegated_to_hs(self):
        mideleg = frozenset({I.SUPERVISOR_EXTERNAL})
        dest = route_interrupt(I.SUPERVISOR_EXTERNAL, PrivilegeMode.U, mideleg, NONE)
        assert dest is PrivilegeMode.HS
