"""IOPMP: DMA-side memory protection."""

from repro.isa.iopmp import IopmpEntry, IopmpUnit
from repro.isa.traps import AccessType

LOAD = AccessType.LOAD
STORE = AccessType.STORE


def test_empty_iopmp_allows_all():
    unit = IopmpUnit()
    assert unit.check(0, 0x8000_0000, 64, LOAD)


def test_programmed_iopmp_default_denies():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x1000, size=0x1000, readable=True, writable=True))
    assert not unit.check(0, 0x9000_0000, 8, LOAD)


def test_allow_rule_grants_within_region():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x8000_0000, size=0x1000, readable=True, writable=True))
    assert unit.check(3, 0x8000_0000, 64, LOAD)
    assert unit.check(3, 0x8000_0800, 64, STORE)


def test_deny_rule_blocks_secure_pool():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x9000_0000, size=0x100000))  # deny: no perms
    unit.add_entry(IopmpEntry(base=0x8000_0000, size=0x2000_0000, readable=True, writable=True))
    assert not unit.check(1, 0x9000_0000, 8, LOAD)
    assert not unit.check(1, 0x9000_0000, 8, STORE)
    assert unit.check(1, 0x8000_0000, 8, STORE)


def test_priority_first_match_wins():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x8000_0000, size=0x2000_0000, readable=True, writable=True))
    # A later deny rule is shadowed by the earlier allow.
    unit.add_entry(IopmpEntry(base=0x9000_0000, size=0x1000))
    assert unit.check(0, 0x9000_0000, 8, LOAD)
    # insert_entry at index 0 takes priority.
    unit.insert_entry(0, IopmpEntry(base=0x9000_0000, size=0x1000))
    assert not unit.check(0, 0x9000_0000, 8, LOAD)


def test_source_id_scoping():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x8000_0000, size=0x1000, source_id=7, readable=True))
    assert unit.check(7, 0x8000_0000, 8, LOAD)
    assert not unit.check(8, 0x8000_0000, 8, LOAD)


def test_partial_overlap_denied():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0x8000_0000, size=0x1000, readable=True, writable=True))
    assert not unit.check(0, 0x8000_0FF0, 0x20, LOAD)


def test_devices_never_fetch():
    entry = IopmpEntry(base=0, size=0x1000, readable=True, writable=True)
    assert not entry.permits(AccessType.FETCH)


def test_remove_and_clear():
    unit = IopmpUnit()
    unit.add_entry(IopmpEntry(base=0, size=0x1000, readable=True))
    unit.remove_entry(0)
    assert unit.check(0, 0x5000_0000, 8, LOAD)  # back to empty-allow
    unit.add_entry(IopmpEntry(base=0, size=0x1000))
    unit.clear()
    assert not unit.entries()
